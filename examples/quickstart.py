"""Quickstart: run a small MoE Transformer functionally, then compare
the MoNDE execution schemes on the paper's NLLB-MoE configuration.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.runtime import InferenceConfig, MoNDERuntime
from repro.core.strategies import Scheme
from repro.moe import MoESeq2Seq, nllb_moe_tiny
from repro.moe.transformer import ForwardRecord
from repro.workloads import flores_like


def functional_demo() -> None:
    """A reduced-scale NLLB-MoE twin, end to end in NumPy."""
    print("=" * 64)
    print("1. Functional MoE inference (NLLB-MoE-tiny, top-2, dropless)")
    print("=" * 64)
    model = MoESeq2Seq(nllb_moe_tiny(), seed=0)
    rng = np.random.default_rng(42)
    source = rng.integers(0, model.config.vocab_size, size=(2, 12))

    record = ForwardRecord()
    generated = model.greedy_decode(source, max_new_tokens=6, record=record)
    print(f"source tokens : {source.shape} -> generated {generated.shape}")
    print(f"generated ids : {generated.tolist()}")

    counts = record.encoder_routing[0].tokens_per_expert
    print(f"encoder MoE layer 0 expert loads: {counts.tolist()}")
    print(f"active experts: {np.count_nonzero(counts)}/{len(counts)}")


def scheme_comparison() -> None:
    """Timing comparison on the full-scale NLLB-MoE (Table 2)."""
    print()
    print("=" * 64)
    print("2. Scheme comparison, NLLB-MoE, B=4, S=512 (Fig. 6 metric)")
    print("=" * 64)
    scenario = flores_like(batch=4)
    config = InferenceConfig(
        model=scenario.model, batch=4, decode_steps=16, profile=scenario.profile
    )
    runtime = MoNDERuntime(config)

    for part in ("encoder", "decoder"):
        print(f"\n{part}:")
        for scheme in (Scheme.GPU_PM, Scheme.MD_AM, Scheme.MD_LB, Scheme.IDEAL):
            result = runtime.result(scheme, part)
            normalized = runtime.normalized_throughput(scheme, part)
            print(
                f"  {scheme.value:8s} {result.seconds*1e3:10.1f} ms "
                f"({result.throughput:8.0f} tok/s, {normalized:.2f}x of Ideal)"
            )
        speedup = runtime.speedup(Scheme.MD_LB, Scheme.GPU_PM, part)
        print(f"  -> MD+LB is {speedup:.1f}x faster than GPU+PM")


if __name__ == "__main__":
    functional_demo()
    scheme_comparison()
