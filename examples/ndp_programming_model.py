"""The MoNDE programming model (Section 3.4), end to end.

Demonstrates the full host/device path of Fig. 4(a):

1. the driver loads expert weights into the device's even banks,
2. ``actin.monde()``-style AMove of input activations (odd banks),
3. ``gemm+relu`` / ``gemm`` kernels compiled into 64-byte CXL
   instructions, wrapped in NDP-flagged RwD flits,
4. the CXL controller routes them to the NDP controller, which drives
   the cycle-level systolic engine and raises the done register,
5. results AMoved back and checked against NumPy.

Run:  python examples/ndp_programming_model.py
"""

import numpy as np

from repro.core.driver import MoNDEDriver
from repro.core.instructions import NDPInstruction, Opcode

D_MODEL, D_FF = 256, 1024


def main() -> None:
    rng = np.random.default_rng(7)
    driver = MoNDEDriver()

    # -- MoE layer initialization: experts live in device memory ----
    w1 = rng.normal(0, 0.05, size=(D_MODEL, D_FF))
    w2 = rng.normal(0, 0.05, size=(D_FF, D_MODEL))
    handle = driver.load_expert(0, w1, w2, activation="relu")
    print(f"expert 0 loaded: w1@{handle.w1.addr:#012x} w2@{handle.w2.addr:#012x}")

    layout = driver.device.layout
    bank_parities = {
        layout.mapper.decode(a).bank % 2
        for a in layout.block_addresses(handle.w1)[:64]
    }
    print(f"expert weight blocks bank parity: {bank_parities} (even banks)")

    # -- Inspect the wire format ------------------------------------
    inst = NDPInstruction(
        opcode=Opcode.GEMM_RELU,
        actin_addr=0x1000, actin_size=4 * D_MODEL * 2,
        wgt_addr=handle.w1.addr, wgt_size=D_MODEL * D_FF * 2,
        actout_addr=0x2000, actout_size=4 * D_FF * 2,
        m=4, n=D_FF, k=D_MODEL, expert_id=0,
    )
    raw = inst.encode()
    print(f"\n64-byte NDP instruction ({len(raw)} bytes):")
    print("  " + raw.hex()[:64] + "...")
    decoded = NDPInstruction.decode(raw)
    print(f"  decoded: {decoded.opcode.name} m={decoded.m} n={decoded.n} "
          f"k={decoded.k} expert={decoded.expert_id}")

    # -- AMove + kernel launch + done polling ------------------------
    tokens = rng.normal(size=(4, D_MODEL))  # 4 routed tokens (cold expert)
    actin = driver.offload(tokens)
    parities = {
        layout.mapper.decode(a).bank % 2
        for a in layout.block_addresses(actin.allocation)[:16]
    }
    print(f"\nactivations offloaded, bank parity: {parities} (odd banks)")

    out, device_seconds = driver.run_expert(0, actin)
    result = driver.to_host(out)
    expected = np.maximum(tokens @ w1, 0) @ w2
    print(f"done register raised: {driver.cxl.poll_done()}")
    print(f"device time for 4-token expert: {device_seconds*1e6:.1f} us")
    print(f"matches NumPy reference: {np.allclose(result, expected)}")

    # -- The cold-expert economics, measured on this device ----------
    expert_bytes = (w1.nbytes + w2.nbytes)
    print(f"\nAMove volume: {2 * tokens.nbytes} bytes "
          f"vs PMove volume: {expert_bytes} bytes "
          f"({expert_bytes / (2 * tokens.nbytes):.0f}x reduction)")


if __name__ == "__main__":
    main()
