"""Serving study: what the Fig. 6 speedups mean for a deployment.

Sweeps offered load against latency for GPU+PM and MD+LB on the
NLLB-MoE workload: the scheme with lower per-request cost sustains
several times the load before its queue saturates.

Run:  python examples/serving_study.py
"""

from repro.core.strategies import Scheme
from repro.cosim import run_load_sweep
from repro.serving.simulator import CostModel
from repro.workloads import flores_like


def main() -> None:
    scenario = flores_like(batch=1)
    print(f"workload: {scenario.describe()}")
    print("building per-scheme cost models from the runtime...")
    costs = {
        scheme: CostModel.from_runtime(
            scenario.model, scheme, profile=scenario.profile, ref_decode_steps=4
        )
        for scheme in (Scheme.GPU_PM, Scheme.MD_LB)
    }
    for scheme, cost in costs.items():
        print(f"  {scheme.value:7s} encode {cost.encode_seconds_per_token*1e6:6.1f} us/tok, "
              f"decode {cost.decode_seconds_per_token*1e3:6.2f} ms/tok")

    rates = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0]
    print(f"\n{'req/s':>6s}  " + "  ".join(
        f"{s.value + ' p50/p99(s)':>24s}" for s in costs
    ))
    for rate in rates:
        cells = []
        for scheme, cost in costs.items():
            # planner=None runs the engine-aware sweep serving-only
            # (open loop, no DRAM feedback) -- the successor of the
            # old standalone serving load_sweep.
            _, runs = run_load_sweep(cost, scheme, None, [rate],
                                     n_requests=100, mean_decode_tokens=16)
            result = runs[0].closed_loop
            cells.append(
                f"{result.latency_percentile(50):10.2f}/"
                f"{result.latency_percentile(99):8.2f} "
                f"(u={result.utilization:.2f})"
            )
        print(f"{rate:6.2f}  " + "  ".join(f"{c:>24s}" for c in cells))

    print("\nReading: GPU+PM's queue saturates around 1-2 req/s; MD+LB "
          "sustains ~4-6 req/s at sub-second medians on the same hardware "
          "budget plus one MoNDE device.")


if __name__ == "__main__":
    main()
