"""Multi-core closed-loop co-simulation: parallel rate-grid sweeps.

The offered-load points of a `repro.cosim` sweep are independent
fixed-point runs, so `run_load_sweep(workers=N)` fans them out over a
process pool -- each worker gets its own pickled copy of the cost
model and replay planner, and per-point seeding is identical either
way, so the parallel sweep is bit-identical to the serial one.  This
example runs the same grid serially and with `--workers` processes,
verifies the results match, and prints the wall-clock speedup.

On a single-core container the "speedup" is below 1.0 (pool startup
plus pickling with nothing to overlap); on an N-core box it
approaches min(N, grid points).  A second lever, DRAM-level
parallelism (`CosimConfig(dram_workers=N)` /
`repro cosim --dram-workers N`), fans each replay's per-channel
drains out instead -- useful when the grid is short but the DRAM
config is wide.  The two compose only one at a time (pool workers
cannot spawn nested pools), so pick the level that matches where the
work is.

Run:  python examples/parallel_sweep.py [--workers N]
"""

import argparse
import time

from repro.core.strategies import Scheme
from repro.cosim import (
    CosimConfig,
    ExpertReplayPlanner,
    format_sweep,
    run_load_sweep,
    small_cosim_dram,
)
from repro.serving.simulator import CostModel


def build_parts():
    cost = CostModel(encode_seconds_per_token=2e-9, decode_seconds_per_token=2e-8)
    planner = ExpertReplayPlanner(
        n_experts=16,
        top_k=2,
        n_moe_layers=2,
        dram_config=small_cosim_dram(),
        bytes_per_token=8192,
        max_blocks_per_request=512,
        expert_bytes=1 << 18,
        seed=1,
    )
    return cost, planner


def run_grid(workers: int):
    cost, planner = build_parts()
    rates = [2e4, 5e5, 1e6, 2e6, 4e6]
    start = time.perf_counter()
    sweep, runs = run_load_sweep(
        cost,
        Scheme.MD_LB,
        planner,
        rates,
        n_requests=60,
        seed=1,
        mean_prompt_tokens=20,
        mean_decode_tokens=5,
        cosim_config=CosimConfig(max_iterations=16),
        workers=workers,
    )
    return sweep, time.perf_counter() - start


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2,
                        help="process-pool size for the parallel sweep")
    args = parser.parse_args()

    print("serial sweep over a 5-point offered-load grid...")
    serial_sweep, serial_seconds = run_grid(workers=0)
    print(format_sweep(serial_sweep))
    print(f"serial: {serial_seconds:.2f} s\n")

    print(f"same grid over {args.workers} workers...")
    parallel_sweep, parallel_seconds = run_grid(workers=args.workers)
    identical = parallel_sweep.to_dict() == serial_sweep.to_dict()
    print(f"parallel: {parallel_seconds:.2f} s "
          f"({serial_seconds / parallel_seconds:.2f}x vs serial)")
    print(f"bit-identical to the serial sweep: {identical}")
    if not identical:
        raise SystemExit("parallel sweep diverged from serial")


if __name__ == "__main__":
    main()
