"""Capacity planning with MoNDE: a what-if study a deployment team
would actually run.

Questions answered for NLLB-MoE serving:

1. How many GPUs would parameters-in-HBM require, vs one MoNDE device?
2. How does throughput scale with extra MoNDE devices (Fig. 9)?
3. What does faster device memory buy (Fig. 7(b))?
4. Where does the auto-tuned H land, and what happens without it?

Run:  python examples/capacity_planning.py
"""

from repro.core.engine import Platform
from repro.core.runtime import InferenceConfig, MoNDERuntime
from repro.core.strategies import Scheme
from repro.hw.specs import A100_PCIE, MONDE_DEVICE
from repro.workloads import flores_like


def capacity_math() -> None:
    print("=" * 64)
    print("1. Memory capacity: GPUs vs one MoNDE device")
    print("=" * 64)
    scenario = flores_like()
    model = scenario.model
    total_gb = model.total_param_bytes / 1e9
    gpu_gb = A100_PCIE.mem_capacity / 1e9
    n_gpus = -(-int(total_gb) // int(gpu_gb * 0.9))
    print(f"{model.name}: {total_gb:.1f} GB parameters "
          f"({model.total_expert_bytes/1e9:.1f} GB experts)")
    print(f"A100 80GB needed for residency: {n_gpus} GPUs")
    print(f"One MoNDE device: {MONDE_DEVICE.mem_capacity/2**30:.0f} GiB "
          f"@ {MONDE_DEVICE.mem_bandwidth/1e9:.0f} GB/s -> fits with room to spare")


def device_scaling() -> None:
    print()
    print("=" * 64)
    print("2. Throughput vs MoNDE device count (encoder, B=4)")
    print("=" * 64)
    scenario = flores_like(batch=4)
    config = InferenceConfig(
        model=scenario.model, batch=4, decode_steps=8, profile=scenario.profile
    )
    base = MoNDERuntime(config, platform=Platform()).result(
        Scheme.GPU_PM, "encoder"
    )
    for n in (1, 2, 4, 8):
        rt = MoNDERuntime(config, platform=Platform(n_monde_devices=n))
        r = rt.result(Scheme.MD_LB, "encoder")
        print(f"  {n} device(s): {r.throughput:8.0f} tok/s "
              f"({base.moe_seconds / r.moe_seconds:.1f}x GPU+PM MoE throughput)")


def bandwidth_sensitivity() -> None:
    print()
    print("=" * 64)
    print("3. Sensitivity to device memory bandwidth (Fig. 7(b))")
    print("=" * 64)
    scenario = flores_like(batch=4)
    config = InferenceConfig(
        model=scenario.model, batch=4, decode_steps=8, profile=scenario.profile
    )
    for factor in (0.5, 1.0, 2.0):
        platform = Platform(monde_spec=MONDE_DEVICE.scaled_bandwidth(factor))
        rt = MoNDERuntime(config, platform=platform)
        speedup = rt.moe_speedup(Scheme.MD_LB, Scheme.GPU_PM, "encoder")
        print(f"  {factor:3.1f}x bandwidth "
              f"({platform.monde_spec.effective_bandwidth/1e9:5.0f} GB/s): "
              f"MD+LB = {speedup:.1f}x GPU+PM (encoder MoE)")


def h_policy() -> None:
    print()
    print("=" * 64)
    print("4. The H policy: auto-tuned alpha vs fixed")
    print("=" * 64)
    scenario = flores_like(batch=4)
    for auto, label in ((True, "auto-tuned"), (False, "fixed alpha=1")):
        config = InferenceConfig(
            model=scenario.model, batch=4, decode_steps=8,
            auto_tune=auto, profile=scenario.profile,
        )
        rt = MoNDERuntime(config)
        r = rt.result(Scheme.MD_LB, "encoder")
        print(f"  {label:14s}: mean H = {r.mean_h:.1f}, "
              f"alpha = {r.alpha_used:g}, "
              f"encoder MoE time = {r.moe_seconds*1e3:.1f} ms")


if __name__ == "__main__":
    capacity_math()
    device_scaling()
    bandwidth_sensitivity()
    h_policy()
