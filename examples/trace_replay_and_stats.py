"""Reproducible experiments: trace capture/replay and seed sweeps.

Shows the reproducibility toolkit around the timing harness:

1. capture a routing trace, save it to JSON, reload it, and replay the
   exact expert loads through the layer engine;
2. sweep the Fig. 6 headline metric over seeds and report a bootstrap
   confidence interval.

Run:  python examples/trace_replay_and_stats.py
"""

import pathlib
import tempfile

import numpy as np

from repro.analysis.stats import seed_sweep
from repro.core.engine import MoELayerEngine, Platform
from repro.core.runtime import InferenceConfig, MoNDERuntime
from repro.core.strategies import Scheme
from repro.workloads import SavedTrace, capture_trace, flores_like
from repro.workloads.traces import RoutingTraceGenerator


def trace_replay() -> None:
    print("=" * 64)
    print("1. Capture -> save -> load -> replay a routing trace")
    print("=" * 64)
    scenario = flores_like(batch=4)
    generator = RoutingTraceGenerator(
        scenario.model, 4, 512, profile=scenario.profile, seed=123
    )
    trace = capture_trace(generator, n_decode_steps=2)

    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "flores-b4-seed123.json"
        trace.save(path)
        print(f"saved {path.name}: {path.stat().st_size} bytes, "
              f"{len(trace.encoder_layers)} encoder MoE layers")
        loaded = SavedTrace.load(path)

    engine = MoELayerEngine(scenario.model, Platform())
    print("\nreplaying encoder layers under MD+LB:")
    for rank, counts in enumerate(loaded.encoder_layers):
        result = engine.layer_time(Scheme.MD_LB, counts, alpha=2.0)
        print(f"  layer {rank}: active={int(np.count_nonzero(counts)):3d} "
              f"H={result.h} time={result.seconds*1e3:7.2f} ms")


def stats_sweep() -> None:
    print()
    print("=" * 64)
    print("2. Headline metric spread over workload seeds")
    print("=" * 64)
    scenario = flores_like(batch=4)

    def metric(seed: int) -> float:
        config = InferenceConfig(
            model=scenario.model, batch=4, decode_steps=4,
            profile=scenario.profile, seed=seed,
        )
        return MoNDERuntime(config).speedup(Scheme.MD_LB, Scheme.GPU_PM, "encoder")

    result = seed_sweep(metric, seeds=range(5))
    print(f"NLLB-MoE encoder, MD+LB over GPU+PM: {result.format()}")
    print(f"(paper reports 6.7x on its measured routing)")


if __name__ == "__main__":
    trace_replay()
    stats_sweep()
