"""Explore the MoNDE memory device with the cycle-level DRAM simulator.

Shows why Section 3.4's layout decisions matter, directly on the
bank/channel/timing model:

1. sustained bandwidth per access pattern and address mapping,
2. even/odd bank partitioning for weights vs activations,
3. per-request latency distribution for a streaming expert fetch.

Run:  python examples/dram_exploration.py
"""

import numpy as np

from repro.dram import (
    BandwidthCalibrator,
    LPDDR5X_8533,
    MappingScheme,
    MemoryController,
    Request,
    RequestKind,
)


def bandwidth_table() -> None:
    print("=" * 64)
    print("1. Sustained bandwidth by pattern (peak "
          f"{LPDDR5X_8533.peak_bandwidth/1e9:.0f} GB/s)")
    print("=" * 64)
    cal = BandwidthCalibrator()
    rows = [
        ("sequential stream (paper mapping)", cal.sequential_read(1 << 19)),
        ("random 64B", cal.random_read(1 << 17)),
        ("sequential (naive row-major)",
         BandwidthCalibrator(scheme=MappingScheme.ROW_MAJOR).sequential_read(1 << 19)),
    ]
    for label, r in rows:
        print(f"  {label:36s} {r.sustained_bandwidth/1e9:6.1f} GB/s "
              f"(eff {r.efficiency:.2f}, row-hit {r.row_hit_rate:.2f})")


def partitioning() -> None:
    print()
    print("=" * 64)
    print("2. Weight/activation bank partitioning (Section 3.4)")
    print("=" * 64)
    cal = BandwidthCalibrator()
    part = cal.interleaved_streams(partitioned=True)
    shared = cal.interleaved_streams(partitioned=False)
    print(f"  even/odd partitioned banks : {part.sustained_bandwidth/1e9:6.1f} GB/s")
    print(f"  shared banks (row ping-pong): {shared.sustained_bandwidth/1e9:6.1f} GB/s")
    print(f"  -> partitioning is {part.sustained_bandwidth/shared.sustained_bandwidth:.2f}x")


def latency_histogram() -> None:
    print()
    print("=" * 64)
    print("3. Request latency while streaming one expert tile")
    print("=" * 64)
    controller = MemoryController(LPDDR5X_8533)
    requests = [Request(addr=i * 64, kind=RequestKind.READ) for i in range(4096)]
    controller.simulate(requests)
    latencies = np.array([r.latency() for r in requests])
    cycle_ns = LPDDR5X_8533.timing.cycle_time * 1e9
    print(f"  requests: {len(requests)} (64 B each)")
    print(f"  latency min/p50/p99/max: "
          f"{latencies.min()*cycle_ns:.1f} / "
          f"{np.percentile(latencies, 50)*cycle_ns:.1f} / "
          f"{np.percentile(latencies, 99)*cycle_ns:.1f} / "
          f"{latencies.max()*cycle_ns:.1f} ns")
    hist, edges = np.histogram(latencies, bins=8)
    for count, lo, hi in zip(hist, edges, edges[1:]):
        bar = "#" * int(1 + 40 * count / hist.max())
        print(f"  {lo*cycle_ns:7.1f}-{hi*cycle_ns:7.1f} ns {bar} {count}")


if __name__ == "__main__":
    bandwidth_table()
    partitioning()
    latency_histogram()
