"""Continuous batching vs FIFO: recovering the saturation hockey stick.

Runs the same offered-load grid through the closed serving<->DRAM loop
twice -- once with the seed FIFO engine (one request at a time, serial
decode pricing) and once with the continuous-batching engine (prefill
admission into in-flight decode slots, batch-amortized decode steps).
On a decode-heavy request mix the decode phase is bandwidth-bound:
every decode step streams the expert weights from DRAM, and a batched
step streams them *once* for the whole batch.  That amortization is
invisible at low load (batches never form), costs a little at mid load
(stepped admission quantizes start times), and wins at saturation --
the regime the paper's memory-driven design targets.

The run prints both closed-loop latency curves, the per-phase tails
the batching engine tracks (TTFT / queue delay / TPOT), and each
engine's SLO capacity: the largest offered load whose closed-loop p99
still meets the latency target, interpolated on the grid.

The geometry is the scaled-down test configuration (synthetic
per-token costs, 2-channel DRAM) so the example finishes in tens of
seconds; see `repro cosim sweep --engine batching` for the CLI route.

Run:  python examples/continuous_batching.py
"""

from repro.core.strategies import Scheme
from repro.cosim import (
    CosimConfig,
    ExpertReplayPlanner,
    run_load_sweep,
    small_cosim_dram,
)
from repro.serving.simulator import CostModel

RATES = [1e5, 5e5, 1e6, 2e6, 4e6]


def make_planner() -> ExpertReplayPlanner:
    return ExpertReplayPlanner(
        n_experts=16,
        top_k=2,
        n_moe_layers=2,
        dram_config=small_cosim_dram(),
        bytes_per_token=8192,
        max_blocks_per_request=1024,
        expert_bytes=1 << 18,
        seed=1,
    )


def sweep_engine(cost: CostModel, engine: str):
    sweep, _ = run_load_sweep(
        cost,
        Scheme.MD_LB,
        make_planner(),
        RATES,
        n_requests=60,
        seed=1,
        # Decode-heavy mix: most tokens are bandwidth-bound decode
        # steps, the traffic continuous batching amortizes.
        mean_prompt_tokens=8,
        mean_decode_tokens=24,
        cosim_config=CosimConfig(max_iterations=16, engine=engine),
    )
    return sweep


def main() -> None:
    cost = CostModel(encode_seconds_per_token=2e-9, decode_seconds_per_token=2e-8)
    print("fifo vs continuous batching through the closed cosim loop")
    print("decode-heavy mix (mean 8 prompt / 24 decode tokens), md+lb, "
          "2-channel DRAM\n")

    fifo = sweep_engine(cost, "fifo")
    batching = sweep_engine(cost, "batching")

    header = (f"{'req/s':>10s}  {'fifo p99':>12s}  {'batch p99':>12s}  "
              f"{'ratio':>6s}  {'batch ttft p99':>14s}  {'batch tpot p99':>14s}")
    print(header)
    for f, b in zip(fifo.points, batching.points):
        ratio = b.closed_p99 / f.closed_p99
        print(f"{f.rate:10.3g}  {f.closed_p99:12.3e}  {b.closed_p99:12.3e}  "
              f"{ratio:6.2f}  {b.closed_ttft_p99:14.3e}  {b.closed_tpot_p99:14.3e}")

    print()
    for sweep in (fifo, batching):
        cap = sweep.slo_capacity_rps
        answer = f"{cap:.3g} req/s" if cap > 0 else "none on this grid"
        print(f"SLO capacity ({sweep.engine:8s}): {answer} at "
              f"p99 <= {sweep.slo_p99_seconds*1e3:.3g} ms (auto threshold)")

    last_f, last_b = fifo.points[-1], batching.points[-1]
    print(
        f"\nReading: at the saturating point ({last_f.rate:.3g} req/s) the "
        f"batched decode stream cuts the closed-loop p99 from "
        f"{last_f.closed_p99:.3e}s to {last_b.closed_p99:.3e}s.  At mid "
        f"load the ratio can exceed 1 -- stepped admission quantizes "
        f"start times before the bandwidth win kicks in.  The capacity "
        f"answer, not any single point, is the deployment-facing number."
    )


if __name__ == "__main__":
    main()
