"""Regenerate every paper table and figure in one run.

Thin driver over the same code the benchmark harness uses; writes
plain-text tables to stdout.  For the pytest-benchmark version with
shape assertions, run  ``pytest benchmarks/ --benchmark-only -s``.

Run:  python examples/paper_figures.py [--fast]
"""

import sys

from repro.analysis.area_power import AreaPowerModel
from repro.analysis.characterize import (
    compute_vs_transfer,
    dmodel_scaling,
    param_scaling,
)
from repro.analysis.report import format_table
from repro.core.runtime import InferenceConfig, MoNDERuntime
from repro.core.strategies import Scheme
from repro.moe import nllb_moe_128, switch_large_128
from repro.workloads import flores_like, xsum_like


def header(title: str) -> None:
    print()
    print("=" * 68)
    print(title)
    print("=" * 68)


def fig2() -> None:
    header("Fig. 2(a): parameter scaling with E")
    rows = []
    for base in (switch_large_128(), nllb_moe_128()):
        for e in (0, 64, 128, 256, 512):
            r = param_scaling(base, [e])[0]
            rows.append([r.model, round(r.non_expert_gb, 1), round(r.expert_gb, 1)])
    print(format_table(["model", "non-expert GB", "expert GB"], rows))

    header("Fig. 2(b): expert vs activation size across d_model")
    rows = [
        [r.d_model, round(r.expert_gb, 3), round(r.activation_gb, 3), round(r.ratio, 2)]
        for r in dmodel_scaling([768, 1024, 1536, 2048, 2560, 4096])
    ]
    print(format_table(["d_model", "expert GB", "act GB", "ratio"], rows))

    header("Fig. 2(c): expert compute vs transfer (A100 + PCIe Gen4)")
    rows = []
    for d in (1024, 2048):
        for r in compute_vs_transfer([1, 16, 256, 2048], d_model=d):
            rows.append([d, r.tokens, round(r.compute_ms, 3), round(r.transfer_ms, 3)])
    print(format_table(["d_model", "tokens", "compute ms", "transfer ms"], rows))


def fig6(decode_steps: int) -> None:
    header("Fig. 6: normalized end-to-end throughput")
    rows = []
    for sc_fn, tag in ((xsum_like, "SL-128"), (flores_like, "N-MoE")):
        for batch in (1, 4):
            sc = sc_fn(batch=batch)
            rt = MoNDERuntime(
                InferenceConfig(model=sc.model, batch=batch,
                                decode_steps=decode_steps, profile=sc.profile)
            )
            for part in ("encoder", "decoder"):
                rows.append(
                    [tag, batch, part]
                    + [
                        round(rt.normalized_throughput(s, part), 3)
                        for s in (Scheme.GPU_PM, Scheme.MD_AM, Scheme.MD_LB)
                    ]
                )
    print(format_table(
        ["model", "B", "part", "GPU+PM", "MD+AM", "MD+LB"], rows
    ))


def table3() -> None:
    header("Table 3: MoNDE NDP area and power")
    model = AreaPowerModel()
    rows = [[c.name, round(c.area_mm2, 3), round(c.power_w, 3)]
            for c in model.components()]
    rows.append(["TOTAL", round(model.total_area_mm2, 3),
                 round(model.total_power_w, 3)])
    print(format_table(["component", "area mm2", "power W"], rows))
    print(f"\npower overhead vs 114.2 W base: "
          f"{model.power_overhead_fraction()*100:.1f}%")


if __name__ == "__main__":
    fast = "--fast" in sys.argv
    fig2()
    fig6(decode_steps=4 if fast else 16)
    table3()
    print("\n(remaining figures: pytest benchmarks/ --benchmark-only -s)")
