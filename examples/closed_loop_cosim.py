"""Closed-loop serving<->DRAM co-simulation: the memory-level hockey stick.

Runs the `repro.cosim` fixed-point loop over a three-point offered-load
grid and prints converged closed-loop tail latency next to the
open-loop (no-feedback) prediction.  At low load the two agree -- the
serving requests' DRAM bursts never overlap, so there is no queueing
to feed back.  Near memory saturation the open-loop model keeps
promising sub-microsecond tails while the closed loop shows the
serving latency the memory system can actually deliver.

The geometry is the scaled-down test configuration (synthetic
per-token costs, 2-channel DRAM) so the example finishes in seconds;
swap in `CostModel.from_runtime` and the paper's LPDDR5X-8533 config
for full-scale studies (see `repro cosim --help`).

Run:  python examples/closed_loop_cosim.py
"""

from repro.core.strategies import Scheme
from repro.cosim import (
    CosimConfig,
    ExpertReplayPlanner,
    format_sweep,
    run_load_sweep,
    small_cosim_dram,
)
from repro.serving.simulator import CostModel


def main() -> None:
    cost = CostModel(encode_seconds_per_token=2e-9, decode_seconds_per_token=2e-8)
    planner = ExpertReplayPlanner(
        n_experts=16,
        top_k=2,
        n_moe_layers=2,
        dram_config=small_cosim_dram(),
        bytes_per_token=8192,
        max_blocks_per_request=512,
        expert_bytes=1 << 18,
        seed=1,
    )
    rates = [2e4, 1e6, 4e6]
    print("closed-loop co-simulation over a 3-point offered-load grid")
    print(f"scheme md+lb, {planner.config.organization.n_channels}-channel DRAM, "
          f"expert-faithful replay of {planner.n_experts} experts\n")
    sweep, runs = run_load_sweep(
        cost,
        Scheme.MD_LB,
        planner,
        rates,
        n_requests=40,
        seed=1,
        mean_prompt_tokens=20,
        mean_decode_tokens=5,
        cosim_config=CosimConfig(max_iterations=16),
    )
    print(format_sweep(sweep))

    low, _, high = sweep.points
    print(
        f"\nlow load ({low.rate:g} req/s): closed-loop p99 is "
        f"{low.closed_p99 / low.open_p99:.2f}x the open-loop p99 -- no "
        "memory contention, the feedback vanishes."
    )
    print(
        f"saturating load ({high.rate:g} req/s): closed-loop p99 is "
        f"{high.closed_p99 / high.open_p99:.1f}x the open-loop prediction "
        f"(converged in {high.n_iterations} iterations; per-token memory "
        f"surcharge {high.extra_seconds_per_token * 1e9:.1f} ns)."
    )
    print(
        "\nReading: open-loop replay under-reports tail latency once DRAM "
        "queueing feeds back into service times -- the closed loop is where "
        "the hockey stick actually bends."
    )


if __name__ == "__main__":
    main()
