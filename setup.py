"""Thin setup.py shim.

The offline environment lacks the ``wheel`` package, which modern
``pip install -e .`` (PEP 660) requires.  ``python setup.py develop``
performs the equivalent editable install without it.  All project
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
