"""Expert-faithful DRAM replay of a serving run.

The synthetic replay (:func:`repro.serving.simulator.dram_replay_trace_arrays`)
streams each serving request's burst from a *seeded random* weight
region.  This module replaces that pick with the weight regions of the
experts the request actually activated: every (MoE layer, expert) owns
a contiguous region of DRAM, a request's routing decisions are drawn
per layer from the :class:`~repro.workloads.traces.RoutingProfile`'s
calibrated popularity (or taken from real
:class:`~repro.moe.gating.Router` forward passes), and the request's
blocks are split across those regions proportionally to routed tokens.
Each activation streams an expert's weights from the start of its
region -- the actual MoE weight-fetch shape, with hot experts'
regions re-read request after request (row-buffer friendly) and cold
experts scattered across the address space.

Addresses for one serving request depend only on its ``request_id``
and token counts (not on which other requests completed or in what
order), so the co-simulation driver can replay the same request set
under different arrival timings -- including the serialized
calibration pass that isolates per-request memory contention -- and
get identical per-request address streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.dram.config import DRAMConfig, LPDDR5X_8533
from repro.moe.gating import Router
from repro.serving.simulator import ServingResult
from repro.workloads.distributions import sample_expert_counts
from repro.workloads.traces import RoutingProfile


#: ``phases`` column values: prefill bursts vs per-step decode bursts.
PHASE_PREFILL = 0
PHASE_DECODE = 1


@dataclass(frozen=True)
class ReplayTrace:
    """One serving run rendered as DRAM trace columns.

    ``request_ids[i]`` is the serving ``request_id`` whose burst
    emitted DRAM request ``i``; ``tokens_by_request`` maps each
    replayed serving request to its prompt+decode token count (used to
    convert per-request delay into per-token cost inflation).

    Phase-aware replays (batching-engine serving runs) additionally
    carry ``burst_ids`` -- a unique id per contiguous burst, since one
    request then emits several bursts (one prefill, one per decode
    step) -- and ``phases`` (:data:`PHASE_PREFILL` /
    :data:`PHASE_DECODE` per DRAM request), which the co-simulation
    driver uses to attribute measured contention to prefill vs decode
    and apply distinct surcharges.  Both are ``None`` for legacy
    one-burst-per-request replays.
    """

    addrs: np.ndarray
    arrive_cycles: np.ndarray
    flags: np.ndarray
    request_ids: np.ndarray
    tokens_by_request: dict[int, int]
    burst_ids: Optional[np.ndarray] = None
    phases: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return self.addrs.shape[0]


class ExpertReplayPlanner:
    """Maps serving requests to the DRAM regions of their experts.

    One planner is built per (model geometry, DRAM config) and reused
    across co-simulation iterations; it is stateless across
    :meth:`replay` calls.  Routing decisions come from the profile's
    per-layer popularity by default, or from real gating networks when
    ``routers`` is given (one :class:`~repro.moe.gating.Router` per
    MoE layer; each request then routes seeded token embeddings
    through the actual top-k gate and its burst targets exactly the
    experts with routed tokens).
    """

    #: A request's addresses depend only on (seed, request_id, tokens),
    #: so isolation baselines computed once stay valid across
    #: co-simulation iterations.
    stable_addresses = True

    def __init__(
        self,
        n_experts: int,
        top_k: int,
        n_moe_layers: int,
        profile: Optional[RoutingProfile] = None,
        dram_config: Optional[DRAMConfig] = None,
        bytes_per_token: int = 2048,
        max_blocks_per_request: int = 4096,
        expert_bytes: int = 1 << 22,
        routers: Optional[Sequence[Router]] = None,
        max_routed_tokens: int = 64,
        seed: int = 0,
    ) -> None:
        if n_experts < 1 or n_moe_layers < 1:
            raise ValueError("n_experts and n_moe_layers must be >= 1")
        if not 1 <= top_k <= n_experts:
            raise ValueError(f"top_k must be in [1, {n_experts}], got {top_k}")
        if bytes_per_token < 1 or max_blocks_per_request < 1 or expert_bytes < 1:
            raise ValueError(
                "bytes_per_token, max_blocks_per_request, expert_bytes must be >= 1"
            )
        if max_routed_tokens < 1:
            raise ValueError("max_routed_tokens must be >= 1")
        if routers is not None and len(routers) != n_moe_layers:
            raise ValueError(
                f"{len(routers)} routers for {n_moe_layers} MoE layers"
            )
        self.n_experts = n_experts
        self.top_k = top_k
        self.n_moe_layers = n_moe_layers
        self.profile = profile or RoutingProfile()
        self.config = dram_config if dram_config is not None else LPDDR5X_8533
        self.bytes_per_token = bytes_per_token
        self.max_blocks_per_request = max_blocks_per_request
        self.routers = list(routers) if routers is not None else None
        self.max_routed_tokens = max_routed_tokens
        self.seed = seed

        org = self.config.organization
        self._step = org.access_bytes
        self._total_blocks = org.total_capacity_bytes // self._step
        self._region_blocks = max(1, expert_bytes // self._step)
        # Per-layer expert popularity, fixed for the planner's lifetime
        # (temporal persistence: the same hot experts stay hot across
        # requests, matching the routing-trace generator's model).
        self._popularity = [
            self.profile.popularity(
                n_experts,
                rank,
                n_moe_layers,
                decoder=False,
                rng=np.random.default_rng((seed, 0xE, rank)),
            )
            for rank in range(n_moe_layers)
        ]

    # -- region geometry (consumed by repro.cluster sharding) -------------

    @property
    def n_regions(self) -> int:
        """Distinct physical expert-weight regions in the address
        space (sharding granularity for expert-parallel placement)."""
        return max(1, self._total_blocks // self._region_blocks)

    def region_of_addrs(self, addrs: np.ndarray) -> np.ndarray:
        """Physical expert-region index of each DRAM address -- the
        unit a :class:`repro.cluster.sharding.ShardingPolicy` places
        on a device.  Inverse of the region layout in
        :meth:`request_blocks` wherever regions do not wrap."""
        return (addrs // self._step) // self._region_blocks

    def hot_region_ids(self, hot_fraction: float) -> frozenset[int]:
        """Physical regions of the per-layer hottest experts: the top
        ``ceil(hot_fraction * n_experts)`` experts by the planner's
        calibrated popularity, per MoE layer -- the MoNDE-style
        hot/cold split where hot experts stay replicated and only the
        cold tail is sharded."""
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        n_hot = max(0, min(self.n_experts, int(np.ceil(hot_fraction * self.n_experts))))
        hot: set[int] = set()
        for layer, pop in enumerate(self._popularity):
            for expert in np.argsort(-pop, kind="stable")[:n_hot].tolist():
                region_id = layer * self.n_experts + int(expert)
                base = (region_id * self._region_blocks) % self._total_blocks
                hot.add(int(base // self._region_blocks))
        return frozenset(hot)

    # -- per-request routing + addressing ---------------------------------

    def _popularity_for(self, request_id: int) -> list[np.ndarray]:
        """Per-layer popularity in effect for one request.  The base
        planner's popularity is fixed for its lifetime; subclasses
        (e.g. :class:`repro.traffic.drift.DriftingReplayPlanner`)
        override this to drift the distribution across the request
        stream while keeping addresses a pure function of
        ``(seed, request_id, tokens)``."""
        return self._popularity

    def _layer_counts(
        self,
        rng: np.random.Generator,
        tokens: int,
        popularity: Optional[list] = None,
    ) -> list[np.ndarray]:
        """Routed-token counts per expert for each MoE layer of one
        request's pass."""
        routed = min(tokens, self.max_routed_tokens)
        if self.routers is not None:
            counts = []
            for router in self.routers:
                embeds = rng.standard_normal((routed, router.d_model))
                counts.append(router.route(embeds).tokens_per_expert)
            return counts
        events = routed * self.top_k
        return [
            sample_expert_counts(self.n_experts, events, 0.0, rng, popularity=pop)
            for pop in (popularity if popularity is not None else self._popularity)
        ]

    def request_blocks(self, request_id: int, tokens: int) -> np.ndarray:
        """Block indices fetched by one serving request, in layer
        order -- deterministic in (seed, request_id, tokens) alone."""
        if tokens < 1:
            raise ValueError("tokens must be >= 1")
        n_blocks = min(
            self.max_blocks_per_request,
            -(-(tokens * self.bytes_per_token) // self._step),
        )
        rng = np.random.default_rng((self.seed, request_id))
        layer_counts = self._layer_counts(
            rng, tokens, self._popularity_for(request_id)
        )
        total_events = sum(int(c.sum()) for c in layer_counts)
        if total_events == 0:
            # Degenerate routing (no events): stream the first expert.
            layer_counts[0][0] = 1
            total_events = 1

        # Allocate the request's blocks across its activated
        # (layer, expert) regions proportionally to routed tokens;
        # largest-remainder rounding keeps the total exact.
        pairs = []
        for layer, counts in enumerate(layer_counts):
            for expert in np.flatnonzero(counts):
                pairs.append((layer, int(expert), int(counts[expert])))
        shares = np.array([c for _, _, c in pairs], dtype=np.float64)
        raw = shares * (n_blocks / total_events)
        alloc = np.floor(raw).astype(np.int64)
        shortfall = n_blocks - int(alloc.sum())
        if shortfall > 0:
            order = np.argsort(-(raw - alloc), kind="stable")
            alloc[order[:shortfall]] += 1

        chunks = []
        for (layer, expert, _), b in zip(pairs, alloc.tolist()):
            if b == 0:
                continue
            region_id = layer * self.n_experts + expert
            base = (region_id * self._region_blocks) % self._total_blocks
            # Each activation streams the expert's weights from the
            # start of its region, wrapping within the region.
            offs = np.arange(b, dtype=np.int64) % self._region_blocks
            chunks.append((base + offs) % self._total_blocks)
        return np.concatenate(chunks)

    # -- whole-run replay --------------------------------------------------

    def replay(self, result: ServingResult) -> ReplayTrace:
        """Render a serving run as DRAM columns.

        FIFO results replay as one burst per request at its
        service-start cycle (the seed behavior).  Batching-engine
        results replay phase-aware: a prefill burst at the request's
        admission step, then one decode burst per engine step --
        each decode step's weight traffic divided by that step's
        decode batch size, because a batched step streams the expert
        weights once for the whole batch (the memory-traffic
        amortization that lets continuous batching recover part of
        the FIFO saturation hockey stick).
        """
        if getattr(result, "engine", "fifo") == "batching":
            return self._replay_phases(result)
        clock_hz = self.config.timing.clock_hz
        addr_chunks: list[np.ndarray] = []
        arrive_chunks: list[np.ndarray] = []
        id_chunks: list[np.ndarray] = []
        tokens_by_request: dict[int, int] = {}
        for completed in sorted(result.completed, key=lambda c: c.request.request_id):
            request = completed.request
            tokens = request.prompt_tokens + request.decode_tokens
            blocks = self.request_blocks(request.request_id, tokens)
            start_cycle = int(round(completed.start * clock_hz))
            addr_chunks.append(blocks * self._step)
            arrive_chunks.append(np.full(len(blocks), start_cycle, dtype=np.int64))
            id_chunks.append(np.full(len(blocks), request.request_id, dtype=np.int64))
            tokens_by_request[request.request_id] = tokens
        if addr_chunks:
            addrs = np.concatenate(addr_chunks)
            arrive = np.concatenate(arrive_chunks)
            request_ids = np.concatenate(id_chunks)
        else:
            addrs = np.zeros(0, dtype=np.int64)
            arrive = np.zeros(0, dtype=np.int64)
            request_ids = np.zeros(0, dtype=np.int64)
        return ReplayTrace(
            addrs=addrs,
            arrive_cycles=arrive,
            flags=np.zeros(len(addrs), dtype=np.uint8),
            request_ids=request_ids,
            tokens_by_request=tokens_by_request,
        )

    def _replay_phases(self, result: ServingResult) -> ReplayTrace:
        """Per-phase bursts for a batching-engine serving run.

        A request's *union* of blocks is exactly
        :meth:`request_blocks` -- deterministic in (seed, request_id,
        tokens) as before.  The prompt-token share of that stream
        forms the prefill burst where the request's prefill compute
        actually runs inside its admission step
        (``prefill_start``, falling back to ``start``); the remainder
        is split evenly across the request's decode steps, and each
        step's share is truncated to ``ceil(share / batch)`` blocks at
        the step's decode-stream start (weights fetched once per step,
        amortized over the step's decode batch).  Emitting at the
        in-step offsets rather than the step boundary keeps one step's
        traffic spread the way the cost model spends its time, instead
        of spiking everything at the step start.
        """
        clock_hz = self.config.timing.clock_hz
        addr_chunks: list[np.ndarray] = []
        arrive_chunks: list[np.ndarray] = []
        id_chunks: list[np.ndarray] = []
        burst_chunks: list[np.ndarray] = []
        phase_chunks: list[np.ndarray] = []
        tokens_by_request: dict[int, int] = {}
        burst_id = 0

        def emit(blocks: np.ndarray, cycle: int, rid: int, phase: int) -> None:
            nonlocal burst_id
            if len(blocks) == 0:
                return
            addr_chunks.append(blocks * self._step)
            arrive_chunks.append(np.full(len(blocks), cycle, dtype=np.int64))
            id_chunks.append(np.full(len(blocks), rid, dtype=np.int64))
            burst_chunks.append(np.full(len(blocks), burst_id, dtype=np.int64))
            phase_chunks.append(np.full(len(blocks), phase, dtype=np.uint8))
            burst_id += 1

        for completed in sorted(result.completed, key=lambda c: c.request.request_id):
            request = completed.request
            tokens = request.prompt_tokens + request.decode_tokens
            blocks = self.request_blocks(request.request_id, tokens)
            tokens_by_request[request.request_id] = tokens
            n_pre = min(
                len(blocks),
                -(-(request.prompt_tokens * self.bytes_per_token) // self._step),
            )
            prefill_at = (
                completed.start
                if completed.prefill_start is None
                else completed.prefill_start
            )
            emit(
                blocks[:n_pre],
                int(round(prefill_at * clock_hz)),
                request.request_id,
                PHASE_PREFILL,
            )
            rest = blocks[n_pre:]
            steps = completed.decode_step_starts
            batches = completed.decode_step_batches
            if len(rest) == 0 or not steps:
                continue
            base, remainder = divmod(len(rest), len(steps))
            offset = 0
            for s, (start, batch) in enumerate(zip(steps, batches)):
                share = base + (1 if s < remainder else 0)
                if share == 0:
                    continue
                chunk = rest[offset : offset + share]
                offset += share
                emit(
                    chunk[: -(-share // max(1, batch))],
                    int(round(start * clock_hz)),
                    request.request_id,
                    PHASE_DECODE,
                )
        if addr_chunks:
            addrs = np.concatenate(addr_chunks)
            arrive = np.concatenate(arrive_chunks)
            request_ids = np.concatenate(id_chunks)
            burst_ids = np.concatenate(burst_chunks)
            phases = np.concatenate(phase_chunks)
        else:
            addrs = np.zeros(0, dtype=np.int64)
            arrive = np.zeros(0, dtype=np.int64)
            request_ids = np.zeros(0, dtype=np.int64)
            burst_ids = np.zeros(0, dtype=np.int64)
            phases = np.zeros(0, dtype=np.uint8)
        return ReplayTrace(
            addrs=addrs,
            arrive_cycles=arrive,
            flags=np.zeros(len(addrs), dtype=np.uint8),
            request_ids=request_ids,
            tokens_by_request=tokens_by_request,
            burst_ids=burst_ids,
            phases=phases,
        )

    @classmethod
    def for_model(
        cls,
        model,
        profile: Optional[RoutingProfile] = None,
        dram_config: Optional[DRAMConfig] = None,
        **kwargs,
    ) -> "ExpertReplayPlanner":
        """Planner sized from a :class:`~repro.moe.config.MoEModelConfig`
        (expert count, top-k, encoder MoE depth, per-expert bytes)."""
        return cls(
            n_experts=model.n_experts,
            top_k=model.top_k,
            n_moe_layers=max(1, model.n_moe_encoder_layers),
            profile=profile,
            dram_config=dram_config,
            expert_bytes=max(1, int(model.expert_bytes)),
            **kwargs,
        )


class SyntheticReplayPlanner:
    """Adapter giving the seeded synthetic-region replay
    (:func:`~repro.serving.simulator.dram_replay_trace_arrays`) the
    planner interface, for cosim runs without an expert model.

    Note the synthetic form resumes regions across requests in
    service-start order, so unlike :class:`ExpertReplayPlanner` its
    addresses shift when arrival timing reorders bursts; the driver's
    contention calibration therefore re-derives isolation baselines
    from the iteration's own trace.
    """

    stable_addresses = False

    def __init__(
        self,
        dram_config: Optional[DRAMConfig] = None,
        bytes_per_token: int = 2048,
        max_blocks_per_request: int = 4096,
        region_bytes: int = 1 << 22,
        n_regions: int = 128,
        seed: int = 0,
    ) -> None:
        self.config = dram_config if dram_config is not None else LPDDR5X_8533
        self.bytes_per_token = bytes_per_token
        self.max_blocks_per_request = max_blocks_per_request
        self.region_bytes = region_bytes
        self.n_regions = n_regions
        self.seed = seed
        org = self.config.organization
        # Mirror of dram_replay_trace_arrays' region sizing, so
        # region_of_addrs inverts the addresses that function emits.
        self._step = org.access_bytes
        self._region_blocks = max(
            1,
            min(region_bytes, org.total_capacity_bytes // n_regions) // self._step,
        )

    def region_of_addrs(self, addrs: np.ndarray) -> np.ndarray:
        """Synthetic-region index of each DRAM address (see
        :meth:`ExpertReplayPlanner.region_of_addrs`)."""
        return (addrs // self._step) // self._region_blocks

    def hot_region_ids(self, hot_fraction: float) -> frozenset[int]:
        """Synthetic regions have no popularity model; the first
        ``ceil(hot_fraction * n_regions)`` regions stand in as the
        hot set."""
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        n_hot = max(0, min(self.n_regions, int(np.ceil(hot_fraction * self.n_regions))))
        return frozenset(range(n_hot))

    def replay(self, result: ServingResult) -> ReplayTrace:
        from repro.serving.simulator import dram_replay_trace_arrays

        addrs, arrive, flags, request_ids = dram_replay_trace_arrays(
            result,
            dram_config=self.config,
            bytes_per_token=self.bytes_per_token,
            max_blocks_per_request=self.max_blocks_per_request,
            region_bytes=self.region_bytes,
            n_regions=self.n_regions,
            seed=self.seed,
            return_request_ids=True,
        )
        tokens_by_request = {
            c.request.request_id: c.request.prompt_tokens + c.request.decode_tokens
            for c in result.completed
        }
        return ReplayTrace(
            addrs=addrs,
            arrive_cycles=arrive,
            flags=flags,
            request_ids=request_ids,
            tokens_by_request=tokens_by_request,
        )
