"""Offered-load sweep over the closed serving <-> DRAM loop.

Drives :class:`~repro.cosim.driver.CosimDriver` across an
arrival-rate grid and records, per rate, the open-loop (iteration-0)
and converged closed-loop serving latency curves plus the DRAM-side
queueing measurements -- the memory-level tail-latency hockey stick.
Results serialize to a versioned JSON document (same versioning
conventions as :mod:`repro.workloads.serialization`) and render as a
table via :mod:`repro.analysis.report`.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import pathlib
from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.analysis.report import format_table
from repro.core.strategies import Scheme
from repro.serving.simulator import CostModel
from repro.serving.workload import RequestGenerator
from repro.workloads.serialization import check_format_version

from repro.cosim.driver import CosimConfig, CosimDriver, CosimResult

SWEEP_FORMAT_VERSION = 1


@dataclass(frozen=True)
class SweepPoint:
    """One offered-load point: open-loop vs converged closed-loop."""

    rate: float
    open_p50: float
    open_p99: float
    open_max: float
    closed_p50: float
    closed_p99: float
    closed_max: float
    utilization: float
    completed: int
    rejected: int
    n_iterations: int
    converged: bool
    extra_seconds_per_token: float
    dram_queue_delay_mean: float
    dram_queue_delay_p99: float
    dram_idle_cycles: int
    dram_total_cycles: int


@dataclass
class SweepResult:
    """A full rate grid, serializable and renderable."""

    scheme: str
    arrival: str
    n_requests: int
    seed: int
    points: list[SweepPoint] = field(default_factory=list)
    #: free-form provenance (cost model, planner geometry, loop knobs)
    config: dict = field(default_factory=dict)

    # -- codec -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": SWEEP_FORMAT_VERSION,
            "kind": "cosim_sweep",
            "scheme": self.scheme,
            "arrival": self.arrival,
            "n_requests": self.n_requests,
            "seed": self.seed,
            "config": self.config,
            "points": [asdict(p) for p in self.points],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepResult":
        check_format_version(data.get("version"), SWEEP_FORMAT_VERSION, "cosim sweep")
        if data.get("kind") != "cosim_sweep":
            raise ValueError(
                f"not a cosim sweep document (kind={data.get('kind')!r})"
            )
        return cls(
            scheme=data["scheme"],
            arrival=data["arrival"],
            n_requests=int(data["n_requests"]),
            seed=int(data["seed"]),
            config=dict(data.get("config", {})),
            points=[SweepPoint(**p) for p in data["points"]],
        )

    def save(self, path) -> None:
        pathlib.Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path) -> "SweepResult":
        return cls.from_dict(json.loads(pathlib.Path(path).read_text()))


def format_sweep(result: SweepResult) -> str:
    """The hockey-stick table: open vs closed tails across the grid."""
    rows = []
    for p in result.points:
        rows.append(
            [
                p.rate,
                p.open_p50,
                p.open_p99,
                p.closed_p50,
                p.closed_p99,
                round(p.closed_p99 / p.open_p99, 3) if p.open_p99 > 0 else 1.0,
                p.n_iterations,
                "yes" if p.converged else "NO",
                round(p.dram_queue_delay_p99, 1),
                p.dram_idle_cycles,
            ]
        )
    header = [
        "req/s",
        "open p50",
        "open p99",
        "closed p50",
        "closed p99",
        "p99 ratio",
        "iters",
        "conv",
        "dram qd p99",
        "dram idle",
    ]
    return format_table(header, rows)


def _run_rate_point(
    cost_model: CostModel,
    scheme: Scheme,
    planner,
    cfg: CosimConfig,
    rate: float,
    n_requests: int,
    seed: int,
    arrival: str,
    mean_prompt_tokens: int,
    mean_decode_tokens: int,
) -> CosimResult:
    """Run the closed loop at one offered-load point.

    Module-level and built only from picklable pieces, so
    :func:`run_load_sweep` can fan independent grid points out over a
    process pool.  Each point builds its own generator and driver from
    the same seed, so results are identical whether points run
    serially, in parallel, or in any order.
    """
    generator = RequestGenerator(
        rate,
        mean_prompt_tokens=mean_prompt_tokens,
        mean_decode_tokens=mean_decode_tokens,
        seed=seed,
        arrival=arrival,
    )
    driver = CosimDriver(cost_model, scheme, planner, config=cfg)
    try:
        return driver.run(generator.generate(n_requests))
    finally:
        driver.close()


def _point_from_run(rate: float, run: CosimResult) -> SweepPoint:
    """Collapse one closed-loop run into its sweep-grid point."""
    open_loop, closed = run.open_loop, run.closed_loop
    last = run.iterations[-1] if run.iterations else None
    return SweepPoint(
        rate=rate,
        open_p50=open_loop.latency_percentile(50),
        open_p99=open_loop.latency_percentile(99),
        open_max=open_loop.latency_percentile(100),
        closed_p50=closed.latency_percentile(50),
        closed_p99=closed.latency_percentile(99),
        closed_max=closed.latency_percentile(100),
        utilization=closed.utilization,
        completed=closed.n_completed,
        rejected=closed.rejected,
        n_iterations=run.n_iterations,
        converged=run.converged,
        extra_seconds_per_token=run.extra_seconds_per_token,
        dram_queue_delay_mean=last.dram_queue_delay_mean if last else 0.0,
        dram_queue_delay_p99=last.dram_queue_delay_p99 if last else 0.0,
        dram_idle_cycles=last.dram_idle_cycles if last else 0,
        dram_total_cycles=last.dram_total_cycles if last else 0,
    )


def run_load_sweep(
    cost_model: CostModel,
    scheme: Scheme,
    planner,
    rates: list[float],
    n_requests: int = 100,
    seed: int = 0,
    arrival: str = "poisson",
    mean_prompt_tokens: int = 512,
    mean_decode_tokens: int = 32,
    cosim_config: Optional[CosimConfig] = None,
    workers: int = 0,
) -> tuple[SweepResult, list[CosimResult]]:
    """Run the closed loop at every rate in the grid.

    Returns the serializable :class:`SweepResult` plus the per-rate
    :class:`CosimResult` objects (which keep the full iteration
    history and the final DRAM trace for ``.dramtrace`` export).

    ``workers`` >= 2 runs the (independent) grid points over a process
    pool instead of serially -- each worker gets its own pickled copy
    of the cost model / planner / config, and the per-point seeding is
    identical either way, so the sweep output is bit-identical to the
    serial run.  Pool workers are daemonic and cannot spawn the
    nested DRAM drain pool, so ``dram_workers`` is forced to 0 inside
    parallel grid points (use one or the other level of parallelism).
    """
    if not rates:
        raise ValueError("rates must be non-empty")
    if sorted(rates) != list(rates):
        raise ValueError("rates must be sorted ascending")
    if workers < 0:
        raise ValueError("workers must be non-negative")
    cfg = cosim_config or CosimConfig()
    sweep = SweepResult(
        scheme=scheme.value,
        arrival=arrival,
        n_requests=n_requests,
        seed=seed,
        config={
            "damping": cfg.damping,
            "max_iterations": cfg.max_iterations,
            "p99_tolerance": cfg.p99_tolerance,
            "bytes_per_token": planner.bytes_per_token,
            "max_blocks_per_request": planner.max_blocks_per_request,
            "dram_channels": planner.config.organization.n_channels,
            "encode_seconds_per_token": cost_model.encode_seconds_per_token,
            "decode_seconds_per_token": cost_model.decode_seconds_per_token,
            "mean_prompt_tokens": mean_prompt_tokens,
            "mean_decode_tokens": mean_decode_tokens,
        },
    )
    use_pool = workers >= 2 and len(rates) >= 2
    point_args = [
        (
            cost_model,
            scheme,
            planner,
            dataclasses.replace(cfg, dram_workers=0) if use_pool else cfg,
            rate,
            n_requests,
            seed,
            arrival,
            mean_prompt_tokens,
            mean_decode_tokens,
        )
        for rate in rates
    ]
    if use_pool:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        with ctx.Pool(min(workers, len(rates))) as pool:
            runs = pool.starmap(_run_rate_point, point_args)
    else:
        runs = [_run_rate_point(*args) for args in point_args]
    sweep.points.extend(_point_from_run(rate, run) for rate, run in zip(rates, runs))
    return sweep, runs
