"""Offered-load sweep over the closed serving <-> DRAM loop.

Drives :class:`~repro.cosim.driver.CosimDriver` across an
arrival-rate grid and records, per rate, the open-loop (iteration-0)
and converged closed-loop serving latency curves plus the DRAM-side
queueing measurements -- the memory-level tail-latency hockey stick.
Results serialize to a versioned JSON document (same versioning
conventions as :mod:`repro.workloads.serialization`) and render as a
table via :mod:`repro.analysis.report`.

Fault tolerance: with a ``checkpoint_path``, every completed rate
point is durably appended to a ``*.sweep.ckpt`` sidecar (JSONL, one
fsynced line per point) the moment it finishes, SIGINT/SIGTERM raise
:class:`SweepInterrupted` *between* points (never mid-checkpoint), and
``resume=True`` loads the checkpoint, skips its completed points, and
produces output bit-identical to an uninterrupted sweep -- each point
is seeded independently, so partial progress composes exactly.  A
point that *fails* (its cosim run raises) is isolated: it is recorded
as a ``failed`` point with the error string and the sweep continues.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import multiprocessing
import pathlib
import signal
import threading
from dataclasses import asdict, dataclass, field
from typing import Callable, Optional

from repro.analysis.report import format_table
from repro.core.strategies import Scheme
from repro.serving.simulator import CostModel
from repro.serving.workload import RequestGenerator
from repro.util.atomic_io import atomic_write_json, durable_append
from repro.workloads.serialization import check_format_version

from repro.cosim.driver import CosimConfig, CosimDriver, CosimResult

SWEEP_FORMAT_VERSION = 1
SWEEP_CKPT_VERSION = 1
SWEEP_CKPT_SUFFIX = ".sweep.ckpt"

logger = logging.getLogger(__name__)


class SweepInterrupted(RuntimeError):
    """A load sweep stopped early -- a SIGINT/SIGTERM landed between
    rate points, or an injected interruption fired.  Every completed
    point was already durably checkpointed when this is raised, so
    rerunning with ``resume=True`` continues where the sweep left
    off."""


@dataclass(frozen=True)
class SweepPoint:
    """One offered-load point: open-loop vs converged closed-loop."""

    rate: float
    open_p50: float
    open_p99: float
    open_max: float
    closed_p50: float
    closed_p99: float
    closed_max: float
    utilization: float
    completed: int
    rejected: int
    n_iterations: int
    converged: bool
    extra_seconds_per_token: float
    dram_queue_delay_mean: float
    dram_queue_delay_p99: float
    dram_idle_cycles: int
    dram_total_cycles: int
    # Additive fields with defaults (same format version: old readers
    # never see them missing, old documents load with the defaults).
    #: |measured - applied| surcharge of the reported iterate; sizes
    #: how far from a true fixed point a non-converged point stopped
    residual_seconds_per_token: float = 0.0
    #: True when this point's cosim run raised instead of completing
    #: (all metric fields are zero); the sweep carried on without it
    failed: bool = False
    #: the raising exception, as ``TypeName: message`` (empty if ok)
    error: str = ""
    # Per-phase closed-loop latency columns (batching engine; the
    # fifo path fills TTFT/queue-delay from its coalesced steps and
    # leaves the surcharge split at zero).
    #: closed-loop time-to-first-token p99 (seconds)
    closed_ttft_p99: float = 0.0
    #: closed-loop admission-delay p99 (seconds)
    closed_queue_delay_p99: float = 0.0
    #: closed-loop per-output-token decode latency p99 (seconds)
    closed_tpot_p99: float = 0.0
    #: distinct per-phase surcharges of the reported iterate
    extra_prefill_seconds_per_token: float = 0.0
    extra_decode_seconds_per_token: float = 0.0
    # Traffic-scenario columns (populated only for sweeps driven by an
    # active repro.traffic configuration; empty/zero otherwise).
    #: per-tenant closed-loop latency p99 (seconds), keyed by tenant
    tenant_closed_p99: dict = field(default_factory=dict)
    #: per-tenant completed-request counts, keyed by tenant
    tenant_completed: dict = field(default_factory=dict)
    #: closed-loop latency p99 of requests arriving inside the
    #: flash-crowd window (flash_crowd shapes only)
    closed_flash_p99: float = 0.0
    #: closed-loop latency p99 of requests arriving outside the window
    closed_steady_p99: float = 0.0


@dataclass
class SweepResult:
    """A full rate grid, serializable and renderable."""

    scheme: str
    arrival: str
    n_requests: int
    seed: int
    points: list[SweepPoint] = field(default_factory=list)
    #: free-form provenance (cost model, planner geometry, loop knobs)
    config: dict = field(default_factory=dict)
    # Additive fields with defaults (format version unchanged).
    #: serving model the sweep ran: "fifo" or "batching"
    engine: str = "fifo"
    #: closed-loop p99 threshold the capacity answer used (seconds;
    #: auto-derived as 5x the lowest-rate closed p99 unless given)
    slo_p99_seconds: float = 0.0
    #: max sustained offered load with closed p99 under the threshold
    #: (req/s, linearly interpolated to the crossing; 0 when even the
    #: lowest grid rate violates the SLO)
    slo_capacity_rps: float = 0.0
    #: True when the threshold was auto-derived rather than user-given
    slo_auto: bool = True
    #: per-tenant closed-loop p99 SLO thresholds (milliseconds) from
    #: the traffic scenario, keyed by tenant name (empty when the
    #: sweep ran without tenants)
    tenant_slo_p99_ms: dict = field(default_factory=dict)

    # -- codec -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": SWEEP_FORMAT_VERSION,
            "kind": "cosim_sweep",
            "scheme": self.scheme,
            "arrival": self.arrival,
            "n_requests": self.n_requests,
            "seed": self.seed,
            "engine": self.engine,
            "slo_p99_seconds": self.slo_p99_seconds,
            "slo_capacity_rps": self.slo_capacity_rps,
            "slo_auto": self.slo_auto,
            "tenant_slo_p99_ms": self.tenant_slo_p99_ms,
            "config": self.config,
            "points": [asdict(p) for p in self.points],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepResult":
        check_format_version(data.get("version"), SWEEP_FORMAT_VERSION, "cosim sweep")
        if data.get("kind") != "cosim_sweep":
            raise ValueError(
                f"not a cosim sweep document (kind={data.get('kind')!r})"
            )
        return cls(
            scheme=data["scheme"],
            arrival=data["arrival"],
            n_requests=int(data["n_requests"]),
            seed=int(data["seed"]),
            engine=str(data.get("engine", "fifo")),
            slo_p99_seconds=float(data.get("slo_p99_seconds", 0.0)),
            slo_capacity_rps=float(data.get("slo_capacity_rps", 0.0)),
            slo_auto=bool(data.get("slo_auto", True)),
            tenant_slo_p99_ms=dict(data.get("tenant_slo_p99_ms", {})),
            config=dict(data.get("config", {})),
            points=[SweepPoint(**p) for p in data["points"]],
        )

    def save(self, path) -> None:
        # Atomic + durable: a sweep that ran for hours never loses its
        # previous result to a crash mid-serialize.
        atomic_write_json(path, self.to_dict())

    @classmethod
    def load(cls, path) -> "SweepResult":
        return cls.from_dict(json.loads(pathlib.Path(path).read_text()))


def format_sweep(result: SweepResult) -> str:
    """The hockey-stick table: open vs closed tails across the grid,
    with the closed loop's per-phase tails (TTFT, queue delay)."""
    rows = []
    for p in result.points:
        rows.append(
            [
                p.rate,
                p.open_p50,
                p.open_p99,
                p.closed_p50,
                p.closed_p99,
                p.closed_ttft_p99,
                p.closed_queue_delay_p99,
                round(p.closed_p99 / p.open_p99, 3) if p.open_p99 > 0 else 1.0,
                p.n_iterations,
                "FAILED" if p.failed else ("yes" if p.converged else "NO"),
                round(p.dram_queue_delay_p99, 1),
                p.dram_idle_cycles,
            ]
        )
    header = [
        "req/s",
        "open p50",
        "open p99",
        "closed p50",
        "closed p99",
        "ttft p99",
        "qdelay p99",
        "p99 ratio",
        "iters",
        "conv",
        "dram qd p99",
        "dram idle",
    ]
    return format_table(header, rows)


def slo_capacity(points: list[SweepPoint], p99_threshold: float) -> float:
    """Max sustained offered load (req/s) whose closed-loop p99 stays
    under ``p99_threshold`` seconds.

    Walks the (ascending) rate grid to the first point violating the
    threshold and interpolates the crossing rate linearly between the
    last compliant point and the violator -- the standard way an SLO
    capacity is read off a load-sweep curve.  Returns the highest grid
    rate when every point complies, and 0.0 when even the lowest rate
    violates (failed points are treated as violations).
    """
    if p99_threshold <= 0:
        raise ValueError("p99_threshold must be positive")
    last_ok: Optional[SweepPoint] = None
    for p in points:
        if p.failed or p.closed_p99 >= p99_threshold:
            if last_ok is None:
                return 0.0
            if p.failed or p.closed_p99 <= last_ok.closed_p99:
                return last_ok.rate
            frac = (p99_threshold - last_ok.closed_p99) / (
                p.closed_p99 - last_ok.closed_p99
            )
            return last_ok.rate + frac * (p.rate - last_ok.rate)
        last_ok = p
    return last_ok.rate if last_ok is not None else 0.0


def _run_rate_point(
    cost_model: CostModel,
    scheme: Scheme,
    planner,
    cfg: CosimConfig,
    rate: float,
    n_requests: int,
    seed: int,
    arrival: str,
    mean_prompt_tokens: int,
    mean_decode_tokens: int,
    traffic=None,
) -> CosimResult:
    """Run the closed loop at one offered-load point.

    Module-level and built only from picklable pieces, so
    :func:`run_load_sweep` can fan independent grid points out over a
    process pool.  Each point builds its own generator and driver from
    the same seed, so results are identical whether points run
    serially, in parallel, or in any order.

    With ``planner=None`` the point runs serving-only (open loop, no
    DRAM feedback): the configured engine simulates the rate once and
    the result is wrapped as a trivially-converged
    :class:`CosimResult` whose open and closed loops coincide -- the
    engine-aware successor of the old standalone serving load sweep
    (the removed ``repro.serving.load_sweep``).

    An active ``traffic`` config (tenants / load shape) swaps request
    generation to :func:`repro.traffic.generate.generate_requests`;
    ``traffic=None`` keeps the legacy single-tenant stream exactly.
    """
    if traffic is not None:
        from repro.traffic.generate import generate_requests

        requests = generate_requests(
            rate,
            n_requests,
            mean_prompt_tokens=mean_prompt_tokens,
            mean_decode_tokens=mean_decode_tokens,
            seed=seed,
            arrival=arrival,
            traffic=traffic,
        )
    else:
        requests = RequestGenerator(
            rate,
            mean_prompt_tokens=mean_prompt_tokens,
            mean_decode_tokens=mean_decode_tokens,
            seed=seed,
            arrival=arrival,
        ).generate(n_requests)
    if planner is None:
        from repro.serving.engine import BatchConfig, BatchingEngine, PhaseCostModel
        from repro.serving.simulator import ServingSimulator

        if cfg.engine == "batching":
            serving = BatchingEngine(
                PhaseCostModel.from_cost_model(
                    cost_model,
                    decode_marginal_fraction=cfg.decode_marginal_fraction,
                ),
                scheme,
                BatchConfig(
                    max_batch=cfg.max_batch,
                    prefill_token_budget=cfg.prefill_token_budget,
                    priority=cfg.priority,
                    queue_limit=cfg.queue_limit,
                ),
            ).run(requests)
        else:
            serving = ServingSimulator(
                cost_model, scheme, queue_limit=cfg.queue_limit
            ).run(requests)
        return CosimResult(
            scheme=scheme,
            converged=True,
            open_loop=serving,
            closed_loop=serving,
        )
    driver = CosimDriver(cost_model, scheme, planner, config=cfg)
    try:
        return driver.run(requests)
    finally:
        driver.close()


def _traffic_columns(closed, traffic) -> dict:
    """Per-tenant and flash-window latency columns for one closed run.

    Empty when the sweep ran without an active traffic config (the
    legacy path), so the plain columns are untouched.  The flash
    window is expressed in fractions of the request horizon -- the
    same coordinates :class:`~repro.traffic.shapes.FlashCrowdShape`
    warped the arrivals into.
    """
    import numpy as np

    cols: dict = {}
    if traffic is None or not closed.completed:
        return cols
    if traffic.tenants:
        by_tenant: dict[str, list[float]] = {}
        for c in closed.completed:
            by_tenant.setdefault(c.request.tenant, []).append(c.latency)
        cols["tenant_closed_p99"] = {
            name: float(np.percentile(lats, 99))
            for name, lats in sorted(by_tenant.items())
        }
        cols["tenant_completed"] = {
            name: len(lats) for name, lats in sorted(by_tenant.items())
        }
    if traffic.shape == "flash_crowd":
        horizon = max(c.request.arrival for c in closed.completed)
        lo = traffic.flash_at * horizon
        hi = (traffic.flash_at + traffic.flash_duration) * horizon
        flash = [
            c.latency for c in closed.completed if lo <= c.request.arrival < hi
        ]
        steady = [
            c.latency
            for c in closed.completed
            if not (lo <= c.request.arrival < hi)
        ]
        if flash:
            cols["closed_flash_p99"] = float(np.percentile(flash, 99))
        if steady:
            cols["closed_steady_p99"] = float(np.percentile(steady, 99))
    return cols


def _point_from_run(rate: float, run: CosimResult, traffic=None) -> SweepPoint:
    """Collapse one closed-loop run into its sweep-grid point."""
    open_loop, closed = run.open_loop, run.closed_loop
    last = run.iterations[-1] if run.iterations else None
    return SweepPoint(
        rate=rate,
        open_p50=open_loop.latency_percentile(50),
        open_p99=open_loop.latency_percentile(99),
        open_max=open_loop.latency_percentile(100),
        closed_p50=closed.latency_percentile(50),
        closed_p99=closed.latency_percentile(99),
        closed_max=closed.latency_percentile(100),
        utilization=closed.utilization,
        completed=closed.n_completed,
        rejected=closed.rejected,
        n_iterations=run.n_iterations,
        converged=run.converged,
        extra_seconds_per_token=run.extra_seconds_per_token,
        dram_queue_delay_mean=last.dram_queue_delay_mean if last else 0.0,
        dram_queue_delay_p99=last.dram_queue_delay_p99 if last else 0.0,
        dram_idle_cycles=last.dram_idle_cycles if last else 0,
        dram_total_cycles=last.dram_total_cycles if last else 0,
        residual_seconds_per_token=run.residual_seconds_per_token,
        closed_ttft_p99=closed.ttft_percentile(99),
        closed_queue_delay_p99=closed.queue_delay_percentile(99),
        closed_tpot_p99=closed.tpot_percentile(99),
        extra_prefill_seconds_per_token=run.extra_prefill_seconds_per_token,
        extra_decode_seconds_per_token=run.extra_decode_seconds_per_token,
        **_traffic_columns(closed, traffic),
    )


def _failed_point(rate: float, exc: BaseException) -> SweepPoint:
    """The all-zero placeholder recorded when one grid point's cosim
    run raises: the failure is named, the sweep goes on."""
    return SweepPoint(
        rate=rate,
        open_p50=0.0,
        open_p99=0.0,
        open_max=0.0,
        closed_p50=0.0,
        closed_p99=0.0,
        closed_max=0.0,
        utilization=0.0,
        completed=0,
        rejected=0,
        n_iterations=0,
        converged=False,
        extra_seconds_per_token=0.0,
        dram_queue_delay_mean=0.0,
        dram_queue_delay_p99=0.0,
        dram_idle_cycles=0,
        dram_total_cycles=0,
        failed=True,
        error=f"{type(exc).__name__}: {exc}",
    )


def _checkpoint_header(fingerprint: dict) -> dict:
    return {
        "version": SWEEP_CKPT_VERSION,
        "kind": "cosim_sweep_ckpt",
        "fingerprint": fingerprint,
    }


def load_checkpoint(path, fingerprint: dict) -> dict[float, SweepPoint]:
    """Read a ``*.sweep.ckpt`` sidecar; returns completed points by
    rate.

    The checkpoint's fingerprint (scheme / grid / seed / config) must
    match this sweep's exactly -- resuming against a different
    configuration would splice incomparable points into one document.
    A torn final line (the crash-mid-append shape; each line is
    fsynced *after* it is fully written, so only the tail can tear) is
    ignored: that point simply reruns.
    """
    path = pathlib.Path(path)
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    if not lines:
        raise ValueError(f"{path}: empty sweep checkpoint")
    header = json.loads(lines[0])
    check_format_version(
        header.get("version"), SWEEP_CKPT_VERSION, "sweep checkpoint"
    )
    if header.get("kind") != "cosim_sweep_ckpt":
        raise ValueError(
            f"{path}: not a sweep checkpoint (kind={header.get('kind')!r})"
        )
    if header.get("fingerprint") != fingerprint:
        raise ValueError(
            f"{path}: checkpoint fingerprint does not match this sweep "
            "(different grid, seed, or config); delete the checkpoint or "
            "rerun without resume"
        )
    done: dict[float, SweepPoint] = {}
    for i, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            point = SweepPoint(**record["point"])
        except (ValueError, KeyError, TypeError) as exc:
            if i == len(lines):
                logger.warning(
                    "%s: ignoring torn final checkpoint line (%s); "
                    "that point will rerun",
                    path,
                    exc,
                )
                break
            raise ValueError(f"{path}: corrupt checkpoint line {i}: {exc}") from exc
        done[point.rate] = point
    return done


def run_load_sweep(
    cost_model: CostModel,
    scheme: Scheme,
    planner,
    rates: list[float],
    n_requests: int = 100,
    seed: int = 0,
    arrival: str = "poisson",
    mean_prompt_tokens: int = 512,
    mean_decode_tokens: int = 32,
    cosim_config: Optional[CosimConfig] = None,
    workers: int = 0,
    checkpoint_path=None,
    resume: bool = False,
    on_point: Optional[Callable[[float, SweepPoint], None]] = None,
    slo_p99_seconds: Optional[float] = None,
    traffic=None,
) -> tuple[SweepResult, list[Optional[CosimResult]]]:
    """Run the closed loop at every rate in the grid.

    ``planner=None`` runs the grid serving-only (no DRAM feedback):
    every point is a trivially-converged open-loop run of the
    configured engine -- the one sweep implementation behind the
    co-simulation CLI and the serving-only benches.

    The result carries an SLO capacity answer: the max sustained
    offered load whose closed-loop p99 stays under ``slo_p99_seconds``
    (interpolated between grid points; see :func:`slo_capacity`).
    When no threshold is given, one is auto-derived as 5x the
    lowest-rate point's closed p99 -- "how far can load grow before
    the tail is 5x the uncongested tail".

    Returns the serializable :class:`SweepResult` plus the per-rate
    :class:`CosimResult` objects (which keep the full iteration
    history and the final DRAM trace for ``.dramtrace`` export).
    Entries of that list are ``None`` for points restored from a
    checkpoint or recorded as failed -- only freshly-run points carry
    a live :class:`CosimResult`.

    ``workers`` >= 2 runs the (independent) grid points over a process
    pool instead of serially -- each worker gets its own pickled copy
    of the cost model / planner / config, and the per-point seeding is
    identical either way, so the sweep output is bit-identical to the
    serial run.  Pool workers are daemonic and cannot spawn the
    nested DRAM drain pool, so ``dram_workers`` is forced to 0 inside
    parallel grid points (use one or the other level of parallelism).

    ``checkpoint_path`` enables durable progress: each completed point
    is fsync-appended to the sidecar the moment it finishes, SIGINT /
    SIGTERM raise :class:`SweepInterrupted` between points, and
    ``resume=True`` loads matching completed points (fingerprint-
    checked) instead of rerunning them -- the assembled result is
    bit-identical to an uninterrupted sweep.  The sidecar is removed
    once the whole grid completes.  A grid point whose run raises is
    recorded as a ``failed`` point (and checkpointed as such, so
    resume does not retry it); the rest of the sweep continues.
    ``on_point(rate, point)`` is called after each completed point's
    checkpoint is durable -- the hook the fault-injection harness uses
    to interrupt at exact point counts.

    ``traffic`` (a :class:`~repro.experiments.config.TrafficConfig`,
    or ``None``) drives scenario request generation: tenant mixes and
    load shapes swap in :func:`repro.traffic.generate.generate_requests`
    per point, per-tenant / flash-window latency columns are filled,
    and the traffic dict joins the checkpoint fingerprint (so a resume
    against a different scenario is rejected).  ``None`` keeps the
    legacy single-tenant path bit-identical.
    """
    if not rates:
        raise ValueError("rates must be non-empty")
    if sorted(rates) != list(rates):
        raise ValueError("rates must be sorted ascending")
    if workers < 0:
        raise ValueError("workers must be non-negative")
    cfg = cosim_config or CosimConfig()
    sweep = SweepResult(
        scheme=scheme.value,
        arrival=arrival,
        n_requests=n_requests,
        seed=seed,
        config={
            "damping": cfg.damping,
            "max_iterations": cfg.max_iterations,
            "p99_tolerance": cfg.p99_tolerance,
            "bytes_per_token": planner.bytes_per_token if planner is not None else 0,
            "max_blocks_per_request": (
                planner.max_blocks_per_request if planner is not None else 0
            ),
            "dram_channels": (
                planner.config.organization.n_channels if planner is not None else 0
            ),
            "encode_seconds_per_token": cost_model.encode_seconds_per_token,
            "decode_seconds_per_token": cost_model.decode_seconds_per_token,
            "mean_prompt_tokens": mean_prompt_tokens,
            "mean_decode_tokens": mean_decode_tokens,
            "engine": cfg.engine,
            "serving_only": planner is None,
        },
        engine=cfg.engine,
    )
    if cfg.engine == "batching":
        sweep.config.update(
            {
                "max_batch": cfg.max_batch,
                "priority": cfg.priority,
                "prefill_token_budget": cfg.prefill_token_budget,
                "decode_marginal_fraction": cfg.decode_marginal_fraction,
            }
        )
    if traffic is not None:
        # Scenario provenance; key absent on legacy sweeps so their
        # checkpoint fingerprints are unchanged.
        sweep.config["traffic"] = traffic.to_dict()
        sweep.tenant_slo_p99_ms = {t.name: t.slo_p99_ms for t in traffic.tenants}
    fingerprint = {
        "scheme": sweep.scheme,
        "arrival": arrival,
        "n_requests": n_requests,
        "seed": seed,
        "rates": [float(r) for r in rates],
        "config": sweep.config,
    }
    done: dict[float, SweepPoint] = {}
    if checkpoint_path is not None:
        checkpoint_path = pathlib.Path(checkpoint_path)
        if resume and checkpoint_path.exists():
            done = load_checkpoint(checkpoint_path, fingerprint)
            if done:
                logger.info(
                    "%s: resuming sweep; %d of %d point(s) already complete",
                    checkpoint_path,
                    len(done),
                    len(rates),
                )
    todo = [rate for rate in rates if rate not in done]
    runs_by_rate: dict[float, CosimResult] = {}
    use_pool = workers >= 2 and len(todo) >= 2
    point_args = {
        rate: (
            cost_model,
            scheme,
            planner,
            dataclasses.replace(cfg, dram_workers=0) if use_pool else cfg,
            rate,
            n_requests,
            seed,
            arrival,
            mean_prompt_tokens,
            mean_decode_tokens,
            traffic,
        )
        for rate in todo
    }

    ckpt_fh = None
    if checkpoint_path is not None:
        # Append when resuming onto an existing compatible checkpoint;
        # otherwise start it fresh with a fingerprinted header line.
        if done:
            ckpt_fh = open(checkpoint_path, "ab")
        else:
            ckpt_fh = open(checkpoint_path, "wb")
            durable_append(
                ckpt_fh,
                (json.dumps(_checkpoint_header(fingerprint)) + "\n").encode(),
            )

    def record(rate: float, point: SweepPoint, run: Optional[CosimResult]) -> None:
        done[rate] = point
        if run is not None:
            runs_by_rate[rate] = run
        if ckpt_fh is not None:
            durable_append(
                ckpt_fh,
                (json.dumps({"rate": rate, "point": asdict(point)}) + "\n").encode(),
            )
        if on_point is not None:
            on_point(rate, point)

    # SIGINT/SIGTERM land as SweepInterrupted between points (the
    # durable append for the in-flight point either fully happened or
    # the point reruns on resume).  Handlers only exist for the
    # duration of the loop, and only on the main thread -- signal
    # installation is illegal elsewhere.
    installed = []
    if checkpoint_path is not None and (
        threading.current_thread() is threading.main_thread()
    ):

        def _interrupt(signum, frame):
            raise SweepInterrupted(f"received signal {signum}")

        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                installed.append((sig, signal.signal(sig, _interrupt)))
            except (ValueError, OSError):  # pragma: no cover - exotic host
                pass
    try:
        if use_pool:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            pool = ctx.Pool(min(workers, len(todo)))
            try:
                pending = {
                    rate: pool.apply_async(_run_rate_point, point_args[rate])
                    for rate in todo
                }
                # Checkpoint in completion order (resume assembles the
                # grid order from the rate keys, so order on disk is
                # irrelevant); a failed point is recorded and skipped.
                while pending:
                    next(iter(pending.values())).wait(0.05)
                    for rate in [r for r, ar in pending.items() if ar.ready()]:
                        ar = pending.pop(rate)
                        try:
                            run = ar.get(0)
                        except Exception as exc:
                            logger.warning(
                                "sweep point rate=%g failed: %s", rate, exc
                            )
                            record(rate, _failed_point(rate, exc), None)
                        else:
                            record(rate, _point_from_run(rate, run, traffic), run)
            finally:
                pool.terminate()
                pool.join()
        else:
            for rate in todo:
                try:
                    run = _run_rate_point(*point_args[rate])
                except SweepInterrupted:
                    raise
                except Exception as exc:
                    logger.warning("sweep point rate=%g failed: %s", rate, exc)
                    record(rate, _failed_point(rate, exc), None)
                else:
                    record(rate, _point_from_run(rate, run, traffic), run)
    finally:
        for sig, previous in installed:
            signal.signal(sig, previous)
        if ckpt_fh is not None:
            ckpt_fh.close()

    sweep.points.extend(done[rate] for rate in rates)
    ok_points = [p for p in sweep.points if not p.failed]
    if ok_points:
        if slo_p99_seconds is not None:
            sweep.slo_p99_seconds = float(slo_p99_seconds)
            sweep.slo_auto = False
        else:
            # "How far can load grow before the tail is 5x the
            # uncongested tail" -- anchor on the lowest-rate point.
            sweep.slo_p99_seconds = 5.0 * ok_points[0].closed_p99
            sweep.slo_auto = True
        sweep.slo_capacity_rps = slo_capacity(ok_points, sweep.slo_p99_seconds)
    if checkpoint_path is not None:
        # The grid is complete; the sidecar has served its purpose.
        checkpoint_path.unlink(missing_ok=True)
    return sweep, [runs_by_rate.get(rate) for rate in rates]
