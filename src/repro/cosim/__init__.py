"""Closed-loop serving <-> DRAM co-simulation.

The serving simulator and the cycle-level memory controller each model
half of the system; this package runs them as one: a fixed-point loop
(:class:`CosimDriver`) feeds measured DRAM queueing back into the
serving cost model, an expert-faithful replay planner
(:class:`ExpertReplayPlanner`) targets the weight regions of the
experts each request actually activated, and a load-sweep runner
(:func:`run_load_sweep`) produces the closed-loop tail-latency
hockey stick across an offered-load grid.  CLI surface: ``repro
cosim`` and ``repro cosim sweep``.
"""

from repro.cosim.driver import (
    CosimConfig,
    CosimDriver,
    CosimIteration,
    CosimResult,
    SingleDeviceBackend,
    small_cosim_dram,
)
from repro.cosim.replay import (
    PHASE_DECODE,
    PHASE_PREFILL,
    ExpertReplayPlanner,
    ReplayTrace,
    SyntheticReplayPlanner,
)
from repro.cosim.sweep import (
    SWEEP_CKPT_SUFFIX,
    SWEEP_FORMAT_VERSION,
    SweepInterrupted,
    SweepPoint,
    SweepResult,
    format_sweep,
    run_load_sweep,
    slo_capacity,
)

__all__ = [
    "PHASE_DECODE",
    "PHASE_PREFILL",
    "SWEEP_CKPT_SUFFIX",
    "SWEEP_FORMAT_VERSION",
    "CosimConfig",
    "CosimDriver",
    "CosimIteration",
    "CosimResult",
    "ExpertReplayPlanner",
    "SingleDeviceBackend",
    "ReplayTrace",
    "SweepInterrupted",
    "SweepPoint",
    "SweepResult",
    "SyntheticReplayPlanner",
    "format_sweep",
    "run_load_sweep",
    "slo_capacity",
    "small_cosim_dram",
]
