"""Closed-loop serving <-> DRAM fixed-point driver.

The serving simulator prices a request with a :class:`CostModel`
calibrated at *unloaded* memory; the cycle-level DRAM controller then
shows how much queueing the serving run's bursts actually suffer.
:class:`CosimDriver` closes that loop:

1. run the serving simulation with the current cost model;
2. replay the run as a DRAM arrival stream (expert-faithful regions
   via :class:`~repro.cosim.replay.ExpertReplayPlanner`) and measure
   each serving request's *memory contention*: the cycles by which its
   burst's makespan exceeds what the same burst achieves in isolation
   (so intrinsic self-queueing inside a burst is not double-counted);
3. convert contention into a per-token surcharge on the cost model
   (damped fixed-point update) and repeat until the serving p99
   latency stops moving.

At low offered load bursts never overlap, contention is zero, and the
loop converges immediately to the open-loop result; near saturation
the surcharge spreads service starts until the serving layer's issue
rate matches what the memory system actually sustains -- the
closed-loop hockey stick the open-loop replay could not produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.strategies import Scheme
from repro.dram.config import DRAMConfig, DRAMOrganization, LPDDR5X_8533
from repro.dram.controller import ControllerStats, MemoryController
from repro.serving.simulator import CostModel, ServingResult, ServingSimulator
from repro.serving.workload import Request

from repro.cosim.replay import ReplayTrace


def small_cosim_dram(n_channels: int = 2) -> DRAMConfig:
    """A deliberately small DRAM config (LPDDR5X timing, few channels
    and rows) whose bandwidth saturates at test- and smoke-sized
    serving loads, so closed-loop effects show up in seconds of
    simulation rather than hours."""
    return DRAMConfig(
        organization=DRAMOrganization(
            n_channels=n_channels,
            n_ranks=1,
            n_bankgroups=2,
            banks_per_group=2,
            n_rows=8192,
            row_bytes=2048,
            access_bytes=64,
        ),
        timing=LPDDR5X_8533.timing,
    )


@dataclass(frozen=True)
class CosimConfig:
    """Fixed-point loop knobs.

    ``damping`` scales each update toward the newly measured per-token
    surcharge (1.0 = undamped) while the loop is still searching for
    an upper bound on the fixed point.  The measured surcharge is
    monotone *decreasing* in the applied surcharge (more surcharge
    spreads bursts apart, so they contend less), so once some
    iteration measures less contention than it applied the fixed
    point is bracketed and the driver switches to bisection -- near
    memory saturation the map is stiff (a small surcharge change
    flips bursts between fully packed and fully spread) and plain
    damped iteration limit-cycles where bisection contracts
    geometrically.  ``damping_decay`` shrinks the damped step each
    iteration (step_k = damping / (1 + k * damping_decay)) as a
    safety net when a noisy measurement breaks the bracket.  The loop
    stops once the relative change in serving p99 between iterations
    falls below ``p99_tolerance`` (or after ``max_iterations``).
    """

    damping: float = 0.6
    damping_decay: float = 0.5
    max_iterations: int = 8
    p99_tolerance: float = 0.02
    queue_limit: int = 4096
    scheduler_window: int = 64
    #: >= 2 fans each DRAM replay's per-channel drains out over one
    #: shared worker pool (repro.dram.parallel) -- bit-identical
    #: stats, so convergence trajectories do not change.
    dram_workers: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.damping <= 1.0:
            raise ValueError("damping must be in (0, 1]")
        if self.damping_decay < 0:
            raise ValueError("damping_decay must be non-negative")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.p99_tolerance < 0:
            raise ValueError("p99_tolerance must be non-negative")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.dram_workers < 0:
            raise ValueError("dram_workers must be non-negative")

    def step(self, iteration: int) -> float:
        """Update step size for the given iteration index."""
        return self.damping / (1.0 + iteration * self.damping_decay)


@dataclass(frozen=True)
class CosimIteration:
    """One serving + DRAM pass of the loop."""

    index: int
    #: per-token cost surcharge (seconds) the serving pass ran with
    extra_seconds_per_token: float
    #: per-token surcharge the DRAM measurement asks for next
    measured_seconds_per_token: float
    serving_p50: float
    serving_p99: float
    serving_max: float
    serving_mean: float
    utilization: float
    completed: int
    rejected: int
    dram_queue_delay_mean: float
    dram_queue_delay_p99: float
    dram_queue_delay_max: int
    dram_idle_cycles: int
    dram_total_cycles: int
    #: relative p99 change vs the previous iteration (inf for the first)
    p99_delta: float


@dataclass
class CosimResult:
    """Outcome of one closed-loop run."""

    scheme: Scheme
    iterations: list[CosimIteration] = field(default_factory=list)
    converged: bool = False
    #: iteration 0 -- the open-loop serving result (no feedback)
    open_loop: Optional[ServingResult] = None
    #: final iteration's serving result (feedback applied)
    closed_loop: Optional[ServingResult] = None
    #: final iteration's DRAM trace (exportable via write_trace)
    final_trace: Optional[ReplayTrace] = None
    final_dram_stats: Optional[ControllerStats] = None
    #: converged per-token surcharge (seconds)
    extra_seconds_per_token: float = 0.0
    #: self-consistency residual |measured - applied| of the reported
    #: iterate (0 means a true fixed point; meaningful mostly when
    #: ``converged`` is False, where it sizes how far off the best
    #: iterate still was)
    residual_seconds_per_token: float = 0.0

    @property
    def n_iterations(self) -> int:
        return len(self.iterations)


class CosimDriver:
    """Alternates serving runs and DRAM replays to a fixed point."""

    def __init__(
        self,
        cost_model: CostModel,
        scheme: Scheme,
        planner,
        config: Optional[CosimConfig] = None,
    ) -> None:
        self.cost_model = cost_model
        self.scheme = scheme
        self.planner = planner
        self.config = config or CosimConfig()
        self._iso_cache: dict[int, int] = {}
        self._dram_executor = None

    def close(self) -> None:
        """Shut down the shared DRAM worker pool (no-op when
        ``dram_workers`` < 2 or no replay ran yet)."""
        if self._dram_executor is not None:
            self._dram_executor.close()
            self._dram_executor = None

    # -- contention measurement -------------------------------------------

    def _fresh_controller(self) -> MemoryController:
        executor = None
        if self.config.dram_workers >= 2:
            # One pool outlives the per-iteration controllers, so the
            # fixed-point loop pays worker startup once.
            if self._dram_executor is None:
                from repro.dram.parallel import ParallelDrainExecutor

                self._dram_executor = ParallelDrainExecutor(self.config.dram_workers)
            executor = self._dram_executor
        return MemoryController(
            self.planner.config,
            window=self.config.scheduler_window,
            executor=executor,
        )

    @staticmethod
    def _per_request_makespans(
        trace: ReplayTrace, complete: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(unique request ids, burst makespan in cycles per id)."""
        uniq, inverse = np.unique(trace.request_ids, return_inverse=True)
        makespans = np.zeros(len(uniq), dtype=np.int64)
        np.maximum.at(makespans, inverse, complete - trace.arrive_cycles)
        return uniq, makespans

    def _isolated_makespans(self, trace: ReplayTrace) -> dict[int, int]:
        """Makespan of each request's burst when it has the memory
        system to itself: the same addresses, with bursts serialized
        far enough apart that they can never overlap.  The difference
        between an iteration's measured makespan and this baseline is
        pure cross-request contention."""
        t = self.planner.config.timing
        # Loose per-access upper bound (full row cycle + read latency
        # + data) so consecutive bursts cannot interact; idle-gap
        # jumping makes the stretched timeline free to simulate.
        per_access = t.tRC + t.tCL + t.burst_cycles + 2
        ids = trace.request_ids
        boundaries = np.flatnonzero(np.diff(ids)) + 1
        run_starts = np.concatenate(([0], boundaries))
        run_lengths = np.diff(np.concatenate((run_starts, [len(ids)])))
        gaps = run_lengths * per_access + 64
        run_arrivals = np.concatenate(([0], np.cumsum(gaps)[:-1]))
        arrive = np.repeat(run_arrivals, run_lengths)
        _, timings = self._fresh_controller().simulate_arrays(
            trace.addrs, arrive, trace.flags, detail=True
        )
        makespans = np.zeros(len(run_starts), dtype=np.int64)
        complete = timings.complete_cycles
        for i, (lo, ln) in enumerate(zip(run_starts.tolist(), run_lengths.tolist())):
            makespans[i] = int(complete[lo : lo + ln].max() - arrive[lo])
        return {
            int(ids[lo]): int(mk) for lo, mk in zip(run_starts.tolist(), makespans)
        }

    def _isolation_baseline(self, trace: ReplayTrace) -> dict[int, int]:
        stable = getattr(self.planner, "stable_addresses", True)
        if not stable:
            return self._isolated_makespans(trace)
        missing = set(np.unique(trace.request_ids).tolist()) - set(self._iso_cache)
        if missing:
            # Calibrate only the uncached bursts (normally all of them
            # on iteration 0, then none -- the cached baselines stay
            # valid because the planner's addresses are
            # arrival-independent).
            mask = np.isin(trace.request_ids, np.fromiter(missing, dtype=np.int64))
            subset = ReplayTrace(
                addrs=trace.addrs[mask],
                arrive_cycles=trace.arrive_cycles[mask],
                flags=trace.flags[mask],
                request_ids=trace.request_ids[mask],
                tokens_by_request=trace.tokens_by_request,
            )
            self._iso_cache.update(self._isolated_makespans(subset))
        return self._iso_cache

    # -- the loop ----------------------------------------------------------

    def run(self, requests: list[Request]) -> CosimResult:
        """Run the fixed-point loop over one serving request list."""
        if not requests:
            raise ValueError("cosim needs at least one serving request")
        # Baselines are only reusable across the iterations of one
        # run: a different request list can reuse request_ids with
        # different token counts (and so different bursts).
        self._iso_cache.clear()
        cfg = self.config
        base_enc = self.cost_model.encode_seconds_per_token
        base_dec = self.cost_model.decode_seconds_per_token
        cycle_time = self.planner.config.timing.cycle_time
        result = CosimResult(scheme=self.scheme)
        extra = 0.0
        prev_p99 = None
        # Bisection bracket on the self-consistency residual
        # measured(extra) - extra: lo under-corrects, hi over-corrects.
        lo, hi = 0.0, None
        # Best iterate so far by |measured - extra|: what the run
        # reports if it exhausts max_iterations without converging
        # (the last iterate of a limit cycle can be the worst one).
        best = None
        best_residual = float("inf")

        for index in range(cfg.max_iterations):
            cost = CostModel(base_enc + extra, base_dec + extra)
            serving = ServingSimulator(
                cost, self.scheme, queue_limit=cfg.queue_limit
            ).run(requests)
            if index == 0:
                result.open_loop = serving
            result.closed_loop = serving

            trace = self.planner.replay(serving)
            if len(trace) == 0:
                result.converged = True
                break
            stats, timings = self._fresh_controller().simulate_arrays(
                trace.addrs, trace.arrive_cycles, trace.flags, detail=True
            )
            result.final_trace = trace
            result.final_dram_stats = stats

            iso = self._isolation_baseline(trace)
            uniq, makespans = self._per_request_makespans(
                trace, timings.complete_cycles
            )
            iso_arr = np.array([iso[int(r)] for r in uniq.tolist()], dtype=np.int64)
            contention = np.maximum(makespans - iso_arr, 0).astype(np.float64)
            tokens = np.array(
                [trace.tokens_by_request[int(r)] for r in uniq.tolist()],
                dtype=np.float64,
            )
            measured = float(contention.sum() * cycle_time / tokens.sum())
            residual = abs(measured - extra)
            result.residual_seconds_per_token = residual
            if residual < best_residual:
                best_residual = residual
                best = (serving, trace, stats, extra)

            p99 = serving.latency_percentile(99)
            delta = (
                float("inf")
                if prev_p99 is None
                else abs(p99 - prev_p99) / max(prev_p99, 1e-12)
            )
            result.iterations.append(
                CosimIteration(
                    index=index,
                    extra_seconds_per_token=extra,
                    measured_seconds_per_token=measured,
                    serving_p50=serving.latency_percentile(50),
                    serving_p99=p99,
                    serving_max=serving.latency_percentile(100),
                    serving_mean=serving.mean_latency,
                    utilization=serving.utilization,
                    completed=serving.n_completed,
                    rejected=serving.rejected,
                    dram_queue_delay_mean=stats.queue_delay_mean,
                    dram_queue_delay_p99=stats.queue_delay_p99,
                    dram_queue_delay_max=stats.queue_delay_max,
                    dram_idle_cycles=sum(stats.idle_channel_cycles.values()),
                    dram_total_cycles=stats.total_cycles,
                    p99_delta=delta,
                )
            )
            result.extra_seconds_per_token = extra
            if prev_p99 is not None and delta <= cfg.p99_tolerance:
                result.converged = True
                break
            prev_p99 = p99
            if measured > extra:
                lo = max(lo, extra)
            elif hi is None or extra < hi:
                hi = extra
            if hi is None:
                extra += cfg.step(index) * (measured - extra)
            elif hi > lo:
                extra = 0.5 * (lo + hi)
            else:
                # Noise collapsed the bracket; restart the damped
                # search from the latest measurement.
                lo, hi = 0.0, None
                extra = measured
        if not result.converged and best is not None:
            # Ran out of iterations: report the iterate with the
            # smallest self-consistency residual, not whichever one a
            # limit cycle happened to end on.
            serving_b, trace_b, stats_b, extra_b = best
            result.closed_loop = serving_b
            result.final_trace = trace_b
            result.final_dram_stats = stats_b
            result.extra_seconds_per_token = extra_b
            result.residual_seconds_per_token = best_residual
        return result
