"""Closed-loop serving <-> DRAM fixed-point driver.

The serving simulator prices a request with a :class:`CostModel`
calibrated at *unloaded* memory; the cycle-level DRAM controller then
shows how much queueing the serving run's bursts actually suffer.
:class:`CosimDriver` closes that loop:

1. run the serving simulation with the current cost model;
2. replay the run as a DRAM arrival stream (expert-faithful regions
   via :class:`~repro.cosim.replay.ExpertReplayPlanner`) and measure
   each serving request's *memory contention*: the cycles by which its
   burst's makespan exceeds what the same burst achieves in isolation
   (so intrinsic self-queueing inside a burst is not double-counted);
3. convert contention into a per-token surcharge on the cost model
   (damped fixed-point update) and repeat until the serving p99
   latency stops moving.

At low offered load bursts never overlap, contention is zero, and the
loop converges immediately to the open-loop result; near saturation
the surcharge spreads service starts until the serving layer's issue
rate matches what the memory system actually sustains -- the
closed-loop hockey stick the open-loop replay could not produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.strategies import Scheme
from repro.dram.config import DRAMConfig, DRAMOrganization, LPDDR5X_8533
from repro.dram.controller import ControllerStats, MemoryController
from repro.serving.simulator import CostModel, ServingResult, ServingSimulator
from repro.serving.workload import Request

from repro.cosim.replay import ReplayTrace


def small_cosim_dram(n_channels: int = 2) -> DRAMConfig:
    """A deliberately small DRAM config (LPDDR5X timing, few channels
    and rows) whose bandwidth saturates at test- and smoke-sized
    serving loads, so closed-loop effects show up in seconds of
    simulation rather than hours."""
    return DRAMConfig(
        organization=DRAMOrganization(
            n_channels=n_channels,
            n_ranks=1,
            n_bankgroups=2,
            banks_per_group=2,
            n_rows=8192,
            row_bytes=2048,
            access_bytes=64,
        ),
        timing=LPDDR5X_8533.timing,
    )


class SingleDeviceBackend:
    """Default DRAM backend: one memory device behind the cosim loop.

    The driver measures contention by simulating a replay trace on a
    *fresh* :class:`~repro.dram.controller.MemoryController` per
    measurement (controllers carry channel state across ``simulate``
    calls, and each measurement must start cold).  This class owns
    that construction -- DRAM config, scheduler window, and the shared
    per-channel drain pool (``dram_workers`` >= 2) that outlives the
    per-measurement controllers.

    The backend protocol (duck-typed; :class:`repro.cluster.backend.
    ShardedDramBackend` is the multi-device implementation):

    - ``simulate(addrs, arrive_cycles, flags, request_ids=None)`` ->
      ``(ControllerStats, RequestTimings)`` with per-element timings in
      input order;
    - ``transfer_seconds(trace)`` -> per-request inter-device transfer
      seconds (``{}`` when nothing crosses a device boundary -- the
      single-device case by construction);
    - ``close()`` releases any worker pool.
    """

    def __init__(self, dram_config, window: int = 64, dram_workers: int = 0) -> None:
        self.config = dram_config
        self.window = window
        self.dram_workers = int(dram_workers)
        self._executor = None

    def _shared_executor(self):
        if self.dram_workers < 2:
            return None
        if self._executor is None:
            # One pool outlives the per-measurement controllers, so
            # the fixed-point loop pays worker startup once.
            from repro.dram.parallel import ParallelDrainExecutor

            self._executor = ParallelDrainExecutor(self.dram_workers)
        return self._executor

    def simulate(self, addrs, arrive_cycles, flags, request_ids=None):
        """Simulate one arrival stream on a cold controller; returns
        ``(stats, per-element timings)`` in input order."""
        controller = MemoryController(
            self.config, window=self.window, executor=self._shared_executor()
        )
        return controller.simulate_arrays(
            addrs, arrive_cycles, flags, detail=True
        )

    def transfer_seconds(self, trace) -> dict[int, float]:
        """Per-request inter-device activation-transfer seconds.  One
        device, no boundaries to cross: always empty."""
        return {}

    def close(self) -> None:
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def __enter__(self) -> "SingleDeviceBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


@dataclass(frozen=True)
class CosimConfig:
    """Fixed-point loop knobs.

    ``damping`` scales each update toward the newly measured per-token
    surcharge (1.0 = undamped) while the loop is still searching for
    an upper bound on the fixed point.  The measured surcharge is
    monotone *decreasing* in the applied surcharge (more surcharge
    spreads bursts apart, so they contend less), so once some
    iteration measures less contention than it applied the fixed
    point is bracketed and the driver switches to bisection -- near
    memory saturation the map is stiff (a small surcharge change
    flips bursts between fully packed and fully spread) and plain
    damped iteration limit-cycles where bisection contracts
    geometrically.  ``damping_decay`` shrinks the damped step each
    iteration (step_k = damping / (1 + k * damping_decay)) as a
    safety net when a noisy measurement breaks the bracket.  The loop
    stops once the relative change in serving p99 between iterations
    falls below ``p99_tolerance`` (or after ``max_iterations``).
    """

    damping: float = 0.6
    damping_decay: float = 0.5
    max_iterations: int = 8
    p99_tolerance: float = 0.02
    queue_limit: int = 4096
    scheduler_window: int = 64
    #: >= 2 fans each DRAM replay's per-channel drains out over one
    #: shared worker pool (repro.dram.parallel) -- bit-identical
    #: stats, so convergence trajectories do not change.
    dram_workers: int = 0
    #: serving model inside the loop: "fifo" (seed behavior, one
    #: scalar surcharge) or "batching" (continuous batching with
    #: distinct prefill/decode surcharges measured from phase bursts)
    engine: str = "fifo"
    #: batching-engine admission knobs (ignored on the fifo path);
    #: see :class:`repro.serving.engine.BatchConfig`
    max_batch: int = 8
    prefill_token_budget: int = 4096
    priority: str = "prefill"
    #: fraction of a decode step's serving cost that scales per
    #: request (the rest is the fixed, batch-amortized weight-stream
    #: share); see :class:`repro.serving.engine.PhaseCostModel`
    decode_marginal_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.damping <= 1.0:
            raise ValueError("damping must be in (0, 1]")
        if self.damping_decay < 0:
            raise ValueError("damping_decay must be non-negative")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.p99_tolerance < 0:
            raise ValueError("p99_tolerance must be non-negative")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.dram_workers < 0:
            raise ValueError("dram_workers must be non-negative")
        if self.engine not in ("fifo", "batching"):
            raise ValueError(f"engine must be 'fifo' or 'batching', got {self.engine!r}")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.prefill_token_budget < 1:
            raise ValueError("prefill_token_budget must be >= 1")
        if not 0.0 <= self.decode_marginal_fraction <= 1.0:
            raise ValueError("decode_marginal_fraction must be in [0, 1]")

    def step(self, iteration: int) -> float:
        """Update step size for the given iteration index."""
        return self.damping / (1.0 + iteration * self.damping_decay)


class _SurchargeSearch:
    """Scalar fixed-point search on one per-token surcharge.

    The measured surcharge is monotone decreasing in the applied one,
    so the search runs damped iteration until the fixed point is
    bracketed, then bisects; a collapsed bracket (noise) restarts the
    damped phase.  Extracted verbatim from the seed loop -- the fifo
    path's float arithmetic is unchanged -- and instantiated twice
    (prefill, decode) by the batching path.
    """

    def __init__(self, config: "CosimConfig") -> None:
        self.cfg = config
        self.extra = 0.0
        # Bisection bracket on the self-consistency residual
        # measured(extra) - extra: lo under-corrects, hi over-corrects.
        self.lo = 0.0
        self.hi: Optional[float] = None

    def update(self, index: int, measured: float) -> float:
        """Fold in one measurement; returns the next surcharge."""
        extra = self.extra
        if measured > extra:
            self.lo = max(self.lo, extra)
        elif self.hi is None or extra < self.hi:
            self.hi = extra
        if self.hi is None:
            extra += self.cfg.step(index) * (measured - extra)
        elif self.hi > self.lo:
            extra = 0.5 * (self.lo + self.hi)
        else:
            # Noise collapsed the bracket; restart the damped
            # search from the latest measurement.
            self.lo, self.hi = 0.0, None
            extra = measured
        self.extra = extra
        return extra


@dataclass(frozen=True)
class CosimIteration:
    """One serving + DRAM pass of the loop."""

    index: int
    #: per-token cost surcharge (seconds) the serving pass ran with
    extra_seconds_per_token: float
    #: per-token surcharge the DRAM measurement asks for next
    measured_seconds_per_token: float
    serving_p50: float
    serving_p99: float
    serving_max: float
    serving_mean: float
    utilization: float
    completed: int
    rejected: int
    dram_queue_delay_mean: float
    dram_queue_delay_p99: float
    dram_queue_delay_max: int
    dram_idle_cycles: int
    dram_total_cycles: int
    #: relative p99 change vs the previous iteration (inf for the first)
    p99_delta: float
    # Additive per-phase fields (batching engine; the fifo path leaves
    # them at their defaults, where the scalar fields above are the
    # whole story).
    extra_prefill_seconds_per_token: float = 0.0
    extra_decode_seconds_per_token: float = 0.0
    measured_prefill_seconds_per_token: float = 0.0
    measured_decode_seconds_per_token: float = 0.0
    serving_ttft_p99: float = 0.0
    serving_queue_delay_p99: float = 0.0


@dataclass
class CosimResult:
    """Outcome of one closed-loop run."""

    scheme: Scheme
    iterations: list[CosimIteration] = field(default_factory=list)
    converged: bool = False
    #: iteration 0 -- the open-loop serving result (no feedback)
    open_loop: Optional[ServingResult] = None
    #: final iteration's serving result (feedback applied)
    closed_loop: Optional[ServingResult] = None
    #: final iteration's DRAM trace (exportable via write_trace)
    final_trace: Optional[ReplayTrace] = None
    final_dram_stats: Optional[ControllerStats] = None
    #: converged per-token surcharge (seconds); on the batching path
    #: this is the token-weighted combination of the per-phase values
    extra_seconds_per_token: float = 0.0
    #: self-consistency residual |measured - applied| of the reported
    #: iterate (0 means a true fixed point; meaningful mostly when
    #: ``converged`` is False, where it sizes how far off the best
    #: iterate still was)
    residual_seconds_per_token: float = 0.0
    #: distinct per-phase surcharges (batching engine; zero on fifo)
    extra_prefill_seconds_per_token: float = 0.0
    extra_decode_seconds_per_token: float = 0.0

    @property
    def n_iterations(self) -> int:
        return len(self.iterations)


class CosimDriver:
    """Alternates serving runs and DRAM replays to a fixed point."""

    def __init__(
        self,
        cost_model: CostModel,
        scheme: Scheme,
        planner,
        config: Optional[CosimConfig] = None,
        backend=None,
    ) -> None:
        self.cost_model = cost_model
        self.scheme = scheme
        self.planner = planner
        self.config = config or CosimConfig()
        if backend is None:
            backend = SingleDeviceBackend(
                planner.config,
                window=self.config.scheduler_window,
                dram_workers=self.config.dram_workers,
            )
            self._owns_backend = True
        else:
            self._owns_backend = False
        self.backend = backend
        self._iso_cache: dict[int, int] = {}

    def close(self) -> None:
        """Shut down the DRAM backend's worker pool, when the driver
        built the backend itself (injected backends are caller-owned
        and may be shared across drivers)."""
        if self._owns_backend:
            self.backend.close()

    # -- contention measurement -------------------------------------------

    def _transfer_surcharge(
        self, trace: ReplayTrace, contention: np.ndarray, uniq: np.ndarray
    ) -> np.ndarray:
        """Fold the backend's per-request inter-device transfer costs
        (seconds) into per-request contention (cycles).  Empty
        transfer maps -- always, for the single-device backend --
        leave the contention array untouched, byte for byte."""
        xfer = self.backend.transfer_seconds(trace)
        if not xfer:
            return contention
        cycle_time = self.planner.config.timing.cycle_time
        extra = np.array(
            [xfer.get(int(r), 0.0) / cycle_time for r in uniq.tolist()],
            dtype=np.float64,
        )
        return contention + extra

    @staticmethod
    def _burst_makespans(
        ids: np.ndarray, arrive: np.ndarray, complete: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(unique burst ids, burst makespan in cycles per id)."""
        uniq, inverse = np.unique(ids, return_inverse=True)
        makespans = np.zeros(len(uniq), dtype=np.int64)
        np.maximum.at(makespans, inverse, complete - arrive)
        return uniq, makespans

    def _per_request_makespans(
        self, trace: ReplayTrace, complete: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(unique request ids, burst makespan in cycles per id)."""
        return self._burst_makespans(
            trace.request_ids, trace.arrive_cycles, complete
        )

    def _isolated_makespans(
        self, trace: ReplayTrace, ids: Optional[np.ndarray] = None
    ) -> dict[int, int]:
        """Makespan of each burst when it has the memory system to
        itself: the same addresses, with bursts serialized far enough
        apart that they can never overlap.  The difference between an
        iteration's measured makespan and this baseline is pure
        cross-burst contention.  Bursts are the contiguous runs of
        ``ids`` (the trace's request ids by default; phase-aware
        traces pass their finer-grained ``burst_ids``)."""
        t = self.planner.config.timing
        # Loose per-access upper bound (full row cycle + read latency
        # + data) so consecutive bursts cannot interact; idle-gap
        # jumping makes the stretched timeline free to simulate.
        per_access = t.tRC + t.tCL + t.burst_cycles + 2
        if ids is None:
            ids = trace.request_ids
        boundaries = np.flatnonzero(np.diff(ids)) + 1
        run_starts = np.concatenate(([0], boundaries))
        run_lengths = np.diff(np.concatenate((run_starts, [len(ids)])))
        gaps = run_lengths * per_access + 64
        run_arrivals = np.concatenate(([0], np.cumsum(gaps)[:-1]))
        arrive = np.repeat(run_arrivals, run_lengths)
        _, timings = self.backend.simulate(
            trace.addrs, arrive, trace.flags, trace.request_ids
        )
        makespans = np.zeros(len(run_starts), dtype=np.int64)
        complete = timings.complete_cycles
        for i, (lo, ln) in enumerate(zip(run_starts.tolist(), run_lengths.tolist())):
            makespans[i] = int(complete[lo : lo + ln].max() - arrive[lo])
        return {
            int(ids[lo]): int(mk) for lo, mk in zip(run_starts.tolist(), makespans)
        }

    def _isolated_element_latencies(self, trace: ReplayTrace) -> np.ndarray:
        """Per-element DRAM latencies when each REQUEST has the memory
        system to itself: requests are serialized far enough apart
        that they can never overlap, but each request's bursts keep
        their real relative arrival offsets.  A request pipelining its
        own decode steps faster than DRAM drains them is therefore
        part of the baseline, and the difference from a measured
        latency is cross-request interference only -- the same
        quantity the fifo path's per-request baseline measures."""
        t = self.planner.config.timing
        per_access = t.tRC + t.tCL + t.burst_cycles + 2
        rids = trace.request_ids
        boundaries = np.flatnonzero(np.diff(rids)) + 1
        run_starts = np.concatenate(([0], boundaries))
        run_ends = np.concatenate((boundaries, [len(rids)]))
        arrive = np.empty(len(rids), dtype=np.int64)
        base = 0
        for lo, hi in zip(run_starts.tolist(), run_ends.tolist()):
            offsets = trace.arrive_cycles[lo:hi] - trace.arrive_cycles[lo]
            arrive[lo:hi] = base + offsets
            base += int(offsets[-1]) + (hi - lo) * per_access + 64
        _, timings = self.backend.simulate(
            trace.addrs, arrive, trace.flags, trace.request_ids
        )
        return timings.complete_cycles - arrive

    def _isolation_baseline(self, trace: ReplayTrace) -> dict[int, int]:
        stable = getattr(self.planner, "stable_addresses", True)
        if not stable:
            return self._isolated_makespans(trace)
        missing = set(np.unique(trace.request_ids).tolist()) - set(self._iso_cache)
        if missing:
            # Calibrate only the uncached bursts (normally all of them
            # on iteration 0, then none -- the cached baselines stay
            # valid because the planner's addresses are
            # arrival-independent).
            mask = np.isin(trace.request_ids, np.fromiter(missing, dtype=np.int64))
            subset = ReplayTrace(
                addrs=trace.addrs[mask],
                arrive_cycles=trace.arrive_cycles[mask],
                flags=trace.flags[mask],
                request_ids=trace.request_ids[mask],
                tokens_by_request=trace.tokens_by_request,
            )
            self._iso_cache.update(self._isolated_makespans(subset))
        return self._iso_cache

    # -- the loop ----------------------------------------------------------

    def run(self, requests: list[Request]) -> CosimResult:
        """Run the fixed-point loop over one serving request list."""
        if not requests:
            raise ValueError("cosim needs at least one serving request")
        if self.config.engine == "batching":
            return self._run_batching(requests)
        # Baselines are only reusable across the iterations of one
        # run: a different request list can reuse request_ids with
        # different token counts (and so different bursts).
        self._iso_cache.clear()
        cfg = self.config
        base_enc = self.cost_model.encode_seconds_per_token
        base_dec = self.cost_model.decode_seconds_per_token
        cycle_time = self.planner.config.timing.cycle_time
        result = CosimResult(scheme=self.scheme)
        extra = 0.0
        prev_p99 = None
        search = _SurchargeSearch(cfg)
        # Best iterate so far by |measured - extra|: what the run
        # reports if it exhausts max_iterations without converging
        # (the last iterate of a limit cycle can be the worst one).
        best = None
        best_residual = float("inf")

        for index in range(cfg.max_iterations):
            cost = CostModel(base_enc + extra, base_dec + extra)
            serving = ServingSimulator(
                cost, self.scheme, queue_limit=cfg.queue_limit
            ).run(requests)
            if index == 0:
                result.open_loop = serving
            result.closed_loop = serving

            trace = self.planner.replay(serving)
            if len(trace) == 0:
                result.converged = True
                break
            stats, timings = self.backend.simulate(
                trace.addrs, trace.arrive_cycles, trace.flags, trace.request_ids
            )
            result.final_trace = trace
            result.final_dram_stats = stats

            iso = self._isolation_baseline(trace)
            uniq, makespans = self._per_request_makespans(
                trace, timings.complete_cycles
            )
            iso_arr = np.array([iso[int(r)] for r in uniq.tolist()], dtype=np.int64)
            contention = np.maximum(makespans - iso_arr, 0).astype(np.float64)
            contention = self._transfer_surcharge(trace, contention, uniq)
            tokens = np.array(
                [trace.tokens_by_request[int(r)] for r in uniq.tolist()],
                dtype=np.float64,
            )
            measured = float(contention.sum() * cycle_time / tokens.sum())
            residual = abs(measured - extra)
            result.residual_seconds_per_token = residual
            if residual < best_residual:
                best_residual = residual
                best = (serving, trace, stats, extra)

            p99 = serving.latency_percentile(99)
            delta = (
                float("inf")
                if prev_p99 is None
                else abs(p99 - prev_p99) / max(prev_p99, 1e-12)
            )
            result.iterations.append(
                CosimIteration(
                    index=index,
                    extra_seconds_per_token=extra,
                    measured_seconds_per_token=measured,
                    serving_p50=serving.latency_percentile(50),
                    serving_p99=p99,
                    serving_max=serving.latency_percentile(100),
                    serving_mean=serving.mean_latency,
                    utilization=serving.utilization,
                    completed=serving.n_completed,
                    rejected=serving.rejected,
                    dram_queue_delay_mean=stats.queue_delay_mean,
                    dram_queue_delay_p99=stats.queue_delay_p99,
                    dram_queue_delay_max=stats.queue_delay_max,
                    dram_idle_cycles=sum(stats.idle_channel_cycles.values()),
                    dram_total_cycles=stats.total_cycles,
                    p99_delta=delta,
                )
            )
            result.extra_seconds_per_token = extra
            if prev_p99 is not None and delta <= cfg.p99_tolerance:
                result.converged = True
                break
            prev_p99 = p99
            extra = search.update(index, measured)
        if not result.converged and best is not None:
            # Ran out of iterations: report the iterate with the
            # smallest self-consistency residual, not whichever one a
            # limit cycle happened to end on.
            serving_b, trace_b, stats_b, extra_b = best
            result.closed_loop = serving_b
            result.final_trace = trace_b
            result.final_dram_stats = stats_b
            result.extra_seconds_per_token = extra_b
            result.residual_seconds_per_token = best_residual
        return result

    # -- the batching loop -------------------------------------------------

    def _run_batching(self, requests: list[Request]) -> CosimResult:
        """Fixed-point loop over the continuous-batching engine with
        distinct prefill/decode surcharges.

        Contention is measured against an isolation baseline that
        serializes requests but preserves each request's intra-step
        arrival offsets; each request's extra wait is charged once
        (the fifo estimator) and split between the phases by the
        phase's share of the request's emitted traffic, and each
        phase runs its own scalar surcharge search.  Isolation
        baselines are recalibrated every iteration: decode-burst
        traffic and arrival offsets depend on the step batch
        composition, which shifts as the surcharges reshape the
        serving timeline, so the fifo path's per-request baseline
        cache does not apply.
        """
        from repro.serving.engine import BatchConfig, BatchingEngine, PhaseCostModel

        cfg = self.config
        base = PhaseCostModel.from_cost_model(
            self.cost_model,
            decode_marginal_fraction=cfg.decode_marginal_fraction,
        )
        batch_config = BatchConfig(
            max_batch=cfg.max_batch,
            prefill_token_budget=cfg.prefill_token_budget,
            priority=cfg.priority,
            queue_limit=cfg.queue_limit,
        )
        cycle_time = self.planner.config.timing.cycle_time
        result = CosimResult(scheme=self.scheme)
        extra_p = extra_d = 0.0
        prev_p99 = None
        search_p = _SurchargeSearch(cfg)
        search_d = _SurchargeSearch(cfg)
        best = None
        best_residual = float("inf")

        for index in range(cfg.max_iterations):
            serving = BatchingEngine(
                base,
                self.scheme,
                batch_config,
                extra_prefill_seconds_per_token=extra_p,
                extra_decode_seconds_per_token=extra_d,
            ).run(requests)
            if index == 0:
                result.open_loop = serving
            result.closed_loop = serving

            trace = self.planner.replay(serving)
            if len(trace) == 0:
                result.converged = True
                break
            stats, timings = self.backend.simulate(
                trace.addrs, trace.arrive_cycles, trace.flags, trace.request_ids
            )
            result.final_trace = trace
            result.final_dram_stats = stats

            prompt_tokens = float(
                sum(c.request.prompt_tokens for c in serving.completed)
            )
            decode_tokens = float(
                sum(c.request.decode_tokens for c in serving.completed)
            )
            if trace.phases is not None:
                # The fifo estimator, phase-attributed: each request's
                # extra DRAM wait (worst element latency vs the
                # isolated baseline) is charged exactly once -- one
                # congestion episode delays a request once, however
                # many of its step-bursts overlap it -- and split
                # between the phases by each phase's share of the
                # request's *emitted* traffic.  Batch-amortized decode
                # bursts carry 1/batch of the weight stream, so at
                # high batch the split automatically shifts the charge
                # toward prefill, whose traffic is not amortizable.
                lat = timings.complete_cycles - trace.arrive_cycles
                lat_iso = self._isolated_element_latencies(trace)
                uniq, inverse = np.unique(trace.request_ids, return_inverse=True)
                measured_max = np.zeros(len(uniq), dtype=np.int64)
                np.maximum.at(measured_max, inverse, lat)
                iso_max = np.zeros(len(uniq), dtype=np.int64)
                np.maximum.at(iso_max, inverse, lat_iso)
                waits = np.maximum(measured_max - iso_max, 0).astype(np.float64)
                waits = self._transfer_surcharge(trace, waits, uniq)
                pre_counts = np.bincount(
                    inverse, weights=(trace.phases == 0), minlength=len(uniq)
                )
                tot_counts = np.bincount(inverse, minlength=len(uniq))
                pre_share = pre_counts / np.maximum(tot_counts, 1)
                prefill_cycles = float((waits * pre_share).sum())
                decode_cycles = float(waits.sum()) - prefill_cycles
            else:
                # Planner without phase bursts (synthetic replay): the
                # fifo per-request estimator, with the lump contention
                # split by token share.
                uniq, makespans = self._per_request_makespans(
                    trace, timings.complete_cycles
                )
                iso = self._isolated_makespans(trace)
                iso_arr = np.array(
                    [iso[int(b)] for b in uniq.tolist()], dtype=np.int64
                )
                contention = np.maximum(makespans - iso_arr, 0).astype(np.float64)
                contention = self._transfer_surcharge(trace, contention, uniq)
                total = float(contention.sum())
                total_tokens = max(prompt_tokens + decode_tokens, 1.0)
                prefill_cycles = total * prompt_tokens / total_tokens
                decode_cycles = total - prefill_cycles
            measured_p = (
                prefill_cycles * cycle_time / prompt_tokens if prompt_tokens else 0.0
            )
            measured_d = (
                decode_cycles * cycle_time / decode_tokens if decode_tokens else 0.0
            )
            total_tokens = max(prompt_tokens + decode_tokens, 1.0)
            measured = (prefill_cycles + decode_cycles) * cycle_time / total_tokens
            extra_scalar = (
                extra_p * prompt_tokens + extra_d * decode_tokens
            ) / total_tokens
            residual = abs(measured_p - extra_p) + abs(measured_d - extra_d)
            result.residual_seconds_per_token = residual
            if residual < best_residual:
                best_residual = residual
                best = (serving, trace, stats, extra_scalar, extra_p, extra_d)

            p99 = serving.latency_percentile(99)
            delta = (
                float("inf")
                if prev_p99 is None
                else abs(p99 - prev_p99) / max(prev_p99, 1e-12)
            )
            result.iterations.append(
                CosimIteration(
                    index=index,
                    extra_seconds_per_token=extra_scalar,
                    measured_seconds_per_token=measured,
                    serving_p50=serving.latency_percentile(50),
                    serving_p99=p99,
                    serving_max=serving.latency_percentile(100),
                    serving_mean=serving.mean_latency,
                    utilization=serving.utilization,
                    completed=serving.n_completed,
                    rejected=serving.rejected,
                    dram_queue_delay_mean=stats.queue_delay_mean,
                    dram_queue_delay_p99=stats.queue_delay_p99,
                    dram_queue_delay_max=stats.queue_delay_max,
                    dram_idle_cycles=sum(stats.idle_channel_cycles.values()),
                    dram_total_cycles=stats.total_cycles,
                    p99_delta=delta,
                    extra_prefill_seconds_per_token=extra_p,
                    extra_decode_seconds_per_token=extra_d,
                    measured_prefill_seconds_per_token=measured_p,
                    measured_decode_seconds_per_token=measured_d,
                    serving_ttft_p99=serving.ttft_percentile(99),
                    serving_queue_delay_p99=serving.queue_delay_percentile(99),
                )
            )
            result.extra_seconds_per_token = extra_scalar
            result.extra_prefill_seconds_per_token = extra_p
            result.extra_decode_seconds_per_token = extra_d
            if prev_p99 is not None and delta <= cfg.p99_tolerance:
                result.converged = True
                break
            prev_p99 = p99
            extra_p = search_p.update(index, measured_p)
            extra_d = search_d.update(index, measured_d)
        if not result.converged and best is not None:
            serving_b, trace_b, stats_b, scalar_b, extra_p_b, extra_d_b = best
            result.closed_loop = serving_b
            result.final_trace = trace_b
            result.final_dram_stats = stats_b
            result.extra_seconds_per_token = scalar_b
            result.extra_prefill_seconds_per_token = extra_p_b
            result.extra_decode_seconds_per_token = extra_d_b
            result.residual_seconds_per_token = best_residual
        return result
