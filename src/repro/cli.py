"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``characterize``   Fig. 2 tables (parameter scaling, compute vs transfer).
- ``evaluate``       Fig. 6-style scheme comparison for one workload.
- ``skew``           Fig. 3 expert-load histogram for a routing trace.
- ``area-power``     Table 3 NDP area/power breakdown.
- ``dram``           DRAM bandwidth calibration table.
- ``bench``          Memory-controller throughput benchmark
                     (writes ``BENCH_controller.json``); accepts
                     ``--trace-file`` for on-disk ``.dramtrace`` runs.
- ``trace``          Binary DRAM trace tooling: ``trace gen`` exports
                     any generator+arrival combination to a
                     ``.dramtrace`` file, ``trace info`` inspects one.
- ``cosim``          Closed-loop serving<->DRAM co-simulation at one
                     offered load; ``cosim sweep`` drives the loop
                     across a rate grid (the tail-latency hockey
                     stick) and writes a versioned JSON result.
- ``traffic``        Production-traffic subsystem: ``traffic list``
                     and ``traffic describe`` browse the named
                     scenario zoo (each runnable via ``--preset``),
                     ``traffic export`` turns a real routing-trace
                     CSV into a trace-faithful ``.dramtrace``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.area_power import AreaPowerModel
from repro.analysis.characterize import compute_vs_transfer, param_scaling
from repro.analysis.report import format_table
from repro.core.runtime import InferenceConfig, MoNDERuntime
from repro.core.strategies import Scheme
from repro.workloads import WORKLOADS


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro.moe import nllb_moe_128, switch_large_128

    rows = []
    for base in (switch_large_128(), nllb_moe_128()):
        for e in (0, 64, 128, 256, 512):
            r = param_scaling(base, [e])[0]
            rows.append([r.model, round(r.non_expert_gb, 1), round(r.expert_gb, 1)])
    print(format_table(["model", "non-expert GB", "expert GB"], rows))
    print()
    rows = []
    for d in (1024, 2048):
        for r in compute_vs_transfer([1, 16, 256, 2048], d_model=d):
            rows.append([d, r.tokens, round(r.compute_ms, 3), round(r.transfer_ms, 3)])
    print(format_table(["d_model", "tokens", "compute ms", "transfer ms"], rows))
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    workload = WORKLOADS[args.workload](batch=args.batch)
    config = InferenceConfig(
        model=workload.model,
        batch=args.batch,
        decode_steps=args.decode_steps,
        profile=workload.profile,
    )
    runtime = MoNDERuntime(config)
    schemes = (Scheme.GPU_PM, Scheme.MD_AM, Scheme.MD_LB, Scheme.IDEAL)
    rows = []
    for part in ("encoder", "decoder"):
        for scheme in schemes:
            result = runtime.result(scheme, part)
            rows.append(
                [part, scheme.value, round(result.seconds * 1e3, 2),
                 round(result.throughput, 0),
                 round(runtime.normalized_throughput(scheme, part), 3)]
            )
    print(workload.describe())
    print(format_table(["part", "scheme", "ms", "tok/s", "vs Ideal"], rows))
    for part in ("encoder", "decoder"):
        print(f"MD+LB over GPU+PM ({part}): "
              f"{runtime.speedup(Scheme.MD_LB, Scheme.GPU_PM, part):.2f}x")
    return 0


def _cmd_skew(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.workloads import bucket_histogram
    from repro.workloads.traces import RoutingTraceGenerator

    workload = WORKLOADS[args.workload](batch=args.batch)
    gen = RoutingTraceGenerator(
        workload.model, args.batch, workload.seq_len,
        profile=workload.profile, seed=args.seed,
    )
    labels = ["0", "1-3", "4-7", "8-15", "16-31", "32-63", "64-127", "128+"]
    rows = []
    for rank in range(workload.model.n_moe_encoder_layers):
        counts = gen.encoder_layer_counts(rank)
        hist = bucket_histogram(counts)
        rows.append([rank, int(np.count_nonzero(counts))] + hist.tolist())
    print(format_table(["MoE layer", "active"] + labels, rows))
    return 0


def _cmd_area_power(args: argparse.Namespace) -> int:
    model = AreaPowerModel()
    rows = [[c.name, round(c.area_mm2, 3), round(c.power_w, 3)]
            for c in model.components()]
    rows.append(["TOTAL", round(model.total_area_mm2, 3), round(model.total_power_w, 3)])
    print(format_table(["component", "area mm2", "power W"], rows))
    print(f"power overhead: {model.power_overhead_fraction()*100:.1f}% "
          f"of the 114.2 W base device")
    return 0


def _cmd_dram(args: argparse.Namespace) -> int:
    from repro.dram.calibrate import BandwidthCalibrator

    cal = BandwidthCalibrator()
    seq = cal.sequential_read(nbytes=1 << 19)
    rand = cal.random_read(nbytes=1 << 17)
    part = cal.interleaved_streams(partitioned=True)
    shared = cal.interleaved_streams(partitioned=False)
    rows = [
        [r.pattern, round(r.sustained_bandwidth / 1e9, 1), round(r.efficiency, 2)]
        for r in (seq, rand, part, shared)
    ]
    print(format_table(["pattern", "GB/s", "efficiency"], rows))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.dram.bench import (
        all_identity_checks_pass,
        bench_controller,
        bench_trace_file,
        format_bench,
        write_bench,
    )

    if args.chaos:
        # Deterministic fault-injection smoke: every recovery path in
        # the fault-tolerant runtime, each checked bit-identical
        # against an undisturbed run.
        from repro.faults.chaos import format_chaos, run_chaos_smoke

        report = run_chaos_smoke()
        print(format_chaos(report))
        return 0 if all(s.passed for s in report) else 1

    n_requests = args.requests
    reference_requests = args.reference_requests
    if args.smoke:
        # CI-sized: finishes in well under 30 s including the
        # reference baseline.
        n_requests = min(n_requests, 20_000)
        if reference_requests is None:
            reference_requests = 5_000
    if args.trace_file is not None:
        # The file already fixes the request stream; generation flags
        # would be silently ignored, so reject them outright.
        conflicts = [
            flag
            for flag, changed in (
                ("--arrival", args.arrival is not None),
                ("--patterns", args.patterns != "streaming,random,moe-skewed"),
                ("--requests", args.requests != 1_000_000),
            )
            if changed
        ]
        if conflicts:
            print(
                f"repro bench: {', '.join(conflicts)} cannot be combined with "
                "--trace-file (the trace file already fixes the request stream; "
                "regenerate it with `repro trace gen`)",
                file=sys.stderr,
            )
            return 2
    elif args.stream_window is not None:
        print(
            "repro bench: --stream-window only applies to --trace-file runs "
            "(streaming simulation reads chunks from an on-disk .dramtrace)",
            file=sys.stderr,
        )
        return 2
    if args.workers is not None:
        if args.workers < 0:
            print(
                f"repro bench: --workers must be non-negative, got {args.workers}",
                file=sys.stderr,
            )
            return 2
        if args.workers < 2:
            # 0/1 workers is just the serial path with extra steps;
            # treat it as "no parallel run requested" rather than
            # spinning a pool (and don't record a bogus worker count
            # in the payload).
            args.workers = None
    try:
        if args.trace_file is not None:
            payload = bench_trace_file(
                args.trace_file,
                reference_requests=reference_requests,
                # The O(n^2) reference is opt-in for file traces: it
                # runs only when a cap was given (--smoke sets 5000).
                include_reference=not args.no_reference
                and reference_requests is not None,
                workers=args.workers,
                stream_window=args.stream_window,
                window=args.window,
            )
        else:
            payload = bench_controller(
                n_requests=n_requests,
                patterns=[p.strip() for p in args.patterns.split(",") if p.strip()],
                reference_requests=reference_requests,
                include_reference=not args.no_reference,
                seed=args.seed,
                arrival=args.arrival,
                arrival_gap=args.arrival_gap,
                workers=args.workers,
                window=args.window,
            )
    except (OSError, ValueError) as exc:
        print(f"repro bench: {exc}", file=sys.stderr)
        return 2
    print(format_bench(payload))
    write_bench(payload, args.output)
    print(f"wrote {args.output}")
    if not all_identity_checks_pass(payload):
        print(
            "repro bench: implementations disagreed on ControllerStats "
            "(see stats_identical / array_path_identical in the payload)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.workloads.trace_io import generate_trace_file, read_header

    if args.trace_command == "gen":
        try:
            n = generate_trace_file(
                args.output,
                pattern=args.pattern,
                n_requests=args.requests,
                seed=args.seed,
                arrival=args.arrival,
                arrival_gap=args.arrival_gap,
                chunk_requests=args.chunk_requests,
            )
        except ValueError as exc:
            print(f"repro trace gen: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {n} records to {args.output}")
        return 0
    if args.trace_command == "info":
        from repro.workloads.trace_io import RECORD_BYTES, load_trace

        try:
            version, n = read_header(args.path)
        except (OSError, ValueError) as exc:
            print(f"repro trace info: {exc}", file=sys.stderr)
            return 2
        print(f"{args.path}: .dramtrace v{version}, {n} records "
              f"({n * RECORD_BYTES} payload bytes)")
        if n:
            trace = load_trace(args.path)
            writes = int(trace.write_mask.sum())
            arrive = trace.arrive_cycles
            print(f"  reads {n - writes}  writes {writes}  "
                  f"arrive_cycle [{int(arrive.min())}, {int(arrive.max())}]")
        return 0
    raise AssertionError(f"unhandled trace subcommand {args.trace_command!r}")


def _cmd_traffic(args: argparse.Namespace) -> int:
    from repro.traffic import SCENARIOS

    if args.traffic_command == "list":
        rows = [[s.name, s.intent] for s in SCENARIOS.values()]
        print(format_table(["scenario", "intent"], rows))
        print(
            "run one end to end: repro cosim sweep --preset <scenario> "
            "(or repro cluster sweep --preset <scenario>)"
        )
        return 0
    if args.traffic_command == "describe":
        import json

        scenario = SCENARIOS.get(args.name)
        if scenario is None:
            print(
                f"repro traffic describe: unknown scenario {args.name!r}; "
                f"choose from {', '.join(sorted(SCENARIOS))}",
                file=sys.stderr,
            )
            return 2
        print(scenario.describe())
        print(json.dumps(scenario.experiment().to_dict(), indent=2))
        return 0
    if args.traffic_command == "export":
        from dataclasses import replace as dataclasses_replace

        from repro.cosim.driver import small_cosim_dram
        from repro.traffic import (
            TraceExportSpec,
            export_routing_trace,
            load_routing_trace,
        )

        try:
            trace = load_routing_trace(args.trace, top_k=args.top_k)
            spec = TraceExportSpec(
                expert_bytes=args.expert_bytes,
                burst_blocks=args.burst_blocks,
                write_fraction=args.write_fraction,
                seed=args.seed,
            )
            if args.small_dram:
                spec = dataclasses_replace(spec, config=small_cosim_dram())
            n = export_routing_trace(trace, args.output, spec)
        except (OSError, ValueError) as exc:
            print(f"repro traffic export: {exc}", file=sys.stderr)
            return 2
        print(
            f"{args.trace}: {trace.n_layers} layer(s) x {trace.n_tokens} "
            f"token(s) x {trace.n_experts} expert(s), top-{trace.top_k}"
        )
        print(f"exported {n} DRAM requests to {args.output}")
        return 0
    raise AssertionError(f"unhandled traffic subcommand {args.traffic_command!r}")


#: Defaults for the SUPPRESS-defaulted shared cosim options (see
#: build_parser: a real argparse default would let the `sweep`
#: subparser silently overwrite values parsed by its parent).
_COSIM_DEFAULTS = {
    "scheme": "md+lb",
    "workload": "flores",
    "arrival": "poisson",
    "requests": 100,
    "seed": 1,
    "mean_prompt_tokens": 512,
    "mean_decode_tokens": 32,
    "encode_us": None,
    "decode_us": None,
    "bytes_per_token": 2048,
    "max_blocks": 4096,
    "damping": 0.6,
    "max_iters": 8,
    "tol": 0.02,
    "small_dram": False,
    "synthetic_regions": False,
    "export_trace": None,
    "dram_workers": 0,
    "workers": 0,
    "engine": "fifo",
    "max_batch": 8,
    "prefill_budget": 4096,
    "priority": "prefill",
    "decode_marginal": 0.5,
    "slo_p99_ms": None,
}


def _parse_rates(spec: Optional[str]) -> Optional[tuple[float, ...]]:
    if spec is None:
        return None
    return tuple(sorted(float(r) for r in spec.split(",") if r.strip()))


def _experiment_config(args: argparse.Namespace, provided: set[str]):
    """Resolve flags into one :class:`repro.experiments.ExperimentConfig`.

    Three sources, in precedence order: a ``--config`` JSON file or
    ``--preset`` name as the base, then any flag the user actually
    typed (``provided`` -- captured before default-fill) layered on
    top; with neither, the config is built from flags alone, honoring
    the legacy ``--smoke`` mutations exactly.
    """
    from dataclasses import replace

    from repro.experiments import (
        CostConfig,
        ExperimentConfig,
        LoopConfig,
        ReplayConfig,
        ServingConfig,
        get_preset,
    )

    preset = getattr(args, "preset", None)
    config_path = getattr(args, "config", None)
    if preset and config_path:
        raise ValueError("--preset and --config are mutually exclusive")
    rates = _parse_rates(getattr(args, "rates", None))

    if preset or config_path:
        base = ExperimentConfig.load(config_path) if config_path else get_preset(preset)
        cost, replay = base.cost, base.replay
        serving, loop = base.serving, base.loop
        if "workload" in provided:
            cost = replace(cost, workload=args.workload)
        if "encode_us" in provided or "decode_us" in provided:
            cost = replace(cost, encode_us=args.encode_us, decode_us=args.decode_us)
        if "small_dram" in provided:
            replay = replace(replay, dram="small")
        if "synthetic_regions" in provided:
            replay = replace(replay, synthetic=True)
        if "bytes_per_token" in provided:
            replay = replace(replay, bytes_per_token=args.bytes_per_token)
        if "max_blocks" in provided:
            replay = replace(replay, max_blocks_per_request=args.max_blocks)
        for flag, fname in (
            ("arrival", "arrival"),
            ("mean_prompt_tokens", "mean_prompt_tokens"),
            ("mean_decode_tokens", "mean_decode_tokens"),
            ("engine", "engine"),
            ("max_batch", "max_batch"),
            ("prefill_budget", "prefill_token_budget"),
            ("priority", "priority"),
            ("decode_marginal", "decode_marginal_fraction"),
        ):
            if flag in provided:
                serving = replace(serving, **{fname: getattr(args, flag)})
        for flag, fname in (
            ("damping", "damping"),
            ("max_iters", "max_iterations"),
            ("tol", "p99_tolerance"),
            ("dram_workers", "dram_workers"),
        ):
            if flag in provided:
                loop = replace(loop, **{fname: getattr(args, flag)})
        return replace(
            base,
            scheme=args.scheme if "scheme" in provided else base.scheme,
            seed=args.seed if "seed" in provided else base.seed,
            n_requests=args.requests if "requests" in provided else base.n_requests,
            slo_p99_ms=(
                args.slo_p99_ms if "slo_p99_ms" in provided else base.slo_p99_ms
            ),
            rates=rates or base.rates,
            cost=cost,
            replay=replay,
            serving=serving,
            loop=loop,
        )

    smoke = getattr(args, "smoke", False)
    if smoke:
        # CI-sized closed loop: synthetic per-token costs and a small
        # DRAM config tuned so memory saturates within ~100k DRAM
        # requests per serving run (finishes in seconds).  Decode-heavy
        # mix: the paper's bandwidth-bound regime, and the one where
        # continuous batching's amortized weight streaming separates
        # from fifo at the saturating grid point.  The saturating grid
        # point needs ~12 bisection iterations.
        args.encode_us = 0.002
        args.decode_us = 0.02
        args.small_dram = True
        args.bytes_per_token = 8192
        args.max_blocks = 1024
        args.requests = min(args.requests, 60)
        args.mean_prompt_tokens = 8
        args.mean_decode_tokens = 24
        args.max_iters = max(args.max_iters, 16)
        rates = (1e5, 1e6, 4e6)
    if rates is None:
        rates = (0.5, 1.0, 2.0, 4.0)
    if (args.encode_us is None) != (args.decode_us is None):
        raise ValueError("--encode-us and --decode-us must be given together")
    return ExperimentConfig(
        mode="cosim",
        scheme=args.scheme,
        seed=args.seed,
        n_requests=args.requests,
        rates=rates,
        slo_p99_ms=args.slo_p99_ms,
        cost=CostConfig(
            workload=args.workload,
            encode_us=args.encode_us,
            decode_us=args.decode_us,
        ),
        replay=ReplayConfig(
            dram="small" if args.small_dram else "lpddr5x",
            synthetic=args.synthetic_regions,
            bytes_per_token=args.bytes_per_token,
            max_blocks_per_request=args.max_blocks,
            # --smoke pins the 16-expert geometry; otherwise the
            # planner is sized from the workload model.
            n_experts=16 if smoke else None,
        ),
        serving=ServingConfig(
            engine=args.engine,
            arrival=args.arrival,
            mean_prompt_tokens=args.mean_prompt_tokens,
            mean_decode_tokens=args.mean_decode_tokens,
            max_batch=args.max_batch,
            prefill_token_budget=args.prefill_budget,
            priority=args.priority,
            decode_marginal_fraction=args.decode_marginal,
        ),
        loop=LoopConfig(
            damping=args.damping,
            max_iterations=args.max_iters,
            p99_tolerance=args.tol,
            dram_workers=args.dram_workers,
        ),
    )




def _print_traffic_columns(sweep) -> None:
    """Per-tenant tails (against their scenario SLOs) and flash-window
    vs steady-window tails, for sweeps driven by a traffic scenario.
    Silent on legacy sweeps -- the columns are empty there."""
    tenants = sorted(
        {name for p in sweep.points for name in p.tenant_closed_p99}
    )
    if tenants:
        rows = []
        for name in tenants:
            worst = max(
                (p.tenant_closed_p99.get(name, 0.0) for p in sweep.points),
                default=0.0,
            )
            done = sum(p.tenant_completed.get(name, 0) for p in sweep.points)
            slo_ms = sweep.tenant_slo_p99_ms.get(name)
            if slo_ms is None:
                verdict = "-"
            else:
                verdict = "ok" if worst * 1e3 <= slo_ms else "VIOLATED"
            rows.append(
                [
                    name,
                    done,
                    f"{worst * 1e3:.4g}",
                    "-" if slo_ms is None else f"{slo_ms:g}",
                    verdict,
                ]
            )
        print(
            format_table(
                ["tenant", "completed", "worst closed p99 ms",
                 "slo p99 ms", "slo"],
                rows,
            )
        )
    flashy = [p for p in sweep.points if p.closed_flash_p99 > 0.0]
    if flashy:
        worst = max(flashy, key=lambda p: p.closed_flash_p99)
        ratio = (
            worst.closed_flash_p99 / worst.closed_steady_p99
            if worst.closed_steady_p99 > 0
            else float("inf")
        )
        print(
            f"flash window p99 {worst.closed_flash_p99:.3e} s vs steady "
            f"{worst.closed_steady_p99:.3e} s ({ratio:.2f}x) at rate "
            f"{worst.rate:g}"
        )


def _cosim_export(trace, path: str) -> None:
    from repro.workloads.trace_io import write_trace

    n = write_trace(path, trace.addrs, trace.arrive_cycles, trace.flags)
    print(f"exported {n} DRAM requests to {path}")


def _cmd_cosim(args: argparse.Namespace) -> int:
    from repro.cosim import CosimDriver, format_sweep
    from repro.serving.workload import RequestGenerator

    provided = {key for key in _COSIM_DEFAULTS if hasattr(args, key)}
    for key, value in _COSIM_DEFAULTS.items():
        if not hasattr(args, key):
            setattr(args, key, value)
    try:
        exp = _experiment_config(args, provided)

        if args.cosim_command == "sweep":
            from repro.cosim import SWEEP_CKPT_SUFFIX, SweepInterrupted
            from repro.experiments import run_experiment

            rates = list(exp.rates)
            ckpt = args.checkpoint or (args.output + SWEEP_CKPT_SUFFIX)
            on_point = None
            if args.interrupt_after is not None:
                from repro.faults import interrupt_after

                on_point = interrupt_after(args.interrupt_after)
            try:
                sweep, runs = run_experiment(
                    exp,
                    workers=args.workers,
                    checkpoint_path=ckpt,
                    resume=args.resume,
                    on_point=on_point,
                )
            except SweepInterrupted as exc:
                print(
                    f"repro cosim sweep: interrupted ({exc}); completed "
                    f"points are checkpointed in {ckpt} -- rerun the same "
                    "command with --resume to continue",
                    file=sys.stderr,
                )
                return 130
            print(format_sweep(sweep))
            if sweep.slo_p99_seconds > 0.0:
                source = "auto, 5x uncongested p99" if sweep.slo_auto else "--slo-p99-ms"
                if sweep.slo_capacity_rps > 0.0:
                    print(
                        f"SLO capacity ({sweep.engine}): "
                        f"{sweep.slo_capacity_rps:.3g} req/s at p99 <= "
                        f"{sweep.slo_p99_seconds * 1e3:.3g} ms ({source})"
                    )
                else:
                    print(
                        f"SLO capacity ({sweep.engine}): none -- p99 exceeds "
                        f"{sweep.slo_p99_seconds * 1e3:.3g} ms ({source}) at "
                        "every grid point"
                    )
            _print_traffic_columns(sweep)
            sweep.save(args.output)
            print(f"wrote {args.output}")
            if args.export_trace is not None:
                exported = runs[-1]
                export_rate = rates[-1]
                if args.export_rate is not None:
                    by_rate = dict(zip(rates, runs))
                    if args.export_rate not in by_rate:
                        raise ValueError(
                            f"--export-rate {args.export_rate} not in the grid {rates}"
                        )
                    exported = by_rate[args.export_rate]
                    export_rate = args.export_rate
                if exported is None or exported.final_trace is None:
                    # Checkpoint-restored and failed points carry no
                    # live run (their trace was never rebuilt).
                    print(
                        f"repro cosim sweep: no trace to export for rate "
                        f"{export_rate:g} (point was restored from a "
                        "checkpoint or failed); rerun without --resume to "
                        "regenerate it",
                        file=sys.stderr,
                    )
                else:
                    _cosim_export(exported.final_trace, args.export_trace)
            failed = [p for p in sweep.points if p.failed]
            for p in failed:
                print(
                    f"repro cosim sweep: rate {p.rate:g} FAILED: {p.error}",
                    file=sys.stderr,
                )
            if not sweep.points[0].converged:
                best = sweep.points[0].residual_seconds_per_token
                print(
                    "repro cosim sweep: lowest offered load failed to converge "
                    f"within {exp.loop.max_iterations} iterations "
                    f"(best-iterate residual {best * 1e9:.3f} ns/token)",
                    file=sys.stderr,
                )
                return 1
            return 1 if failed else 0

        from repro.experiments import build_components

        cost, scheme, planner, config = build_components(exp)
        generator = RequestGenerator(
            args.rate,
            mean_prompt_tokens=exp.serving.mean_prompt_tokens,
            mean_decode_tokens=exp.serving.mean_decode_tokens,
            seed=exp.seed,
            arrival=exp.serving.arrival,
        )
        driver = CosimDriver(cost, scheme, planner, config=config)
        try:
            result = driver.run(generator.generate(exp.n_requests))
        finally:
            driver.close()
    except (OSError, ValueError) as exc:
        print(f"repro cosim: {exc}", file=sys.stderr)
        return 2

    rows = [
        [
            it.index,
            f"{it.extra_seconds_per_token * 1e9:.3f}",
            f"{it.measured_seconds_per_token * 1e9:.3f}",
            f"{it.serving_p50 * 1e6:.3f}",
            f"{it.serving_p99 * 1e6:.3f}",
            round(it.utilization, 3),
            round(it.dram_queue_delay_p99, 1),
            "-" if it.p99_delta == float("inf") else f"{it.p99_delta:.4f}",
        ]
        for it in result.iterations
    ]
    print(format_table(
        ["iter", "extra ns/tok", "meas ns/tok", "p50 us", "p99 us",
         "util", "dram qd p99", "p99 delta"],
        rows,
    ))
    open_p99 = result.open_loop.latency_percentile(99)
    closed_p99 = result.closed_loop.latency_percentile(99)
    ratio = closed_p99 / open_p99 if open_p99 > 0 else 1.0
    print(
        f"{scheme.value} @ {args.rate:g} req/s: "
        f"{'converged' if result.converged else 'NOT converged'} in "
        f"{result.n_iterations} iterations; open-loop p99 {open_p99:.3e} s, "
        f"closed-loop p99 {closed_p99:.3e} s ({ratio:.2f}x)"
    )
    if not result.converged:
        print(
            "repro cosim: reporting the best (lowest-residual) iterate; "
            f"residual {result.residual_seconds_per_token * 1e9:.3f} ns/token",
            file=sys.stderr,
        )
    if args.export_trace is not None and result.final_trace is not None:
        _cosim_export(result.final_trace, args.export_trace)
    return 0 if result.converged else 1


def _cmd_cluster(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.cluster import format_cluster_sweep
    from repro.experiments import run_experiment

    provided = {key for key in _COSIM_DEFAULTS if hasattr(args, key)}
    for key, value in _COSIM_DEFAULTS.items():
        if not hasattr(args, key):
            setattr(args, key, value)
    try:
        exp = _experiment_config(args, provided)
        cluster = exp.cluster
        overrides = {}
        if args.replicas is not None:
            overrides["replicas"] = tuple(
                int(r) for r in args.replicas.split(",") if r.strip()
            )
        if args.devices_per_replica is not None:
            overrides["devices_per_replica"] = args.devices_per_replica
        if args.policies is not None:
            overrides["policies"] = tuple(
                p.strip() for p in args.policies.split(",") if p.strip()
            )
        if args.balancer is not None:
            overrides["balancer"] = args.balancer
        if args.hot_fraction is not None:
            overrides["hot_fraction"] = args.hot_fraction
        if args.activation_bytes is not None:
            overrides["activation_bytes_per_token"] = args.activation_bytes
        if overrides:
            cluster = replace(cluster, **overrides)
        exp = exp.replaced(mode="cluster", cluster=cluster)
        result, _runs = run_experiment(exp)
    except (OSError, ValueError) as exc:
        print(f"repro cluster sweep: {exc}", file=sys.stderr)
        return 2

    print(format_cluster_sweep(result))
    if result.slo_p99_seconds > 0.0:
        source = "auto, 5x uncongested p99" if result.slo_auto else "--slo-p99-ms"
        print(
            f"SLO threshold: p99 <= {result.slo_p99_seconds * 1e3:.3g} ms "
            f"({source})"
        )
        top_rate = exp.rates[-1]
        devices = result.devices_for_load(top_rate)
        if devices is not None:
            print(
                f"devices for {top_rate:g} req/s within SLO: {devices} "
                f"({result.cluster.devices_per_replica} per replica)"
            )
        else:
            print(
                f"devices for {top_rate:g} req/s within SLO: none -- no "
                "swept fleet size sustains it"
            )
    result.save(args.output)
    print(f"wrote {args.output}")
    failed = [
        (c, p) for c in result.curves for p in c.points if p.failed
    ]
    for c, p in failed:
        print(
            f"repro cluster sweep: replicas={c.replicas} policy={c.policy} "
            f"rate {p.rate:g} FAILED: {p.error}",
            file=sys.stderr,
        )
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="MoNDE (DAC 2024) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("characterize", help="Fig. 2 characterization tables")

    evaluate = sub.add_parser("evaluate", help="Fig. 6-style scheme comparison")
    evaluate.add_argument("--workload", choices=sorted(WORKLOADS), default="flores")
    evaluate.add_argument("--batch", type=int, default=4)
    evaluate.add_argument("--decode-steps", type=int, default=16)

    skew = sub.add_parser("skew", help="Fig. 3-style expert-load histogram")
    skew.add_argument("--workload", choices=sorted(WORKLOADS), default="flores")
    skew.add_argument("--batch", type=int, default=4)
    skew.add_argument("--seed", type=int, default=0)

    sub.add_parser("area-power", help="Table 3 NDP area/power")
    sub.add_parser("dram", help="DRAM bandwidth calibration")

    bench = sub.add_parser(
        "bench", help="memory-controller throughput benchmark"
    )
    bench.add_argument("--requests", type=int, default=1_000_000,
                       help="trace length for the indexed scheduler")
    bench.add_argument("--reference-requests", type=int, default=None,
                       help="trace length for the O(n^2) reference "
                            "(defaults to --requests; cap it for speed)")
    bench.add_argument("--no-reference", action="store_true",
                       help="skip the reference baseline")
    bench.add_argument("--patterns", default="streaming,random,moe-skewed")
    bench.add_argument("--arrival", choices=("poisson", "batched", "onoff"),
                       default=None,
                       help="open-loop arrival process stamped onto the "
                            "trace (default: all requests at cycle 0)")
    bench.add_argument("--arrival-gap", type=float, default=8.0,
                       help="mean inter-arrival gap in controller cycles "
                            "for --arrival")
    bench.add_argument("--smoke", action="store_true",
                       help="CI-sized run (20k requests, 5k reference)")
    bench.add_argument("--chaos", action="store_true",
                       help="run the deterministic fault-injection smoke "
                            "instead of the benchmark: worker kill/hang/"
                            "crash recovery, trace corruption detection, "
                            "and sweep interrupt+resume, each verified "
                            "bit-identical to an undisturbed run")
    bench.add_argument("--trace-file", default=None, metavar="PATH",
                       help="bench an on-disk .dramtrace instead of the "
                            "generated patterns (end-to-end load+simulate, "
                            "array path vs Request-list path; excludes "
                            "--requests/--patterns/--arrival; the O(n^2) "
                            "reference runs only when --reference-requests "
                            "caps it)")
    bench.add_argument("--window", type=int, default=64)
    bench.add_argument("--workers", type=int, default=None, metavar="N",
                       help="also time the parallel drain path: per-channel "
                            "drains over an N-worker pool, checked "
                            "bit-identical against the serial array path")
    bench.add_argument("--stream-window", type=int, default=None, metavar="W",
                       help="with --trace-file: also time the bounded-window "
                            "streaming path (simulate_trace_streaming with "
                            "W-request admission chunks), checked "
                            "bit-identical against the in-memory array path")
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument("--output", default="BENCH_controller.json")

    trace = sub.add_parser(
        "trace", help="binary .dramtrace generation and inspection"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    gen = trace_sub.add_parser(
        "gen", help="export a generator+arrival combination to .dramtrace"
    )
    gen.add_argument("--pattern", default="random",
                     choices=("streaming", "random", "moe-skewed"))
    gen.add_argument("--requests", type=int, default=1_000_000)
    gen.add_argument("--arrival", choices=("poisson", "batched", "onoff"),
                     default=None,
                     help="open-loop arrival process (default: all at cycle 0)")
    gen.add_argument("--arrival-gap", type=float, default=8.0,
                     help="mean inter-arrival gap in controller cycles")
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument("--chunk-requests", type=int, default=4_000_000,
                     help="records per write chunk (bounds staging memory)")
    gen.add_argument("--output", required=True, metavar="PATH.dramtrace")
    info = trace_sub.add_parser("info", help="inspect a .dramtrace header")
    info.add_argument("path")

    traffic = sub.add_parser(
        "traffic",
        help="production-traffic scenarios and routing-trace ingestion",
    )
    traffic_sub = traffic.add_subparsers(dest="traffic_command", required=True)
    traffic_sub.add_parser("list", help="the named scenario zoo")
    describe = traffic_sub.add_parser(
        "describe", help="one scenario's intent + resolved experiment JSON"
    )
    describe.add_argument("name")
    texport = traffic_sub.add_parser(
        "export",
        help="render a routing-trace CSV (layer_id,token_id,"
             "expert_0_prob,...) as a trace-faithful .dramtrace",
    )
    texport.add_argument("--trace", required=True, metavar="PATH.csv",
                         help="routing-trace CSV (see README: one row per "
                              "(layer, token) with per-expert probabilities)")
    texport.add_argument("--output", required=True, metavar="PATH.dramtrace")
    texport.add_argument("--top-k", type=int, default=2,
                         help="experts each token routes to (default: 2)")
    texport.add_argument("--expert-bytes", type=int, default=1 << 18,
                         help="weight bytes per expert region "
                              "(default: 262144)")
    texport.add_argument("--burst-blocks", type=int, default=32,
                         help="64B blocks per routing event (default: 32)")
    texport.add_argument("--write-fraction", type=float, default=0.1,
                         help="fraction of bursts that are writebacks "
                              "(default: 0.1)")
    texport.add_argument("--seed", type=int, default=0,
                         help="writeback/resume draw seed; same trace + "
                              "same seed => byte-identical file "
                              "(default: 0)")
    texport.add_argument("--small-dram", action="store_true",
                         help="address-map against the small test DRAM "
                              "config instead of LPDDR5X-8533")

    # Shared options appear on both `cosim` and `cosim sweep`.  All
    # defaults are SUPPRESS (applied later from _COSIM_DEFAULTS): the
    # sweep subparser shares the namespace with its parent, so a real
    # default here would silently overwrite a value the user passed
    # before the `sweep` token.
    supp = argparse.SUPPRESS
    cosim_common = argparse.ArgumentParser(add_help=False, argument_default=supp)
    cosim_common.add_argument("--scheme", choices=[s.value for s in Scheme])
    cosim_common.add_argument("--workload", choices=sorted(WORKLOADS),
                              help="model/profile for the runtime cost model "
                                   "and the expert replay geometry "
                                   "(default: flores)")
    cosim_common.add_argument("--arrival", choices=("poisson", "batched", "onoff"),
                              help="serving-level arrival process "
                                   "(default: poisson)")
    cosim_common.add_argument("--requests", type=int,
                              help="serving requests per run (default: 100)")
    cosim_common.add_argument("--seed", type=int, help="default: 1")
    cosim_common.add_argument("--mean-prompt-tokens", type=int,
                              help="default: 512")
    cosim_common.add_argument("--mean-decode-tokens", type=int,
                              help="default: 32")
    cosim_common.add_argument("--encode-us", type=float,
                              help="synthetic encode cost (us/token); with "
                                   "--decode-us, skips the runtime cost model")
    cosim_common.add_argument("--decode-us", type=float)
    cosim_common.add_argument("--bytes-per-token", type=int,
                              help="default: 2048")
    cosim_common.add_argument("--max-blocks", type=int,
                              help="cap on 64B blocks per request burst "
                                   "(default: 4096)")
    cosim_common.add_argument("--damping", type=float, help="default: 0.6")
    cosim_common.add_argument("--max-iters", type=int, help="default: 8")
    cosim_common.add_argument("--tol", type=float,
                              help="relative p99 convergence tolerance "
                                   "(default: 0.02)")
    cosim_common.add_argument("--small-dram", action="store_true",
                              help="use the small test DRAM config instead "
                                   "of the paper's LPDDR5X-8533")
    cosim_common.add_argument("--synthetic-regions", action="store_true",
                              help="seeded synthetic weight regions instead "
                                   "of expert-faithful replay")
    cosim_common.add_argument("--export-trace", metavar="PATH.dramtrace",
                              help="export the converged iteration's DRAM "
                                   "request stream")
    cosim_common.add_argument("--dram-workers", type=int, metavar="N",
                              help="fan each DRAM replay's per-channel "
                                   "drains over an N-worker pool "
                                   "(bit-identical stats; default: serial)")
    cosim_common.add_argument("--engine", choices=("fifo", "batching"),
                              help="serving engine: one-request-at-a-time "
                                   "fifo (default) or phase-aware "
                                   "continuous batching")
    cosim_common.add_argument("--max-batch", type=int, metavar="B",
                              help="batching: in-flight decode slots per "
                                   "step (default: 8)")
    cosim_common.add_argument("--prefill-budget", type=int, metavar="TOKENS",
                              help="batching: prompt-token budget admitted "
                                   "per step (default: 4096)")
    cosim_common.add_argument("--priority", choices=("prefill", "decode"),
                              help="batching: admit new prefills alongside "
                                   "decodes (prefill, default) or only "
                                   "when idle (decode)")
    cosim_common.add_argument("--decode-marginal", type=float, metavar="F",
                              help="batching: marginal fraction of the "
                                   "per-token decode cost that scales with "
                                   "batch size; the rest is amortized "
                                   "weight streaming (default: 0.5)")
    cosim_common.add_argument("--slo-p99-ms", type=float, metavar="MS",
                              help="sweep: closed-loop p99 SLO threshold "
                                   "for the capacity answer (default: "
                                   "auto, 5x the uncongested p99)")
    from repro.experiments import PRESET_NAMES

    cosim_common.add_argument("--preset", choices=PRESET_NAMES,
                              help="named experiment preset as the base "
                                   "config; explicit flags override "
                                   "individual fields")
    cosim_common.add_argument("--config", metavar="PATH.json",
                              help="experiment config file "
                                   "(repro.experiments.ExperimentConfig "
                                   "JSON) as the base; explicit flags "
                                   "override individual fields")

    cosim = sub.add_parser(
        "cosim", parents=[cosim_common],
        help="closed-loop serving<->DRAM co-simulation",
    )
    cosim.add_argument("--rate", type=float, default=2.0,
                       help="offered load (requests/second)")
    cosim_sub = cosim.add_subparsers(dest="cosim_command")
    cosim_sweep = cosim_sub.add_parser(
        "sweep", parents=[cosim_common],
        help="drive the loop across an offered-load grid",
    )
    cosim_sweep.add_argument("--rates", default=None,
                             help="comma-separated requests/second grid "
                                  "(default: 0.5,1.0,2.0,4.0, or the "
                                  "preset/config grid)")
    cosim_sweep.add_argument("--workers", type=int, default=0, metavar="N",
                             help="run independent rate-grid points over an "
                                  "N-worker process pool (bit-identical to "
                                  "the serial sweep; default: serial)")
    cosim_sweep.add_argument("--smoke", action="store_true",
                             help="CI-sized closed-loop sweep (synthetic "
                                  "costs, small DRAM, pinned rate grid)")
    cosim_sweep.add_argument("--export-rate", type=float, default=None,
                             help="grid rate whose converged trace "
                                  "--export-trace writes (default: highest)")
    cosim_sweep.add_argument("--output", default="cosim_sweep.json")
    cosim_sweep.add_argument("--checkpoint", default=None, metavar="PATH",
                             help="durable per-point checkpoint file "
                                  "(default: <output>.sweep.ckpt)")
    cosim_sweep.add_argument("--resume", action="store_true",
                             help="skip rate points already recorded in the "
                                  "checkpoint (bit-identical to an "
                                  "uninterrupted sweep)")
    cosim_sweep.add_argument("--interrupt-after", type=int, default=None,
                             metavar="N",
                             help="fault injection: abort the sweep after N "
                                  "completed points (exercises the "
                                  "checkpoint/--resume path)")

    from repro.cluster.balancer import BALANCERS
    from repro.cluster.sharding import SHARDING_POLICIES

    cluster = sub.add_parser(
        "cluster",
        help="cluster-scale sharded serving simulation",
    )
    cluster_sub = cluster.add_subparsers(dest="cluster_command", required=True)
    cluster_sweep = cluster_sub.add_parser(
        "sweep", parents=[cosim_common],
        help="replica-count x sharding-policy capacity curves "
             "(how many NDP devices serve offered load R at p99 <= X)",
    )
    cluster_sweep.add_argument("--rates", default=None,
                               help="comma-separated requests/second grid "
                                    "(default: 0.5,1.0,2.0,4.0, or the "
                                    "preset/config grid)")
    cluster_sweep.add_argument("--replicas", default=None,
                               help="comma-separated replica counts, "
                                    "ascending (default: 1,2)")
    cluster_sweep.add_argument("--devices-per-replica", type=int,
                               default=None, metavar="N",
                               help="NDP devices each replica shards its "
                                    "experts across (default: 1)")
    cluster_sweep.add_argument("--policies", default=None,
                               help="comma-separated sharding policies "
                                    f"from {', '.join(SHARDING_POLICIES)} "
                                    "(default: replicated)")
    cluster_sweep.add_argument("--balancer", choices=BALANCERS,
                               default=None,
                               help="request placement across replicas "
                                    "(default: round_robin)")
    cluster_sweep.add_argument("--hot-fraction", type=float, default=None,
                               metavar="F",
                               help="hot_cold: fraction of each layer's "
                                    "experts kept replicated "
                                    "(default: 0.125)")
    cluster_sweep.add_argument("--activation-bytes", type=int, default=None,
                               metavar="B",
                               help="activation payload per token shipped "
                                    "over PCIe for remote-expert accesses "
                                    "(default: 0 = transfers free)")
    cluster_sweep.add_argument("--output", default="cluster_sweep.json")
    return parser


_HANDLERS = {
    "characterize": _cmd_characterize,
    "evaluate": _cmd_evaluate,
    "skew": _cmd_skew,
    "area-power": _cmd_area_power,
    "dram": _cmd_dram,
    "bench": _cmd_bench,
    "trace": _cmd_trace,
    "traffic": _cmd_traffic,
    "cosim": _cmd_cosim,
    "cluster": _cmd_cluster,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
