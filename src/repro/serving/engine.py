"""Phase-aware continuous-batching serving engine.

The seed serving model priced a whole request with one scalar
``service_time`` and ran it through a FIFO single-server queue.  Real
MoE serving is phase-structured -- the encoder (prefill) pass is
compute-shaped and batches over prompt tokens, while each
auto-regressive decode step is bandwidth-shaped and batches over
in-flight requests (the asymmetry at the core of the paper).  This
module models that directly:

- :class:`PhaseCostModel` prices prefill and decode separately, with a
  ``decode_marginal_fraction`` splitting each decode step into a fixed
  bandwidth-bound part (expert weights stream once per step,
  amortized over the batch) and a marginal per-request part.
- :class:`RuntimePhaseCostModel` calibrates those prices from
  :class:`~repro.core.runtime.MoNDERuntime` encoder/decoder results at
  the batch geometry each step actually composes (quantized to powers
  of two so calibration stays cheap), not a fixed reference geometry.
- :class:`BatchingEngine` runs discrete inference *steps* on the
  shared :class:`~repro.sim.engine.SimEngine`: each step admits new
  prefills from the waiting queue (token-budget and batch-size
  bounded, prefill- or decode-priority) alongside one decode token
  for every in-flight request, charges the step from the cost model,
  and records per-request TTFT, queue delay, per-step decode batches,
  and end-to-end latency.

At ``max_batch=1`` the engine coalesces each request's prefill and
full decode into one fused step whose cost is the exact seed
``CostModel.service_time`` expression -- the configuration behind
:class:`~repro.serving.simulator.ServingSimulator`, pinned
bit-identical to :class:`~repro.serving.reference.ReferenceFIFOSimulator`
by the equivalence suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.engine import Platform
from repro.core.runtime import InferenceConfig, MoNDERuntime
from repro.core.strategies import Scheme
from repro.moe.config import MoEModelConfig
from repro.serving.simulator import CompletedRequest, CostModel, ServingResult
from repro.serving.workload import Request, RequestPhase
from repro.sim.engine import SimEngine
from repro.workloads.traces import RoutingProfile

BATCH_PRIORITIES = ("prefill", "decode")


@dataclass(frozen=True)
class PhaseCostModel:
    """Per-phase serving costs.

    ``prefill_seconds_per_token`` prices the encoder pass linearly in
    prompt tokens.  A decode step costs
    ``decode_seconds_per_token * ((1 - mf) + mf * batch)`` where
    ``mf = decode_marginal_fraction``: the ``(1 - mf)`` share is the
    fixed bandwidth-bound cost of streaming expert weights once per
    step (amortized over the whole decode batch), the ``mf`` share
    scales per request.  ``mf = 1`` recovers the seed model where a
    batch of B decodes costs exactly B serial decodes.
    """

    prefill_seconds_per_token: float
    decode_seconds_per_token: float
    decode_marginal_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.prefill_seconds_per_token < 0 or self.decode_seconds_per_token < 0:
            raise ValueError("per-token costs must be non-negative")
        if not 0.0 <= self.decode_marginal_fraction <= 1.0:
            raise ValueError("decode_marginal_fraction must be in [0, 1]")

    def prefill_seconds(self, prompt_tokens: int) -> float:
        return self.prefill_seconds_per_token * prompt_tokens

    def decode_step_seconds(self, batch: int) -> float:
        """Cost of one decode step producing one token for each of
        ``batch`` in-flight requests."""
        if batch < 1:
            return 0.0
        mf = self.decode_marginal_fraction
        return self.decode_seconds_per_token * ((1.0 - mf) + mf * batch)

    def request_seconds(self, request: Request) -> float:
        """Whole-request cost at batch 1 -- kept as the exact float
        expression of :meth:`CostModel.service_time` so the fused
        ``max_batch=1`` engine path is bit-identical to the seed FIFO
        simulator."""
        return (
            self.prefill_seconds_per_token * request.prompt_tokens
            + self.decode_seconds_per_token * request.decode_tokens
        )

    @classmethod
    def from_cost_model(
        cls, cost_model: CostModel, decode_marginal_fraction: float = 1.0
    ) -> "PhaseCostModel":
        """Adopt a scalar :class:`CostModel`'s per-token prices."""
        return cls(
            prefill_seconds_per_token=cost_model.encode_seconds_per_token,
            decode_seconds_per_token=cost_model.decode_seconds_per_token,
            decode_marginal_fraction=decode_marginal_fraction,
        )


def _quantize_pow2(n: int) -> int:
    """Smallest power of two >= n (>= 1)."""
    return 1 << max(0, int(n - 1).bit_length())


class RuntimePhaseCostModel:
    """Phase costs calibrated from the scheme runtime at the composed
    batch geometry.

    Instead of pricing every step from one reference geometry, each
    ``prefill_seconds`` / ``decode_step_seconds`` call calibrates
    :class:`~repro.core.runtime.MoNDERuntime` at the (power-of-two
    quantized) geometry the engine actually composed and interpolates
    linearly inside the quantization bucket.  Results are memoized per
    geometry, so a serving run touches the runtime a handful of times
    however many steps it executes.  Decode amortization needs no
    ``decode_marginal_fraction`` knob here -- it emerges from the
    runtime itself, which prices a batched decode step with its
    expert weights fetched once.
    """

    def __init__(
        self,
        model: MoEModelConfig,
        scheme: Scheme,
        platform: Optional[Platform] = None,
        profile: Optional[RoutingProfile] = None,
        calib_decode_steps: int = 4,
    ) -> None:
        if calib_decode_steps < 1:
            raise ValueError("calib_decode_steps must be >= 1")
        self.model = model
        self.scheme = scheme
        self.platform = platform
        self.profile = profile
        self.calib_decode_steps = calib_decode_steps
        self._prefill_cache: dict[int, float] = {}
        self._decode_cache: dict[int, float] = {}

    def _runtime(self, batch: int, seq_len: int) -> MoNDERuntime:
        config = InferenceConfig(
            model=self.model,
            batch=batch,
            seq_len=seq_len,
            decode_steps=self.calib_decode_steps,
            profile=self.profile,
        )
        return MoNDERuntime(config, platform=self.platform)

    def prefill_seconds(self, prompt_tokens: int) -> float:
        """Encoder-pass seconds for one prompt, calibrated at the
        quantized prompt length."""
        if prompt_tokens < 1:
            return 0.0
        q = _quantize_pow2(prompt_tokens)
        if q not in self._prefill_cache:
            enc = self._runtime(batch=1, seq_len=q).encoder_result(self.scheme)
            self._prefill_cache[q] = enc.seconds / enc.n_tokens
        return self._prefill_cache[q] * prompt_tokens

    def decode_step_seconds(self, batch: int) -> float:
        """One decode step's seconds at the quantized decode batch."""
        if batch < 1:
            return 0.0
        q = _quantize_pow2(batch)
        if q not in self._decode_cache:
            dec = self._runtime(batch=q, seq_len=q).decoder_result(self.scheme)
            # decoder_result covers calib_decode_steps steps of q
            # tokens each; keep the whole-step cost at batch q.
            self._decode_cache[q] = dec.seconds / self.calib_decode_steps
        # Linear in batch inside the bucket (exact at the bucket top).
        return self._decode_cache[q] * (batch / q)

    def request_seconds(self, request: Request) -> float:
        return self.prefill_seconds(request.prompt_tokens) + (
            request.decode_tokens * self.decode_step_seconds(1)
        )


@dataclass(frozen=True)
class BatchConfig:
    """Admission policy for the batching engine.

    ``max_batch`` bounds the number of requests in one step (decode
    slots plus newly admitted prefills).  ``prefill_token_budget``
    caps the prompt tokens admitted per step (a Sarathi-style chunk
    bound keeping mixed steps short); a request larger than the whole
    budget is still admitted alone rather than starved.  ``priority``
    selects what a step prefers: ``"prefill"`` admits new requests
    into free slots every step (optimizes TTFT), ``"decode"`` admits
    only when no decode is in flight (optimizes per-token decode
    latency).  ``queue_limit`` bounds the waiting queue; arrivals
    beyond it are rejected, exactly like the seed FIFO simulator.
    """

    max_batch: int = 8
    prefill_token_budget: int = 4096
    priority: str = "prefill"
    queue_limit: int = 512

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.prefill_token_budget < 1:
            raise ValueError("prefill_token_budget must be >= 1")
        if self.priority not in BATCH_PRIORITIES:
            raise ValueError(
                f"priority must be one of {BATCH_PRIORITIES}, got {self.priority!r}"
            )
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")


@dataclass
class _DecodeSlot:
    """One request mid-decode: tokens left and its completion record."""

    request: Request
    record: CompletedRequest
    remaining: int


class BatchingEngine:
    """Continuous-batching server over a phase cost model.

    ``extra_prefill_seconds_per_token`` / ``extra_decode_seconds_per_token``
    are the co-simulation loop's per-phase surcharges: each step is
    charged ``extra_prefill * admitted_prompt_tokens`` and
    ``extra_decode * decode_batch`` on top of the cost model (both
    zero outside the loop, which is a float no-op).
    """

    def __init__(
        self,
        cost_model,
        scheme: Scheme,
        config: Optional[BatchConfig] = None,
        extra_prefill_seconds_per_token: float = 0.0,
        extra_decode_seconds_per_token: float = 0.0,
    ) -> None:
        self.cost_model = cost_model
        self.scheme = scheme
        self.config = config or BatchConfig()
        self.extra_prefill = extra_prefill_seconds_per_token
        self.extra_decode = extra_decode_seconds_per_token

    # -- fused path: max_batch=1 == the seed FIFO ---------------------------

    def _run_fused(self, requests: list[Request]) -> ServingResult:
        """One request per step, prefill+decode coalesced: the seed
        FIFO simulator's exact event structure and float arithmetic
        (the surcharge terms add 0.0 when unused)."""
        engine = SimEngine()
        result = ServingResult(scheme=self.scheme, engine="fifo")
        cost = self.cost_model
        queue: list[Request] = []
        state = {"busy": False}

        def start_service(request: Request) -> None:
            state["busy"] = True
            start = engine.now
            service = (
                cost.request_seconds(request)
                + self.extra_prefill * request.prompt_tokens
                + self.extra_decode * request.decode_tokens
            )
            result.busy_seconds += service
            request.lifecycle.phase = RequestPhase.PREFILL
            request.lifecycle.admitted = start
            # TTFT bookkeeping only -- computed arithmetically so it
            # never perturbs the event timeline the seed FIFO produces.
            first_token = start + (
                cost.prefill_seconds(request.prompt_tokens)
                + self.extra_prefill * request.prompt_tokens
            )

            def finish() -> None:
                request.lifecycle.phase = RequestPhase.FINISHED
                request.lifecycle.first_token = min(first_token, engine.now)
                request.lifecycle.finished = engine.now
                result.completed.append(
                    CompletedRequest(
                        request=request,
                        start=start,
                        finish=engine.now,
                        first_token=request.lifecycle.first_token,
                    )
                )
                if queue:
                    start_service(queue.pop(0))
                else:
                    state["busy"] = False

            engine.schedule_in(service, finish)

        def arrive(request: Request) -> None:
            request.lifecycle.reset()
            if state["busy"]:
                if len(queue) >= self.config.queue_limit:
                    result.rejected += 1
                    return
                queue.append(request)
            else:
                start_service(request)

        for request in sorted(requests, key=lambda r: r.arrival):
            engine.schedule(request.arrival, lambda r=request: arrive(r))
        result.horizon = engine.run()
        return result

    # -- stepped path: continuous batching ----------------------------------

    def _compose(self, waiting: list[Request], running: list[_DecodeSlot]):
        """Pick the prefills this step admits (popped from waiting)."""
        cfg = self.config
        admitted: list[Request] = []
        if cfg.priority == "decode" and running:
            return admitted
        free = cfg.max_batch - len(running)
        budget = cfg.prefill_token_budget
        while waiting and len(admitted) < free:
            nxt = waiting[0]
            if admitted and nxt.prompt_tokens > budget:
                break
            admitted.append(waiting.pop(0))
            budget -= nxt.prompt_tokens
            if budget <= 0:
                break
        return admitted

    def _run_stepped(self, requests: list[Request]) -> ServingResult:
        engine = SimEngine()
        result = ServingResult(scheme=self.scheme, engine="batching")
        cost = self.cost_model
        waiting: list[Request] = []
        running: list[_DecodeSlot] = []
        state = {"busy": False}

        def start_step() -> None:
            admitted = self._compose(waiting, running)
            if not admitted and not running:
                state["busy"] = False
                return
            state["busy"] = True
            now = engine.now
            duration = 0.0
            # Prefills run back to back within the step; remember where
            # each one lands so the DRAM replay can emit its weight
            # traffic when the compute actually touches it instead of
            # spiking the whole step's traffic at the step start.
            prefill_starts = []
            for request in admitted:
                request.lifecycle.phase = RequestPhase.PREFILL
                request.lifecycle.admitted = now
                prefill_starts.append(now + duration)
                duration += (
                    cost.prefill_seconds(request.prompt_tokens)
                    + self.extra_prefill * request.prompt_tokens
                )
            decode_batch = len(running)
            if decode_batch:
                # The shared decode pass streams weights after the
                # step's prefills.
                decode_start = now + duration
                duration += (
                    cost.decode_step_seconds(decode_batch)
                    + self.extra_decode * decode_batch
                )
                for slot in running:
                    slot.record.decode_step_starts.append(decode_start)
                    slot.record.decode_step_batches.append(decode_batch)
            result.busy_seconds += duration
            result.n_steps += 1

            def step_end() -> None:
                end = engine.now
                for slot in list(running):
                    slot.remaining -= 1
                    if slot.remaining == 0:
                        running.remove(slot)
                        slot.request.lifecycle.phase = RequestPhase.FINISHED
                        slot.request.lifecycle.finished = end
                        slot.record.finish = end
                        result.completed.append(slot.record)
                for request, prefill_start in zip(admitted, prefill_starts):
                    request.lifecycle.first_token = end
                    record = CompletedRequest(
                        request=request,
                        start=request.lifecycle.admitted,
                        finish=end,
                        first_token=end,
                        prefill_start=prefill_start,
                    )
                    if request.decode_tokens == 0:
                        request.lifecycle.phase = RequestPhase.FINISHED
                        request.lifecycle.finished = end
                        result.completed.append(record)
                    else:
                        request.lifecycle.phase = RequestPhase.DECODE
                        running.append(
                            _DecodeSlot(
                                request=request,
                                record=record,
                                remaining=request.decode_tokens,
                            )
                        )
                start_step()

            engine.schedule_in(duration, step_end)

        def arrive(request: Request) -> None:
            request.lifecycle.reset()
            if state["busy"]:
                if len(waiting) >= self.config.queue_limit:
                    result.rejected += 1
                    return
                waiting.append(request)
            else:
                waiting.append(request)
                start_step()

        for request in sorted(requests, key=lambda r: r.arrival):
            engine.schedule(request.arrival, lambda r=request: arrive(r))
        result.horizon = engine.run()
        return result

    def run(self, requests: list[Request]) -> ServingResult:
        """Simulate the full request list; returns aggregate metrics."""
        if self.config.max_batch == 1:
            return self._run_fused(requests)
        return self._run_stepped(requests)
