"""Request arrival processes for the serving simulator."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Request:
    """One inference request: a prompt to encode and tokens to decode."""

    request_id: int
    arrival: float
    prompt_tokens: int
    decode_tokens: int

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ValueError("arrival must be non-negative")
        if self.prompt_tokens < 1 or self.decode_tokens < 0:
            raise ValueError("prompt_tokens >= 1 and decode_tokens >= 0 required")


class RequestGenerator:
    """Poisson arrivals with lognormal-ish length variation.

    ``rate`` is requests/second; prompt and decode lengths vary
    geometrically around their means, which matches the heavy-ish
    tails of real serving traces without extra parameters.
    """

    def __init__(
        self,
        rate: float,
        mean_prompt_tokens: int = 512,
        mean_decode_tokens: int = 32,
        seed: int = 0,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if mean_prompt_tokens < 1 or mean_decode_tokens < 1:
            raise ValueError("token means must be >= 1")
        self.rate = rate
        self.mean_prompt_tokens = mean_prompt_tokens
        self.mean_decode_tokens = mean_decode_tokens
        self._rng = np.random.default_rng(seed)

    def generate(self, n_requests: int) -> list[Request]:
        """Generate ``n_requests`` requests in arrival order."""
        if n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        gaps = self._rng.exponential(1.0 / self.rate, size=n_requests)
        arrivals = np.cumsum(gaps)
        prompts = 1 + self._rng.geometric(1.0 / self.mean_prompt_tokens, n_requests)
        decodes = 1 + self._rng.geometric(1.0 / self.mean_decode_tokens, n_requests)
        return [
            Request(
                request_id=i,
                arrival=float(arrivals[i]),
                prompt_tokens=int(prompts[i]),
                decode_tokens=int(decodes[i]),
            )
            for i in range(n_requests)
        ]
