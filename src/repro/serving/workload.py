"""Request arrival processes for the serving simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

import numpy as np


class RequestPhase(Enum):
    """Lifecycle phases of a request inside the serving engine."""

    QUEUED = "queued"
    PREFILL = "prefill"
    DECODE = "decode"
    FINISHED = "finished"


@dataclass
class PhaseLifecycle:
    """Mutable per-request phase state, written by the serving engine.

    Timestamps are simulated seconds; ``None`` until the request
    reaches that phase.  ``first_token`` is when the prefill produced
    its first output token (the TTFT anchor); for zero-decode requests
    it coincides with ``finished``.
    """

    phase: RequestPhase = RequestPhase.QUEUED
    admitted: Optional[float] = None
    first_token: Optional[float] = None
    finished: Optional[float] = None

    def reset(self) -> None:
        self.phase = RequestPhase.QUEUED
        self.admitted = None
        self.first_token = None
        self.finished = None


@dataclass(frozen=True)
class Request:
    """One inference request: a prompt to encode and tokens to decode.

    ``lifecycle`` carries the engine-side phase state; it is excluded
    from equality/repr so two requests with the same identity compare
    equal regardless of how far each has been served.  ``tenant``
    names the traffic-mix tenant the request belongs to (empty for
    single-tenant streams); sweep output groups per-tenant tail
    columns by it.
    """

    request_id: int
    arrival: float
    prompt_tokens: int
    decode_tokens: int
    tenant: str = ""
    lifecycle: PhaseLifecycle = field(
        default_factory=PhaseLifecycle, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ValueError("arrival must be non-negative")
        if self.prompt_tokens < 1 or self.decode_tokens < 0:
            raise ValueError("prompt_tokens >= 1 and decode_tokens >= 0 required")


#: Serving-level arrival shapes (mirrors the controller-cycle-level
#: ``repro.workloads.traces.ARRIVAL_PROCESSES`` on a seconds axis):
#: memoryless traffic, lockstep batches, and duty-cycled bursts.  The
#: batched and on/off shapes keep the same mean offered rate as a
#: Poisson process at the same ``rate``.
SERVING_ARRIVALS = ("poisson", "batched", "onoff")


class RequestGenerator:
    """Open-loop arrivals with lognormal-ish length variation.

    ``rate`` is requests/second; ``arrival`` picks one of
    :data:`SERVING_ARRIVALS` (Poisson by default).  Prompt and decode
    lengths vary geometrically around their means, which matches the
    heavy-ish tails of real serving traces without extra parameters.
    ``mean_prompt_tokens`` is the realized mean prompt length over the
    support {1, 2, ...}; ``mean_decode_tokens`` the realized mean
    decode length over {0, 1, ...} (0 models requests that only score
    a prompt, so a mean of 0 -- every request pure-prefill -- is
    valid).
    """

    def __init__(
        self,
        rate: float,
        mean_prompt_tokens: int = 512,
        mean_decode_tokens: int = 32,
        seed: int = 0,
        arrival: str = "poisson",
        batch_size: int = 8,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if mean_prompt_tokens < 1:
            raise ValueError("mean_prompt_tokens must be >= 1")
        if mean_decode_tokens < 0:
            raise ValueError("mean_decode_tokens must be >= 0")
        if arrival not in SERVING_ARRIVALS:
            raise ValueError(
                f"unknown arrival process {arrival!r}; choose from {SERVING_ARRIVALS}"
            )
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.rate = rate
        self.mean_prompt_tokens = mean_prompt_tokens
        self.mean_decode_tokens = mean_decode_tokens
        self.arrival = arrival
        self.batch_size = batch_size
        self._rng = np.random.default_rng(seed)

    def _arrival_times(self, n_requests: int) -> np.ndarray:
        if self.arrival == "batched":
            # batch_size requests land together every batch_size/rate
            # seconds (deterministic lockstep inference steps).
            batches = np.arange(n_requests, dtype=np.int64) // self.batch_size
            return (batches + 1) * (self.batch_size / self.rate)
        gaps = self._rng.exponential(1.0 / self.rate, size=n_requests)
        arrivals = np.cumsum(gaps)
        if self.arrival == "onoff":
            # 4x the offered rate while on, 1/4 duty cycle: arrivals
            # generated on a compressed active-time axis and expanded
            # by the duty cycle, so the mean rate is preserved.
            active = arrivals / 4.0
            on_seconds = 64.0 / self.rate
            period = 4.0 * on_seconds
            return (active // on_seconds) * period + active % on_seconds
        return arrivals

    def generate(self, n_requests: int) -> list[Request]:
        """Generate ``n_requests`` requests in arrival order."""
        if n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        arrivals = self._arrival_times(n_requests)
        # Geometric on {1, 2, ...} with p = 1/mean realizes the stated
        # prompt mean exactly; decode lengths are the same distribution
        # shifted onto {0, 1, ...} (p = 1/(mean+1)), so the realized
        # decode mean is mean_decode_tokens and zero-length decodes
        # (prefill-only requests) occur naturally.
        prompts = self._rng.geometric(1.0 / self.mean_prompt_tokens, n_requests)
        decodes = (
            self._rng.geometric(1.0 / (self.mean_decode_tokens + 1.0), n_requests) - 1
        )
        return [
            Request(
                request_id=i,
                arrival=float(arrivals[i]),
                prompt_tokens=int(prompts[i]),
                decode_tokens=int(decodes[i]),
            )
            for i in range(n_requests)
        ]
