"""Reference FIFO serving simulator (equivalence oracle).

This is the seed ``ServingSimulator.run`` loop, kept verbatim as an
executable specification -- the same role :mod:`repro.dram.reference`
plays for the memory controller.  The production path is
:class:`~repro.serving.engine.BatchingEngine` at ``max_batch=1``,
which :mod:`tests.serving.test_engine_equivalence` pins bit-identical
(same completions, starts, finishes, horizon, busy seconds, rejects)
to this loop across arrival processes and seeds.

Do not optimize this module; its value is being obviously correct.
"""

from __future__ import annotations

from repro.serving.simulator import CompletedRequest, CostModel, ServingResult
from repro.serving.workload import Request
from repro.sim.engine import SimEngine

from repro.core.strategies import Scheme


class ReferenceFIFOSimulator:
    """FIFO single-server queue over a scheme's cost model."""

    def __init__(
        self, cost_model: CostModel, scheme: Scheme, queue_limit: int = 512
    ) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.cost_model = cost_model
        self.scheme = scheme
        self.queue_limit = queue_limit

    def run(self, requests: list[Request]) -> ServingResult:
        """Simulate the full request list; returns aggregate metrics."""
        engine = SimEngine()
        result = ServingResult(scheme=self.scheme)
        queue: list[Request] = []
        state = {"busy": False}

        def start_service(request: Request) -> None:
            state["busy"] = True
            start = engine.now
            service = self.cost_model.service_time(request)
            result.busy_seconds += service

            def finish() -> None:
                result.completed.append(
                    CompletedRequest(request=request, start=start, finish=engine.now)
                )
                if queue:
                    start_service(queue.pop(0))
                else:
                    state["busy"] = False

            engine.schedule_in(service, finish)

        def arrive(request: Request) -> None:
            if state["busy"]:
                if len(queue) >= self.queue_limit:
                    result.rejected += 1
                    return
                queue.append(request)
            else:
                start_service(request)

        for request in sorted(requests, key=lambda r: r.arrival):
            engine.schedule(request.arrival, lambda r=request: arrive(r))
        result.horizon = engine.run()
        return result
