"""Serving-load simulation on top of the scheme runtimes.

The paper evaluates isolated encoder passes and decoder generations.
A deployment cares about the next level up: sustained request traffic.
This package drives the per-scheme costs from
:class:`~repro.core.runtime.MoNDERuntime` through a discrete-event
server model (Poisson arrivals, bounded queue, one inference engine)
and reports throughput, utilization, and latency percentiles -- the
numbers a capacity planner would derive from the paper's results.
"""

from repro.serving.simulator import (
    CostModel,
    ServingResult,
    ServingSimulator,
    load_sweep,
)
from repro.serving.workload import Request, RequestGenerator

__all__ = [
    "CostModel",
    "Request",
    "RequestGenerator",
    "ServingResult",
    "ServingSimulator",
    "load_sweep",
]
