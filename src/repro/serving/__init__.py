"""Serving-load simulation on top of the scheme runtimes.

The paper evaluates isolated encoder passes and decoder generations.
A deployment cares about the next level up: sustained request traffic.
This package drives the per-scheme costs from
:class:`~repro.core.runtime.MoNDERuntime` through a discrete-event
server model and reports throughput, utilization, and latency
percentiles -- the numbers a capacity planner would derive from the
paper's results.

Two serving models share one implementation
(:class:`~repro.serving.engine.BatchingEngine`):

- ``fifo`` -- one request per inference step (the seed behavior);
  :class:`ServingSimulator` is this configuration, pinned
  bit-identical to the reference loop in
  :mod:`repro.serving.reference`.
- ``batching`` -- phase-aware continuous batching: each step admits
  prefills under a token budget alongside one decode token per
  in-flight request, priced per phase by a :class:`PhaseCostModel`
  (or :class:`RuntimePhaseCostModel`, calibrated at the composed
  batch geometry), with TTFT / queue-delay / per-token decode
  percentiles on the result.
"""

from repro.serving.engine import (
    BatchConfig,
    BatchingEngine,
    PhaseCostModel,
    RuntimePhaseCostModel,
)
from repro.serving.simulator import (
    CompletedRequest,
    CostModel,
    ServingResult,
    ServingSimulator,
)
from repro.serving.workload import (
    Request,
    RequestGenerator,
    RequestPhase,
    SERVING_ARRIVALS,
)

__all__ = [
    "SERVING_ARRIVALS",
    "BatchConfig",
    "BatchingEngine",
    "CompletedRequest",
    "CostModel",
    "PhaseCostModel",
    "Request",
    "RequestGenerator",
    "RequestPhase",
    "RuntimePhaseCostModel",
    "ServingResult",
    "ServingSimulator",
]
