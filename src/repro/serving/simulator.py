"""Discrete-event serving simulator.

One inference server processes requests FIFO (no preemption): each
request costs an encoder pass over its prompt plus an auto-regressive
decode of its generated tokens, with per-token costs supplied by a
:class:`CostModel` built from the scheme runtimes.  Queueing dynamics
come from the shared :class:`~repro.sim.engine.SimEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.engine import Platform
from repro.core.runtime import InferenceConfig, MoNDERuntime
from repro.core.strategies import Scheme
from repro.moe.config import MoEModelConfig
from repro.serving.workload import Request
from repro.workloads.traces import RoutingProfile


@dataclass(frozen=True)
class CostModel:
    """Per-request service time: encode + decode, scaled by length.

    Calibrated once per (model, scheme) from the runtime at a
    reference geometry, then scaled linearly in prompt/decode length
    -- adequate for queueing studies where relative scheme costs and
    load response matter, not per-token microstructure.
    """

    encode_seconds_per_token: float
    decode_seconds_per_token: float

    def service_time(self, request: Request) -> float:
        return (
            self.encode_seconds_per_token * request.prompt_tokens
            + self.decode_seconds_per_token * request.decode_tokens
        )

    @classmethod
    def from_runtime(
        cls,
        model: MoEModelConfig,
        scheme: Scheme,
        platform: Optional[Platform] = None,
        profile: Optional[RoutingProfile] = None,
        ref_batch: int = 1,
        ref_decode_steps: int = 8,
    ) -> "CostModel":
        config = InferenceConfig(
            model=model,
            batch=ref_batch,
            decode_steps=ref_decode_steps,
            profile=profile,
        )
        runtime = MoNDERuntime(config, platform=platform)
        enc = runtime.encoder_result(scheme)
        dec = runtime.decoder_result(scheme)
        return cls(
            encode_seconds_per_token=enc.seconds / enc.n_tokens,
            decode_seconds_per_token=dec.seconds / dec.n_tokens,
        )

    @classmethod
    def from_dram_calibrated(
        cls,
        model: MoEModelConfig,
        scheme: Scheme,
        dram_config=None,
        profile: Optional[RoutingProfile] = None,
        ref_batch: int = 1,
        ref_decode_steps: int = 8,
    ) -> "CostModel":
        """Cost model whose MoNDE-side bandwidth comes from the
        cycle-level DRAM controller (streamed once per config, cached)
        rather than the spec constant -- the end-to-end path for
        large serving studies riding on the memory simulator."""
        from repro.dram.config import LPDDR5X_8533

        platform = Platform(
            dram_config=dram_config if dram_config is not None else LPDDR5X_8533
        )
        return cls.from_runtime(
            model,
            scheme,
            platform=platform,
            profile=profile,
            ref_batch=ref_batch,
            ref_decode_steps=ref_decode_steps,
        )


@dataclass
class CompletedRequest:
    """Bookkeeping for one finished request.

    ``first_token`` is when the request's prefill produced its first
    output token (``None`` for records built by code predating the
    phase-aware engine, where TTFT falls back to end-to-end latency).
    ``decode_step_starts``/``decode_step_batches`` record, for each
    engine step in which this request decoded, the time the step's
    decode stream begins (after the step's admitted prefills) and the
    decode batch size -- what the co-simulation replay uses to emit
    per-step decode bursts with batch-amortized weight traffic.
    ``prefill_start`` is when this request's prefill actually begins
    within its admission step (prefills run sequentially, so later
    admits start later); ``None`` means "same as ``start``".
    """

    request: Request
    start: float
    finish: float
    first_token: Optional[float] = None
    prefill_start: Optional[float] = None
    decode_step_starts: list = field(default_factory=list)
    decode_step_batches: list = field(default_factory=list)

    @property
    def latency(self) -> float:
        return self.finish - self.request.arrival

    @property
    def queue_delay(self) -> float:
        return self.start - self.request.arrival

    @property
    def ttft(self) -> float:
        """Time to first token (arrival -> end of prefill)."""
        anchor = self.finish if self.first_token is None else self.first_token
        return anchor - self.request.arrival

    @property
    def tpot(self) -> float:
        """Mean time per output token across the decode phase (0 for
        prefill-only requests)."""
        if self.request.decode_tokens == 0 or self.first_token is None:
            return 0.0
        return (self.finish - self.first_token) / self.request.decode_tokens


@dataclass
class ServingResult:
    """Aggregate serving metrics for one simulation."""

    scheme: Scheme
    completed: list[CompletedRequest] = field(default_factory=list)
    rejected: int = 0
    horizon: float = 0.0
    busy_seconds: float = 0.0
    #: which serving model produced this result: "fifo" (one request
    #: per step, the seed behavior) or "batching" (stepped continuous
    #: batching with per-step decode records)
    engine: str = "fifo"
    #: inference steps executed (0 on the fifo path)
    n_steps: int = 0

    @property
    def n_completed(self) -> int:
        return len(self.completed)

    @property
    def throughput_rps(self) -> float:
        if self.horizon <= 0:
            return 0.0
        return self.n_completed / self.horizon

    @property
    def utilization(self) -> float:
        if self.horizon <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / self.horizon)

    def latency_percentile(self, q: float) -> float:
        if not self.completed:
            return 0.0
        return float(np.percentile([c.latency for c in self.completed], q))

    @property
    def mean_latency(self) -> float:
        if not self.completed:
            return 0.0
        return float(np.mean([c.latency for c in self.completed]))

    # -- per-phase views --------------------------------------------------

    def ttft_percentile(self, q: float) -> float:
        """Time-to-first-token percentile (the prefill phase's tail)."""
        if not self.completed:
            return 0.0
        return float(np.percentile([c.ttft for c in self.completed], q))

    def queue_delay_percentile(self, q: float) -> float:
        """Admission-delay percentile (arrival -> first scheduled)."""
        if not self.completed:
            return 0.0
        return float(np.percentile([c.queue_delay for c in self.completed], q))

    def tpot_percentile(self, q: float) -> float:
        """Per-output-token decode latency percentile, over requests
        that decoded at least one token."""
        samples = [c.tpot for c in self.completed if c.request.decode_tokens > 0]
        if not samples:
            return 0.0
        return float(np.percentile(samples, q))

    @property
    def mean_ttft(self) -> float:
        if not self.completed:
            return 0.0
        return float(np.mean([c.ttft for c in self.completed]))


class ServingSimulator:
    """FIFO single-server queue over a scheme's cost model.

    Since the continuous-batching refactor this is a thin
    ``max_batch=1`` configuration of
    :class:`~repro.serving.engine.BatchingEngine`, pinned bit-identical
    (same completions, starts, finishes, horizon, busy seconds,
    rejects) to the seed FIFO loop preserved in
    :class:`~repro.serving.reference.ReferenceFIFOSimulator` by the
    equivalence suite.
    """

    def __init__(self, cost_model: CostModel, scheme: Scheme, queue_limit: int = 512) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.cost_model = cost_model
        self.scheme = scheme
        self.queue_limit = queue_limit

    def run(self, requests: list[Request]) -> ServingResult:
        """Simulate the full request list; returns aggregate metrics."""
        from repro.serving.engine import BatchConfig, BatchingEngine, PhaseCostModel

        engine = BatchingEngine(
            PhaseCostModel.from_cost_model(self.cost_model),
            self.scheme,
            BatchConfig(max_batch=1, queue_limit=self.queue_limit),
        )
        return engine.run(requests)


def dram_replay_trace_arrays(
    result: ServingResult,
    dram_config=None,
    bytes_per_token: int = 2048,
    max_blocks_per_request: int = 4096,
    region_bytes: int = 1 << 22,
    n_regions: int = 128,
    seed: int = 0,
    return_request_ids: bool = False,
):
    """Replay a serving run as native DRAM trace columns.

    Each completed serving request becomes a burst of sequential
    64-byte weight-fetch reads -- ``bytes_per_token`` per prompt and
    decode token, capped at ``max_blocks_per_request`` blocks -- whose
    ``arrive_cycle`` is the request's *service-start* time converted
    to controller cycles.  Bursts stream from one of ``n_regions``
    contiguous expert-weight regions (seeded pick, resuming where that
    region's previous burst left off), so the DRAM-level trace
    inherits both the serving layer's burstiness and the MoE access
    shape.

    Returns ``(addrs, arrive_cycles, flags)`` columns (all reads, so
    ``flags`` is zero) ready for
    :meth:`repro.dram.controller.MemoryController.simulate_arrays` or
    a ``.dramtrace`` export -- the ROADMAP's serving-to-DRAM entry
    point, array-native so the co-simulation loop never round-trips
    through Request objects.  With ``return_request_ids=True`` a
    fourth ``request_ids`` column maps every DRAM request back to the
    serving ``request_id`` whose burst emitted it (what
    :mod:`repro.cosim` uses to attribute measured queueing delay to
    individual serving requests).

    For expert-faithful replay driven by actual routing decisions, see
    :class:`repro.cosim.ExpertReplayPlanner`, which replaces this
    function's seeded synthetic region pick with the weight regions of
    the experts each request activated.
    """
    from repro.dram.config import LPDDR5X_8533

    if (
        bytes_per_token < 1
        or max_blocks_per_request < 1
        or region_bytes < 1
        or n_regions < 1
    ):
        raise ValueError(
            "bytes_per_token, max_blocks_per_request, region_bytes, "
            "n_regions must be >= 1"
        )
    config = dram_config if dram_config is not None else LPDDR5X_8533
    org = config.organization
    step = org.access_bytes
    region_blocks = max(
        1, min(region_bytes, org.total_capacity_bytes // n_regions) // step
    )
    clock_hz = config.timing.clock_hz

    rng = np.random.default_rng(seed)
    resume: dict[int, int] = {}
    addr_chunks: list[np.ndarray] = []
    arrive_chunks: list[np.ndarray] = []
    id_chunks: list[np.ndarray] = []
    for completed in sorted(result.completed, key=lambda c: c.start):
        start_cycle = int(round(completed.start * clock_hz))
        tokens = completed.request.prompt_tokens + completed.request.decode_tokens
        n_blocks = min(max_blocks_per_request, -(-(tokens * bytes_per_token) // step))
        region = int(rng.integers(n_regions))
        offset = resume.get(region, 0)
        base_block = region * region_blocks
        offs = (offset + np.arange(n_blocks, dtype=np.int64)) % region_blocks
        blocks = base_block + offs
        addr_chunks.append(blocks * step)
        arrive_chunks.append(np.full(n_blocks, start_cycle, dtype=np.int64))
        id_chunks.append(
            np.full(n_blocks, completed.request.request_id, dtype=np.int64)
        )
        resume[region] = (offset + n_blocks) % region_blocks
    if addr_chunks:
        addrs = np.concatenate(addr_chunks)
        arrive = np.concatenate(arrive_chunks)
        request_ids = np.concatenate(id_chunks)
    else:
        addrs = np.zeros(0, dtype=np.int64)
        arrive = np.zeros(0, dtype=np.int64)
        request_ids = np.zeros(0, dtype=np.int64)
    flags = np.zeros(len(addrs), dtype=np.uint8)
    if return_request_ids:
        return addrs, arrive, flags, request_ids
    return addrs, arrive, flags


def dram_replay_trace(
    result: ServingResult,
    dram_config=None,
    bytes_per_token: int = 2048,
    max_blocks_per_request: int = 4096,
    region_bytes: int = 1 << 22,
    n_regions: int = 128,
    seed: int = 0,
):
    """Request-object form of :func:`dram_replay_trace_arrays` (thin
    adapter; the array form is the source of truth and both are
    bit-identical trace-for-trace).  Feed the result to
    :meth:`repro.dram.controller.MemoryController.simulate` for
    tail-latency studies of queueing *inside* the memory system."""
    from repro.dram.request import requests_from_arrays

    addrs, arrive, flags = dram_replay_trace_arrays(
        result,
        dram_config=dram_config,
        bytes_per_token=bytes_per_token,
        max_blocks_per_request=max_blocks_per_request,
        region_bytes=region_bytes,
        n_regions=n_regions,
        seed=seed,
    )
    return requests_from_arrays(addrs, arrive, flags)
