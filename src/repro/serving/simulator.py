"""Discrete-event serving simulator.

One inference server processes requests FIFO (no preemption): each
request costs an encoder pass over its prompt plus an auto-regressive
decode of its generated tokens, with per-token costs supplied by a
:class:`CostModel` built from the scheme runtimes.  Queueing dynamics
come from the shared :class:`~repro.sim.engine.SimEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.engine import Platform
from repro.core.runtime import InferenceConfig, MoNDERuntime
from repro.core.strategies import Scheme
from repro.moe.config import MoEModelConfig
from repro.serving.workload import Request
from repro.sim.engine import SimEngine
from repro.workloads.traces import RoutingProfile


@dataclass(frozen=True)
class CostModel:
    """Per-request service time: encode + decode, scaled by length.

    Calibrated once per (model, scheme) from the runtime at a
    reference geometry, then scaled linearly in prompt/decode length
    -- adequate for queueing studies where relative scheme costs and
    load response matter, not per-token microstructure.
    """

    encode_seconds_per_token: float
    decode_seconds_per_token: float

    def service_time(self, request: Request) -> float:
        return (
            self.encode_seconds_per_token * request.prompt_tokens
            + self.decode_seconds_per_token * request.decode_tokens
        )

    @classmethod
    def from_runtime(
        cls,
        model: MoEModelConfig,
        scheme: Scheme,
        platform: Optional[Platform] = None,
        profile: Optional[RoutingProfile] = None,
        ref_batch: int = 1,
        ref_decode_steps: int = 8,
    ) -> "CostModel":
        config = InferenceConfig(
            model=model,
            batch=ref_batch,
            decode_steps=ref_decode_steps,
            profile=profile,
        )
        runtime = MoNDERuntime(config, platform=platform)
        enc = runtime.encoder_result(scheme)
        dec = runtime.decoder_result(scheme)
        return cls(
            encode_seconds_per_token=enc.seconds / enc.n_tokens,
            decode_seconds_per_token=dec.seconds / dec.n_tokens,
        )

    @classmethod
    def from_dram_calibrated(
        cls,
        model: MoEModelConfig,
        scheme: Scheme,
        dram_config=None,
        profile: Optional[RoutingProfile] = None,
        ref_batch: int = 1,
        ref_decode_steps: int = 8,
    ) -> "CostModel":
        """Cost model whose MoNDE-side bandwidth comes from the
        cycle-level DRAM controller (streamed once per config, cached)
        rather than the spec constant -- the end-to-end path for
        large serving studies riding on the memory simulator."""
        from repro.dram.config import LPDDR5X_8533

        platform = Platform(
            dram_config=dram_config if dram_config is not None else LPDDR5X_8533
        )
        return cls.from_runtime(
            model,
            scheme,
            platform=platform,
            profile=profile,
            ref_batch=ref_batch,
            ref_decode_steps=ref_decode_steps,
        )


@dataclass
class CompletedRequest:
    """Bookkeeping for one finished request."""

    request: Request
    start: float
    finish: float

    @property
    def latency(self) -> float:
        return self.finish - self.request.arrival

    @property
    def queue_delay(self) -> float:
        return self.start - self.request.arrival


@dataclass
class ServingResult:
    """Aggregate serving metrics for one simulation."""

    scheme: Scheme
    completed: list[CompletedRequest] = field(default_factory=list)
    rejected: int = 0
    horizon: float = 0.0
    busy_seconds: float = 0.0

    @property
    def n_completed(self) -> int:
        return len(self.completed)

    @property
    def throughput_rps(self) -> float:
        if self.horizon <= 0:
            return 0.0
        return self.n_completed / self.horizon

    @property
    def utilization(self) -> float:
        if self.horizon <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / self.horizon)

    def latency_percentile(self, q: float) -> float:
        if not self.completed:
            return 0.0
        return float(np.percentile([c.latency for c in self.completed], q))

    @property
    def mean_latency(self) -> float:
        if not self.completed:
            return 0.0
        return float(np.mean([c.latency for c in self.completed]))


class ServingSimulator:
    """FIFO single-server queue over a scheme's cost model."""

    def __init__(self, cost_model: CostModel, scheme: Scheme, queue_limit: int = 512) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.cost_model = cost_model
        self.scheme = scheme
        self.queue_limit = queue_limit

    def run(self, requests: list[Request]) -> ServingResult:
        """Simulate the full request list; returns aggregate metrics."""
        engine = SimEngine()
        result = ServingResult(scheme=self.scheme)
        queue: list[Request] = []
        state = {"busy": False}

        def start_service(request: Request) -> None:
            state["busy"] = True
            start = engine.now
            service = self.cost_model.service_time(request)
            result.busy_seconds += service

            def finish() -> None:
                result.completed.append(
                    CompletedRequest(request=request, start=start, finish=engine.now)
                )
                if queue:
                    start_service(queue.pop(0))
                else:
                    state["busy"] = False

            engine.schedule_in(service, finish)

        def arrive(request: Request) -> None:
            if state["busy"]:
                if len(queue) >= self.queue_limit:
                    result.rejected += 1
                    return
                queue.append(request)
            else:
                start_service(request)

        for request in sorted(requests, key=lambda r: r.arrival):
            engine.schedule(request.arrival, lambda r=request: arrive(r))
        result.horizon = engine.run()
        return result


def dram_replay_trace_arrays(
    result: ServingResult,
    dram_config=None,
    bytes_per_token: int = 2048,
    max_blocks_per_request: int = 4096,
    region_bytes: int = 1 << 22,
    n_regions: int = 128,
    seed: int = 0,
    return_request_ids: bool = False,
):
    """Replay a serving run as native DRAM trace columns.

    Each completed serving request becomes a burst of sequential
    64-byte weight-fetch reads -- ``bytes_per_token`` per prompt and
    decode token, capped at ``max_blocks_per_request`` blocks -- whose
    ``arrive_cycle`` is the request's *service-start* time converted
    to controller cycles.  Bursts stream from one of ``n_regions``
    contiguous expert-weight regions (seeded pick, resuming where that
    region's previous burst left off), so the DRAM-level trace
    inherits both the serving layer's burstiness and the MoE access
    shape.

    Returns ``(addrs, arrive_cycles, flags)`` columns (all reads, so
    ``flags`` is zero) ready for
    :meth:`repro.dram.controller.MemoryController.simulate_arrays` or
    a ``.dramtrace`` export -- the ROADMAP's serving-to-DRAM entry
    point, array-native so the co-simulation loop never round-trips
    through Request objects.  With ``return_request_ids=True`` a
    fourth ``request_ids`` column maps every DRAM request back to the
    serving ``request_id`` whose burst emitted it (what
    :mod:`repro.cosim` uses to attribute measured queueing delay to
    individual serving requests).

    For expert-faithful replay driven by actual routing decisions, see
    :class:`repro.cosim.ExpertReplayPlanner`, which replaces this
    function's seeded synthetic region pick with the weight regions of
    the experts each request activated.
    """
    from repro.dram.config import LPDDR5X_8533

    if (
        bytes_per_token < 1
        or max_blocks_per_request < 1
        or region_bytes < 1
        or n_regions < 1
    ):
        raise ValueError(
            "bytes_per_token, max_blocks_per_request, region_bytes, "
            "n_regions must be >= 1"
        )
    config = dram_config if dram_config is not None else LPDDR5X_8533
    org = config.organization
    step = org.access_bytes
    region_blocks = max(
        1, min(region_bytes, org.total_capacity_bytes // n_regions) // step
    )
    clock_hz = config.timing.clock_hz

    rng = np.random.default_rng(seed)
    resume: dict[int, int] = {}
    addr_chunks: list[np.ndarray] = []
    arrive_chunks: list[np.ndarray] = []
    id_chunks: list[np.ndarray] = []
    for completed in sorted(result.completed, key=lambda c: c.start):
        start_cycle = int(round(completed.start * clock_hz))
        tokens = completed.request.prompt_tokens + completed.request.decode_tokens
        n_blocks = min(max_blocks_per_request, -(-(tokens * bytes_per_token) // step))
        region = int(rng.integers(n_regions))
        offset = resume.get(region, 0)
        base_block = region * region_blocks
        offs = (offset + np.arange(n_blocks, dtype=np.int64)) % region_blocks
        blocks = base_block + offs
        addr_chunks.append(blocks * step)
        arrive_chunks.append(np.full(n_blocks, start_cycle, dtype=np.int64))
        id_chunks.append(
            np.full(n_blocks, completed.request.request_id, dtype=np.int64)
        )
        resume[region] = (offset + n_blocks) % region_blocks
    if addr_chunks:
        addrs = np.concatenate(addr_chunks)
        arrive = np.concatenate(arrive_chunks)
        request_ids = np.concatenate(id_chunks)
    else:
        addrs = np.zeros(0, dtype=np.int64)
        arrive = np.zeros(0, dtype=np.int64)
        request_ids = np.zeros(0, dtype=np.int64)
    flags = np.zeros(len(addrs), dtype=np.uint8)
    if return_request_ids:
        return addrs, arrive, flags, request_ids
    return addrs, arrive, flags


def dram_replay_trace(
    result: ServingResult,
    dram_config=None,
    bytes_per_token: int = 2048,
    max_blocks_per_request: int = 4096,
    region_bytes: int = 1 << 22,
    n_regions: int = 128,
    seed: int = 0,
):
    """Request-object form of :func:`dram_replay_trace_arrays` (thin
    adapter; the array form is the source of truth and both are
    bit-identical trace-for-trace).  Feed the result to
    :meth:`repro.dram.controller.MemoryController.simulate` for
    tail-latency studies of queueing *inside* the memory system."""
    from repro.dram.request import requests_from_arrays

    addrs, arrive, flags = dram_replay_trace_arrays(
        result,
        dram_config=dram_config,
        bytes_per_token=bytes_per_token,
        max_blocks_per_request=max_blocks_per_request,
        region_bytes=region_bytes,
        n_regions=n_regions,
        seed=seed,
    )
    return requests_from_arrays(addrs, arrive, flags)


def load_sweep(
    cost_model: CostModel,
    scheme: Scheme,
    rates: list[float],
    n_requests: int = 200,
    seed: int = 0,
    mean_prompt_tokens: int = 512,
    mean_decode_tokens: int = 32,
) -> list[tuple[float, ServingResult]]:
    """Run the simulator across offered loads (the classic
    latency-vs-throughput hockey stick)."""
    from repro.serving.workload import RequestGenerator

    results = []
    for rate in rates:
        generator = RequestGenerator(
            rate,
            mean_prompt_tokens=mean_prompt_tokens,
            mean_decode_tokens=mean_decode_tokens,
            seed=seed,
        )
        sim = ServingSimulator(cost_model, scheme)
        results.append((rate, sim.run(generator.generate(n_requests))))
    return results
