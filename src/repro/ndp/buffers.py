"""On-chip buffer models: capacity tracking and double buffering.

The MoNDE NDP core has 264 KB of on-chip SRAM (Table 2): a scratchpad
plus activation and expert (weight) operand buffers.  The engine uses
these models to size K-chunks and to decide whether operand fetch can
overlap compute (double buffering halves the usable capacity but
allows the next tile's operands to stream during computation).
"""

from __future__ import annotations


class Buffer:
    """A simple capacity-checked on-chip buffer."""

    def __init__(self, name: str, capacity_bytes: int) -> None:
        if capacity_bytes < 1:
            raise ValueError("capacity must be >= 1 byte")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.used_bytes = 0
        self.peak_bytes = 0

    def allocate(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("allocation must be non-negative")
        if self.used_bytes + nbytes > self.capacity_bytes:
            raise MemoryError(
                f"{self.name}: allocating {nbytes} B exceeds capacity "
                f"({self.used_bytes}/{self.capacity_bytes} B used)"
            )
        self.used_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)

    def free(self, nbytes: int) -> None:
        if nbytes < 0 or nbytes > self.used_bytes:
            raise ValueError(f"{self.name}: freeing {nbytes} B of {self.used_bytes} B")
        self.used_bytes -= nbytes

    def reset(self) -> None:
        self.used_bytes = 0

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def fits(self, nbytes: int) -> bool:
        return nbytes <= self.free_bytes


class DoubleBuffer:
    """Ping-pong pair over one physical buffer: each half holds one
    tile's operands so fetch of tile i+1 overlaps compute of tile i."""

    def __init__(self, name: str, capacity_bytes: int) -> None:
        self.physical = Buffer(name, capacity_bytes)
        self.half_capacity = capacity_bytes // 2

    def fits_tile(self, nbytes: int) -> bool:
        return nbytes <= self.half_capacity

    @property
    def capacity_bytes(self) -> int:
        return self.physical.capacity_bytes
