"""The MoNDE device: memory layout, functional memory, kernel engine.

Section 3.4 "Memory Allocation": the host driver allocates fixed-size
regions for expert parameters and activations; parameters map to the
even-indexed banks and activations to the odd-indexed banks to avoid
contention when both are accessed during a kernel.

The device holds two coupled states:

- a *functional* memory (address -> NumPy tensor) so kernels produce
  real numbers, and
- a *layout* that assigns each allocation DRAM-coordinate-aware
  addresses (via the ro-ba-bg-ra-co-ch mapper), used by tests and the
  DRAM-level ablation benches to check bank placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.dram.address import AddressMapper, MappingScheme
from repro.dram.config import LPDDR5X_8533, DRAMConfig
from repro.hw.specs import MONDE_DEVICE, MoNDEDeviceSpec
from repro.ndp.engine import NDPGemmEngine


@dataclass(frozen=True)
class Allocation:
    """One device-memory allocation."""

    addr: int
    nbytes: int
    region: str  # "expert" | "activation"


class DeviceMemoryLayout:
    """Bump allocator with even/odd bank partitioning.

    Addresses are synthesized through the address mapper so that every
    64-byte block of an expert allocation decodes to an even
    bank-in-group index and every activation block to an odd one,
    while staying sequential in (channel, column, row) order for
    streaming bandwidth.
    """

    def __init__(self, dram_config: DRAMConfig = LPDDR5X_8533) -> None:
        self.dram_config = dram_config
        self.mapper = AddressMapper(
            dram_config.organization, MappingScheme.RO_BA_BG_RA_CO_CH
        )
        self._next_block = {"expert": 0, "activation": 0}
        self.allocations: list[Allocation] = []

    def _block_to_addr(self, block: int, parity: int) -> int:
        """Map a dense block index to a physical address whose
        bank-in-group LSB equals ``parity``."""
        org = self.dram_config.organization
        ch = block % org.n_channels
        rest = block // org.n_channels
        co = rest % org.columns_per_row
        rest //= org.columns_per_row
        bg = rest % org.n_bankgroups
        rest //= org.n_bankgroups
        ba_half = rest % (org.banks_per_group // 2)
        rest //= org.banks_per_group // 2
        ro = rest % org.n_rows
        ba = 2 * ba_half + parity
        return self.mapper.encode(ch, 0, bg, ba, ro, co)

    def allocate(self, nbytes: int, region: str) -> Allocation:
        if region not in ("expert", "activation"):
            raise ValueError(f"region must be 'expert' or 'activation', got {region!r}")
        if nbytes < 1:
            raise ValueError("allocation must be >= 1 byte")
        parity = 0 if region == "expert" else 1
        block = self._next_block[region]
        addr = self._block_to_addr(block, parity)
        access = self.dram_config.organization.access_bytes
        n_blocks = -(-nbytes // access)
        self._next_block[region] += n_blocks
        allocation = Allocation(addr=addr, nbytes=nbytes, region=region)
        self.allocations.append(allocation)
        return allocation

    def block_addresses(self, allocation: Allocation) -> list[int]:
        """Physical addresses of every 64-byte block of an allocation
        (used to drive the cycle-level DRAM simulator)."""
        org = self.dram_config.organization
        access = org.access_bytes
        parity = 0 if allocation.region == "expert" else 1
        # Recover the starting block index from the first address.
        first = self.mapper.decode(allocation.addr)
        half = org.banks_per_group // 2
        start = first.channel
        start += org.n_channels * first.column
        start += org.n_channels * org.columns_per_row * first.bankgroup
        start += (
            org.n_channels * org.columns_per_row * org.n_bankgroups * (first.bank // 2)
        )
        start += (
            org.n_channels * org.columns_per_row * org.n_bankgroups * half * first.row
        )
        n_blocks = -(-allocation.nbytes // access)
        return [self._block_to_addr(start + i, parity) for i in range(n_blocks)]


class MoNDEDevice:
    """A functional-plus-timed MoNDE CXL memory expander with NDP.

    The device exposes exactly what the host driver needs: raw memory
    writes (CXL.mem), tensor reads/writes at allocated addresses, and
    the NDP engine the controller drives.
    """

    def __init__(
        self,
        spec: MoNDEDeviceSpec = MONDE_DEVICE,
        dram_config: DRAMConfig = LPDDR5X_8533,
        device_id: int = 0,
    ) -> None:
        self.spec = spec
        self.device_id = device_id
        self.layout = DeviceMemoryLayout(dram_config)
        self.engine = NDPGemmEngine(spec.ndp, spec.effective_bandwidth)
        self._tensors: dict[int, np.ndarray] = {}
        self._raw: dict[int, bytes] = {}

    # -- allocation ----------------------------------------------------------

    def allocate(self, nbytes: int, region: str) -> Allocation:
        return self.layout.allocate(nbytes, region)

    def store_tensor(self, tensor: np.ndarray, region: str) -> Allocation:
        """Allocate and functionally store a tensor; returns its handle."""
        allocation = self.allocate(max(1, tensor.nbytes), region)
        self._tensors[allocation.addr] = np.array(tensor)
        return allocation

    # -- functional memory -----------------------------------------------------

    def write_tensor(self, addr: int, tensor: np.ndarray) -> None:
        self._tensors[addr] = np.array(tensor)

    def read_tensor(self, addr: int) -> np.ndarray:
        if addr not in self._tensors:
            raise KeyError(f"no tensor at device address {addr:#x}")
        return self._tensors[addr]

    def write_raw(self, addr: int, payload: bytes) -> None:
        """Plain CXL.mem 64-byte write (non-NDP flit path)."""
        self._raw[addr] = bytes(payload)

    def read_raw(self, addr: int) -> Optional[bytes]:
        return self._raw.get(addr)

    # -- capacity accounting -----------------------------------------------------

    @property
    def bytes_allocated(self) -> int:
        return sum(a.nbytes for a in self.layout.allocations)

    def check_capacity(self) -> None:
        if self.bytes_allocated > self.spec.mem_capacity:
            raise MemoryError(
                f"device over-committed: {self.bytes_allocated} B allocated, "
                f"capacity {self.spec.mem_capacity} B"
            )
