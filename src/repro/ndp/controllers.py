"""NDP and CXL controllers (Fig. 4(a) items 1 and 2).

The CXL controller unwraps host RwD flits: flits with the NDP flag
set carry 64-byte NDP instructions and are forwarded to the NDP
controller's memory-mapped instruction buffer; all other flits are
ordinary memory writes.  The NDP controller decodes queued
instructions, drives the GEMM engine, writes outputs back to device
memory, and raises the memory-mapped done register.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.core.instructions import (
    CXLFlit,
    FusedActivation,
    NDPInstruction,
    Opcode,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ndp.device import MoNDEDevice


class MMIORegisters:
    """The NDP controller's memory-mapped register file."""

    DONE = "done"
    STATUS = "status"
    INST_COUNT = "inst_count"

    def __init__(self) -> None:
        self._regs: dict[str, int] = {self.DONE: 0, self.STATUS: 0, self.INST_COUNT: 0}

    def read(self, name: str) -> int:
        if name not in self._regs:
            raise KeyError(f"unknown MMIO register {name!r}")
        return self._regs[name]

    def write(self, name: str, value: int) -> None:
        if name not in self._regs:
            raise KeyError(f"unknown MMIO register {name!r}")
        self._regs[name] = value


class NDPController:
    """Decodes NDP instructions and triggers expert computation.

    Timing: each executed instruction charges the GEMM engine's
    cycle-level latency; :attr:`busy_seconds` accumulates the total so
    the host can retrieve device-side execution time.
    """

    def __init__(self, device: "MoNDEDevice", inst_buffer_capacity: int = 256) -> None:
        if inst_buffer_capacity < 1:
            raise ValueError("instruction buffer must hold at least 1 entry")
        self.device = device
        self.inst_buffer: deque[NDPInstruction] = deque()
        self.inst_buffer_capacity = inst_buffer_capacity
        self.mmio = MMIORegisters()
        self.busy_seconds = 0.0
        self.instructions_executed = 0

    def enqueue(self, raw: bytes) -> None:
        """Queue one encoded instruction (host-side MMIO write)."""
        if len(self.inst_buffer) >= self.inst_buffer_capacity:
            raise BufferError("NDP instruction buffer full")
        self.inst_buffer.append(NDPInstruction.decode(raw))
        self.mmio.write(MMIORegisters.DONE, 0)
        self.mmio.write(MMIORegisters.INST_COUNT, len(self.inst_buffer))

    def drain(self) -> float:
        """Execute every queued instruction; returns the device-side
        seconds consumed and raises the done register."""
        elapsed = 0.0
        while self.inst_buffer:
            inst = self.inst_buffer.popleft()
            elapsed += self._execute(inst)
        self.mmio.write(MMIORegisters.DONE, 1)
        self.mmio.write(MMIORegisters.INST_COUNT, 0)
        self.busy_seconds += elapsed
        return elapsed

    def _execute(self, inst: NDPInstruction) -> float:
        if inst.opcode is Opcode.NOP:
            return 0.0
        if inst.opcode not in (Opcode.GEMM, Opcode.GEMM_RELU, Opcode.GEMM_GELU):
            raise ValueError(f"reserved opcode {inst.opcode!r}")
        a = self.device.read_tensor(inst.actin_addr).reshape(inst.m, inst.k)
        b = self.device.read_tensor(inst.wgt_addr).reshape(inst.k, inst.n)
        activation: Optional[str] = None
        if inst.fused_activation is FusedActivation.RELU:
            activation = "relu"
        elif inst.fused_activation is FusedActivation.GELU:
            activation = "gelu"
        out, execution = self.device.engine.run_gemm(a, b, activation=activation)
        self.device.write_tensor(inst.actout_addr, out)
        self.instructions_executed += 1
        return execution.seconds + self.device.engine.spec.dispatch_overhead


class CXLController:
    """Front-end protocol handler: routes RwD flits."""

    def __init__(self, ndp_controller: NDPController) -> None:
        self.ndp_controller = ndp_controller
        self.ndp_flits = 0
        self.mem_flits = 0

    def receive(self, flit: CXLFlit) -> None:
        """Accept one host flit: NDP-flagged payloads go to the NDP
        instruction buffer, the rest are device memory writes."""
        if flit.ndp_flag:
            self.ndp_flits += 1
            self.ndp_controller.enqueue(flit.payload)
        else:
            self.mem_flits += 1
            self.ndp_controller.device.write_raw(flit.address, flit.payload)

    def poll_done(self) -> bool:
        return bool(self.ndp_controller.mmio.read(MMIORegisters.DONE))


def make_flit(address: int, payload: bytes, ndp: bool) -> CXLFlit:
    """Convenience wrapper used by the host driver."""
    return CXLFlit(address=address, payload=payload, ndp_flag=ndp)


def encode_gemm(
    opcode: Opcode,
    actin_addr: int,
    wgt_addr: int,
    actout_addr: int,
    m: int,
    n: int,
    k: int,
    dtype_bytes: int = 2,
    expert_id: int = 0,
    device_id: int = 0,
) -> bytes:
    """Build and encode one GEMM instruction with sizes derived from
    the geometry (helper shared by driver and tests)."""
    inst = NDPInstruction(
        opcode=opcode,
        actin_addr=actin_addr,
        actin_size=m * k * dtype_bytes,
        wgt_addr=wgt_addr,
        wgt_size=k * n * dtype_bytes,
        actout_addr=actout_addr,
        actout_size=m * n * dtype_bytes,
        m=m,
        n=n,
        k=k,
        expert_id=expert_id,
        device_id=device_id,
    )
    return inst.encode()
