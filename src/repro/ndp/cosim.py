"""DRAM <-> NDP co-simulation validation.

The NDP GEMM engine charges memory cycles against a single effective-
bandwidth constant calibrated from the cycle-level DRAM simulator.
This module closes the loop: it expands a tile schedule into the
actual 64-byte request stream (weights from the even-bank expert
region, activations from the odd-bank activation region, outputs
written back) and replays it through the FR-FCFS controller, so tests
can bound the error of the engine's bandwidth abstraction.

This is the same validation step the paper's methodology implies:
Ramulator supplies memory behaviour, the expert simulator consumes it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.config import LPDDR5X_8533, DRAMConfig
from repro.dram.controller import MemoryController
from repro.dram.request import Request, RequestKind
from repro.ndp.device import DeviceMemoryLayout
from repro.ndp.engine import NDPGemmEngine


@dataclass(frozen=True)
class CosimResult:
    """Engine estimate vs cycle-simulated memory time for one GEMM."""

    m: int
    n: int
    k: int
    engine_mem_cycles: int
    dram_cycles: int
    dram_bytes: int

    @property
    def relative_error(self) -> float:
        """(engine - dram) / dram; positive = engine pessimistic."""
        if self.dram_cycles == 0:
            return 0.0
        return (self.engine_mem_cycles - self.dram_cycles) / self.dram_cycles


class GEMMCosim:
    """Replays a GEMM's DRAM traffic through the cycle simulator."""

    def __init__(
        self,
        engine: NDPGemmEngine,
        dram_config: DRAMConfig = LPDDR5X_8533,
    ) -> None:
        self.engine = engine
        self.dram_config = dram_config

    def request_stream(self, m: int, n: int, k: int) -> list[Request]:
        """The 64-byte request stream of the tile schedule, with
        weights/activations placed per the Section 3.4 layout."""
        layout = DeviceMemoryLayout(self.dram_config)
        dt = self.engine.tiler.dtype_bytes
        wgt_alloc = layout.allocate(max(1, k * n * dt), region="expert")
        act_alloc = layout.allocate(max(1, m * k * dt), region="activation")
        out_alloc = layout.allocate(max(1, m * n * dt), region="activation")
        wgt_addrs = layout.block_addresses(wgt_alloc)
        act_addrs = layout.block_addresses(act_alloc)
        out_addrs = layout.block_addresses(out_alloc)

        access = self.dram_config.organization.access_bytes
        requests: list[Request] = []
        wgt_pos = act_pos = out_pos = 0
        for tile in self.engine.tiler.tiles(m, n, k):
            for nbytes, addrs, pos_name, kind in (
                (tile.wgt_bytes, wgt_addrs, "wgt", RequestKind.READ),
                (tile.act_bytes, act_addrs, "act", RequestKind.READ),
                (tile.out_bytes, out_addrs, "out", RequestKind.WRITE),
            ):
                if nbytes == 0:
                    continue
                blocks = -(-nbytes // access)
                if pos_name == "wgt":
                    start, wgt_pos = wgt_pos, (wgt_pos + blocks) % len(addrs)
                elif pos_name == "act":
                    start, act_pos = act_pos, (act_pos + blocks) % len(addrs)
                else:
                    start, out_pos = out_pos, (out_pos + blocks) % len(addrs)
                for i in range(blocks):
                    addr = addrs[(start + i) % len(addrs)]
                    requests.append(Request(addr=addr, kind=kind))
        return requests

    def run(self, m: int, n: int, k: int) -> CosimResult:
        """Compare the engine's memory-cycle estimate with a full
        cycle-level replay of the same traffic."""
        execution = self.engine.gemm_execution(m, n, k)
        requests = self.request_stream(m, n, k)
        controller = MemoryController(self.dram_config)
        stats = controller.simulate(requests)
        # Convert DRAM-controller cycles to NDP-clock cycles.
        dram_seconds = self.dram_config.timing.cycles_to_seconds(stats.total_cycles)
        dram_ndp_cycles = int(round(dram_seconds * self.engine.spec.clock_hz))
        return CosimResult(
            m=m,
            n=n,
            k=k,
            engine_mem_cycles=execution.memory_cycles,
            dram_cycles=dram_ndp_cycles,
            dram_bytes=len(requests) * self.dram_config.organization.access_bytes,
        )
