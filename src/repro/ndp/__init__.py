"""The MoNDE NDP core (Section 3.1) and its controllers (Section 3.4).

Cycle-level model of the near-data compute inside the CXL memory
device:

- :mod:`repro.ndp.systolic` -- 4x4 MAC arrays under a SIMD controller
  (64 arrays process a 4x256 output tile per pass), with functional
  NumPy execution and exact cycle counts.
- :mod:`repro.ndp.buffers` -- scratchpad and operand buffers with
  capacity tracking and double buffering.
- :mod:`repro.ndp.tiling` -- output-stationary tile schedule for
  C = A x B expert GEMMs ("fat and wide" cold-expert shapes).
- :mod:`repro.ndp.engine` -- the GEMM engine: walks the tile schedule,
  charges compute cycles against the systolic cluster and memory
  cycles against the (DRAM-calibrated) device bandwidth, overlapping
  the two as double buffering allows.
- :mod:`repro.ndp.controllers` -- the NDP controller (instruction
  queue, memory-mapped registers, done flag) and CXL controller
  (RwD-flit unwrapping, NDP-flag detection).
- :mod:`repro.ndp.device` -- the full MoNDE device: allocator over the
  device address space (expert weights in even banks, activations in
  odd), functional memory, and kernel execution.
"""

from repro.ndp.buffers import Buffer, DoubleBuffer
from repro.ndp.controllers import CXLController, MMIORegisters, NDPController
from repro.ndp.device import DeviceMemoryLayout, MoNDEDevice
from repro.ndp.engine import GEMMExecution, NDPGemmEngine
from repro.ndp.systolic import MACArray, SystolicCluster
from repro.ndp.tiling import OutputStationaryTiler, Tile

__all__ = [
    "Buffer",
    "CXLController",
    "DeviceMemoryLayout",
    "DoubleBuffer",
    "GEMMExecution",
    "MACArray",
    "MMIORegisters",
    "MoNDEDevice",
    "NDPController",
    "NDPGemmEngine",
    "OutputStationaryTiler",
    "SystolicCluster",
    "Tile",
]
