"""Systolic MAC arrays and the SIMD-controlled cluster.

Section 3.1: "our NDP core design adopts small-height 4x4 multiply-
and-accumulate (MAC) processing element (PE) arrays.  We use 64 of
such arrays that are controlled by a SIMD controller. [...] the MoNDE
NDP core processes 4x256 matrix operations in a consecutive
tile-by-tile, output-stationary manner."

Each :class:`MACArray` computes a 4 (rows) x 4 (cols) output tile,
accumulating over K; the :class:`SystolicCluster` drives 64 arrays in
lockstep over a 4 x 256 output stripe.  Cycle counts follow the
standard output-stationary pipeline: K beats of accumulation plus the
skew fill/drain of (rows + cols - 2) cycles.
"""

from __future__ import annotations

import numpy as np


class MACArray:
    """One 4x4 output-stationary MAC array."""

    def __init__(self, rows: int = 4, cols: int = 4) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("array dims must be >= 1")
        self.rows = rows
        self.cols = cols

    @property
    def skew_cycles(self) -> int:
        """Pipeline fill/drain for skewed operand feeding."""
        return self.rows + self.cols - 2

    def tile_cycles(self, k: int) -> int:
        """Cycles to accumulate a (rows x cols) output tile over depth k."""
        if k < 0:
            raise ValueError("k must be non-negative")
        if k == 0:
            return 0
        return k + self.skew_cycles

    def compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Functional tile multiply: (m<=rows, k) x (k, n<=cols).

        Models exactly what the PE grid accumulates; oversized
        operands are rejected the way the hardware would.
        """
        if a.ndim != 2 or b.ndim != 2:
            raise ValueError("operands must be 2-D tiles")
        if a.shape[0] > self.rows or b.shape[1] > self.cols:
            raise ValueError(
                f"tile ({a.shape[0]}x{b.shape[1]}) exceeds array ({self.rows}x{self.cols})"
            )
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"inner dims mismatch: {a.shape} x {b.shape}")
        return a @ b


class SystolicCluster:
    """64 MAC arrays in SIMD lockstep: one 4 x 256 output stripe pass.

    All arrays share the same activation rows (broadcast) and each
    array owns a disjoint 4-column slice of the weight matrix, so a
    pass produces ``rows x (n_arrays * cols)`` outputs in
    ``k + skew`` cycles.
    """

    def __init__(self, n_arrays: int = 64, rows: int = 4, cols: int = 4) -> None:
        if n_arrays < 1:
            raise ValueError("n_arrays must be >= 1")
        self.n_arrays = n_arrays
        self.array = MACArray(rows, cols)

    @property
    def tile_rows(self) -> int:
        return self.array.rows

    @property
    def tile_cols(self) -> int:
        return self.n_arrays * self.array.cols

    @property
    def macs_per_cycle(self) -> int:
        return self.n_arrays * self.array.rows * self.array.cols

    def stripe_cycles(self, k: int) -> int:
        """Cycles for one 4 x 256 output stripe of depth ``k`` (SIMD:
        all arrays finish together)."""
        return self.array.tile_cycles(k)

    def compute_stripe(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Functional stripe multiply: (m<=4, k) x (k, n<=256).

        Dispatches column slices to the arrays exactly as the SIMD
        controller does, then concatenates the per-array outputs.
        """
        if b.shape[1] > self.tile_cols:
            raise ValueError(
                f"stripe width {b.shape[1]} exceeds cluster width {self.tile_cols}"
            )
        outputs = []
        for start in range(0, b.shape[1], self.array.cols):
            outputs.append(self.array.compute(a, b[:, start : start + self.array.cols]))
        return np.concatenate(outputs, axis=1)
