"""Output-stationary tile schedule for expert GEMMs.

Cold-expert GEMMs are "fat and wide": the activation height M is tiny
(few routed tokens) while K and N are d_model or d_ff (multiples of
256).  The schedule loops ``n-stripe -> k-chunk -> m-stripe``:

- the (k x 256) weight chunk is fetched once into the expert buffer
  and *reused across every m-stripe* (weight-resident inner loop), so
  total weight traffic is exactly the expert size regardless of M;
- activation rows stream per (n, k, m) step -- negligible for cold
  experts (M <= 4 means one m-stripe) and M*K per n-stripe for hot
  experts, where the engine becomes compute-bound anyway;
- outputs write back once per (m, n) stripe on the last k-chunk.

K is chunked so a weight chunk fits half the expert buffer (double
buffering), which for the paper's dimensions is 86 rows of a 256-wide
stripe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.hw.specs import BF16_BYTES


@dataclass(frozen=True)
class Tile:
    """One scheduled (m-stripe, n-stripe, k-chunk) step.

    ``act_bytes``/``wgt_bytes``/``out_bytes`` count only the DRAM
    traffic this step *newly* incurs under the weight-resident
    schedule described in the module docstring.
    """

    m_index: int
    n_index: int
    k_index: int
    m: int
    n: int
    k: int
    act_bytes: int
    wgt_bytes: int
    out_bytes: int

    @property
    def macs(self) -> int:
        return self.m * self.n * self.k


class OutputStationaryTiler:
    """Generates the tile stream for C[M,N] = A[M,K] @ B[K,N]."""

    def __init__(
        self,
        tile_rows: int = 4,
        tile_cols: int = 256,
        wgt_buffer_bytes: int = 88 * 1024,
        dtype_bytes: int = BF16_BYTES,
    ) -> None:
        if tile_rows < 1 or tile_cols < 1:
            raise ValueError("tile dims must be >= 1")
        self.tile_rows = tile_rows
        self.tile_cols = tile_cols
        self.wgt_buffer_bytes = wgt_buffer_bytes
        self.dtype_bytes = dtype_bytes

    def k_chunk(self, n: int) -> int:
        """Largest K depth whose (k x n) weight slice fits half of the
        weight buffer (double buffering)."""
        per_k = n * self.dtype_bytes
        chunk = (self.wgt_buffer_bytes // 2) // per_k
        return max(1, chunk)

    def tiles(self, m: int, n: int, k: int) -> Iterator[Tile]:
        """Yield the tile stream in (n-stripe, k-chunk, m-stripe) order."""
        if min(m, n, k) < 0:
            raise ValueError(f"GEMM dims must be non-negative, got {(m, n, k)}")
        if m == 0 or n == 0 or k == 0:
            return
        dt = self.dtype_bytes
        for ni, n0 in enumerate(range(0, n, self.tile_cols)):
            nn = min(self.tile_cols, n - n0)
            chunk = self.k_chunk(nn)
            n_chunks = -(-k // chunk)
            for ki, k0 in enumerate(range(0, k, chunk)):
                kk = min(chunk, k - k0)
                for mi, m0 in enumerate(range(0, m, self.tile_rows)):
                    mm = min(self.tile_rows, m - m0)
                    yield Tile(
                        m_index=mi,
                        n_index=ni,
                        k_index=ki,
                        m=mm,
                        n=nn,
                        k=kk,
                        # Activations stream per m-stripe; the weight
                        # chunk is fetched once (first m-stripe) and
                        # stays resident for the rest.
                        act_bytes=mm * kk * dt,
                        wgt_bytes=kk * nn * dt if mi == 0 else 0,
                        out_bytes=mm * nn * dt if ki == n_chunks - 1 else 0,
                    )

    def count_tiles(self, m: int, n: int, k: int) -> int:
        return sum(1 for _ in self.tiles(m, n, k))

    def total_traffic_bytes(self, m: int, n: int, k: int) -> int:
        """Total DRAM traffic of the schedule: the full weight matrix
        exactly once, activations once per n-stripe, outputs once."""
        return sum(t.act_bytes + t.wgt_bytes + t.out_bytes for t in self.tiles(m, n, k))
