"""The NDP GEMM engine: cycle-level timing plus functional execution.

This is the "cycle-level expert computation simulator" of Section 4.1:
it walks the output-stationary tile schedule, charging each tile

- compute cycles on the systolic cluster (K + pipeline skew), and
- memory cycles against the device's DRAM bandwidth (as calibrated by
  the cycle-level DRAM simulator),

overlapping the two under double buffering: the engine's total is the
pipelined makespan  fill + sum(max(compute_i, mem_i)) + drain, exactly
the behaviour of an operand-prefetching tile pipeline.

For the paper's dimensions the design point is rate-matched: a 4x256
stripe needs K compute cycles and K*256*2 bytes of weights, which at
512 B/cycle is also ~K cycles -- the hardware neither starves nor
stalls for M <= 4 (cold experts), which is the paper's efficiency
argument for small-height PE arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.hw.specs import BF16_BYTES, NDPCoreSpec
from repro.moe.functional import ACTIVATIONS
from repro.ndp.buffers import DoubleBuffer
from repro.ndp.systolic import SystolicCluster
from repro.ndp.tiling import OutputStationaryTiler


@dataclass(frozen=True)
class GEMMExecution:
    """Timing breakdown of one GEMM on the NDP core."""

    m: int
    n: int
    k: int
    n_tiles: int
    compute_cycles: int
    memory_cycles: int
    pipelined_cycles: int
    dram_bytes: int
    seconds: float

    @property
    def is_memory_bound(self) -> bool:
        return self.memory_cycles >= self.compute_cycles

    @property
    def achieved_flops(self) -> float:
        if self.seconds == 0:
            return 0.0
        return 2.0 * self.m * self.n * self.k / self.seconds


class NDPGemmEngine:
    """Cycle-level GEMM timing and functional execution for one device.

    ``mem_bandwidth`` is the *effective* device bandwidth in bytes/s
    (pass the DRAM calibrator's sequential-stream result, or the spec
    default which matches it).
    """

    def __init__(
        self,
        spec: NDPCoreSpec,
        mem_bandwidth: float,
        dtype_bytes: int = BF16_BYTES,
    ) -> None:
        if mem_bandwidth <= 0:
            raise ValueError("mem_bandwidth must be positive")
        self.spec = spec
        self.mem_bandwidth = mem_bandwidth
        self.dtype_bytes = dtype_bytes
        self.cluster = SystolicCluster(spec.n_arrays, spec.array_rows, spec.array_cols)
        self.wgt_buffer = DoubleBuffer("exp-buffer", spec.exp_buffer_bytes)
        self.tiler = OutputStationaryTiler(
            tile_rows=self.cluster.tile_rows,
            tile_cols=self.cluster.tile_cols,
            wgt_buffer_bytes=spec.exp_buffer_bytes,
            dtype_bytes=dtype_bytes,
        )
        #: Bytes the DRAM can stream per NDP clock cycle.
        self.bytes_per_cycle = mem_bandwidth / spec.clock_hz

    @classmethod
    def from_dram(
        cls,
        spec: NDPCoreSpec,
        dram_config=None,
        dtype_bytes: int = BF16_BYTES,
        nbytes: int = 1 << 20,
    ) -> "NDPGemmEngine":
        """Engine whose effective bandwidth comes from a cycle-level
        run of the FR-FCFS controller on ``dram_config`` (defaults to
        the paper's LPDDR5X module) instead of the spec constant.

        The calibration is cached per config, so constructing many
        engines (multi-device platforms, serving sweeps) simulates the
        DRAM once.
        """
        from repro.dram.calibrate import calibrated_effective_bandwidth
        from repro.dram.config import LPDDR5X_8533

        config = dram_config if dram_config is not None else LPDDR5X_8533
        bandwidth = calibrated_effective_bandwidth(config, nbytes=nbytes)
        return cls(spec, bandwidth, dtype_bytes=dtype_bytes)

    # -- timing --------------------------------------------------------------

    def gemm_execution(self, m: int, n: int, k: int) -> GEMMExecution:
        """Cycle-level timing for C[m,n] = A[m,k] @ B[k,n].

        Walks the tile schedule in grouped form: within one
        (n-stripe, k-chunk) the m-stripe tiles are identical except for
        the first (which also fetches the weight chunk) and a possible
        ragged last stripe, so each group is costed once and
        multiplied.  Identical in result to iterating
        ``self.tiler.tiles`` tile by tile, but O(n/256 * k/chunk).
        """
        if m == 0 or n == 0 or k == 0:
            return GEMMExecution(m, n, k, 0, 0, 0, 0, 0, 0.0)
        dt = self.tiler.dtype_bytes
        rows = self.tiler.tile_rows
        bpc = self.bytes_per_cycle

        def mem_cycles(nbytes: int) -> int:
            return int(np.ceil(nbytes / bpc))

        n_full_m, m_rem = divmod(m, rows)
        m_stripes = n_full_m + (1 if m_rem else 0)

        compute_total = 0
        mem_total = 0
        pipelined = 0
        dram_bytes = 0
        n_tiles = 0
        first_mem = 0
        for n0 in range(0, n, self.tiler.tile_cols):
            nn = min(self.tiler.tile_cols, n - n0)
            chunk = self.tiler.k_chunk(nn)
            n_chunks = -(-k // chunk)
            for ki, k0 in enumerate(range(0, k, chunk)):
                kk = min(chunk, k - k0)
                last_chunk = ki == n_chunks - 1
                compute_cycles = self.cluster.stripe_cycles(kk)
                # Tile variants within this (n-stripe, k-chunk) group.
                variants: list[tuple[int, int, int]] = []  # (count, mm, wgt)
                wgt = kk * nn * dt
                if m_stripes == 1:
                    variants.append((1, m, wgt))
                else:
                    variants.append((1, rows, wgt))
                    full_rest = n_full_m - 1
                    if full_rest > 0:
                        variants.append((full_rest, rows, 0))
                    if m_rem:
                        variants.append((1, m_rem, 0))
                for count, mm, wgt_bytes in variants:
                    act = mm * kk * dt
                    out = mm * nn * dt if last_chunk else 0
                    tile_bytes = act + wgt_bytes + out
                    mc = mem_cycles(tile_bytes)
                    if n_tiles == 0:
                        first_mem = mc
                    compute_total += count * compute_cycles
                    mem_total += count * mc
                    pipelined += count * max(compute_cycles, mc)
                    dram_bytes += count * tile_bytes
                    n_tiles += count
        # Pipeline fill (the first operand fetch) is not hidden by the
        # steady-state overlap; the last tile's compute (drain) is
        # already inside the final max() term.
        total = first_mem + pipelined
        seconds = total / self.spec.clock_hz
        return GEMMExecution(
            m=m,
            n=n,
            k=k,
            n_tiles=n_tiles,
            compute_cycles=compute_total,
            memory_cycles=mem_total,
            pipelined_cycles=total,
            dram_bytes=dram_bytes,
            seconds=seconds,
        )

    def gemm_time(self, m: int, n: int, k: int) -> float:
        """Seconds for one GEMM, excluding host dispatch."""
        return self.gemm_execution(m, n, k).seconds

    def expert_ffn_time(self, tokens: int, d_model: int, d_ff: int) -> float:
        """Seconds for one expert FFN (gemm + gemm+relu kernels) over
        ``tokens`` routed tokens, including the NDP dispatch overhead."""
        if tokens == 0:
            return 0.0
        t1 = self.gemm_time(tokens, d_ff, d_model)
        t2 = self.gemm_time(tokens, d_model, d_ff)
        return t1 + t2 + self.spec.dispatch_overhead

    def expert_batch_time(
        self, token_counts: list[int] | np.ndarray, d_model: int, d_ff: int
    ) -> float:
        """Seconds for a batch of expert FFNs run back to back on one
        NDP core (the MD+AM workflow's device-side total)."""
        return float(
            sum(self.expert_ffn_time(int(t), d_model, d_ff) for t in token_counts if t)
        )

    # -- functional ------------------------------------------------------------

    def run_gemm(
        self,
        a: np.ndarray,
        b: np.ndarray,
        activation: Optional[str] = None,
    ) -> tuple[np.ndarray, GEMMExecution]:
        """Functionally execute a GEMM tile-by-tile through the
        systolic cluster (bit-identical to a plain matmul) and return
        (result, timing).  ``activation`` fuses relu/gelu into the
        epilogue, the paper's ``gemm+relu`` kernel."""
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError(f"bad GEMM operands: {a.shape} x {b.shape}")
        m, k = a.shape
        _, n = b.shape
        out = np.zeros((m, n), dtype=np.result_type(a, b))
        rows = self.cluster.tile_rows
        cols = self.cluster.tile_cols
        for m0 in range(0, m, rows):
            for n0 in range(0, n, cols):
                stripe = self.cluster.compute_stripe(
                    a[m0 : m0 + rows], b[:, n0 : n0 + cols]
                )
                out[m0 : m0 + rows, n0 : n0 + cols] = stripe
        if activation is not None:
            fn: Callable[[np.ndarray], np.ndarray] = ACTIVATIONS[activation]
            out = fn(out)
        return out, self.gemm_execution(m, n, k)
