"""Expert-to-device placement policies.

A sharding policy answers one question per DRAM access: *which NDP
device holds the bytes this access touches?*  The unit of placement is
the planner's physical expert region
(:meth:`~repro.cosim.replay.ExpertReplayPlanner.region_of_addrs`), so
placement is deterministic in the address alone and identical across
co-simulation iterations.

Three policies span the design space the paper's comparison implies:

- ``replicated`` -- every device holds every expert (the all-PMove
  baseline): a request is served whole by its home device, nothing
  crosses a link.
- ``expert_parallel`` -- each region lives on exactly one device
  (``region % n_devices``): maximum capacity per device, every access
  to a remote expert pays an activation round trip.
- ``hot_cold`` -- the MoNDE-style split: the per-layer hottest
  experts stay replicated (served at home, no transfer), the cold
  tail is sharded expert-parallel.  ``hot_fraction`` is the knob the
  MoNDE-vs-DynaNDE comparison turns.
"""

from __future__ import annotations

import numpy as np


SHARDING_POLICIES = ("replicated", "expert_parallel", "hot_cold")


class ShardingPolicy:
    """Maps each DRAM access to the device that serves it.

    ``device_map(addrs, home, n_devices, planner)`` returns one device
    index per element; ``home`` is each element's request home device
    (where the request's activations already live), so any element
    mapped elsewhere pays an inter-device transfer.
    """

    name: str = "?"

    def device_map(
        self,
        addrs: np.ndarray,
        home: np.ndarray,
        n_devices: int,
        planner,
    ) -> np.ndarray:
        raise NotImplementedError


class ReplicatedSharding(ShardingPolicy):
    """Every device holds every expert; requests never leave home."""

    name = "replicated"

    def device_map(self, addrs, home, n_devices, planner):
        return home


class ExpertParallelSharding(ShardingPolicy):
    """Each expert region lives on exactly one device."""

    name = "expert_parallel"

    def device_map(self, addrs, home, n_devices, planner):
        return planner.region_of_addrs(addrs) % n_devices


class HotColdSharding(ShardingPolicy):
    """Hot experts replicated everywhere, cold tail sharded."""

    name = "hot_cold"

    def __init__(self, hot_fraction: float = 0.125) -> None:
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        self.hot_fraction = hot_fraction

    def device_map(self, addrs, home, n_devices, planner):
        regions = planner.region_of_addrs(addrs)
        hot = planner.hot_region_ids(self.hot_fraction)
        if not hot:
            return regions % n_devices
        hot_arr = np.fromiter(hot, dtype=np.int64)
        is_hot = np.isin(regions, hot_arr)
        return np.where(is_hot, home, regions % n_devices)


def make_sharding_policy(name: str, hot_fraction: float = 0.125) -> ShardingPolicy:
    """Policy instance by name (the config-file spelling)."""
    if name == "replicated":
        return ReplicatedSharding()
    if name == "expert_parallel":
        return ExpertParallelSharding()
    if name == "hot_cold":
        return HotColdSharding(hot_fraction)
    raise ValueError(
        f"unknown sharding policy {name!r}; choose from {SHARDING_POLICIES}"
    )


def place_experts(
    n_experts: int,
    n_devices: int,
    intensities=None,
    policy: str = "round_robin_by_intensity",
    start_slot: int = 0,
) -> list[int]:
    """Device index per expert for the analytical cluster model
    (:class:`repro.core.cluster.MoNDECluster`).

    ``round_robin_by_intensity`` is the paper's Section 3.3 placement:
    experts sorted by descending intensity (ties by index) are dealt
    round-robin, so each device gets an even share of hot and cold
    experts.  ``block`` assigns contiguous expert ranges (the naive
    layout the round-robin placement beats when intensities are
    skewed).  ``start_slot`` offsets the deal, letting a caller that
    places experts incrementally keep its round-robin cursor across
    calls.
    """
    if n_experts < 0 or n_devices < 1:
        raise ValueError("need n_experts >= 0 and n_devices >= 1")
    if policy == "block":
        per = -(-n_experts // n_devices) if n_experts else 1
        return [min(e // per, n_devices - 1) for e in range(n_experts)]
    if policy != "round_robin_by_intensity":
        raise ValueError(f"unknown placement policy {policy!r}")
    if intensities is None:
        order = list(range(n_experts))
    else:
        if len(intensities) != n_experts:
            raise ValueError("intensities length must match n_experts")
        order = sorted(range(n_experts), key=lambda e: (-intensities[e], e))
    device_of = [0] * n_experts
    for slot, expert in enumerate(order, start=start_slot):
        device_of[expert] = slot % n_devices
    return device_of
