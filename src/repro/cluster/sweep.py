"""Replica-count x sharding-policy capacity sweep.

The millions-of-users question asked directly: for each (replica
count, sharding policy) pair in the grid, run the closed
serving<->DRAM loop at every offered load -- requests split across
replicas by the balancer, each replica's experts sharded across its
NDP devices by the policy, per-device contention and inter-device
activation transfers fed back through the fixed point -- and read off
the SLO capacity ("max req/s with closed p99 under X seconds") per
curve.  The capacity-vs-replicas table answers *how many devices serve
offered load R at p99 <= X*.

Degenerate anchor: one replica, ``replicated`` sharding, one device
per replica, zero activation bytes is bit-identical to
:func:`repro.cosim.sweep.run_load_sweep` on the same arguments (the
equivalence CI asserts it), so cluster curves and single-device curves
live on the same scale.
"""

from __future__ import annotations

import json
import logging
import pathlib
from dataclasses import asdict, dataclass, field
from types import SimpleNamespace
from typing import Callable, Optional

import numpy as np

from repro.analysis.report import format_table
from repro.core.strategies import Scheme
from repro.serving.simulator import CostModel
from repro.serving.workload import RequestGenerator
from repro.util.atomic_io import atomic_write_json
from repro.workloads.serialization import check_format_version

from repro.cluster.balancer import assign_replicas
from repro.cluster.backend import ShardedDramBackend
from repro.cluster.config import ClusterConfig
from repro.cosim.driver import CosimConfig, CosimDriver, CosimResult
from repro.cosim.sweep import (
    SweepPoint,
    _failed_point,
    _point_from_run,
    _traffic_columns,
    slo_capacity,
)

CLUSTER_SWEEP_FORMAT_VERSION = 1

logger = logging.getLogger(__name__)


def _merged_point(
    rate: float, runs: list[CosimResult], traffic=None
) -> SweepPoint:
    """Collapse one rate's per-replica closed-loop runs into a single
    fleet-level grid point.  Latency tails are percentiles over the
    *union* of all replicas' completed requests -- a per-replica
    percentile-of-percentiles would understate the fleet tail."""

    def union(attr: str, value):
        samples = []
        for run in runs:
            for c in getattr(run, attr).completed:
                samples.append(value(c))
        return samples

    def pct(samples, q):
        return float(np.percentile(samples, q)) if samples else 0.0

    open_lat = union("open_loop", lambda c: c.latency)
    closed_lat = union("closed_loop", lambda c: c.latency)
    ttft = union("closed_loop", lambda c: c.ttft)
    qdelay = union("closed_loop", lambda c: c.queue_delay)
    tpot = [
        c.tpot
        for run in runs
        for c in run.closed_loop.completed
        if c.request.decode_tokens > 0
    ]
    total_tokens = [
        float(
            sum(
                c.request.prompt_tokens + c.request.decode_tokens
                for c in run.closed_loop.completed
            )
        )
        or 1.0
        for run in runs
    ]
    weight = sum(total_tokens)

    def token_weighted(values):
        return sum(v * t for v, t in zip(values, total_tokens)) / weight

    lasts = [run.iterations[-1] for run in runs if run.iterations]
    return SweepPoint(
        rate=rate,
        open_p50=pct(open_lat, 50),
        open_p99=pct(open_lat, 99),
        open_max=pct(open_lat, 100),
        closed_p50=pct(closed_lat, 50),
        closed_p99=pct(closed_lat, 99),
        closed_max=pct(closed_lat, 100),
        # Replicas run concurrently; the fleet is as utilized as its
        # average replica.
        utilization=float(
            np.mean([run.closed_loop.utilization for run in runs])
        ),
        completed=sum(run.closed_loop.n_completed for run in runs),
        rejected=sum(run.closed_loop.rejected for run in runs),
        n_iterations=max(run.n_iterations for run in runs),
        converged=all(run.converged for run in runs),
        extra_seconds_per_token=token_weighted(
            [run.extra_seconds_per_token for run in runs]
        ),
        dram_queue_delay_mean=(
            float(np.mean([it.dram_queue_delay_mean for it in lasts]))
            if lasts
            else 0.0
        ),
        dram_queue_delay_p99=(
            max(it.dram_queue_delay_p99 for it in lasts) if lasts else 0.0
        ),
        dram_idle_cycles=sum(it.dram_idle_cycles for it in lasts),
        dram_total_cycles=(
            max(it.dram_total_cycles for it in lasts) if lasts else 0
        ),
        residual_seconds_per_token=max(
            run.residual_seconds_per_token for run in runs
        ),
        closed_ttft_p99=pct(ttft, 99),
        closed_queue_delay_p99=pct(qdelay, 99),
        closed_tpot_p99=pct(tpot, 99),
        extra_prefill_seconds_per_token=token_weighted(
            [run.extra_prefill_seconds_per_token for run in runs]
        ),
        extra_decode_seconds_per_token=token_weighted(
            [run.extra_decode_seconds_per_token for run in runs]
        ),
        # Tenant / flash-window tails over the same fleet-wide union of
        # completions the plain percentiles use.
        **_traffic_columns(
            SimpleNamespace(
                completed=[
                    c for run in runs for c in run.closed_loop.completed
                ]
            ),
            traffic,
        ),
    )


@dataclass
class ClusterCurve:
    """One (replica count, sharding policy) capacity curve."""

    replicas: int
    policy: str
    points: list[SweepPoint] = field(default_factory=list)
    #: max sustained req/s with fleet closed p99 under the shared SLO
    slo_capacity_rps: float = 0.0


@dataclass
class ClusterSweepResult:
    """A full replica x policy x rate grid, serializable."""

    scheme: str
    arrival: str
    n_requests: int
    seed: int
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    curves: list[ClusterCurve] = field(default_factory=list)
    config: dict = field(default_factory=dict)
    #: shared closed-loop p99 threshold all curves were read against
    slo_p99_seconds: float = 0.0
    slo_auto: bool = True
    #: per-tenant closed-loop p99 SLO thresholds (milliseconds) from
    #: the traffic scenario, keyed by tenant name (empty when the
    #: sweep ran without tenants)
    tenant_slo_p99_ms: dict = field(default_factory=dict)

    def curve(self, replicas: int, policy: str) -> ClusterCurve:
        for c in self.curves:
            if c.replicas == replicas and c.policy == policy:
                return c
        raise KeyError(f"no curve for replicas={replicas} policy={policy!r}")

    def devices_for_load(
        self, rate: float, policy: Optional[str] = None
    ) -> Optional[int]:
        """Smallest device count whose curve sustains ``rate`` within
        the SLO (``replicas * devices_per_replica``), or ``None`` if
        no swept size does."""
        best: Optional[int] = None
        for c in self.curves:
            if policy is not None and c.policy != policy:
                continue
            if c.slo_capacity_rps >= rate:
                devices = c.replicas * self.cluster.devices_per_replica
                if best is None or devices < best:
                    best = devices
        return best

    # -- codec -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": CLUSTER_SWEEP_FORMAT_VERSION,
            "kind": "cluster_sweep",
            "scheme": self.scheme,
            "arrival": self.arrival,
            "n_requests": self.n_requests,
            "seed": self.seed,
            "slo_p99_seconds": self.slo_p99_seconds,
            "slo_auto": self.slo_auto,
            "tenant_slo_p99_ms": self.tenant_slo_p99_ms,
            "cluster": self.cluster.to_dict(),
            "config": self.config,
            "curves": [
                {
                    "replicas": c.replicas,
                    "policy": c.policy,
                    "slo_capacity_rps": c.slo_capacity_rps,
                    "points": [asdict(p) for p in c.points],
                }
                for c in self.curves
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterSweepResult":
        check_format_version(
            data.get("version"), CLUSTER_SWEEP_FORMAT_VERSION, "cluster sweep"
        )
        if data.get("kind") != "cluster_sweep":
            raise ValueError(
                f"not a cluster sweep document (kind={data.get('kind')!r})"
            )
        return cls(
            scheme=data["scheme"],
            arrival=data["arrival"],
            n_requests=int(data["n_requests"]),
            seed=int(data["seed"]),
            slo_p99_seconds=float(data.get("slo_p99_seconds", 0.0)),
            slo_auto=bool(data.get("slo_auto", True)),
            tenant_slo_p99_ms=dict(data.get("tenant_slo_p99_ms", {})),
            cluster=ClusterConfig.from_dict(data.get("cluster", {})),
            config=dict(data.get("config", {})),
            curves=[
                ClusterCurve(
                    replicas=int(c["replicas"]),
                    policy=str(c["policy"]),
                    slo_capacity_rps=float(c.get("slo_capacity_rps", 0.0)),
                    points=[SweepPoint(**p) for p in c["points"]],
                )
                for c in data.get("curves", [])
            ],
        )

    def save(self, path) -> None:
        atomic_write_json(path, self.to_dict())

    @classmethod
    def load(cls, path) -> "ClusterSweepResult":
        return cls.from_dict(json.loads(pathlib.Path(path).read_text()))


def format_cluster_sweep(result: ClusterSweepResult) -> str:
    """Capacity table: one row per (replicas, policy) curve, plus the
    device-count answer at each curve's knee."""
    rows = []
    for c in result.curves:
        worst = max((p.closed_p99 for p in c.points if not p.failed), default=0.0)
        rows.append(
            [
                c.replicas,
                c.replicas * result.cluster.devices_per_replica,
                c.policy,
                c.slo_capacity_rps,
                worst,
                sum(1 for p in c.points if p.failed),
            ]
        )
    header = [
        "replicas",
        "devices",
        "policy",
        "slo cap (req/s)",
        "worst closed p99",
        "failed pts",
    ]
    return format_table(header, rows)


def run_cluster_sweep(
    cost_model: CostModel,
    scheme: Scheme,
    planner,
    rates: list[float],
    cluster: Optional[ClusterConfig] = None,
    n_requests: int = 100,
    seed: int = 0,
    arrival: str = "poisson",
    mean_prompt_tokens: int = 512,
    mean_decode_tokens: int = 32,
    cosim_config: Optional[CosimConfig] = None,
    slo_p99_seconds: Optional[float] = None,
    on_point: Optional[Callable[[int, str, float, SweepPoint], None]] = None,
    traffic=None,
) -> tuple[ClusterSweepResult, dict[tuple[int, str], list[Optional[CosimResult]]]]:
    """Sweep the full replica x policy x rate grid.

    Every (curve, rate) point regenerates the request stream with the
    *same* seeded generator the single-device sweep uses -- offered
    load is a property of the outside world, not of the fleet shape --
    then splits it across replicas with the configured balancer and
    runs each replica's closed loop on its own
    :class:`~repro.cluster.backend.ShardedDramBackend`.  Per-curve SLO
    capacities are read against one shared threshold (given, or
    auto-derived from the *first* curve's lowest-rate point) so curves
    are comparable.

    Returns the serializable result plus per-curve lists of the live
    per-rate :class:`CosimResult` s (single-replica curves; multi-
    replica rates carry ``None`` -- their per-replica runs were merged
    into the recorded point).

    An active ``traffic`` config swaps request generation to
    :func:`repro.traffic.generate.generate_requests` (tenant mixes,
    load shapes) and fills the per-tenant / flash-window columns on
    every point -- the same semantics as the single-device sweep, so
    the 1-replica anchor stays bit-identical under any scenario.
    """
    if not rates:
        raise ValueError("rates must be non-empty")
    if sorted(rates) != list(rates):
        raise ValueError("rates must be sorted ascending")
    if planner is None:
        raise ValueError("cluster sweeps need a replay planner")
    cluster = cluster or ClusterConfig()
    cfg = cosim_config or CosimConfig()
    result = ClusterSweepResult(
        scheme=scheme.value,
        arrival=arrival,
        n_requests=n_requests,
        seed=seed,
        cluster=cluster,
        config={
            "damping": cfg.damping,
            "max_iterations": cfg.max_iterations,
            "p99_tolerance": cfg.p99_tolerance,
            "bytes_per_token": planner.bytes_per_token,
            "max_blocks_per_request": planner.max_blocks_per_request,
            "dram_channels": planner.config.organization.n_channels,
            "encode_seconds_per_token": cost_model.encode_seconds_per_token,
            "decode_seconds_per_token": cost_model.decode_seconds_per_token,
            "mean_prompt_tokens": mean_prompt_tokens,
            "mean_decode_tokens": mean_decode_tokens,
            "engine": cfg.engine,
            "rates": [float(r) for r in rates],
        },
    )
    if traffic is not None:
        # Scenario provenance; key absent on legacy sweeps.
        result.config["traffic"] = traffic.to_dict()
        result.tenant_slo_p99_ms = {
            t.name: t.slo_p99_ms for t in traffic.tenants
        }
    runs_by_curve: dict[tuple[int, str], list[Optional[CosimResult]]] = {}
    for policy in cluster.policies:
        for n_replicas in cluster.replicas:
            curve = ClusterCurve(replicas=n_replicas, policy=policy)
            curve_runs: list[Optional[CosimResult]] = []
            for rate in rates:
                if traffic is not None:
                    from repro.traffic.generate import generate_requests

                    requests = list(
                        generate_requests(
                            rate,
                            n_requests,
                            mean_prompt_tokens=mean_prompt_tokens,
                            mean_decode_tokens=mean_decode_tokens,
                            seed=seed,
                            arrival=arrival,
                            traffic=traffic,
                        )
                    )
                else:
                    requests = list(
                        RequestGenerator(
                            rate,
                            mean_prompt_tokens=mean_prompt_tokens,
                            mean_decode_tokens=mean_decode_tokens,
                            seed=seed,
                            arrival=arrival,
                        ).generate(n_requests)
                    )
                try:
                    point, run = _run_cluster_point(
                        cost_model,
                        scheme,
                        planner,
                        cfg,
                        cluster,
                        n_replicas,
                        policy,
                        rate,
                        requests,
                        traffic,
                    )
                except Exception as exc:
                    logger.warning(
                        "cluster point replicas=%d policy=%s rate=%g failed: %s",
                        n_replicas,
                        policy,
                        rate,
                        exc,
                    )
                    point, run = _failed_point(rate, exc), None
                curve.points.append(point)
                curve_runs.append(run)
                if on_point is not None:
                    on_point(n_replicas, policy, rate, point)
            result.curves.append(curve)
            runs_by_curve[(n_replicas, policy)] = curve_runs

    ok_anchor = [
        p for p in result.curves[0].points if not p.failed
    ]
    if slo_p99_seconds is not None:
        result.slo_p99_seconds = float(slo_p99_seconds)
        result.slo_auto = False
    elif ok_anchor:
        result.slo_p99_seconds = 5.0 * ok_anchor[0].closed_p99
        result.slo_auto = True
    if result.slo_p99_seconds > 0:
        for curve in result.curves:
            ok = [p for p in curve.points if not p.failed]
            if ok:
                curve.slo_capacity_rps = slo_capacity(ok, result.slo_p99_seconds)
    return result, runs_by_curve


def _run_cluster_point(
    cost_model: CostModel,
    scheme: Scheme,
    planner,
    cfg: CosimConfig,
    cluster: ClusterConfig,
    n_replicas: int,
    policy: str,
    rate: float,
    requests,
    traffic=None,
) -> tuple[SweepPoint, Optional[CosimResult]]:
    """One (curve, rate) point: balance, run each replica's closed
    loop, merge."""
    assignment = assign_replicas(
        requests,
        n_replicas,
        cluster.balancer,
        cost_model=cost_model,
        planner=planner,
    )
    runs: list[CosimResult] = []
    for replica in range(n_replicas):
        subset = [r for r, a in zip(requests, assignment) if a == replica]
        if not subset:
            continue
        backend = ShardedDramBackend(
            planner.config,
            n_devices=cluster.devices_per_replica,
            policy=policy,
            planner=planner,
            window=cfg.scheduler_window,
            activation_bytes_per_token=cluster.activation_bytes_per_token,
            hot_fraction=cluster.hot_fraction,
            dram_workers=cfg.dram_workers,
        )
        driver = CosimDriver(
            cost_model, scheme, planner, config=cfg, backend=backend
        )
        try:
            runs.append(driver.run(subset))
        finally:
            backend.close()
    if not runs:
        raise ValueError(f"no replica received requests at rate {rate}")
    if len(runs) == 1:
        # Single-replica curves report the run verbatim -- the
        # bit-identity anchor against the single-device sweep.
        return _point_from_run(rate, runs[0], traffic), runs[0]
    return _merged_point(rate, runs, traffic), None
