"""Multi-device DRAM backend for the co-simulation loop.

:class:`ShardedDramBackend` implements the driver's backend protocol
(see :class:`repro.cosim.driver.SingleDeviceBackend`) for one replica
whose experts are spread across N NDP devices by a
:class:`~repro.cluster.sharding.ShardingPolicy`:

- each device is its own :class:`~repro.dram.controller.MemoryController`
  (own channels, own FR-FCFS scheduler, own refresh derate), built
  fresh per measurement and drained through one shared
  :class:`~repro.dram.parallel.DeviceDrainPool`;
- a measurement routes every trace element to the device holding its
  expert region, simulates the devices independently (device DRAMs
  share no timing state -- the same independence the per-channel
  parallel drain exploits one level down), and merges per-element
  timings back into input order;
- accesses landing off a request's home device additionally pay an
  activation round trip on the PCIe link, surfaced through
  ``transfer_seconds`` and folded into contention by the driver.

With one device the backend is a pass-through: the single controller's
stats are returned verbatim, so a 1-device replica is bit-identical to
the single-device cosim path (the pinned equivalence anchor).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cluster.sharding import ShardingPolicy, make_sharding_policy
from repro.dram.controller import ControllerStats, MemoryController, RequestTimings
from repro.dram.parallel import DeviceDrainPool
from repro.hw.pcie import PCIeLink
from repro.hw.specs import PCIE_GEN4_X16


#: ControllerStats counters that sum across devices.
_SUM_FIELDS = (
    "requests",
    "reads",
    "writes",
    "row_hits",
    "row_misses",
    "row_conflicts",
    "activates",
    "precharges",
    "refresh_cycles",
)


class ShardedDramBackend:
    """One replica's memory system: N NDP devices plus the link."""

    def __init__(
        self,
        dram_config,
        n_devices: int = 1,
        policy: ShardingPolicy | str = "replicated",
        planner=None,
        window: int = 64,
        link: Optional[PCIeLink] = None,
        activation_bytes_per_token: int = 0,
        hot_fraction: float = 0.125,
        device_pool: Optional[DeviceDrainPool] = None,
        dram_workers: int = 0,
    ) -> None:
        if n_devices < 1:
            raise ValueError("n_devices must be >= 1")
        if activation_bytes_per_token < 0:
            raise ValueError("activation_bytes_per_token must be non-negative")
        if isinstance(policy, str):
            policy = make_sharding_policy(policy, hot_fraction)
        if n_devices > 1 and planner is None:
            raise ValueError(
                "sharding across multiple devices needs a replay planner "
                "(its region geometry is the placement unit)"
            )
        self.config = dram_config
        self.n_devices = n_devices
        self.policy = policy
        self.planner = planner
        self.window = window
        self.link = link or PCIeLink(PCIE_GEN4_X16)
        self.activation_bytes_per_token = int(activation_bytes_per_token)
        if device_pool is None:
            device_pool = DeviceDrainPool(dram_workers)
            self._owns_pool = True
        else:
            self._owns_pool = False
        self._pool = device_pool

    # -- placement ---------------------------------------------------------

    def _home_devices(self, request_ids: np.ndarray) -> np.ndarray:
        """Home device per element: where the request's activations
        live (round-robin by request id, so one replica's devices see
        even request pressure under replicated sharding)."""
        return request_ids % self.n_devices

    def device_map(
        self, addrs: np.ndarray, request_ids: np.ndarray
    ) -> np.ndarray:
        """Serving device per trace element under the active policy."""
        home = self._home_devices(request_ids)
        return self.policy.device_map(addrs, home, self.n_devices, self.planner)

    # -- backend protocol --------------------------------------------------

    def simulate(self, addrs, arrive_cycles, flags, request_ids=None):
        """Route the trace across devices, simulate each device's
        controller cold, and merge timings back into input order."""
        if self.n_devices == 1 or len(addrs) == 0:
            controller = MemoryController(
                self.config, window=self.window, executor=self._pool.executor()
            )
            return controller.simulate_arrays(
                addrs, arrive_cycles, flags, detail=True
            )
        if request_ids is None:
            raise ValueError(
                "multi-device simulation needs request_ids to place elements"
            )
        device = self.device_map(addrs, request_ids)
        n = len(addrs)
        first = np.zeros(n, dtype=np.int64)
        complete = np.zeros(n, dtype=np.int64)
        delays = np.zeros(n, dtype=np.int64)
        hits = np.zeros(n, dtype=np.uint8)
        per_device: list[ControllerStats] = []
        n_channels = self.config.organization.n_channels
        merged = ControllerStats()
        for dev in range(self.n_devices):
            mask = device == dev
            if not mask.any():
                # An unused device still exists (idle channels report 0).
                for ch in range(n_channels):
                    merged.busy_channel_cycles[dev * n_channels + ch] = 0
                    merged.idle_channel_cycles[dev * n_channels + ch] = 0
                continue
            controller = MemoryController(
                self.config, window=self.window, executor=self._pool.executor()
            )
            stats, timings = controller.simulate_arrays(
                addrs[mask], arrive_cycles[mask], flags[mask], detail=True
            )
            per_device.append(stats)
            first[mask] = timings.first_command_cycles
            complete[mask] = timings.complete_cycles
            delays[mask] = timings.queue_delays
            hits[mask] = timings.row_hits
            for ch, busy in stats.busy_channel_cycles.items():
                merged.busy_channel_cycles[dev * n_channels + ch] = busy
            for ch, idle in stats.idle_channel_cycles.items():
                merged.idle_channel_cycles[dev * n_channels + ch] = idle
        for stats in per_device:
            for name in _SUM_FIELDS:
                setattr(merged, name, getattr(merged, name) + getattr(stats, name))
        # Devices run concurrently: the replica's span is the slowest
        # device's (each device's total already carries its own
        # refresh derate -- do not re-apply it here).
        merged.total_cycles = max(s.total_cycles for s in per_device)
        MemoryController._fill_queue_stats(merged, delays)
        timings = RequestTimings(
            first_command_cycles=first,
            complete_cycles=complete,
            queue_delays=delays,
            row_hits=hits,
        )
        return merged, timings

    def transfer_seconds(self, trace) -> dict[int, float]:
        """Per-request activation round-trip seconds across the link.

        A request ships ``tokens * activation_bytes_per_token`` bytes
        to each remote device its experts live on, weighted by that
        device's share of the request's expert traffic, and pays the
        result back.  Empty whenever nothing can cross a boundary:
        one device, replicated sharding (home placement by
        construction), or a zero activation size.
        """
        if (
            self.n_devices == 1
            or self.activation_bytes_per_token == 0
            or len(trace) == 0
        ):
            return {}
        device = self.device_map(trace.addrs, trace.request_ids)
        home = self._home_devices(trace.request_ids)
        remote = device != home
        if not remote.any():
            return {}
        out: dict[int, float] = {}
        uniq, inverse = np.unique(trace.request_ids, return_inverse=True)
        totals = np.bincount(inverse, minlength=len(uniq)).astype(np.float64)
        # Per (request, device) remote element counts -> traffic shares.
        pair = inverse * self.n_devices + device
        pair_counts = np.bincount(
            pair[remote], minlength=len(uniq) * self.n_devices
        ).reshape(len(uniq), self.n_devices)
        for row, rid in enumerate(uniq.tolist()):
            tokens = trace.tokens_by_request.get(int(rid), 0)
            nbytes = tokens * self.activation_bytes_per_token
            if nbytes == 0:
                continue
            seconds = 0.0
            for count in pair_counts[row]:
                if count == 0:
                    continue
                share = count / totals[row]
                seconds += self.link.round_trip_time(nbytes * share)
            if seconds > 0.0:
                out[int(rid)] = seconds
        return out

    def close(self) -> None:
        if self._owns_pool:
            self._pool.close()

    def __enter__(self) -> "ShardedDramBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
