"""Cluster-scale sharded serving simulation.

Scales the closed serving<->DRAM loop out to a fleet: N model replicas
behind a pluggable load balancer (:mod:`repro.cluster.balancer`), each
replica's experts sharded across NDP devices by a
:class:`~repro.cluster.sharding.ShardingPolicy`, every device backed
by its own memory controller
(:class:`~repro.cluster.backend.ShardedDramBackend`) with cross-device
activations paying PCIe transfer costs, and a replica x policy x rate
capacity sweep (:func:`~repro.cluster.sweep.run_cluster_sweep`)
answering "how many NDP devices serve offered load R at p99 <= X".
CLI surface: ``repro cluster sweep``.
"""

from repro.cluster.backend import ShardedDramBackend
from repro.cluster.balancer import BALANCERS, assign_replicas
from repro.cluster.config import ClusterConfig
from repro.cluster.sharding import (
    SHARDING_POLICIES,
    ExpertParallelSharding,
    HotColdSharding,
    ReplicatedSharding,
    ShardingPolicy,
    make_sharding_policy,
    place_experts,
)
from repro.cluster.sweep import (
    CLUSTER_SWEEP_FORMAT_VERSION,
    ClusterCurve,
    ClusterSweepResult,
    format_cluster_sweep,
    run_cluster_sweep,
)

__all__ = [
    "BALANCERS",
    "CLUSTER_SWEEP_FORMAT_VERSION",
    "SHARDING_POLICIES",
    "ClusterConfig",
    "ClusterCurve",
    "ClusterSweepResult",
    "ExpertParallelSharding",
    "HotColdSharding",
    "ReplicatedSharding",
    "ShardedDramBackend",
    "ShardingPolicy",
    "assign_replicas",
    "format_cluster_sweep",
    "make_sharding_policy",
    "place_experts",
    "run_cluster_sweep",
]
