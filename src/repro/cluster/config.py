"""Cluster topology and placement knobs.

One :class:`ClusterConfig` describes the whole fleet a cluster sweep
explores: how many model replicas sit behind the load balancer (a
grid, so one sweep emits one capacity curve per replica count), how
many NDP devices back each replica, which sharding policies to
compare, and what crossing a device boundary costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.balancer import BALANCERS
from repro.cluster.sharding import SHARDING_POLICIES


@dataclass(frozen=True)
class ClusterConfig:
    """Fleet shape for one cluster sweep.

    ``activation_bytes_per_token`` sizes the AMove a request pays per
    remote device its experts live on (0 disables transfer costs --
    together with ``replicated`` sharding and one replica this makes
    the cluster path bit-identical to the single-device cosim sweep,
    the pinned equivalence anchor).
    """

    #: replica counts to sweep (one capacity curve per entry)
    replicas: tuple[int, ...] = (1, 2)
    #: NDP devices backing each replica (sharding spreads experts
    #: across them; 1 device degenerates to the single-controller path)
    devices_per_replica: int = 1
    #: sharding policies to compare (one curve family per entry)
    policies: tuple[str, ...] = ("replicated",)
    #: request placement across replicas
    balancer: str = "round_robin"
    #: share of each layer's experts kept replicated on every device
    #: under ``hot_cold`` sharding
    hot_fraction: float = 0.125
    #: activation bytes per token shipped to each remote device whose
    #: experts a request activates (paid round-trip on the PCIe link)
    activation_bytes_per_token: int = 0

    def __post_init__(self) -> None:
        if not self.replicas:
            raise ValueError("replicas must be non-empty")
        if any(r < 1 for r in self.replicas):
            raise ValueError("replica counts must be >= 1")
        if list(self.replicas) != sorted(set(self.replicas)):
            raise ValueError("replicas must be strictly increasing")
        if self.devices_per_replica < 1:
            raise ValueError("devices_per_replica must be >= 1")
        if not self.policies:
            raise ValueError("policies must be non-empty")
        for policy in self.policies:
            if policy not in SHARDING_POLICIES:
                raise ValueError(
                    f"unknown sharding policy {policy!r}; "
                    f"choose from {SHARDING_POLICIES}"
                )
        if self.balancer not in BALANCERS:
            raise ValueError(
                f"unknown balancer {self.balancer!r}; choose from {BALANCERS}"
            )
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        if self.activation_bytes_per_token < 0:
            raise ValueError("activation_bytes_per_token must be non-negative")

    def to_dict(self) -> dict:
        return {
            "replicas": list(self.replicas),
            "devices_per_replica": self.devices_per_replica,
            "policies": list(self.policies),
            "balancer": self.balancer,
            "hot_fraction": self.hot_fraction,
            "activation_bytes_per_token": self.activation_bytes_per_token,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterConfig":
        known = {
            "replicas",
            "devices_per_replica",
            "policies",
            "balancer",
            "hot_fraction",
            "activation_bytes_per_token",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown ClusterConfig keys: {sorted(unknown)}")
        kwargs = dict(data)
        if "replicas" in kwargs:
            kwargs["replicas"] = tuple(kwargs["replicas"])
        if "policies" in kwargs:
            kwargs["policies"] = tuple(kwargs["policies"])
        return cls(**kwargs)
