"""Request placement across model replicas.

A balancer splits one offered-load request stream across N identical
replicas; each replica then runs its own closed serving<->DRAM loop on
the subset it received.  Placement is deterministic (seeded streams in,
reproducible curves out) and happens *before* simulation -- the
balancer sees arrival times, token counts, and (router-aware) the
planner's routing, never measured latencies.

- ``round_robin`` -- arrival-order dealing, the classic L4 baseline.
- ``least_loaded`` -- greedy: each request goes to the replica with
  the least *expected* accumulated work (open-loop service time from
  the cost model), the join-shortest-queue stand-in an L7 balancer
  with queue-depth feedback approximates.
- ``router_aware`` -- requests that activate the same experts land on
  the same replica (keyed by the first expert region the request's
  replay will touch), concentrating expert reuse per replica at the
  price of popularity skew.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.serving.simulator import CostModel
from repro.serving.workload import Request


BALANCERS = ("round_robin", "least_loaded", "router_aware")


def assign_replicas(
    requests: Sequence[Request],
    n_replicas: int,
    balancer: str = "round_robin",
    cost_model: Optional[CostModel] = None,
    planner=None,
) -> list[int]:
    """Replica index per request (input order)."""
    if n_replicas < 1:
        raise ValueError("n_replicas must be >= 1")
    if balancer not in BALANCERS:
        raise ValueError(f"unknown balancer {balancer!r}; choose from {BALANCERS}")
    if n_replicas == 1:
        return [0] * len(requests)

    order = sorted(range(len(requests)), key=lambda i: (requests[i].arrival, i))
    assignment = [0] * len(requests)
    if balancer == "round_robin":
        for slot, i in enumerate(order):
            assignment[i] = slot % n_replicas
        return assignment
    if balancer == "least_loaded":
        if cost_model is None:
            raise ValueError("least_loaded balancing needs a cost model")
        load = [0.0] * n_replicas
        for i in order:
            r = requests[i]
            replica = min(range(n_replicas), key=lambda d: (load[d], d))
            load[replica] += cost_model.service_time(r)
            assignment[i] = replica
        return assignment
    # router_aware: hash the first expert region the request's replay
    # will stream.  Planner-less runs (serving-only) degrade to
    # round-robin rather than failing.
    if planner is None or not hasattr(planner, "request_blocks"):
        return assign_replicas(requests, n_replicas, "round_robin")
    for i in order:
        r = requests[i]
        tokens = r.prompt_tokens + r.decode_tokens
        first_block = int(planner.request_blocks(r.request_id, tokens)[0])
        step = planner.config.organization.access_bytes
        region = int(planner.region_of_addrs(first_block * step))
        assignment[i] = region % n_replicas
    return assignment
