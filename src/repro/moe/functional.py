"""Stateless neural-network math used across the MoE substrate."""

from __future__ import annotations

import numpy as np


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation, as used by
    production Transformer implementations)."""
    c = np.sqrt(2.0 / np.pi)
    return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * x**3)))


ACTIVATIONS = {"relu": relu, "gelu": gelu}


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def layer_norm(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float = 1e-6,
) -> np.ndarray:
    """Layer normalization over the last axis."""
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return gamma * (x - mean) / np.sqrt(var + eps) + beta


def causal_mask(n: int) -> np.ndarray:
    """(n, n) additive attention mask: 0 on/below diagonal, -inf above."""
    mask = np.zeros((n, n), dtype=np.float64)
    mask[np.triu_indices(n, k=1)] = -np.inf
    return mask
