"""Encoder/decoder Transformer blocks and the full seq2seq model.

Dense<->MoE block interleaving follows Fig. 1: every ``moe_every``-th
block's FFN is an MoE layer, the rest are ordinary dense FFNs.  The
model is runnable end to end (embedding -> encoder -> auto-regressive
decoder -> logits) and records per-layer routing for the timing
models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.moe.attention import KVCache, MultiHeadAttention
from repro.moe.config import MoEModelConfig
from repro.moe.layers import FeedForward, LayerNorm, Linear
from repro.moe.moe_layer import MoELayer, RoutingInfo


@dataclass
class ForwardRecord:
    """Routing observed during one forward pass, per MoE layer."""

    encoder_routing: list[RoutingInfo] = field(default_factory=list)
    decoder_routing: list[RoutingInfo] = field(default_factory=list)

    def tokens_per_expert(self, part: str) -> list[np.ndarray]:
        if part == "encoder":
            return [r.tokens_per_expert for r in self.encoder_routing]
        if part == "decoder":
            return [r.tokens_per_expert for r in self.decoder_routing]
        raise ValueError(f"part must be 'encoder' or 'decoder', got {part!r}")


class EncoderBlock:
    """Self-attention + (dense | MoE) FFN with pre-norm residuals."""

    def __init__(
        self,
        config: MoEModelConfig,
        is_moe: bool,
        rng: np.random.Generator,
        popularity_bias: Optional[np.ndarray] = None,
    ) -> None:
        self.attention = MultiHeadAttention(config.d_model, config.n_heads, rng)
        self.norm1 = LayerNorm(config.d_model)
        self.norm2 = LayerNorm(config.d_model)
        self.is_moe = is_moe
        if is_moe:
            self.ffn: MoELayer | FeedForward = MoELayer(
                config.d_model,
                config.d_ff,
                config.n_experts,
                config.top_k,
                rng,
                activation=config.activation,
                popularity_bias=popularity_bias,
            )
        else:
            self.ffn = FeedForward(config.d_model, config.d_ff, rng, config.activation)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = x + self.attention(self.norm1(x))
        x = x + self.ffn(self.norm2(x))
        return x


class DecoderBlock:
    """Causal self-attention + cross-attention + (dense | MoE) FFN."""

    def __init__(
        self,
        config: MoEModelConfig,
        is_moe: bool,
        rng: np.random.Generator,
        popularity_bias: Optional[np.ndarray] = None,
    ) -> None:
        self.self_attention = MultiHeadAttention(config.d_model, config.n_heads, rng)
        self.cross_attention = MultiHeadAttention(config.d_model, config.n_heads, rng)
        self.norm1 = LayerNorm(config.d_model)
        self.norm2 = LayerNorm(config.d_model)
        self.norm3 = LayerNorm(config.d_model)
        self.is_moe = is_moe
        if is_moe:
            self.ffn: MoELayer | FeedForward = MoELayer(
                config.d_model,
                config.d_ff,
                config.n_experts,
                config.top_k,
                rng,
                activation=config.activation,
                popularity_bias=popularity_bias,
            )
        else:
            self.ffn = FeedForward(config.d_model, config.d_ff, rng, config.activation)

    def __call__(
        self,
        x: np.ndarray,
        context: np.ndarray,
        self_cache: Optional[KVCache] = None,
        cross_cache: Optional[KVCache] = None,
    ) -> np.ndarray:
        x = x + self.self_attention(self.norm1(x), causal=True, cache=self_cache)
        x = x + self.cross_attention(self.norm2(x), context=context, cache=cross_cache)
        x = x + self.ffn(self.norm3(x))
        return x


class Encoder:
    """Stack of encoder blocks."""

    def __init__(
        self,
        config: MoEModelConfig,
        rng: np.random.Generator,
        popularity_bias: Optional[np.ndarray] = None,
    ) -> None:
        self.blocks = [
            EncoderBlock(config, config.is_moe_block(i), rng, popularity_bias)
            for i in range(config.n_encoder_layers)
        ]
        self.final_norm = LayerNorm(config.d_model)

    def __call__(
        self, x: np.ndarray, record: Optional[ForwardRecord] = None
    ) -> np.ndarray:
        for block in self.blocks:
            x = block(x)
            if record is not None and block.is_moe:
                assert isinstance(block.ffn, MoELayer)
                assert block.ffn.last_routing is not None
                record.encoder_routing.append(block.ffn.last_routing)
        return self.final_norm(x)


class Decoder:
    """Stack of decoder blocks with per-block KV caches."""

    def __init__(
        self,
        config: MoEModelConfig,
        rng: np.random.Generator,
        popularity_bias: Optional[np.ndarray] = None,
    ) -> None:
        self.blocks = [
            DecoderBlock(config, config.is_moe_block(i), rng, popularity_bias)
            for i in range(config.n_decoder_layers)
        ]
        self.final_norm = LayerNorm(config.d_model)

    def new_caches(self) -> tuple[list[KVCache], list[KVCache]]:
        n = len(self.blocks)
        return [KVCache() for _ in range(n)], [KVCache() for _ in range(n)]

    def __call__(
        self,
        x: np.ndarray,
        context: np.ndarray,
        self_caches: Optional[list[KVCache]] = None,
        cross_caches: Optional[list[KVCache]] = None,
        record: Optional[ForwardRecord] = None,
    ) -> np.ndarray:
        for i, block in enumerate(self.blocks):
            x = block(
                x,
                context,
                self_cache=self_caches[i] if self_caches else None,
                cross_cache=cross_caches[i] if cross_caches else None,
            )
            if record is not None and block.is_moe:
                assert isinstance(block.ffn, MoELayer)
                assert block.ffn.last_routing is not None
                record.decoder_routing.append(block.ffn.last_routing)
        return self.final_norm(x)


class MoESeq2Seq:
    """Full encoder-decoder MoE Transformer (T5/NLLB style).

    Runs real numerics; intended for the reduced-scale zoo configs.
    ``popularity_bias`` (per-expert logit offsets) is shared by all
    routers to emulate trained-model expert skew.
    """

    def __init__(
        self,
        config: MoEModelConfig,
        seed: int = 0,
        popularity_bias: Optional[np.ndarray] = None,
    ) -> None:
        self.config = config
        rng = np.random.default_rng(seed)
        self.embedding = rng.normal(0, 0.02, size=(config.vocab_size, config.d_model))
        self.encoder = Encoder(config, rng, popularity_bias)
        self.decoder = Decoder(config, rng, popularity_bias)
        self.lm_head = Linear(config.d_model, config.vocab_size, rng, bias=False)

    def embed(self, token_ids: np.ndarray) -> np.ndarray:
        if np.any(token_ids < 0) or np.any(token_ids >= self.config.vocab_size):
            raise ValueError("token id out of vocabulary range")
        return self.embedding[token_ids]

    def encode(
        self, token_ids: np.ndarray, record: Optional[ForwardRecord] = None
    ) -> np.ndarray:
        return self.encoder(self.embed(token_ids), record=record)

    def decode_step(
        self,
        token_ids: np.ndarray,
        context: np.ndarray,
        self_caches: list[KVCache],
        cross_caches: list[KVCache],
        record: Optional[ForwardRecord] = None,
    ) -> np.ndarray:
        """One auto-regressive step; returns (B, 1, vocab) logits."""
        x = self.decoder(
            self.embed(token_ids),
            context,
            self_caches=self_caches,
            cross_caches=cross_caches,
            record=record,
        )
        return self.lm_head(x)

    def greedy_decode(
        self,
        src_token_ids: np.ndarray,
        max_new_tokens: int,
        bos_id: int = 0,
        eos_id: Optional[int] = None,
        record: Optional[ForwardRecord] = None,
    ) -> np.ndarray:
        """Greedy auto-regressive generation.

        Returns (B, <=max_new_tokens) generated ids (excluding BOS).
        """
        if max_new_tokens < 1:
            raise ValueError("max_new_tokens must be >= 1")
        context = self.encode(src_token_ids, record=record)
        self_caches, cross_caches = self.decoder.new_caches()
        batch = src_token_ids.shape[0]
        current = np.full((batch, 1), bos_id, dtype=np.int64)
        outputs = []
        for _ in range(max_new_tokens):
            logits = self.decode_step(
                current, context, self_caches, cross_caches, record=record
            )
            current = logits[:, -1, :].argmax(axis=-1)[:, None]
            outputs.append(current)
            if eos_id is not None and np.all(current == eos_id):
                break
        return np.concatenate(outputs, axis=1)
