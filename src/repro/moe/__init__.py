"""Pure-NumPy Mixture-of-Experts Transformer substrate.

This is the functional half of the reproduction: a working MoE
Transformer (Fig. 1 of the paper) with top-k gating, dropless
token routing, expert FFNs, attention, and encoder/decoder stacks.
The paper's evaluation models (Switch-Large-128, NLLB-MoE) appear in
:mod:`repro.moe.zoo` at both full scale (for parameter accounting and
timing) and reduced scale (for functional tests and examples).
"""

from repro.moe.attention import KVCache, MultiHeadAttention
from repro.moe.config import MoEModelConfig
from repro.moe.functional import gelu, layer_norm, relu, softmax
from repro.moe.gating import Router, RoutingPlan
from repro.moe.layers import FeedForward, LayerNorm, Linear
from repro.moe.moe_layer import MoELayer, RoutingInfo
from repro.moe.transformer import (
    Decoder,
    DecoderBlock,
    Encoder,
    EncoderBlock,
    MoESeq2Seq,
)
from repro.moe.zoo import (
    MODEL_ZOO,
    nllb_moe_128,
    nllb_moe_tiny,
    switch_large_128,
    switch_large_tiny,
    switch_variant,
)

__all__ = [
    "Decoder",
    "DecoderBlock",
    "Encoder",
    "EncoderBlock",
    "FeedForward",
    "KVCache",
    "LayerNorm",
    "Linear",
    "MODEL_ZOO",
    "MoELayer",
    "MoEModelConfig",
    "MoESeq2Seq",
    "MultiHeadAttention",
    "Router",
    "RoutingInfo",
    "RoutingPlan",
    "gelu",
    "layer_norm",
    "nllb_moe_128",
    "nllb_moe_tiny",
    "relu",
    "softmax",
    "switch_large_128",
    "switch_large_tiny",
    "switch_variant",
]
