"""Parameterized layers: Linear, LayerNorm, dense FeedForward."""

from __future__ import annotations

import numpy as np

from repro.moe.functional import ACTIVATIONS, layer_norm


class Linear:
    """Dense affine layer y = x @ W + b with W of shape (d_in, d_out)."""

    def __init__(
        self,
        d_in: int,
        d_out: int,
        rng: np.random.Generator,
        bias: bool = True,
    ) -> None:
        if d_in < 1 or d_out < 1:
            raise ValueError(f"layer dims must be >= 1, got ({d_in}, {d_out})")
        scale = 1.0 / np.sqrt(d_in)
        self.weight = rng.normal(0.0, scale, size=(d_in, d_out))
        self.bias = np.zeros(d_out) if bias else None
        self.d_in = d_in
        self.d_out = d_out

    def __call__(self, x: np.ndarray) -> np.ndarray:
        if x.shape[-1] != self.d_in:
            raise ValueError(
                f"input feature dim {x.shape[-1]} != layer d_in {self.d_in}"
            )
        y = x @ self.weight
        if self.bias is not None:
            y = y + self.bias
        return y

    @property
    def n_params(self) -> int:
        n = self.weight.size
        if self.bias is not None:
            n += self.bias.size
        return n


class LayerNorm:
    """Learnable layer normalization."""

    def __init__(self, d: int) -> None:
        self.gamma = np.ones(d)
        self.beta = np.zeros(d)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return layer_norm(x, self.gamma, self.beta)

    @property
    def n_params(self) -> int:
        return self.gamma.size + self.beta.size


class FeedForward:
    """The standard Transformer FFN: Linear -> activation -> Linear.

    This is exactly one "expert" in the MoE layer (Fig. 1 right);
    dense (non-MoE) blocks use one of these unconditionally.
    """

    def __init__(
        self,
        d_model: int,
        d_ff: int,
        rng: np.random.Generator,
        activation: str = "relu",
    ) -> None:
        if activation not in ACTIVATIONS:
            raise ValueError(
                f"unknown activation {activation!r}; choose from {sorted(ACTIVATIONS)}"
            )
        self.linear1 = Linear(d_model, d_ff, rng)
        self.linear2 = Linear(d_ff, d_model, rng)
        self.activation_name = activation
        self._activation = ACTIVATIONS[activation]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.linear2(self._activation(self.linear1(x)))

    @property
    def n_params(self) -> int:
        return self.linear1.n_params + self.linear2.n_params
