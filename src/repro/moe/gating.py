"""Top-k gating / routing network (Fig. 1 right, Section 2.1).

For each token, the router computes a probability distribution over
the ``E`` experts and routes the token to the top-k.  The routing is
*dropless and padding-less* (Section 4.1): every token is processed by
exactly k experts, with no capacity limit and no padding to a fixed
expert batch -- tokens are simply grouped per expert.

A per-expert ``popularity_bias`` can be added to the router logits to
emulate the strongly skewed expert loads measured on trained models
(Fig. 3); randomly initialized routers are far more uniform than
trained ones, so synthetic experiments use this knob (see
:mod:`repro.workloads.distributions` for the calibrated generator).

Routers also drive the memory side of the stack: the closed-loop
co-simulation (:class:`repro.cosim.ExpertReplayPlanner`) can route
each serving request's tokens through real per-layer :class:`Router`
instances so its DRAM bursts target exactly the weight regions of the
experts the gate selected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.moe.functional import softmax
from repro.moe.layers import Linear


@dataclass
class RoutingPlan:
    """Result of routing a flat batch of ``T`` tokens to ``E`` experts.

    - ``expert_indices``: (T, k) chosen expert ids per token.
    - ``combine_weights``: (T, k) normalized gate probabilities.
    - ``tokens_per_expert``: (E,) number of routed tokens per expert
      (a token routed to two experts counts once for each).
    - ``expert_token_ids``: for each expert, the token ids routed to it
      (in token order) -- the dropless dispatch plan.
    """

    expert_indices: np.ndarray
    combine_weights: np.ndarray
    tokens_per_expert: np.ndarray
    expert_token_ids: list[np.ndarray]

    @property
    def n_tokens(self) -> int:
        return self.expert_indices.shape[0]

    @property
    def top_k(self) -> int:
        return self.expert_indices.shape[1]

    @property
    def n_experts(self) -> int:
        return len(self.expert_token_ids)

    @property
    def active_experts(self) -> np.ndarray:
        """Expert ids with at least one routed token (Eq. 5's
        Expert_Activ counts these)."""
        return np.flatnonzero(self.tokens_per_expert > 0)

    def validate(self) -> None:
        """Internal-consistency checks (used by tests and examples)."""
        t, k = self.expert_indices.shape
        if self.combine_weights.shape != (t, k):
            raise AssertionError("combine_weights shape mismatch")
        if int(self.tokens_per_expert.sum()) != t * k:
            raise AssertionError("tokens_per_expert must sum to T*k (dropless)")
        for expert, ids in enumerate(self.expert_token_ids):
            if len(ids) != self.tokens_per_expert[expert]:
                raise AssertionError(f"expert {expert} token list length mismatch")
        if not np.allclose(self.combine_weights.sum(axis=1), 1.0):
            raise AssertionError("combine weights must be normalized per token")


class Router:
    """Learned linear router with softmax gating and top-k selection."""

    def __init__(
        self,
        d_model: int,
        n_experts: int,
        top_k: int,
        rng: np.random.Generator,
        popularity_bias: Optional[np.ndarray] = None,
    ) -> None:
        if top_k < 1 or top_k > n_experts:
            raise ValueError(f"top_k must be in [1, {n_experts}], got {top_k}")
        self.d_model = d_model
        self.n_experts = n_experts
        self.top_k = top_k
        self.gate = Linear(d_model, n_experts, rng, bias=False)
        if popularity_bias is not None:
            popularity_bias = np.asarray(popularity_bias, dtype=np.float64)
            if popularity_bias.shape != (n_experts,):
                raise ValueError(
                    f"popularity_bias must have shape ({n_experts},), "
                    f"got {popularity_bias.shape}"
                )
        self.popularity_bias = popularity_bias

    def logits(self, tokens: np.ndarray) -> np.ndarray:
        """Raw gate logits for a flat (T, d_model) token batch."""
        out = self.gate(tokens)
        if self.popularity_bias is not None:
            out = out + self.popularity_bias
        return out

    def route(self, tokens: np.ndarray) -> RoutingPlan:
        """Compute the dropless routing plan for a flat token batch."""
        if tokens.ndim != 2 or tokens.shape[1] != self.d_model:
            raise ValueError(f"expected (T, {self.d_model}), got {tokens.shape}")
        probs = softmax(self.logits(tokens), axis=-1)
        # Top-k expert ids per token, highest probability first.
        top = np.argsort(-probs, axis=1)[:, : self.top_k]
        top_probs = np.take_along_axis(probs, top, axis=1)
        combine = top_probs / top_probs.sum(axis=1, keepdims=True)

        counts = np.zeros(self.n_experts, dtype=np.int64)
        token_ids: list[list[int]] = [[] for _ in range(self.n_experts)]
        for token_id in range(top.shape[0]):
            for expert in top[token_id]:
                counts[expert] += 1
                token_ids[int(expert)].append(token_id)
        return RoutingPlan(
            expert_indices=top,
            combine_weights=combine,
            tokens_per_expert=counts,
            expert_token_ids=[np.asarray(ids, dtype=np.int64) for ids in token_ids],
        )

    @property
    def n_params(self) -> int:
        return self.gate.n_params
