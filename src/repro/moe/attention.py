"""Multi-head attention with optional causal masking and KV caching.

Attention layers hold the "dense" (non-expert) parameters which every
evaluated scheme keeps resident in GPU memory (Section 3.2); they are
implemented functionally here so the reproduction runs real numerics
end to end.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.moe.functional import softmax
from repro.moe.layers import Linear


class KVCache:
    """Per-layer key/value cache for auto-regressive decoding."""

    def __init__(self) -> None:
        self.keys: Optional[np.ndarray] = None
        self.values: Optional[np.ndarray] = None

    def append(self, k: np.ndarray, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Append new timesteps and return the full cached (K, V)."""
        if self.keys is None:
            self.keys, self.values = k, v
        else:
            self.keys = np.concatenate([self.keys, k], axis=1)
            self.values = np.concatenate([self.values, v], axis=1)
        return self.keys, self.values

    @property
    def length(self) -> int:
        return 0 if self.keys is None else self.keys.shape[1]


class MultiHeadAttention:
    """Standard scaled-dot-product multi-head attention.

    Shapes are (batch, seq, d_model).  Supports self-attention (with
    optional causal mask and KV cache) and cross-attention (pass
    ``context``).
    """

    def __init__(self, d_model: int, n_heads: int, rng: np.random.Generator) -> None:
        if d_model % n_heads != 0:
            raise ValueError(f"d_model={d_model} not divisible by n_heads={n_heads}")
        self.d_model = d_model
        self.n_heads = n_heads
        self.head_dim = d_model // n_heads
        self.wq = Linear(d_model, d_model, rng)
        self.wk = Linear(d_model, d_model, rng)
        self.wv = Linear(d_model, d_model, rng)
        self.wo = Linear(d_model, d_model, rng)

    def _split(self, x: np.ndarray) -> np.ndarray:
        """(B, S, d_model) -> (B, H, S, head_dim)."""
        b, s, _ = x.shape
        return x.reshape(b, s, self.n_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge(self, x: np.ndarray) -> np.ndarray:
        """(B, H, S, head_dim) -> (B, S, d_model)."""
        b, h, s, d = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, s, h * d)

    def __call__(
        self,
        x: np.ndarray,
        context: Optional[np.ndarray] = None,
        causal: bool = False,
        cache: Optional[KVCache] = None,
    ) -> np.ndarray:
        if x.ndim != 3 or x.shape[-1] != self.d_model:
            raise ValueError(f"expected (B, S, {self.d_model}), got {x.shape}")
        kv_input = x if context is None else context
        q = self._split(self.wq(x))
        k_new = self.wk(kv_input)
        v_new = self.wv(kv_input)
        if cache is not None:
            if context is not None:
                # Cross-attention K/V is static; compute once.
                if cache.keys is None:
                    cache.append(k_new, v_new)
                k_full, v_full = cache.keys, cache.values
            else:
                k_full, v_full = cache.append(k_new, v_new)
        else:
            k_full, v_full = k_new, v_new
        k = self._split(k_full)
        v = self._split(v_full)

        scores = q @ k.transpose(0, 1, 3, 2) / np.sqrt(self.head_dim)
        if causal:
            s_q, s_k = scores.shape[-2], scores.shape[-1]
            # Query i may attend keys [0, offset + i]; offset accounts
            # for previously cached timesteps during decoding.
            offset = s_k - s_q
            mask = np.zeros((s_q, s_k))
            for i in range(s_q):
                mask[i, offset + i + 1 :] = -np.inf
            scores = scores + mask
        attn = softmax(scores, axis=-1)
        return self.wo(self._merge(attn @ v))

    @property
    def n_params(self) -> int:
        return sum(w.n_params for w in (self.wq, self.wk, self.wv, self.wo))
