"""The MoE FFN layer: gate -> dropless dispatch -> experts -> combine.

Implements the layer in Fig. 1 (right).  The default routing is
dropless and padding-less as in the paper's implementation
(Section 4.1); a capacity-factor mode with token dropping is provided
as the ablation baseline (``capacity_factor`` set).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.moe.gating import Router, RoutingPlan
from repro.moe.layers import FeedForward


@dataclass
class RoutingInfo:
    """Per-forward routing record consumed by the timing models."""

    tokens_per_expert: np.ndarray
    dropped_tokens: int
    plan: RoutingPlan

    @property
    def n_active_experts(self) -> int:
        return int((self.tokens_per_expert > 0).sum())


class MoELayer:
    """Mixture-of-Experts FFN with ``E`` experts and top-k routing."""

    def __init__(
        self,
        d_model: int,
        d_ff: int,
        n_experts: int,
        top_k: int,
        rng: np.random.Generator,
        activation: str = "relu",
        popularity_bias: Optional[np.ndarray] = None,
        capacity_factor: Optional[float] = None,
    ) -> None:
        if n_experts < 1:
            raise ValueError(f"n_experts must be >= 1, got {n_experts}")
        if capacity_factor is not None and capacity_factor <= 0:
            raise ValueError(f"capacity_factor must be positive, got {capacity_factor}")
        self.d_model = d_model
        self.d_ff = d_ff
        self.n_experts = n_experts
        self.top_k = top_k
        self.capacity_factor = capacity_factor
        self.router = Router(d_model, n_experts, top_k, rng, popularity_bias)
        self.experts = [
            FeedForward(d_model, d_ff, rng, activation) for _ in range(n_experts)
        ]
        self.last_routing: Optional[RoutingInfo] = None

    def _capacity(self, n_tokens: int) -> Optional[int]:
        if self.capacity_factor is None:
            return None
        return max(1, int(self.capacity_factor * n_tokens * self.top_k / self.n_experts))

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Forward a (B, S, d_model) or (T, d_model) batch."""
        squeeze = x.ndim == 2
        if squeeze:
            x = x[None, ...]
        if x.ndim != 3 or x.shape[-1] != self.d_model:
            raise ValueError(f"expected (B, S, {self.d_model}), got {x.shape}")
        b, s, d = x.shape
        flat = x.reshape(b * s, d)
        plan = self.router.route(flat)
        capacity = self._capacity(b * s)

        out = np.zeros_like(flat)
        dropped = 0
        effective_counts = np.zeros(self.n_experts, dtype=np.int64)
        for expert_id, token_ids in enumerate(plan.expert_token_ids):
            if len(token_ids) == 0:
                continue
            kept = token_ids
            if capacity is not None and len(token_ids) > capacity:
                kept = token_ids[:capacity]
                dropped += len(token_ids) - capacity
            effective_counts[expert_id] = len(kept)
            expert_out = self.experts[expert_id](flat[kept])
            # Combine: weight each token's expert output by its gate.
            slot = np.argmax(plan.expert_indices[kept] == expert_id, axis=1)
            weights = plan.combine_weights[kept, slot][:, None]
            np.add.at(out, kept, weights * expert_out)

        self.last_routing = RoutingInfo(
            tokens_per_expert=effective_counts,
            dropped_tokens=dropped,
            plan=plan,
        )
        result = out.reshape(b, s, d)
        return result[0] if squeeze else result

    @property
    def n_params(self) -> int:
        return self.router.n_params + sum(e.n_params for e in self.experts)

    @property
    def expert_param_count(self) -> int:
        """Parameters of a single expert (the PMove unit)."""
        return self.experts[0].n_params
