"""Model configuration and parameter accounting.

The byte-level accounting here regenerates Fig. 2(a)/(b) and the
Non-Expert / Expert parameter columns of Table 2, and feeds every
PMove/AMove volume calculation in :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.hw.specs import BF16_BYTES


@dataclass(frozen=True)
class MoEModelConfig:
    """Static description of an MoE encoder-decoder Transformer.

    ``moe_every``: every ``moe_every``-th block's FFN is an MoE layer
    (Switch uses 2, NLLB-MoE uses 4).  ``n_experts == 0`` describes a
    dense model (used for the Fig. 2(a) dense baselines).
    """

    name: str
    d_model: int
    d_ff: int
    n_heads: int
    n_encoder_layers: int
    n_decoder_layers: int
    n_experts: int
    top_k: int
    moe_every: int
    vocab_size: int
    activation: str = "relu"
    dtype_bytes: int = BF16_BYTES

    def __post_init__(self) -> None:
        if self.d_model < 1 or self.d_ff < 1:
            raise ValueError("model dims must be >= 1")
        if self.n_experts < 0:
            raise ValueError("n_experts must be >= 0")
        if self.n_experts > 0 and not 1 <= self.top_k <= self.n_experts:
            raise ValueError(f"top_k must be in [1, {self.n_experts}]")
        if self.moe_every < 1:
            raise ValueError("moe_every must be >= 1")

    # -- structure ---------------------------------------------------------

    @property
    def is_moe(self) -> bool:
        return self.n_experts > 0

    def is_moe_block(self, layer_index: int) -> bool:
        """Blocks 1-indexed by convention: every ``moe_every``-th block
        hosts the MoE FFN (e.g. 1, 3, 5... are dense for moe_every=2)."""
        if not self.is_moe:
            return False
        return (layer_index + 1) % self.moe_every == 0

    def n_moe_blocks(self, n_layers: int) -> int:
        return sum(1 for i in range(n_layers) if self.is_moe_block(i))

    @property
    def n_moe_encoder_layers(self) -> int:
        return self.n_moe_blocks(self.n_encoder_layers)

    @property
    def n_moe_decoder_layers(self) -> int:
        return self.n_moe_blocks(self.n_decoder_layers)

    # -- parameter accounting ----------------------------------------------

    @property
    def expert_params(self) -> int:
        """Parameters of one expert FFN (weights only; biases are
        negligible and folded out of the byte accounting, as in Eq. 1)."""
        return 2 * self.d_model * self.d_ff

    @property
    def expert_bytes(self) -> int:
        """Bytes of one expert -- the PMove unit of Eq. 1."""
        return self.expert_params * self.dtype_bytes

    @property
    def moe_layer_expert_bytes(self) -> int:
        """All experts of one MoE layer."""
        return self.n_experts * self.expert_bytes

    @property
    def total_expert_params(self) -> int:
        n_moe_layers = self.n_moe_encoder_layers + self.n_moe_decoder_layers
        return n_moe_layers * self.n_experts * self.expert_params

    @property
    def total_expert_bytes(self) -> int:
        return self.total_expert_params * self.dtype_bytes

    @property
    def non_expert_params(self) -> int:
        """Embeddings, attention, layernorms, routers, and the dense
        FFNs of non-MoE blocks -- everything kept GPU-resident."""
        embed = self.vocab_size * self.d_model
        attn = 4 * self.d_model * self.d_model
        ffn = 2 * self.d_model * self.d_ff
        ln = 2 * self.d_model

        total = embed
        for i in range(self.n_encoder_layers):
            total += attn + 2 * ln
            if self.is_moe_block(i):
                total += self.d_model * self.n_experts  # router
            else:
                total += ffn
        for i in range(self.n_decoder_layers):
            total += 2 * attn + 3 * ln  # self-attn + cross-attn
            if self.is_moe_block(i):
                total += self.d_model * self.n_experts
            else:
                total += ffn
        return total

    @property
    def non_expert_bytes(self) -> int:
        return self.non_expert_params * self.dtype_bytes

    @property
    def total_param_bytes(self) -> int:
        return self.non_expert_bytes + self.total_expert_bytes

    # -- activation accounting ----------------------------------------------

    def activation_bytes(self, n_tokens: int) -> int:
        """Bytes of one activation tensor for ``n_tokens`` tokens --
        the AMove unit of Eq. 2 covers this both ways (2 * B * S *
        d_model elements)."""
        return n_tokens * self.d_model * self.dtype_bytes

    def amove_bytes(self, n_tokens: int) -> int:
        """Eq. 2: input + output activations for ``n_tokens`` tokens."""
        return 2 * self.activation_bytes(n_tokens)

    def pmove_bytes_all_experts(self) -> int:
        """Eq. 1: every expert of one MoE layer over the link."""
        return 2 * self.n_experts * self.d_model * self.d_ff * self.dtype_bytes

    # -- variants ------------------------------------------------------------

    def with_experts(self, n_experts: int, top_k: int | None = None) -> "MoEModelConfig":
        """A copy with a different expert count (Fig. 2(a) scaling)."""
        return replace(
            self,
            name=f"{self.name}-E{n_experts}" if n_experts else f"{self.name}-dense",
            n_experts=n_experts,
            top_k=top_k if top_k is not None else min(self.top_k, max(1, n_experts)),
        )

    def with_d_model(self, d_model: int, d_ff: int | None = None) -> "MoEModelConfig":
        """A copy with a different embedding dim (Fig. 2(b) scaling);
        d_ff scales with it (4x) unless given explicitly."""
        return replace(
            self,
            name=f"{self.name}-d{d_model}",
            d_model=d_model,
            d_ff=d_ff if d_ff is not None else 4 * d_model,
        )
