"""Model zoo: the paper's evaluation models plus reduced-scale twins.

Full-scale configs are used for parameter accounting and timing (no
weights are materialized); the ``*_tiny`` variants keep the same
structure (layer interleave, top-k, expert count ratios) at sizes a
laptop can execute functionally.

Table 2 cross-check (reproduced by ``tests/moe/test_zoo.py``):

- Switch-Large-128: non-expert ~1.1 GB, expert ~51.5 GB, d_model 1024,
  E=128, top-1 gating.
- NLLB-MoE: non-expert ~5.7 GB, expert ~103.1 GB, d_model 2048, E=128,
  top-2 gating.
"""

from __future__ import annotations

from repro.moe.config import MoEModelConfig


def switch_large_128() -> MoEModelConfig:
    """Switch Transformers-Large with 128 experts (top-1 routing).

    T5-Large geometry: d_model=1024, d_ff=4096, 24+24 layers; the MoE
    FFN replaces every other block's FFN (12+12 MoE layers).
    """
    return MoEModelConfig(
        name="Switch-Large-128",
        d_model=1024,
        d_ff=4096,
        n_heads=16,
        n_encoder_layers=24,
        n_decoder_layers=24,
        n_experts=128,
        top_k=1,
        moe_every=2,
        vocab_size=32128,
        activation="relu",
    )


def nllb_moe_128() -> MoEModelConfig:
    """NLLB-MoE (the 54B machine-translation model), 128 experts,
    top-2 routing, MoE every 4th block."""
    return MoEModelConfig(
        name="NLLB-MoE",
        d_model=2048,
        d_ff=8192,
        n_heads=16,
        n_encoder_layers=24,
        n_decoder_layers=24,
        n_experts=128,
        top_k=2,
        moe_every=4,
        vocab_size=256204,
        activation="relu",
    )


def t5_large_dense() -> MoEModelConfig:
    """Dense T5-Large (the Fig. 2(a) non-MoE reference, ~3 GB)."""
    return MoEModelConfig(
        name="T5-Large",
        d_model=1024,
        d_ff=4096,
        n_heads=16,
        n_encoder_layers=24,
        n_decoder_layers=24,
        n_experts=0,
        top_k=1,
        moe_every=2,
        vocab_size=32128,
    )


def nllb_dense_3b() -> MoEModelConfig:
    """Dense NLLB-3.3B (the Fig. 2(a) non-MoE reference)."""
    return MoEModelConfig(
        name="NLLB-3.3B",
        d_model=2048,
        d_ff=8192,
        n_heads=16,
        n_encoder_layers=24,
        n_decoder_layers=24,
        n_experts=0,
        top_k=1,
        moe_every=4,
        vocab_size=256204,
    )


def switch_variant(d_model: int, n_experts: int) -> MoEModelConfig:
    """The Fig. 7(a) sensitivity variants: Switch Transformers with
    (d_model, E) in {(768, 64), (768, 128), (1024, 128)}.

    d768 uses the Switch-Base geometry (12+12 layers, d_ff=3072).
    """
    if d_model == 768:
        layers, d_ff = 12, 3072
    elif d_model == 1024:
        layers, d_ff = 24, 4096
    else:
        layers, d_ff = 24, 4 * d_model
    return MoEModelConfig(
        name=f"Switch-d{d_model}-E{n_experts}",
        d_model=d_model,
        d_ff=d_ff,
        n_heads=d_model // 64,
        n_encoder_layers=layers,
        n_decoder_layers=layers,
        n_experts=n_experts,
        top_k=1,
        moe_every=2,
        vocab_size=32128,
    )


def gpt_moe_decoder_only() -> MoEModelConfig:
    """A decoder-only (GPT-style) MoE LLM.

    The paper notes MoNDE applies to encoder-only and decoder-only
    LLMs alike (Section 4.1); this config exercises the decoder-only
    path: 24 decoder blocks, MoE every other block, top-2 routing,
    GPT-2-scale vocabulary.
    """
    return MoEModelConfig(
        name="GPT-MoE-64",
        d_model=2048,
        d_ff=8192,
        n_heads=16,
        n_encoder_layers=0,
        n_decoder_layers=24,
        n_experts=64,
        top_k=2,
        moe_every=2,
        vocab_size=50257,
        activation="gelu",
    )


def switch_large_tiny() -> MoEModelConfig:
    """Functionally-runnable twin of Switch-Large-128: same interleave
    and gating, 8 experts, d_model=64."""
    return MoEModelConfig(
        name="Switch-Large-tiny",
        d_model=64,
        d_ff=256,
        n_heads=4,
        n_encoder_layers=4,
        n_decoder_layers=4,
        n_experts=8,
        top_k=1,
        moe_every=2,
        vocab_size=512,
    )


def nllb_moe_tiny() -> MoEModelConfig:
    """Functionally-runnable twin of NLLB-MoE: top-2, MoE every 4th."""
    return MoEModelConfig(
        name="NLLB-MoE-tiny",
        d_model=64,
        d_ff=256,
        n_heads=4,
        n_encoder_layers=4,
        n_decoder_layers=4,
        n_experts=8,
        top_k=2,
        moe_every=4,
        vocab_size=512,
    )


MODEL_ZOO = {
    "switch-large-128": switch_large_128,
    "nllb-moe-128": nllb_moe_128,
    "t5-large": t5_large_dense,
    "nllb-3.3b": nllb_dense_3b,
    "gpt-moe-64": gpt_moe_decoder_only,
    "switch-large-tiny": switch_large_tiny,
    "nllb-moe-tiny": nllb_moe_tiny,
}
