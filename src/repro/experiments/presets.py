"""Named experiment presets.

A preset is a fully-resolved :class:`ExperimentConfig` -- the same
recipe every time, whether reached via ``--preset smoke`` on the CLI,
``get_preset("smoke")`` in a script, or a saved JSON config that
started life as one.

- ``smoke`` -- the CI-sized closed loop (the exact knobs the legacy
  ``repro cosim sweep --smoke`` flag pins): synthetic per-token costs
  and a small DRAM config tuned so memory saturates within ~100k DRAM
  requests per serving run, decode-heavy token mix, 16-expert replay
  geometry, three-point rate grid ending past saturation.
- ``decode_heavy`` -- ``smoke`` under the continuous-batching engine,
  where amortized weight streaming separates from fifo at the
  saturating grid point.
- ``cluster_smoke`` -- ``smoke`` lifted to cluster mode: 1-vs-2
  replicas x {replicated, expert_parallel} on 2 NDP devices per
  replica, with a nonzero activation payload so expert-parallel pays
  visible PCIe round trips.

Every named traffic scenario (:data:`repro.traffic.SCENARIOS`) is
also registered here under its own name -- ``diurnal``,
``flash_crowd``, ``multi_tenant``, ``popularity_drift``,
``flash_crowd_smoke`` -- so the scenario zoo is reachable through the
same ``--preset`` flag and ``get_preset`` call as the hand-written
presets.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cluster.config import ClusterConfig
from repro.experiments.config import (
    CostConfig,
    ExperimentConfig,
    LoopConfig,
    ReplayConfig,
    ServingConfig,
)


def _smoke() -> ExperimentConfig:
    return ExperimentConfig(
        mode="cosim",
        scheme="md+lb",
        seed=1,
        n_requests=60,
        rates=(1e5, 1e6, 4e6),
        cost=CostConfig(encode_us=0.002, decode_us=0.02),
        replay=ReplayConfig(
            dram="small",
            bytes_per_token=8192,
            max_blocks_per_request=1024,
            n_experts=16,
            top_k=2,
            n_moe_layers=2,
            expert_bytes=1 << 18,
        ),
        serving=ServingConfig(mean_prompt_tokens=8, mean_decode_tokens=24),
        # The saturating grid point needs ~12 bisection iterations.
        loop=LoopConfig(max_iterations=16),
    )


def _decode_heavy() -> ExperimentConfig:
    base = _smoke()
    return replace(base, serving=replace(base.serving, engine="batching"))


def _cluster_smoke() -> ExperimentConfig:
    return replace(
        _smoke(),
        mode="cluster",
        cluster=ClusterConfig(
            replicas=(1, 2),
            devices_per_replica=2,
            policies=("replicated", "expert_parallel"),
            balancer="round_robin",
            activation_bytes_per_token=512,
        ),
    )


_PRESETS = {
    "smoke": _smoke,
    "decode_heavy": _decode_heavy,
    "cluster_smoke": _cluster_smoke,
}

from repro.traffic.scenarios import SCENARIOS as _TRAFFIC_SCENARIOS  # noqa: E402

_collisions = set(_PRESETS) & set(_TRAFFIC_SCENARIOS)
if _collisions:  # pragma: no cover - registry bug, caught at import
    raise RuntimeError(f"traffic scenarios shadow presets: {sorted(_collisions)}")
_PRESETS.update(
    {name: scenario.experiment for name, scenario in _TRAFFIC_SCENARIOS.items()}
)

PRESET_NAMES = tuple(sorted(_PRESETS))


def get_preset(name: str) -> ExperimentConfig:
    """A fresh :class:`ExperimentConfig` for a preset name."""
    try:
        factory = _PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; choose from {PRESET_NAMES}"
        ) from None
    return factory()
