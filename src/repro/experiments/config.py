"""Layered experiment configuration.

One :class:`ExperimentConfig` is the complete, serializable recipe for
a co-simulation or cluster experiment -- what seven PRs of CLI flags
accreted, folded into a frozen dataclass hierarchy:

- :class:`CostConfig` -- where per-token serving costs come from
  (runtime-calibrated workload model, or synthetic us/token);
- :class:`ReplayConfig` -- the DRAM side: which config
  (paper LPDDR5X vs the small saturating test config), replay planner
  geometry;
- :class:`ServingConfig` -- the serving engine and its admission
  knobs (absorbs the old ``BatchConfig`` surface) plus the request
  stream shape;
- :class:`LoopConfig` -- fixed-point iteration knobs;
- :class:`~repro.cluster.config.ClusterConfig` -- fleet shape
  (cluster mode only);
- :class:`TrafficConfig` -- production traffic shaping (time-varying
  load, multi-tenant mixes, popularity drift, real routing traces);
  the default is inactive and preserves the legacy request path
  exactly.

``to_dict``/``from_dict`` round-trip exactly (unknown keys are
rejected, so a typo'd config file fails loudly instead of silently
running defaults), named presets live in
:mod:`repro.experiments.presets`, and
:func:`repro.experiments.runner.run_experiment` executes one config.
The CLI subcommands are thin flag -> config adapters over this API.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Optional

from repro.cluster.config import ClusterConfig
from repro.core.strategies import Scheme
from repro.cosim.driver import CosimConfig


def _check_keys(cls, data: dict, name: str) -> None:
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown {name} keys: {sorted(unknown)}")


@dataclass(frozen=True)
class CostConfig:
    """Per-token serving cost source.

    With both ``encode_us`` and ``decode_us`` set, costs are synthetic
    (microseconds per token); otherwise they are calibrated from the
    ``workload`` scenario's runtime model under the experiment's
    scheme.
    """

    workload: str = "flores"
    encode_us: Optional[float] = None
    decode_us: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.encode_us is None) != (self.decode_us is None):
            raise ValueError("encode_us and decode_us must be given together")

    @property
    def synthetic(self) -> bool:
        return self.encode_us is not None

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CostConfig":
        _check_keys(cls, data, "CostConfig")
        return cls(**data)


@dataclass(frozen=True)
class ReplayConfig:
    """DRAM config reference and replay-planner geometry.

    ``n_experts=None`` sizes the expert-faithful planner from the
    workload's model (the production shape); explicit geometry is what
    the smoke presets pin.  ``synthetic=True`` swaps in the seeded
    synthetic-region planner (no expert model at all).
    """

    #: "lpddr5x" (the paper's LPDDR5X-8533) or "small" (the
    #: test/smoke config whose bandwidth saturates at smoke loads)
    dram: str = "lpddr5x"
    synthetic: bool = False
    bytes_per_token: int = 2048
    max_blocks_per_request: int = 4096
    #: None derives (n_experts, top_k, n_moe_layers, expert_bytes)
    #: from the workload model via ExpertReplayPlanner.for_model
    n_experts: Optional[int] = None
    top_k: int = 2
    n_moe_layers: int = 2
    expert_bytes: int = 1 << 18

    def __post_init__(self) -> None:
        if self.dram not in ("lpddr5x", "small"):
            raise ValueError(f"dram must be 'lpddr5x' or 'small', got {self.dram!r}")
        if self.bytes_per_token < 1 or self.max_blocks_per_request < 1:
            raise ValueError("bytes_per_token and max_blocks_per_request must be >= 1")

    def dram_config(self):
        from repro.cosim.driver import small_cosim_dram
        from repro.dram.config import LPDDR5X_8533

        return small_cosim_dram() if self.dram == "small" else LPDDR5X_8533

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ReplayConfig":
        _check_keys(cls, data, "ReplayConfig")
        return cls(**data)


@dataclass(frozen=True)
class ServingConfig:
    """Serving engine, admission knobs, and request-stream shape
    (absorbs the old standalone ``BatchConfig`` surface)."""

    engine: str = "fifo"
    arrival: str = "poisson"
    mean_prompt_tokens: int = 512
    mean_decode_tokens: int = 32
    queue_limit: int = 4096
    # batching-engine admission (ignored by fifo)
    max_batch: int = 8
    prefill_token_budget: int = 4096
    priority: str = "prefill"
    decode_marginal_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.engine not in ("fifo", "batching"):
            raise ValueError(f"engine must be 'fifo' or 'batching', got {self.engine!r}")
        if self.mean_prompt_tokens < 1 or self.mean_decode_tokens < 0:
            raise ValueError("token means out of range")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ServingConfig":
        _check_keys(cls, data, "ServingConfig")
        return cls(**data)


@dataclass(frozen=True)
class TenantConfig:
    """One tenant in a multi-tenant request mix.

    ``share`` is the tenant's fraction of the offered load; token
    means override the experiment-wide ones for this tenant's
    requests; ``slo_p99_ms`` is the tenant's own closed-loop p99
    threshold (reported per tenant in sweep output; ``None`` means the
    tenant rides the shared SLO only).
    """

    name: str
    share: float
    mean_prompt_tokens: int = 512
    mean_decode_tokens: int = 32
    slo_p99_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.share <= 0:
            raise ValueError("tenant share must be positive")
        if self.mean_prompt_tokens < 1 or self.mean_decode_tokens < 0:
            raise ValueError("tenant token means out of range")
        if self.slo_p99_ms is not None and self.slo_p99_ms <= 0:
            raise ValueError("tenant slo_p99_ms must be positive")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "TenantConfig":
        _check_keys(cls, data, "TenantConfig")
        return cls(**data)


@dataclass(frozen=True)
class TrafficConfig:
    """Production traffic shaping over the seeded request stream.

    The default (``steady`` shape, no tenants, no drift, no trace) is
    *inactive*: the experiment runs the exact legacy request path, so
    every existing preset, checkpoint fingerprint, and bit-identity
    anchor is untouched.  Any non-default field routes request
    generation through :mod:`repro.traffic`.

    - ``shape`` + its knobs: time-varying rate modulation
      (:mod:`repro.traffic.shapes`), expressed in fractions of the
      request horizon so the same scenario is meaningful at smoke and
      production rates alike.
    - ``drift_window_requests``/``drift_mix``: expert-popularity drift
      (:mod:`repro.traffic.drift`); 0 windows disables drift.
    - ``tenants``: multi-tenant mix with per-tenant token means and
      SLO thresholds (per-tenant tail columns in sweep output).
    - ``routing_trace``: path to a real routing-trace CSV; its
      empirical per-layer popularity parameterizes the replay planner
      instead of the synthetic profile.
    """

    shape: str = "steady"
    # diurnal knobs
    period_fraction: float = 1.0
    trough: float = 0.25
    peak: float = 1.75
    # flash-crowd knobs (fractions of the horizon; magnitude is a
    # rate multiplier inside the window)
    flash_at: float = 0.5
    flash_duration: float = 0.1
    flash_magnitude: float = 8.0
    # popularity drift
    drift_window_requests: int = 0
    drift_mix: float = 0.5
    # multi-tenant mix
    tenants: tuple[TenantConfig, ...] = ()
    # real routing trace
    routing_trace: Optional[str] = None
    routing_top_k: int = 2

    def __post_init__(self) -> None:
        if self.shape not in ("steady", "diurnal", "flash_crowd"):
            raise ValueError(
                "shape must be 'steady', 'diurnal', or 'flash_crowd', "
                f"got {self.shape!r}"
            )
        if self.period_fraction <= 0:
            raise ValueError("period_fraction must be positive")
        if not 0 < self.trough <= self.peak:
            raise ValueError("need 0 < trough <= peak")
        if not 0.0 <= self.flash_at < 1.0:
            raise ValueError("flash_at must be in [0, 1)")
        if not 0.0 < self.flash_duration <= 1.0 - self.flash_at:
            raise ValueError("flash_duration must be in (0, 1 - flash_at]")
        if self.flash_magnitude <= 0:
            raise ValueError("flash_magnitude must be positive")
        if self.drift_window_requests < 0:
            raise ValueError("drift_window_requests must be >= 0")
        if not 0.0 <= self.drift_mix <= 1.0:
            raise ValueError("drift_mix must be in [0, 1]")
        if self.routing_top_k < 1:
            raise ValueError("routing_top_k must be >= 1")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")

    @property
    def active(self) -> bool:
        """False iff this config is the do-nothing default (legacy
        request path, bit-identical to pre-traffic behavior)."""
        return bool(
            self.shape != "steady"
            or self.tenants
            or self.drift_window_requests
            or self.routing_trace
        )

    def load_shape(self):
        """The composed :class:`repro.traffic.shapes.LoadShape` for
        this config, or ``None`` for steady traffic."""
        from repro.traffic.shapes import DiurnalShape, FlashCrowdShape

        if self.shape == "diurnal":
            return DiurnalShape(
                period_fraction=self.period_fraction,
                trough=self.trough,
                peak=self.peak,
            )
        if self.shape == "flash_crowd":
            return FlashCrowdShape(
                at=self.flash_at,
                duration=self.flash_duration,
                magnitude=self.flash_magnitude,
            )
        return None

    def to_dict(self) -> dict:
        data = asdict(self)
        data["tenants"] = [t.to_dict() for t in self.tenants]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "TrafficConfig":
        _check_keys(cls, data, "TrafficConfig")
        kwargs = dict(data)
        if "tenants" in kwargs:
            kwargs["tenants"] = tuple(
                t if isinstance(t, TenantConfig) else TenantConfig.from_dict(t)
                for t in kwargs["tenants"]
            )
        return cls(**kwargs)


@dataclass(frozen=True)
class LoopConfig:
    """Fixed-point loop knobs (the iteration half of the legacy
    :class:`repro.cosim.CosimConfig`; the serving half lives in
    :class:`ServingConfig`)."""

    damping: float = 0.6
    damping_decay: float = 0.5
    max_iterations: int = 8
    p99_tolerance: float = 0.02
    scheduler_window: int = 64
    dram_workers: int = 0

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "LoopConfig":
        _check_keys(cls, data, "LoopConfig")
        return cls(**data)


@dataclass(frozen=True)
class ExperimentConfig:
    """The complete recipe for one experiment run."""

    #: "cosim" (single-replica rate sweep) or "cluster"
    #: (replica x sharding-policy capacity grid)
    mode: str = "cosim"
    scheme: str = "md+lb"
    seed: int = 1
    n_requests: int = 100
    rates: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0)
    #: closed-loop p99 SLO threshold for the capacity answer
    #: (milliseconds; None auto-derives 5x the uncongested p99)
    slo_p99_ms: Optional[float] = None
    cost: CostConfig = field(default_factory=CostConfig)
    replay: ReplayConfig = field(default_factory=ReplayConfig)
    serving: ServingConfig = field(default_factory=ServingConfig)
    loop: LoopConfig = field(default_factory=LoopConfig)
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    traffic: TrafficConfig = field(default_factory=TrafficConfig)

    def __post_init__(self) -> None:
        if self.mode not in ("cosim", "cluster"):
            raise ValueError(f"mode must be 'cosim' or 'cluster', got {self.mode!r}")
        Scheme(self.scheme)  # raises on unknown scheme
        if self.n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        if not self.rates:
            raise ValueError("rates must be non-empty")
        if sorted(self.rates) != list(self.rates):
            raise ValueError("rates must be sorted ascending")

    def cosim_config(self) -> CosimConfig:
        """The legacy flat knob bundle the driver consumes, assembled
        from the serving + loop layers."""
        return CosimConfig(
            damping=self.loop.damping,
            damping_decay=self.loop.damping_decay,
            max_iterations=self.loop.max_iterations,
            p99_tolerance=self.loop.p99_tolerance,
            queue_limit=self.serving.queue_limit,
            scheduler_window=self.loop.scheduler_window,
            dram_workers=self.loop.dram_workers,
            engine=self.serving.engine,
            max_batch=self.serving.max_batch,
            prefill_token_budget=self.serving.prefill_token_budget,
            priority=self.serving.priority,
            decode_marginal_fraction=self.serving.decode_marginal_fraction,
        )

    # -- codec -------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "scheme": self.scheme,
            "seed": self.seed,
            "n_requests": self.n_requests,
            "rates": list(self.rates),
            "slo_p99_ms": self.slo_p99_ms,
            "cost": self.cost.to_dict(),
            "replay": self.replay.to_dict(),
            "serving": self.serving.to_dict(),
            "loop": self.loop.to_dict(),
            "cluster": self.cluster.to_dict(),
            "traffic": self.traffic.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentConfig":
        _check_keys(cls, data, "ExperimentConfig")
        kwargs = dict(data)
        if "rates" in kwargs:
            kwargs["rates"] = tuple(float(r) for r in kwargs["rates"])
        for key, sub in (
            ("cost", CostConfig),
            ("replay", ReplayConfig),
            ("serving", ServingConfig),
            ("loop", LoopConfig),
            ("cluster", ClusterConfig),
            ("traffic", TrafficConfig),
        ):
            if key in kwargs and isinstance(kwargs[key], dict):
                kwargs[key] = sub.from_dict(kwargs[key])
        return cls(**kwargs)

    def save(self, path) -> None:
        pathlib.Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def load(cls, path) -> "ExperimentConfig":
        return cls.from_dict(json.loads(pathlib.Path(path).read_text()))

    def replaced(self, **kwargs) -> "ExperimentConfig":
        """dataclasses.replace passthrough (reads better at call
        sites applying CLI flag overrides)."""
        return replace(self, **kwargs)
