"""Layered experiment configuration.

One :class:`ExperimentConfig` is the complete, serializable recipe for
a co-simulation or cluster experiment -- what seven PRs of CLI flags
accreted, folded into a frozen dataclass hierarchy:

- :class:`CostConfig` -- where per-token serving costs come from
  (runtime-calibrated workload model, or synthetic us/token);
- :class:`ReplayConfig` -- the DRAM side: which config
  (paper LPDDR5X vs the small saturating test config), replay planner
  geometry;
- :class:`ServingConfig` -- the serving engine and its admission
  knobs (absorbs the old ``BatchConfig`` surface) plus the request
  stream shape;
- :class:`LoopConfig` -- fixed-point iteration knobs;
- :class:`~repro.cluster.config.ClusterConfig` -- fleet shape
  (cluster mode only).

``to_dict``/``from_dict`` round-trip exactly (unknown keys are
rejected, so a typo'd config file fails loudly instead of silently
running defaults), named presets live in
:mod:`repro.experiments.presets`, and
:func:`repro.experiments.runner.run_experiment` executes one config.
The CLI subcommands are thin flag -> config adapters over this API.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Optional

from repro.cluster.config import ClusterConfig
from repro.core.strategies import Scheme
from repro.cosim.driver import CosimConfig


def _check_keys(cls, data: dict, name: str) -> None:
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown {name} keys: {sorted(unknown)}")


@dataclass(frozen=True)
class CostConfig:
    """Per-token serving cost source.

    With both ``encode_us`` and ``decode_us`` set, costs are synthetic
    (microseconds per token); otherwise they are calibrated from the
    ``workload`` scenario's runtime model under the experiment's
    scheme.
    """

    workload: str = "flores"
    encode_us: Optional[float] = None
    decode_us: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.encode_us is None) != (self.decode_us is None):
            raise ValueError("encode_us and decode_us must be given together")

    @property
    def synthetic(self) -> bool:
        return self.encode_us is not None

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CostConfig":
        _check_keys(cls, data, "CostConfig")
        return cls(**data)


@dataclass(frozen=True)
class ReplayConfig:
    """DRAM config reference and replay-planner geometry.

    ``n_experts=None`` sizes the expert-faithful planner from the
    workload's model (the production shape); explicit geometry is what
    the smoke presets pin.  ``synthetic=True`` swaps in the seeded
    synthetic-region planner (no expert model at all).
    """

    #: "lpddr5x" (the paper's LPDDR5X-8533) or "small" (the
    #: test/smoke config whose bandwidth saturates at smoke loads)
    dram: str = "lpddr5x"
    synthetic: bool = False
    bytes_per_token: int = 2048
    max_blocks_per_request: int = 4096
    #: None derives (n_experts, top_k, n_moe_layers, expert_bytes)
    #: from the workload model via ExpertReplayPlanner.for_model
    n_experts: Optional[int] = None
    top_k: int = 2
    n_moe_layers: int = 2
    expert_bytes: int = 1 << 18

    def __post_init__(self) -> None:
        if self.dram not in ("lpddr5x", "small"):
            raise ValueError(f"dram must be 'lpddr5x' or 'small', got {self.dram!r}")
        if self.bytes_per_token < 1 or self.max_blocks_per_request < 1:
            raise ValueError("bytes_per_token and max_blocks_per_request must be >= 1")

    def dram_config(self):
        from repro.cosim.driver import small_cosim_dram
        from repro.dram.config import LPDDR5X_8533

        return small_cosim_dram() if self.dram == "small" else LPDDR5X_8533

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ReplayConfig":
        _check_keys(cls, data, "ReplayConfig")
        return cls(**data)


@dataclass(frozen=True)
class ServingConfig:
    """Serving engine, admission knobs, and request-stream shape
    (absorbs the old standalone ``BatchConfig`` surface)."""

    engine: str = "fifo"
    arrival: str = "poisson"
    mean_prompt_tokens: int = 512
    mean_decode_tokens: int = 32
    queue_limit: int = 4096
    # batching-engine admission (ignored by fifo)
    max_batch: int = 8
    prefill_token_budget: int = 4096
    priority: str = "prefill"
    decode_marginal_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.engine not in ("fifo", "batching"):
            raise ValueError(f"engine must be 'fifo' or 'batching', got {self.engine!r}")
        if self.mean_prompt_tokens < 1 or self.mean_decode_tokens < 0:
            raise ValueError("token means out of range")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ServingConfig":
        _check_keys(cls, data, "ServingConfig")
        return cls(**data)


@dataclass(frozen=True)
class LoopConfig:
    """Fixed-point loop knobs (the iteration half of the legacy
    :class:`repro.cosim.CosimConfig`; the serving half lives in
    :class:`ServingConfig`)."""

    damping: float = 0.6
    damping_decay: float = 0.5
    max_iterations: int = 8
    p99_tolerance: float = 0.02
    scheduler_window: int = 64
    dram_workers: int = 0

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "LoopConfig":
        _check_keys(cls, data, "LoopConfig")
        return cls(**data)


@dataclass(frozen=True)
class ExperimentConfig:
    """The complete recipe for one experiment run."""

    #: "cosim" (single-replica rate sweep) or "cluster"
    #: (replica x sharding-policy capacity grid)
    mode: str = "cosim"
    scheme: str = "md+lb"
    seed: int = 1
    n_requests: int = 100
    rates: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0)
    #: closed-loop p99 SLO threshold for the capacity answer
    #: (milliseconds; None auto-derives 5x the uncongested p99)
    slo_p99_ms: Optional[float] = None
    cost: CostConfig = field(default_factory=CostConfig)
    replay: ReplayConfig = field(default_factory=ReplayConfig)
    serving: ServingConfig = field(default_factory=ServingConfig)
    loop: LoopConfig = field(default_factory=LoopConfig)
    cluster: ClusterConfig = field(default_factory=ClusterConfig)

    def __post_init__(self) -> None:
        if self.mode not in ("cosim", "cluster"):
            raise ValueError(f"mode must be 'cosim' or 'cluster', got {self.mode!r}")
        Scheme(self.scheme)  # raises on unknown scheme
        if self.n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        if not self.rates:
            raise ValueError("rates must be non-empty")
        if sorted(self.rates) != list(self.rates):
            raise ValueError("rates must be sorted ascending")

    def cosim_config(self) -> CosimConfig:
        """The legacy flat knob bundle the driver consumes, assembled
        from the serving + loop layers."""
        return CosimConfig(
            damping=self.loop.damping,
            damping_decay=self.loop.damping_decay,
            max_iterations=self.loop.max_iterations,
            p99_tolerance=self.loop.p99_tolerance,
            queue_limit=self.serving.queue_limit,
            scheduler_window=self.loop.scheduler_window,
            dram_workers=self.loop.dram_workers,
            engine=self.serving.engine,
            max_batch=self.serving.max_batch,
            prefill_token_budget=self.serving.prefill_token_budget,
            priority=self.serving.priority,
            decode_marginal_fraction=self.serving.decode_marginal_fraction,
        )

    # -- codec -------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "scheme": self.scheme,
            "seed": self.seed,
            "n_requests": self.n_requests,
            "rates": list(self.rates),
            "slo_p99_ms": self.slo_p99_ms,
            "cost": self.cost.to_dict(),
            "replay": self.replay.to_dict(),
            "serving": self.serving.to_dict(),
            "loop": self.loop.to_dict(),
            "cluster": self.cluster.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentConfig":
        _check_keys(cls, data, "ExperimentConfig")
        kwargs = dict(data)
        if "rates" in kwargs:
            kwargs["rates"] = tuple(float(r) for r in kwargs["rates"])
        for key, sub in (
            ("cost", CostConfig),
            ("replay", ReplayConfig),
            ("serving", ServingConfig),
            ("loop", LoopConfig),
            ("cluster", ClusterConfig),
        ):
            if key in kwargs and isinstance(kwargs[key], dict):
                kwargs[key] = sub.from_dict(kwargs[key])
        return cls(**kwargs)

    def save(self, path) -> None:
        pathlib.Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def load(cls, path) -> "ExperimentConfig":
        return cls.from_dict(json.loads(pathlib.Path(path).read_text()))

    def replaced(self, **kwargs) -> "ExperimentConfig":
        """dataclasses.replace passthrough (reads better at call
        sites applying CLI flag overrides)."""
        return replace(self, **kwargs)
