"""Unified experiment-config API.

One :class:`ExperimentConfig` describes a complete co-simulation or
cluster experiment; :func:`run_experiment` executes it; presets give
named, fully-resolved starting points.  See
:mod:`repro.experiments.config` for the layer-by-layer breakdown.
"""

from repro.experiments.config import (
    CostConfig,
    ExperimentConfig,
    LoopConfig,
    ReplayConfig,
    ServingConfig,
    TenantConfig,
    TrafficConfig,
)
from repro.experiments.presets import PRESET_NAMES, get_preset
from repro.experiments.runner import build_components, run_experiment

__all__ = [
    "CostConfig",
    "ExperimentConfig",
    "LoopConfig",
    "PRESET_NAMES",
    "ReplayConfig",
    "ServingConfig",
    "TenantConfig",
    "TrafficConfig",
    "build_components",
    "get_preset",
    "run_experiment",
]
