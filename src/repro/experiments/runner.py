"""Execute one :class:`ExperimentConfig`.

:func:`build_components` turns the declarative config into the live
objects the simulation layers consume (cost model, scheme, replay
planner, legacy ``CosimConfig``); :func:`run_experiment` dispatches on
``config.mode`` to the single-replica rate sweep or the cluster
capacity grid.  Both CLI subcommands and programmatic callers go
through here, so a config file reproduces a CLI run exactly.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.cluster.sweep import ClusterSweepResult, run_cluster_sweep
from repro.core.strategies import Scheme
from repro.cosim.driver import CosimConfig
from repro.cosim.sweep import SweepResult, run_load_sweep
from repro.experiments.config import ExperimentConfig
from repro.serving.simulator import CostModel


def build_components(
    config: ExperimentConfig,
) -> tuple[CostModel, Scheme, object, CosimConfig]:
    """(cost_model, scheme, planner, cosim_config) for one experiment."""
    from repro.cosim.replay import ExpertReplayPlanner, SyntheticReplayPlanner
    from repro.workloads import WORKLOADS

    scheme = Scheme(config.scheme)
    dram = config.replay.dram_config()

    if config.cost.synthetic:
        cost = CostModel(
            encode_seconds_per_token=config.cost.encode_us * 1e-6,
            decode_seconds_per_token=config.cost.decode_us * 1e-6,
        )
    else:
        workload = WORKLOADS[config.cost.workload](batch=1)
        cost = CostModel.from_runtime(
            workload.model, scheme, profile=workload.profile, ref_decode_steps=4
        )

    # A real routing trace overrides the synthetic routing profile;
    # popularity drift swaps in the drifting planner subclass.  Both
    # ride the same expert-faithful replay geometry.
    profile = None
    if config.traffic.routing_trace is not None:
        from repro.traffic.routing_trace import (
            EmpiricalRoutingProfile,
            load_routing_trace,
        )

        profile = EmpiricalRoutingProfile.from_trace(
            load_routing_trace(
                config.traffic.routing_trace, top_k=config.traffic.routing_top_k
            )
        )
    planner_cls = ExpertReplayPlanner
    planner_extra = {}
    if config.traffic.drift_window_requests:
        from repro.traffic.drift import DriftingReplayPlanner

        planner_cls = DriftingReplayPlanner
        planner_extra = {
            "drift_window_requests": config.traffic.drift_window_requests,
            "drift_mix": config.traffic.drift_mix,
        }

    if config.replay.synthetic:
        if profile is not None or planner_extra:
            raise ValueError(
                "routing traces and popularity drift need expert-faithful "
                "replay; unset replay.synthetic"
            )
        planner = SyntheticReplayPlanner(
            dram_config=dram,
            bytes_per_token=config.replay.bytes_per_token,
            max_blocks_per_request=config.replay.max_blocks_per_request,
            seed=config.seed,
        )
    elif config.replay.n_experts is not None:
        planner = planner_cls(
            n_experts=config.replay.n_experts,
            top_k=config.replay.top_k,
            n_moe_layers=config.replay.n_moe_layers,
            profile=profile,
            dram_config=dram,
            bytes_per_token=config.replay.bytes_per_token,
            max_blocks_per_request=config.replay.max_blocks_per_request,
            expert_bytes=config.replay.expert_bytes,
            seed=config.seed,
            **planner_extra,
        )
    else:
        workload = WORKLOADS[config.cost.workload](batch=1)
        planner = planner_cls.for_model(
            workload.model,
            profile=profile if profile is not None else workload.profile,
            dram_config=dram,
            bytes_per_token=config.replay.bytes_per_token,
            max_blocks_per_request=config.replay.max_blocks_per_request,
            seed=config.seed,
            **planner_extra,
        )

    return cost, scheme, planner, config.cosim_config()


def run_experiment(
    config: ExperimentConfig,
    workers: int = 0,
    checkpoint_path=None,
    resume: bool = False,
    on_point: Optional[Callable] = None,
) -> tuple[Union[SweepResult, ClusterSweepResult], object]:
    """Run one experiment end to end.

    Returns ``(result, runs)``: a :class:`~repro.cosim.sweep.SweepResult`
    plus per-rate runs in cosim mode, a
    :class:`~repro.cluster.sweep.ClusterSweepResult` plus a
    ``(replicas, policy) -> runs`` dict in cluster mode.  ``workers``,
    ``checkpoint_path``, and ``resume`` are execution details (not part
    of the experiment's identity, so not config fields) and apply to
    cosim mode only.
    """
    cost, scheme, planner, cosim_cfg = build_components(config)
    slo = config.slo_p99_ms * 1e-3 if config.slo_p99_ms is not None else None
    traffic = config.traffic if config.traffic.active else None
    if config.mode == "cluster":
        return run_cluster_sweep(
            cost,
            scheme,
            planner,
            list(config.rates),
            cluster=config.cluster,
            n_requests=config.n_requests,
            seed=config.seed,
            arrival=config.serving.arrival,
            mean_prompt_tokens=config.serving.mean_prompt_tokens,
            mean_decode_tokens=config.serving.mean_decode_tokens,
            cosim_config=cosim_cfg,
            slo_p99_seconds=slo,
            on_point=on_point,
            traffic=traffic,
        )
    return run_load_sweep(
        cost,
        scheme,
        planner,
        list(config.rates),
        n_requests=config.n_requests,
        seed=config.seed,
        arrival=config.serving.arrival,
        mean_prompt_tokens=config.serving.mean_prompt_tokens,
        mean_decode_tokens=config.serving.mean_decode_tokens,
        cosim_config=cosim_cfg,
        workers=workers,
        checkpoint_path=checkpoint_path,
        resume=resume,
        on_point=on_point,
        slo_p99_seconds=slo,
        traffic=traffic,
    )
