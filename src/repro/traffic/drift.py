"""Expert-popularity drift over a serving run.

The paper's encoder/decoder asymmetry (Fig. 3) is a *snapshot*; over
a production day the identity of the hot experts moves as the topic
mix shifts.  A :class:`DriftSchedule` models that: the request stream
is cut into fixed-size windows, and at each window boundary
("checkpoint") every layer's popularity is re-mixed toward a seeded
permutation of itself -- mass migrates from the old hot set to a new
one while the overall skew is preserved.  Each re-mix is derived from
``(seed, checkpoint)`` alone via a fresh seeded ``Generator``, so the
same scenario seed always produces the same drift trajectory
(bit-identical bursts across runs).

:class:`DriftingReplayPlanner` plugs the schedule into the
expert-faithful replay planner.  Windows are indexed by *request id*,
not wall time: a request's DRAM addresses stay a pure function of
``(seed, request_id, tokens)``, preserving the planner's
``stable_addresses`` contract across co-simulation iterations while
the popularity under later requests has drifted -- exactly the access
pattern that evicts an LRU expert cache's working set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cosim.replay import ExpertReplayPlanner

#: Namespacing code for drift re-mix Generators (tuple-seeding idiom:
#: ``default_rng((seed, _DRIFT_CODE, checkpoint))``).
_DRIFT_CODE = 0x0D21F7


@dataclass(frozen=True)
class DriftSchedule:
    """Deterministic popularity re-mixing at request-count checkpoints.

    ``window_requests`` requests share one popularity epoch; ``mix``
    is the fraction of probability mass moved to the permuted copy at
    each checkpoint (0 = frozen, 1 = full reshuffle each window).
    """

    window_requests: int
    mix: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.window_requests < 1:
            raise ValueError("window_requests must be >= 1")
        if not 0.0 <= self.mix <= 1.0:
            raise ValueError("mix must be in [0, 1]")

    def checkpoint_of(self, request_id: int) -> int:
        return request_id // self.window_requests

    def popularity_at(
        self, checkpoint: int, base: np.ndarray, layer: int = 0
    ) -> np.ndarray:
        """Layer popularity in effect at a checkpoint.

        Checkpoint 0 is the base distribution; checkpoint ``c`` blends
        the base with its checkpoint-seeded permutation, compounding
        one permutation per elapsed window so consecutive epochs stay
        correlated (hot sets migrate rather than teleport).
        """
        if checkpoint < 0:
            raise ValueError("checkpoint must be >= 0")
        pop = np.asarray(base, dtype=np.float64)
        for c in range(1, checkpoint + 1):
            rng = np.random.default_rng((self.seed, _DRIFT_CODE, layer, c))
            perm = rng.permutation(len(pop))
            pop = (1.0 - self.mix) * pop + self.mix * pop[perm]
        total = pop.sum()
        return pop / total if total > 0 else pop


class DriftingReplayPlanner(ExpertReplayPlanner):
    """Expert replay whose per-layer popularity drifts with request id.

    Identical to :class:`~repro.cosim.replay.ExpertReplayPlanner` in
    every other respect (region layout, block allocation, replay), so
    checkpoint 0 reproduces the non-drifting planner's bursts exactly.
    """

    def __init__(
        self,
        *args,
        drift_window_requests: int = 64,
        drift_mix: float = 0.5,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.drift = DriftSchedule(
            window_requests=drift_window_requests,
            mix=drift_mix,
            seed=self.seed,
        )
        self._drift_cache: dict[int, list[np.ndarray]] = {}

    def _popularity_for(self, request_id: int) -> list[np.ndarray]:
        checkpoint = self.drift.checkpoint_of(request_id)
        cached = self._drift_cache.get(checkpoint)
        if cached is None:
            cached = [
                self.drift.popularity_at(checkpoint, base, layer=layer)
                for layer, base in enumerate(self._popularity)
            ]
            self._drift_cache[checkpoint] = cached
        return cached

    def __getstate__(self) -> dict:
        # The cache is a pure function of (drift, _popularity); drop
        # it so pickles shipped to sweep workers stay small.
        state = self.__dict__.copy()
        state["_drift_cache"] = {}
        return state
