"""Production traffic subsystem.

Three layers over the closed serving<->DRAM loop:

- :mod:`repro.traffic.routing_trace` -- ingestion of real
  ``layer_id,token_id,expert_0_prob,...`` routing-trace CSVs: top-k
  assignment, empirical popularity extraction
  (:class:`EmpiricalRoutingProfile` duck-types
  :class:`~repro.workloads.traces.RoutingProfile`), and trace-faithful
  ``.dramtrace`` export through the existing MoE burst generator.
- :mod:`repro.traffic.shapes` / :mod:`repro.traffic.drift` --
  time-varying load (diurnal curves, flash crowds, applied by
  count-preserving time-warping of the seeded arrival processes) and
  deterministic expert-popularity drift across the request stream.
- :mod:`repro.traffic.scenarios` -- the named scenario zoo: each
  scenario is an :class:`~repro.experiments.config.ExperimentConfig`
  preset (``repro cosim sweep --preset flash_crowd``), with
  multi-tenant mixes and per-tenant SLO columns in sweep output.
"""

from repro.traffic.drift import DriftingReplayPlanner, DriftSchedule
from repro.traffic.generate import generate_requests
from repro.traffic.routing_trace import (
    EmpiricalRoutingProfile,
    RoutingTrace,
    TraceExportSpec,
    export_routing_trace,
    load_routing_trace,
    routing_dram_arrays,
    save_routing_trace,
)
from repro.traffic.scenarios import SCENARIOS, TrafficScenario
from repro.traffic.shapes import (
    ComposedShape,
    DiurnalShape,
    FlashCrowdShape,
    LoadShape,
    SteadyShape,
    warp_times,
)

__all__ = [
    "ComposedShape",
    "DiurnalShape",
    "DriftSchedule",
    "DriftingReplayPlanner",
    "EmpiricalRoutingProfile",
    "FlashCrowdShape",
    "LoadShape",
    "RoutingTrace",
    "SCENARIOS",
    "SteadyShape",
    "TraceExportSpec",
    "TrafficScenario",
    "export_routing_trace",
    "generate_requests",
    "load_routing_trace",
    "routing_dram_arrays",
    "save_routing_trace",
    "warp_times",
]
