"""Time-varying load shapes over the seeded arrival processes.

A :class:`LoadShape` is a positive rate-modulation profile over the
*normalized* request horizon ``t in [0, 1]`` -- rate-independent, so
the same shape means the same thing at smoke-scale microsecond
horizons and production multi-hour windows.  Shapes compose
multiplicatively (``diurnal * flash``).

:func:`warp_times` applies a shape to an existing seeded arrival
sequence by inverse-transforming through the shape's normalized
cumulative intensity: arrivals are *re-timed*, never added or
dropped, so the request count, the horizon, the mean offered rate,
and the arrival order are all preserved -- only the local density
changes.  That keeps every downstream determinism anchor intact (the
warped stream is a pure function of the base stream and the shape).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Grid resolution for the cumulative-intensity inversion.  2048 knots
#: over the horizon resolves shapes down to ~0.05% of the horizon.
_GRID = 2048


class LoadShape:
    """Base class: a positive modulation factor over ``t in [0, 1]``."""

    def factor(self, t: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __mul__(self, other: "LoadShape") -> "LoadShape":
        return ComposedShape((self, other))


@dataclass(frozen=True)
class ComposedShape(LoadShape):
    """Pointwise product of component shapes."""

    components: tuple[LoadShape, ...]

    def factor(self, t: np.ndarray) -> np.ndarray:
        out = np.ones_like(t, dtype=np.float64)
        for shape in self.components:
            out = out * shape.factor(t)
        return out

    def __mul__(self, other: LoadShape) -> "ComposedShape":
        return ComposedShape(self.components + (other,))


@dataclass(frozen=True)
class SteadyShape(LoadShape):
    """The identity shape (factor 1 everywhere)."""

    def factor(self, t: np.ndarray) -> np.ndarray:
        return np.ones_like(t, dtype=np.float64)


@dataclass(frozen=True)
class DiurnalShape(LoadShape):
    """Smooth day/night cycling between ``trough`` and ``peak``.

    ``period_fraction`` is the cycle length as a fraction of the
    horizon (1.0 = one full day across the run); ``phase`` shifts
    where in the cycle the run starts (0.0 starts at the mean on the
    way up).
    """

    period_fraction: float = 1.0
    trough: float = 0.25
    peak: float = 1.75
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.period_fraction <= 0:
            raise ValueError("period_fraction must be positive")
        if not 0 < self.trough <= self.peak:
            raise ValueError("need 0 < trough <= peak")

    def factor(self, t: np.ndarray) -> np.ndarray:
        mid = (self.peak + self.trough) / 2.0
        amp = (self.peak - self.trough) / 2.0
        return mid + amp * np.sin(
            2.0 * np.pi * (t / self.period_fraction - self.phase)
        )


@dataclass(frozen=True)
class FlashCrowdShape(LoadShape):
    """A sudden ``magnitude``-x spike over a window of the horizon.

    Baseline factor 1 everywhere except ``[at, at + duration)``
    (fractions of the horizon), where the rate multiplies by
    ``magnitude`` -- the retweeted-link / breaking-news burst that
    folds a quiet service into its saturation knee.
    """

    at: float = 0.5
    duration: float = 0.1
    magnitude: float = 8.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.at < 1.0:
            raise ValueError("at must be in [0, 1)")
        if not 0.0 < self.duration <= 1.0 - self.at:
            raise ValueError("duration must be in (0, 1 - at]")
        if self.magnitude <= 0:
            raise ValueError("magnitude must be positive")

    def factor(self, t: np.ndarray) -> np.ndarray:
        out = np.ones_like(t, dtype=np.float64)
        window = (t >= self.at) & (t < self.at + self.duration)
        out[window] = self.magnitude
        return out


def warp_times(times: np.ndarray, shape: LoadShape) -> np.ndarray:
    """Re-time sorted arrivals through a load shape.

    Maps each normalized arrival ``u`` to ``v = L^{-1}(u)`` where
    ``L`` is the shape's normalized cumulative intensity: where the
    factor is high, ``L`` rises steeply and ``L^{-1}`` flattens, so a
    wide span of original arrivals lands in a narrow warped window --
    locally multiplying the rate by the factor.  Monotone, count-,
    horizon-, and mean-rate-preserving.
    """
    times = np.asarray(times, dtype=np.float64)
    if len(times) == 0:
        return times.copy()
    horizon = float(times.max())
    if horizon <= 0:
        return times.copy()
    knots = np.linspace(0.0, 1.0, _GRID + 1)
    centers = (knots[:-1] + knots[1:]) / 2.0
    intensity = np.asarray(shape.factor(centers), dtype=np.float64)
    if np.any(intensity <= 0) or not np.all(np.isfinite(intensity)):
        raise ValueError("load shape factors must be positive and finite")
    cumulative = np.concatenate([[0.0], np.cumsum(intensity)])
    cumulative /= cumulative[-1]
    warped = np.interp(times / horizon, cumulative, knots)
    return warped * horizon
