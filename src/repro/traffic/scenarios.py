"""Named production-traffic scenarios.

The one scenario registry: each entry is a fully-resolved
:class:`~repro.experiments.config.ExperimentConfig` factory plus a
one-line statement of intent, registered as an experiment preset so
``repro cosim sweep --preset <name>`` and
``repro cluster sweep --preset <name>`` run it end to end through the
closed serving<->DRAM loop.  (Table-2 *model workloads* -- which
model/task a cost model calibrates against -- live in
:data:`repro.workloads.WORKLOADS`; scenarios here describe *traffic*.)

All scenarios are smoke-sized (synthetic costs, the small saturating
DRAM config, the 16-expert replay geometry) so they finish in seconds
and the interesting regime -- the saturation knee -- is reachable at
CI scale.  Scale them up by overriding fields
(``get_preset(name).replaced(...)`` or CLI flags on top of
``--preset``).

All :mod:`repro.experiments` imports live inside the factory bodies:
``repro.experiments.presets`` imports this module to register the
zoo, so a module-level import here would be a cycle in either import
order.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable


def _smoke_base():
    """The CI-sized closed loop every scenario builds on (same knobs
    as the ``smoke`` preset; duplicated here rather than imported so
    ``repro.experiments.presets`` can import this module without a
    cycle)."""
    from repro.experiments.config import (
        CostConfig,
        ExperimentConfig,
        LoopConfig,
        ReplayConfig,
        ServingConfig,
    )

    return ExperimentConfig(
        mode="cosim",
        scheme="md+lb",
        seed=1,
        n_requests=60,
        rates=(1e5, 1e6, 4e6),
        cost=CostConfig(encode_us=0.002, decode_us=0.02),
        replay=ReplayConfig(
            dram="small",
            bytes_per_token=8192,
            max_blocks_per_request=1024,
            n_experts=16,
            top_k=2,
            n_moe_layers=2,
            expert_bytes=1 << 18,
        ),
        serving=ServingConfig(mean_prompt_tokens=8, mean_decode_tokens=24),
        loop=LoopConfig(max_iterations=16),
    )


@dataclass(frozen=True)
class TrafficScenario:
    """A named traffic scenario: intent + experiment factory."""

    name: str
    intent: str
    factory: Callable[[], object]

    def experiment(self):
        """A fresh, fully-resolved :class:`ExperimentConfig`."""
        return self.factory()

    def describe(self) -> str:
        return f"{self.name}: {self.intent}"


def _chat():
    from repro.experiments.config import TenantConfig

    return TenantConfig(
        name="chat", share=0.5, mean_prompt_tokens=8, mean_decode_tokens=24,
        slo_p99_ms=1.0,
    )


def _batch():
    from repro.experiments.config import TenantConfig

    return TenantConfig(
        name="batch", share=0.3, mean_prompt_tokens=24, mean_decode_tokens=4,
        slo_p99_ms=None,
    )


def _long_context():
    from repro.experiments.config import TenantConfig

    return TenantConfig(
        name="long_context", share=0.2, mean_prompt_tokens=48,
        mean_decode_tokens=16, slo_p99_ms=5.0,
    )


def _diurnal():
    from repro.experiments.config import TrafficConfig

    return replace(
        _smoke_base(),
        traffic=TrafficConfig(shape="diurnal", trough=0.2, peak=1.8),
    )


def _flash_crowd():
    from repro.experiments.config import TrafficConfig

    return replace(
        _smoke_base(),
        traffic=TrafficConfig(
            shape="flash_crowd",
            flash_at=0.5,
            flash_duration=0.15,
            flash_magnitude=6.0,
        ),
    )


def _multi_tenant():
    from repro.experiments.config import TrafficConfig

    return replace(
        _smoke_base(),
        traffic=TrafficConfig(tenants=(_chat(), _batch(), _long_context())),
    )


def _popularity_drift():
    from repro.experiments.config import TrafficConfig

    return replace(
        _smoke_base(),
        traffic=TrafficConfig(drift_window_requests=20, drift_mix=0.75),
    )


def _flash_crowd_smoke():
    # The CI scenario: a flash crowd over a two-tenant mix, sized so
    # the spike window congests while the steady windows stay under
    # the knee -- CI asserts flash-window p99 strictly above
    # steady-window p99 and per-tenant SLO columns populated.
    from repro.experiments.config import TrafficConfig

    return replace(
        _smoke_base(),
        rates=(1e5, 1e6),
        traffic=TrafficConfig(
            shape="flash_crowd",
            flash_at=0.5,
            flash_duration=0.1,
            flash_magnitude=8.0,
            tenants=(
                replace(_chat(), share=0.7),
                replace(_batch(), share=0.3, slo_p99_ms=10.0),
            ),
        ),
    )


SCENARIOS: dict[str, TrafficScenario] = {
    s.name: s
    for s in (
        TrafficScenario(
            "diurnal",
            "day/night rate cycling (0.2x-1.8x) over the run; the tail "
            "hockey stick visits both sides of the knee in one sweep",
            _diurnal,
        ),
        TrafficScenario(
            "flash_crowd",
            "6x traffic spike over 15% of the horizon; queueing from "
            "the spike window dominates the closed-loop tail",
            _flash_crowd,
        ),
        TrafficScenario(
            "multi_tenant",
            "chat + batch + long-context mix (50/30/20) with per-tenant "
            "SLO thresholds and per-tenant tail columns",
            _multi_tenant,
        ),
        TrafficScenario(
            "popularity_drift",
            "expert popularity re-mixes every 20 requests (seeded, "
            "deterministic), churning the hot set under the LRU "
            "expert cache",
            _popularity_drift,
        ),
        TrafficScenario(
            "flash_crowd_smoke",
            "CI gate: 8x flash over a chat+batch mix; asserts "
            "flash-window p99 > steady-window p99 and populated "
            "per-tenant columns",
            _flash_crowd_smoke,
        ),
    )
}
