"""Real routing-trace ingestion.

Production MoE deployments log per-token gate outputs as CSV rows of
``layer_id,token_id,expert_0_prob,expert_1_prob,...`` -- one row per
(layer, token) with the full gate-probability vector.  This module
reads that format into a :class:`RoutingTrace`, assigns each token its
top-k experts (stable ties: the lowest expert id wins, matching the
argmax convention of real gates), and exposes the trace in the two
forms the rest of the repo consumes:

- an *empirical popularity* per layer
  (:meth:`RoutingTrace.popularity`), wrapped by
  :class:`EmpiricalRoutingProfile` so a real trace can parameterize
  everything that takes a
  :class:`~repro.workloads.traces.RoutingProfile` -- the replay
  planner, the runtime cost model, the Fig. 3 histogram;
- a *trace-faithful DRAM burst stream*
  (:func:`routing_dram_arrays` / :func:`export_routing_trace`): the
  exact (layer, expert) visit sequence rendered through the existing
  :func:`~repro.workloads.traces.moe_expert_memory_trace_arrays`
  region layout, resume offsets, and writeback draws, written as a
  ``.dramtrace`` whose bytes depend only on (trace, seed).

Malformed input fails loudly: every validation error names the file
and 1-based line number of the offending row.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.dram.config import DRAMConfig, LPDDR5X_8533


def _parse_float(text: str) -> Optional[float]:
    try:
        return float(text)
    except ValueError:
        return None


@dataclass(frozen=True)
class RoutingTrace:
    """A loaded routing trace: per-layer top-k expert assignments.

    ``assignments[i]`` is an ``(n_tokens, top_k)`` int64 array for
    ``layers[i]`` -- token t's top-k experts in descending gate
    probability.  ``probs[i]`` keeps the renormalized gate vectors
    (``(n_tokens, n_experts)`` float64) so a loaded trace can be
    written back out (:func:`save_routing_trace`) and re-read to the
    same assignments.
    """

    layers: tuple[int, ...]
    assignments: tuple[np.ndarray, ...]
    probs: tuple[np.ndarray, ...]
    n_experts: int
    source: str = ""

    def __post_init__(self) -> None:
        if len(self.layers) != len(self.assignments):
            raise ValueError("one assignment array per layer required")
        if len(self.layers) != len(self.probs):
            raise ValueError("one probability array per layer required")
        if not self.layers:
            raise ValueError("a routing trace needs at least one layer")

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    @property
    def n_tokens(self) -> int:
        return int(self.assignments[0].shape[0])

    @property
    def top_k(self) -> int:
        return int(self.assignments[0].shape[1])

    def popularity(self, layer_index: int) -> np.ndarray:
        """Empirical expert popularity of one layer: normalized
        top-k assignment counts over ``n_experts``."""
        counts = np.bincount(
            self.assignments[layer_index].ravel(), minlength=self.n_experts
        ).astype(np.float64)
        total = counts.sum()
        if total == 0:
            return np.full(self.n_experts, 1.0 / self.n_experts)
        return counts / total

    def popularities(self) -> list[np.ndarray]:
        return [self.popularity(i) for i in range(self.n_layers)]

    def expert_sequence(self) -> np.ndarray:
        """The flat (layer, expert) visit sequence of one forward
        pass: layer by layer, token-major, each token's top-k experts
        in rank order, with layer ``i``'s experts offset by
        ``i * n_experts`` so every (layer, expert) pair owns a
        distinct weight region."""
        chunks = [
            a.ravel() + i * self.n_experts for i, a in enumerate(self.assignments)
        ]
        return np.concatenate(chunks).astype(np.int64)


def load_routing_trace(
    path,
    top_k: int = 2,
    n_tokens: Optional[int] = None,
) -> RoutingTrace:
    """Read a ``layer_id,token_id,expert_0_prob,...`` CSV.

    - An optional header row (any row whose third column is not a
      number) is skipped.
    - Probability rows that do not sum to 1 are renormalized; rows
      that sum to 0, carry negative/non-finite entries, or disagree on
      the expert count are rejected with the offending line number.
    - Layers may disagree on token count (real traces truncate
      mid-batch): every layer is reconciled to a reference count --
      ``n_tokens`` if given, else the first layer's count -- by
      truncating longer layers and padding shorter ones (cycling from
      the layer's own start, preserving its empirical distribution).
    - Top-k assignment breaks probability ties toward the lowest
      expert id (stable sort), matching real argmax gates.
    """
    path = pathlib.Path(path)
    if top_k < 1:
        raise ValueError("top_k must be >= 1")
    rows_by_layer: dict[int, list[np.ndarray]] = {}
    layer_order: list[int] = []
    n_experts: Optional[int] = None
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line:
                continue
            parts = [p.strip() for p in line.split(",")]
            if len(parts) < 3:
                raise ValueError(
                    f"{path}:{lineno}: expected "
                    "'layer_id,token_id,expert_0_prob,...' with at least one "
                    f"expert column, got {len(parts)} column(s)"
                )
            if lineno == 1 and _parse_float(parts[2]) is None:
                continue  # header row
            try:
                layer_id = int(parts[0])
                token_id = int(parts[1])
            except ValueError:
                raise ValueError(
                    f"{path}:{lineno}: layer_id and token_id must be "
                    f"integers, got {parts[0]!r}, {parts[1]!r}"
                ) from None
            if layer_id < 0 or token_id < 0:
                raise ValueError(
                    f"{path}:{lineno}: layer_id and token_id must be "
                    f"non-negative, got {layer_id}, {token_id}"
                )
            probs = np.empty(len(parts) - 2, dtype=np.float64)
            for j, cell in enumerate(parts[2:]):
                value = _parse_float(cell)
                if value is None:
                    raise ValueError(
                        f"{path}:{lineno}: expert_{j}_prob is not a "
                        f"number: {cell!r}"
                    )
                probs[j] = value
            if n_experts is None:
                n_experts = len(probs)
            elif len(probs) != n_experts:
                raise ValueError(
                    f"{path}:{lineno}: {len(probs)} expert columns, but "
                    f"earlier rows had {n_experts}"
                )
            if not np.all(np.isfinite(probs)) or np.any(probs < 0):
                raise ValueError(
                    f"{path}:{lineno}: probabilities must be finite and "
                    "non-negative"
                )
            total = probs.sum()
            if total <= 0:
                raise ValueError(
                    f"{path}:{lineno}: probability row sums to 0 -- no "
                    "routable expert"
                )
            if layer_id not in rows_by_layer:
                rows_by_layer[layer_id] = []
                layer_order.append(layer_id)
            rows_by_layer[layer_id].append(probs / total)
    if not layer_order:
        raise ValueError(f"{path}: empty routing trace (no data rows)")
    assert n_experts is not None
    if top_k > n_experts:
        raise ValueError(
            f"{path}: top_k={top_k} exceeds the trace's {n_experts} experts"
        )

    reference = n_tokens if n_tokens is not None else len(rows_by_layer[layer_order[0]])
    if reference < 1:
        raise ValueError("n_tokens must be >= 1")
    assignments = []
    prob_arrays = []
    for layer_id in layer_order:
        mat = np.vstack(rows_by_layer[layer_id])
        if len(mat) >= reference:
            mat = mat[:reference]  # truncate
        else:
            # Pad by cycling the layer's own rows from its start.
            reps = np.arange(reference) % len(mat)
            mat = mat[reps]
        # Stable descending sort: ties resolve to the lowest expert id.
        order = np.argsort(-mat, axis=1, kind="stable")
        assignments.append(np.ascontiguousarray(order[:, :top_k], dtype=np.int64))
        prob_arrays.append(mat)
    return RoutingTrace(
        layers=tuple(layer_order),
        assignments=tuple(assignments),
        probs=tuple(prob_arrays),
        n_experts=n_experts,
        source=str(path),
    )


def save_routing_trace(path, trace: RoutingTrace, decimals: int = 6) -> int:
    """Write a :class:`RoutingTrace` back to the CSV format
    :func:`load_routing_trace` reads; returns the row count.  A
    save -> load round trip reproduces the assignments exactly (the
    stored probabilities are already renormalized)."""
    path = pathlib.Path(path)
    rows = 0
    with open(path, "w", encoding="utf-8") as fh:
        header = ["layer_id", "token_id"] + [
            f"expert_{e}_prob" for e in range(trace.n_experts)
        ]
        fh.write(",".join(header) + "\n")
        for layer_id, mat in zip(trace.layers, trace.probs):
            for token_id in range(mat.shape[0]):
                cells = [str(layer_id), str(token_id)] + [
                    format(p, f".{decimals}f") for p in mat[token_id]
                ]
                fh.write(",".join(cells) + "\n")
                rows += 1
    return rows


@dataclass(frozen=True)
class EmpiricalRoutingProfile:
    """A trace's measured per-layer popularity wearing the
    :class:`~repro.workloads.traces.RoutingProfile` interface.

    ``popularity(n_experts, rank, n_layers, decoder, rng)`` returns
    the stored distribution of trace layer ``rank % trace.n_layers``
    (deeper model layers reuse the trace cyclically when the model is
    deeper than the trace), resized to the requested expert count --
    deterministic, so the ``rng`` argument is accepted but unused.
    """

    layer_popularity: tuple[tuple[float, ...], ...]
    source: str = ""

    @classmethod
    def from_trace(cls, trace: RoutingTrace) -> "EmpiricalRoutingProfile":
        return cls(
            layer_popularity=tuple(
                tuple(float(x) for x in pop) for pop in trace.popularities()
            ),
            source=trace.source,
        )

    def popularity(
        self,
        n_experts: int,
        rank: int,
        n_layers: int,
        decoder: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        pop = np.asarray(
            self.layer_popularity[rank % len(self.layer_popularity)],
            dtype=np.float64,
        )
        if n_experts < len(pop):
            pop = pop[:n_experts]
        elif n_experts > len(pop):
            pop = np.concatenate([pop, np.zeros(n_experts - len(pop))])
        total = pop.sum()
        if total <= 0:
            return np.full(n_experts, 1.0 / n_experts)
        return pop / total


@dataclass(frozen=True)
class TraceExportSpec:
    """Geometry knobs for rendering a trace as DRAM bursts (the same
    knobs :func:`~repro.workloads.traces.moe_expert_memory_trace_arrays`
    takes, minus the popularity-sampling ones the trace replaces)."""

    expert_bytes: int = 1 << 18
    burst_blocks: int = 32
    write_fraction: float = 0.1
    seed: int = 0
    config: DRAMConfig = field(default=LPDDR5X_8533)


def routing_dram_arrays(
    trace: RoutingTrace,
    spec: Optional[TraceExportSpec] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Render the trace's exact expert visit sequence as DRAM
    ``(addrs, write_mask)`` columns.

    One burst per (token, layer, k) routing event, in forward-pass
    order, through the same region layout / per-expert resume offsets
    / writeback draws as the synthetic generator -- only the *choice*
    of expert comes from the trace instead of sampled popularity.
    Deterministic in (trace, spec.seed) alone.
    """
    from repro.workloads.traces import moe_expert_memory_trace_arrays

    spec = spec or TraceExportSpec()
    seq = trace.expert_sequence()
    return moe_expert_memory_trace_arrays(
        n_requests=len(seq) * spec.burst_blocks,
        config=spec.config,
        n_experts=trace.n_layers * trace.n_experts,
        expert_bytes=spec.expert_bytes,
        burst_blocks=spec.burst_blocks,
        write_fraction=spec.write_fraction,
        seed=spec.seed,
        experts=seq,
    )


def export_routing_trace(
    trace: RoutingTrace,
    path,
    spec: Optional[TraceExportSpec] = None,
) -> int:
    """Write the trace-faithful burst stream to a ``.dramtrace``;
    returns the record count.  The file carries no timestamps, so two
    exports of the same trace with the same seed are byte-identical.
    """
    from repro.workloads.trace_io import pack_flags, write_trace

    addrs, write_mask = routing_dram_arrays(trace, spec)
    return write_trace(path, addrs, flags=pack_flags(write_mask))
