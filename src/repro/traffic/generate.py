"""Traffic-shaped request-stream generation.

:func:`generate_requests` is the traffic-aware sibling of
``RequestGenerator.generate``: it splits the offered load across the
configured tenants (each tenant gets its own seeded generator with its
own token means), merges the per-tenant arrivals into one stream,
re-times it through the configured load shape, and renumbers request
ids in final arrival order.  Deterministic in
``(rate, n_requests, seed, traffic)`` alone -- the same contract the
legacy single-tenant path has -- so sweeps stay bit-identical across
serial/parallel/resumed runs.

With an inactive :class:`~repro.experiments.config.TrafficConfig` the
callers (the sweep runners) skip this module entirely and use the
legacy generator, byte-for-byte.
"""

from __future__ import annotations

import numpy as np

from repro.serving.workload import Request, RequestGenerator

#: Namespacing code for per-tenant generator seeds
#: (``default_rng((seed, _TENANT_CODE, tenant_index))`` idiom).
_TENANT_CODE = 0x7E


def _tenant_counts(n_requests: int, shares: list[float]) -> list[int]:
    """Split ``n_requests`` across tenants proportionally to share,
    largest-remainder rounding so the total is exact and every tenant
    with positive share gets at least the rounding allows."""
    total = sum(shares)
    raw = [n_requests * s / total for s in shares]
    counts = [int(x) for x in raw]
    shortfall = n_requests - sum(counts)
    remainders = sorted(
        range(len(shares)), key=lambda i: (-(raw[i] - counts[i]), i)
    )
    for i in remainders[:shortfall]:
        counts[i] += 1
    return counts


def generate_requests(
    rate: float,
    n_requests: int,
    mean_prompt_tokens: int,
    mean_decode_tokens: int,
    seed: int,
    arrival: str,
    traffic,
) -> list[Request]:
    """Generate one traffic-shaped request stream.

    ``traffic`` is a :class:`~repro.experiments.config.TrafficConfig`.
    Tenants partition the request count by share and the offered rate
    accordingly (so the aggregate rate is preserved); with no tenants
    a single anonymous tenant with the experiment-wide token means is
    used.  The merged stream is sorted by arrival, warped through the
    config's load shape (count-, horizon-, and order-preserving), and
    renumbered 0..n-1 in arrival order.
    """
    from repro.traffic.shapes import warp_times

    if n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    tenants = list(traffic.tenants) or [None]
    shares = [1.0 if t is None else t.share for t in tenants]
    counts = _tenant_counts(n_requests, shares)
    total_share = sum(shares)

    drafts: list[tuple[float, int, str, int, int]] = []
    for index, (tenant, count) in enumerate(zip(tenants, counts)):
        if count == 0:
            continue
        name = "" if tenant is None else tenant.name
        prompt_mean = (
            mean_prompt_tokens if tenant is None else tenant.mean_prompt_tokens
        )
        decode_mean = (
            mean_decode_tokens if tenant is None else tenant.mean_decode_tokens
        )
        share = shares[index] / total_share
        generator = RequestGenerator(
            rate * share,
            mean_prompt_tokens=prompt_mean,
            mean_decode_tokens=decode_mean,
            seed=(seed, _TENANT_CODE, index),
            arrival=arrival,
        )
        for r in generator.generate(count):
            drafts.append(
                (r.arrival, index, name, r.prompt_tokens, r.decode_tokens)
            )

    # Stable order: by arrival, tenant-index tiebreak (deterministic).
    drafts.sort(key=lambda d: (d[0], d[1]))
    times = np.array([d[0] for d in drafts], dtype=np.float64)
    shape = traffic.load_shape()
    if shape is not None:
        times = warp_times(times, shape)
    return [
        Request(
            request_id=i,
            arrival=float(times[i]),
            prompt_tokens=draft[3],
            decode_tokens=draft[4],
            tenant=draft[2],
        )
        for i, draft in enumerate(drafts)
    ]
