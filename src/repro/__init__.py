"""repro: a full reproduction of MoNDE (DAC 2024).

MoNDE -- Mixture of Near-Data Experts -- is a CXL near-data-processing
memory system for Mixture-of-Experts (MoE) LLM inference.  This package
implements the paper's contribution and every substrate it depends on:

- :mod:`repro.moe` -- a pure-NumPy MoE Transformer (gating, dropless
  dispatch, expert FFNs, attention, encoder/decoder blocks, model zoo).
- :mod:`repro.hw` -- calibrated hardware timing models (GPU roofline,
  PCIe link, CPU memory system, device specs).
- :mod:`repro.dram` -- a Ramulator-style cycle-level DRAM simulator
  (LPDDR5X timing, banks/bank-groups/channels, FR-FCFS scheduling,
  ro-ba-bg-ra-co-ch address mapping).
- :mod:`repro.ndp` -- the MoNDE NDP core: 64x (4x4) MAC systolic arrays,
  SIMD control, scratchpad/operand buffers, output-stationary GEMM
  tiling, NDP/CXL controllers with a 64-byte instruction interface.
- :mod:`repro.core` -- the paper's contribution: PMove/AMove strategies,
  the Eq. 1-6 analytical model, GPU-MoNDE load balancing with the
  auto-tuned ``H`` policy, the execution engine that overlaps hardware
  streams (Fig. 5), and end-to-end runtimes for every evaluated scheme.
- :mod:`repro.workloads` -- synthetic routing traces and batch
  generators calibrated to the paper's measured expert skew (Fig. 3).
- :mod:`repro.traffic` -- the production-traffic subsystem: real
  routing-trace ingestion (CSV -> trace-faithful ``.dramtrace``),
  time-varying load shapes (diurnal, flash crowd, popularity drift),
  and the named multi-tenant scenario zoo, each registered as an
  experiment preset.
- :mod:`repro.cosim` -- closed-loop serving<->DRAM co-simulation: the
  fixed-point driver, expert-faithful replay, and load-sweep runner.
- :mod:`repro.cluster` -- cluster-scale sharded serving simulation:
  N replicas behind a load balancer, experts sharded across NDP
  devices, replica x policy capacity curves.
- :mod:`repro.experiments` -- the unified experiment-config API: one
  serializable :class:`ExperimentConfig` describes a cosim or cluster
  run; presets and ``run_experiment`` execute it.
- :mod:`repro.analysis` -- characterization (Fig. 2), area/power
  (Table 3), and report helpers.
- :mod:`repro.sim` -- the discrete-event kernel and stream timeline
  calculus shared by the system-level models.
"""

__version__ = "1.0.0"

__all__ = [
    "BatchingEngine",
    "ClusterConfig",
    "CosimConfig",
    "CosimDriver",
    "ExperimentConfig",
    "InferenceConfig",
    "MoNDERuntime",
    "SCENARIOS",
    "Scheme",
    "SchemeResult",
    "ServingSimulator",
    "TrafficConfig",
    "__version__",
    "get_preset",
    "load_routing_trace",
    "run_cluster_sweep",
    "run_experiment",
    "run_load_sweep",
]

_LAZY = {
    "BatchingEngine": ("repro.serving.engine", "BatchingEngine"),
    "ClusterConfig": ("repro.cluster.config", "ClusterConfig"),
    "CosimConfig": ("repro.cosim.driver", "CosimConfig"),
    "CosimDriver": ("repro.cosim.driver", "CosimDriver"),
    "ExperimentConfig": ("repro.experiments.config", "ExperimentConfig"),
    "InferenceConfig": ("repro.core.runtime", "InferenceConfig"),
    "MoNDERuntime": ("repro.core.runtime", "MoNDERuntime"),
    "SCENARIOS": ("repro.traffic.scenarios", "SCENARIOS"),
    "SchemeResult": ("repro.core.runtime", "SchemeResult"),
    "Scheme": ("repro.core.strategies", "Scheme"),
    "ServingSimulator": ("repro.serving.simulator", "ServingSimulator"),
    "TrafficConfig": ("repro.experiments.config", "TrafficConfig"),
    "get_preset": ("repro.experiments.presets", "get_preset"),
    "load_routing_trace": ("repro.traffic.routing_trace", "load_routing_trace"),
    "run_cluster_sweep": ("repro.cluster.sweep", "run_cluster_sweep"),
    "run_experiment": ("repro.experiments.runner", "run_experiment"),
    "run_load_sweep": ("repro.cosim.sweep", "run_load_sweep"),
}


def __getattr__(name: str):
    """Lazily re-export the top-level API (PEP 562) so that importing
    a leaf subpackage does not pull in the whole dependency tree."""
    if name in _LAZY:
        import importlib

        module_name, attr = _LAZY[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
