"""Deterministic fault injection for the simulation runtime.

Recovery code that is never executed is recovery code that does not
work.  This package makes every failure the fault-tolerance layer
claims to survive *reproducible on demand*:

- :class:`~repro.faults.injectors.WorkerFaultPlan` /
  :func:`~repro.faults.injectors.worker_faults` sabotage pool workers
  (SIGKILL, hang, raise) on chosen drain tasks, with cross-process
  attempt counting so "fail the first N attempts, then succeed" is
  exact regardless of retries, respawns, or start method;
- :func:`~repro.faults.injectors.truncate_trace` /
  :func:`~repro.faults.injectors.bit_flip_trace` /
  :func:`~repro.faults.injectors.zero_header_count` corrupt on-disk
  ``.dramtrace`` files the ways real crashes do (lost tail, flipped
  bit, crash-before-header-patch);
- :func:`~repro.faults.injectors.interrupt_after` interrupts a load
  sweep after a chosen number of completed rate points, exactly where
  a SIGINT/SIGTERM would land;
- :func:`~repro.faults.chaos.run_chaos_smoke` (the ``repro bench
  --chaos`` entry point) drives every recovery path above end to end
  and verifies the recovered results are bit-identical to undisturbed
  runs.

Everything is seed-free *deterministic by construction*: faults fire
on exact (channel, attempt) coordinates, byte offsets, and point
counts rather than probabilities, so a failing chaos scenario replays
identically under a debugger.
"""

from repro.faults.injectors import (
    FAULT_ENV_VAR,
    InjectedWorkerFault,
    WorkerFaultPlan,
    bit_flip_trace,
    interrupt_after,
    truncate_trace,
    worker_faults,
    zero_header_count,
)

__all__ = [
    "FAULT_ENV_VAR",
    "InjectedWorkerFault",
    "WorkerFaultPlan",
    "bit_flip_trace",
    "interrupt_after",
    "truncate_trace",
    "worker_faults",
    "zero_header_count",
    "maybe_inject_worker_fault",
]

from repro.faults.injectors import maybe_inject_worker_fault
