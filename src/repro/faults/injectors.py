"""Deterministic fault injectors: worker sabotage, trace corruption,
sweep interruption.

Worker faults cross a process boundary (the saboteur runs inside a
``multiprocessing`` pool worker), so the plan travels through the
environment -- JSON in :data:`FAULT_ENV_VAR`, inherited by workers
under both ``fork`` and ``spawn`` -- and the "fail the first N
attempts" counter lives on the filesystem: each sabotaged attempt
claims the next sequence file in the plan's scratch directory with
``O_CREAT | O_EXCL`` (atomic on POSIX), so the count is exact even
across pool respawns that replace the worker processes entirely.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import tempfile
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass

FAULT_ENV_VAR = "REPRO_WORKER_FAULT_PLAN"

KILL = "kill"
HANG = "hang"
RAISE = "raise"
_WORKER_FAULT_KINDS = (KILL, HANG, RAISE)


class InjectedWorkerFault(RuntimeError):
    """The exception a ``raise``-kind worker fault throws."""


@dataclass(frozen=True)
class WorkerFaultPlan:
    """Sabotage the first ``times`` matching drain-task executions.

    ``channel`` = -1 matches every channel; otherwise only tasks for
    that channel index are sabotaged.  ``kind``:

    - ``"kill"``: the worker SIGKILLs itself (the un-catchable death
      the supervisor must detect and respawn around);
    - ``"hang"``: the worker sleeps ``hang_seconds`` (far beyond any
      reasonable task timeout; the supervisor's pool respawn kills the
      sleeper, so nothing leaks);
    - ``"raise"``: the worker raises :class:`InjectedWorkerFault`
      (the picklable-failure path: retries, then serial fallback).

    ``counter_dir`` holds one sequence file per sabotaged attempt; the
    plan is exhausted once ``times`` files exist.
    """

    kind: str
    counter_dir: str
    channel: int = -1
    times: int = 1
    hang_seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in _WORKER_FAULT_KINDS:
            raise ValueError(
                f"unknown worker fault kind {self.kind!r} "
                f"(expected one of {_WORKER_FAULT_KINDS})"
            )
        if self.times < 1:
            raise ValueError("times must be >= 1")
        if self.hang_seconds <= 0:
            raise ValueError("hang_seconds must be positive")

    def to_env(self) -> str:
        return json.dumps(asdict(self))

    @classmethod
    def from_env(cls, raw: str) -> "WorkerFaultPlan":
        return cls(**json.loads(raw))

    def injections_fired(self) -> int:
        """How many attempts have been sabotaged so far (parent-side
        observability for tests and the chaos harness)."""
        try:
            return len(
                [n for n in os.listdir(self.counter_dir) if n.startswith("attempt-")]
            )
        except FileNotFoundError:
            return 0

    def claim(self, channel_index: int) -> bool:
        """Worker-side: atomically claim the next sabotage slot.

        Returns True iff this execution should be sabotaged (a slot
        below ``times`` was claimed).  Sequence files are claimed with
        ``O_CREAT | O_EXCL``, so concurrent workers under any start
        method never double-count.
        """
        if self.channel != -1 and channel_index != self.channel:
            return False
        for seq in range(self.times):
            path = os.path.join(self.counter_dir, f"attempt-{seq}")
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.write(fd, f"channel={channel_index} pid={os.getpid()}\n".encode())
            os.close(fd)
            return True
        return False


def maybe_inject_worker_fault(channel_index: int) -> None:
    """Hook called at the top of every pool drain task.

    No-op (one env lookup) unless a plan is installed; otherwise
    claims a sabotage slot and performs the planned fault.
    """
    raw = os.environ.get(FAULT_ENV_VAR)
    if not raw:
        return
    plan = WorkerFaultPlan.from_env(raw)
    if not plan.claim(channel_index):
        return
    if plan.kind == KILL:
        os.kill(os.getpid(), signal.SIGKILL)
    elif plan.kind == HANG:
        time.sleep(plan.hang_seconds)
    else:
        raise InjectedWorkerFault(
            f"injected worker fault (channel {channel_index}, "
            f"counter {plan.counter_dir})"
        )


@contextmanager
def worker_faults(
    kind: str,
    channel: int = -1,
    times: int = 1,
    hang_seconds: float = 3600.0,
    counter_dir: str | None = None,
):
    """Install a :class:`WorkerFaultPlan` for the enclosed block.

    The plan is exported through the environment **before** any pool
    is created inside the block, so workers inherit it under ``fork``
    and ``spawn`` alike (pool respawns re-inherit the live
    environment).  Yields the plan; restores the environment on exit.
    """
    own_dir = counter_dir is None
    if own_dir:
        counter_dir = tempfile.mkdtemp(prefix="repro-fault-")
    plan = WorkerFaultPlan(
        kind=kind,
        counter_dir=str(counter_dir),
        channel=channel,
        times=times,
        hang_seconds=hang_seconds,
    )
    previous = os.environ.get(FAULT_ENV_VAR)
    os.environ[FAULT_ENV_VAR] = plan.to_env()
    try:
        yield plan
    finally:
        if previous is None:
            os.environ.pop(FAULT_ENV_VAR, None)
        else:
            os.environ[FAULT_ENV_VAR] = previous
        if own_dir:
            try:
                for name in os.listdir(counter_dir):
                    os.unlink(os.path.join(counter_dir, name))
                os.rmdir(counter_dir)
            except OSError:
                pass


# -- on-disk trace corruption ---------------------------------------------


def truncate_trace(path, keep_records: int) -> int:
    """Chop a ``.dramtrace`` down to ``keep_records`` records without
    touching the header -- the lost-tail shape a crashed writer or a
    torn copy produces.  Returns the new file size."""
    from repro.workloads.trace_io import HEADER_BYTES, RECORD_BYTES

    if keep_records < 0:
        raise ValueError("keep_records must be non-negative")
    path = pathlib.Path(path)
    new_size = HEADER_BYTES + keep_records * RECORD_BYTES
    if new_size > path.stat().st_size:
        raise ValueError(f"{path}: cannot truncate {path.stat().st_size} up to {new_size}")
    with open(path, "rb+") as fh:
        fh.truncate(new_size)
        fh.flush()
        os.fsync(fh.fileno())
    return new_size


def bit_flip_trace(path, record_index: int, bit: int = 62) -> None:
    """Flip one bit of one record's ``addr`` field in place.

    The default bit (62) pushes any realistic address far beyond
    device capacity, which is exactly how a flipped high bit surfaces:
    the streaming decoder's validation trips instead of the scheduler
    silently simulating garbage.
    """
    from repro.workloads.trace_io import HEADER_BYTES, RECORD_BYTES

    if not 0 <= bit < 64:
        raise ValueError("bit must be in [0, 64)")
    offset = HEADER_BYTES + record_index * RECORD_BYTES  # addr is field 0
    byte_offset = offset + bit // 8
    with open(path, "rb+") as fh:
        fh.seek(byte_offset)
        (value,) = fh.read(1)
        fh.seek(byte_offset)
        fh.write(bytes((value ^ (1 << (bit % 8)),)))
        fh.flush()
        os.fsync(fh.fileno())


def zero_header_count(path) -> None:
    """Rewrite the header's record count to 0, leaving the records in
    place -- the crash-between-append-and-close shape: a stale n=0
    header with trailing record bytes."""
    from repro.workloads.trace_io import HEADER_DTYPE

    import numpy as np

    with open(path, "rb+") as fh:
        raw = bytearray(fh.read(HEADER_DTYPE.itemsize))
        header = np.frombuffer(bytes(raw), dtype=HEADER_DTYPE).copy()
        header["n_records"] = 0
        fh.seek(0)
        fh.write(header.tobytes())
        fh.flush()
        os.fsync(fh.fileno())


# -- sweep interruption ----------------------------------------------------


def interrupt_after(n_points: int):
    """An ``on_point`` callback for
    :func:`~repro.cosim.sweep.run_load_sweep` that interrupts the
    sweep after ``n_points`` completed rate points -- the exact
    instant a SIGINT/SIGTERM would land, minus the nondeterminism.
    The completed points are already durably checkpointed when the
    callback fires, so resume semantics are identical."""
    from repro.cosim.sweep import SweepInterrupted

    if n_points < 0:
        raise ValueError("n_points must be non-negative")
    state = {"completed": 0}

    def _on_point(rate: float, point) -> None:
        state["completed"] += 1
        if state["completed"] >= n_points:
            raise SweepInterrupted(
                f"fault injection: interrupted after {n_points} point(s)"
            )

    return _on_point
