"""End-to-end chaos smoke: drive every recovery path, verify identity.

``repro bench --chaos`` runs each scenario below against a live
simulation and checks two things the fault-tolerance layer promises:

1. the run *survives* (the fault is detected, retried, respawned
   around, or reported as structured corruption rather than garbage);
2. the recovered result is **bit-identical** to an undisturbed run
   (drain stats match the serial path; a resumed sweep's JSON matches
   the uninterrupted sweep's byte for byte).

Every scenario is deterministic: faults fire on exact attempt counts,
record indices, and point counts, so a failure here replays under a
debugger without a seed hunt.
"""

from __future__ import annotations

import tempfile
import traceback
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.faults.injectors import (
    HANG,
    KILL,
    RAISE,
    bit_flip_trace,
    interrupt_after,
    truncate_trace,
    worker_faults,
    zero_header_count,
)


@dataclass
class ChaosScenario:
    """Outcome of one chaos scenario."""

    name: str
    passed: bool
    detail: str = ""


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(message)


def _small_config():
    from repro.dram.config import DRAMConfig, DRAMOrganization, LPDDR5X_8533

    org = DRAMOrganization(
        n_channels=4,
        n_ranks=1,
        n_bankgroups=2,
        banks_per_group=2,
        n_rows=128,
        row_bytes=512,
        access_bytes=64,
    )
    return DRAMConfig(organization=org, timing=LPDDR5X_8533.timing)


def _columns(config, n=900):
    from repro.workloads.traces import generate_trace_arrays

    return generate_trace_arrays(
        "random", n, config=config, seed=11, arrival="poisson", arrival_gap=6.0
    )


def _drain_under_fault(kind: str, **fault_kwargs):
    """Run a parallel drain with a worker fault installed; return
    ``(serial_stats, parallel_stats)`` (the parallel stats carry the
    resilience report)."""
    from repro.dram.controller import MemoryController
    from repro.dram.parallel import ParallelDrainExecutor

    config = _small_config()
    cols = _columns(config)
    serial = MemoryController(config).simulate_arrays(*cols)
    executor_kwargs = fault_kwargs.pop("executor_kwargs", {})
    executor_kwargs.setdefault("backoff_base", 0.01)
    executor_kwargs.setdefault("backoff_cap", 0.05)
    with worker_faults(kind, **fault_kwargs):
        with ParallelDrainExecutor(2, **executor_kwargs) as executor:
            par = MemoryController(config, executor=executor).simulate_arrays(*cols)
    return serial, par


def _scenario_worker_kill() -> str:
    serial, par = _drain_under_fault(KILL, times=1)
    _check(asdict(par) == asdict(serial), "stats diverged after worker kill")
    r = par.resilience
    _check(r.worker_deaths >= 1, "no worker_death event recorded")
    _check(r.pool_respawns >= 1, "no pool_respawn event recorded")
    return (
        f"SIGKILLed worker detected and respawned around "
        f"({r.worker_deaths} death(s), {r.pool_respawns} respawn(s), "
        f"{r.task_retries} retries); stats bit-identical to serial"
    )


def _scenario_worker_raise() -> str:
    # Sabotage more attempts than the retry budget ever grants, so
    # every pool path is exhausted and the per-channel serial fallback
    # must carry the run.
    serial, par = _drain_under_fault(RAISE, times=64)
    _check(asdict(par) == asdict(serial), "stats diverged after serial fallback")
    r = par.resilience
    _check(r.task_retries >= 1, "no task_retry event recorded")
    _check(r.serial_fallbacks >= 1, "no serial_fallback event recorded")
    return (
        f"persistent worker exception exhausted retries "
        f"({r.task_retries} retries) and degraded to serial for "
        f"{r.serial_fallbacks} channel(s); stats bit-identical"
    )


def _scenario_worker_hang() -> str:
    serial, par = _drain_under_fault(
        HANG,
        times=1,
        hang_seconds=30.0,
        executor_kwargs={"task_timeout": 1.0},
    )
    _check(asdict(par) == asdict(serial), "stats diverged after hang recovery")
    r = par.resilience
    _check(r.task_timeouts >= 1, "no task_timeout event recorded")
    _check(r.pool_respawns >= 1, "no pool_respawn event recorded")
    return (
        f"hung worker timed out ({r.task_timeouts} timeout(s)), pool "
        f"respawned, task retried; stats bit-identical to serial"
    )


def _scenario_trace_truncate(tmp: Path) -> str:
    import numpy as np

    from repro.workloads.trace_io import TraceCorruptionError, load_trace, write_trace

    config = _small_config()
    addrs, arrive, flags = _columns(config, n=300)
    path = tmp / "truncated.dramtrace"
    write_trace(path, addrs, arrive, flags)
    truncate_trace(path, keep_records=100)
    try:
        load_trace(path)
    except TraceCorruptionError as exc:
        _check(
            exc.recoverable_records == 100,
            f"expected 100 recoverable records, got {exc.recoverable_records}",
        )
    else:
        raise AssertionError("truncated trace loaded without error")
    recovered = load_trace(path, recover=True)
    _check(len(recovered) == 100, "recover=True did not load the intact prefix")
    _check(
        np.array_equal(np.asarray(recovered.addrs), addrs[:100]),
        "recovered prefix differs from the original records",
    )
    return "lost tail reported with exact recoverable count; prefix salvaged"


def _scenario_trace_header_mismatch(tmp: Path) -> str:
    from repro.workloads.trace_io import TraceCorruptionError, load_trace, write_trace

    config = _small_config()
    addrs, arrive, flags = _columns(config, n=120)
    path = tmp / "stale_header.dramtrace"
    write_trace(path, addrs, arrive, flags)
    zero_header_count(path)
    try:
        load_trace(path)
    except TraceCorruptionError as exc:
        _check(
            exc.recoverable_records == 120,
            f"expected 120 recoverable records, got {exc.recoverable_records}",
        )
    else:
        raise AssertionError("stale-header trace loaded without error")
    recovered = load_trace(path, recover=True)
    _check(len(recovered) == 120, "recover=True did not reattach the records")
    return "stale n=0 header detected; all on-disk records recoverable"


def _scenario_trace_bitflip(tmp: Path) -> str:
    from repro.dram.controller import MemoryController
    from repro.workloads.trace_io import TraceCorruptionError, write_trace

    config = _small_config()
    addrs, arrive, flags = _columns(config, n=300)
    path = tmp / "bitflip.dramtrace"
    write_trace(path, addrs, arrive, flags)
    bit_flip_trace(path, record_index=50)
    controller = MemoryController(config)
    try:
        controller.simulate_trace_streaming(path, window=32)
    except TraceCorruptionError as exc:
        _check(exc.byte_offset >= 0, "corruption error carries no byte offset")
        _check(
            0 < exc.recoverable_records <= 50,
            f"recoverable prefix {exc.recoverable_records} inconsistent "
            "with a flip at record 50",
        )
    else:
        raise AssertionError("streaming simulated a bit-flipped trace")
    return (
        "flipped address bit tripped streaming validation with a byte "
        "offset instead of simulating garbage"
    )


def _scenario_sweep_interrupt_resume(tmp: Path) -> str:
    from repro.core.strategies import Scheme
    from repro.cosim import (
        CosimConfig,
        ExpertReplayPlanner,
        SweepInterrupted,
        run_load_sweep,
        small_cosim_dram,
    )
    from repro.serving.simulator import CostModel

    rates = [2e4, 1e6, 4e6]
    kwargs = dict(
        n_requests=40,
        seed=1,
        mean_prompt_tokens=20,
        mean_decode_tokens=5,
        cosim_config=CosimConfig(max_iterations=8),
    )

    def make_inputs():
        cost = CostModel(
            encode_seconds_per_token=2e-9, decode_seconds_per_token=2e-8
        )
        planner = ExpertReplayPlanner(
            n_experts=16, top_k=2, n_moe_layers=2,
            dram_config=small_cosim_dram(), bytes_per_token=8192,
            max_blocks_per_request=1024, expert_bytes=1 << 18, seed=1,
        )
        return cost, planner

    cost, planner = make_inputs()
    baseline, _ = run_load_sweep(cost, Scheme.MD_LB, planner, rates, **kwargs)
    baseline_path = tmp / "uninterrupted.json"
    baseline.save(baseline_path)

    ckpt = tmp / "resumed.json.sweep.ckpt"
    cost, planner = make_inputs()
    try:
        run_load_sweep(
            cost, Scheme.MD_LB, planner, rates,
            checkpoint_path=ckpt,
            on_point=interrupt_after(1),
            **kwargs,
        )
    except SweepInterrupted:
        pass
    else:
        raise AssertionError("injected interrupt did not fire")
    _check(ckpt.exists(), "interrupt left no checkpoint behind")

    cost, planner = make_inputs()
    resumed, _ = run_load_sweep(
        cost, Scheme.MD_LB, planner, rates,
        checkpoint_path=ckpt,
        resume=True,
        **kwargs,
    )
    resumed_path = tmp / "resumed.json"
    resumed.save(resumed_path)
    _check(
        resumed_path.read_bytes() == baseline_path.read_bytes(),
        "resumed sweep JSON differs from the uninterrupted sweep",
    )
    _check(not ckpt.exists(), "completed sweep did not clean up its checkpoint")
    return (
        "sweep interrupted after 1 point, resumed from checkpoint; "
        "output JSON byte-identical to the uninterrupted sweep"
    )


def run_chaos_smoke() -> list[ChaosScenario]:
    """Run every chaos scenario; never raises -- failures come back as
    ``passed=False`` scenarios with the traceback in ``detail``."""
    report: list[ChaosScenario] = []
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp_str:
        tmp = Path(tmp_str)
        scenarios = [
            ("worker-kill", _scenario_worker_kill),
            ("worker-raise", _scenario_worker_raise),
            ("worker-hang", _scenario_worker_hang),
            ("trace-truncate", lambda: _scenario_trace_truncate(tmp)),
            ("trace-header-mismatch", lambda: _scenario_trace_header_mismatch(tmp)),
            ("trace-bitflip", lambda: _scenario_trace_bitflip(tmp)),
            ("sweep-interrupt-resume", lambda: _scenario_sweep_interrupt_resume(tmp)),
        ]
        for name, fn in scenarios:
            try:
                detail = fn()
            except Exception:
                report.append(
                    ChaosScenario(name=name, passed=False,
                                  detail=traceback.format_exc())
                )
            else:
                report.append(ChaosScenario(name=name, passed=True, detail=detail))
    return report


def format_chaos(report: list[ChaosScenario]) -> str:
    lines = ["chaos smoke: deterministic fault injection across the runtime", ""]
    for scenario in report:
        status = "PASS" if scenario.passed else "FAIL"
        lines.append(f"[{status}] {scenario.name}")
        for raw in scenario.detail.splitlines():
            lines.append(f"       {raw}")
    n_passed = sum(1 for s in report if s.passed)
    lines.append("")
    lines.append(f"{n_passed}/{len(report)} scenario(s) passed")
    return "\n".join(lines)
