"""The 64-byte MoNDE NDP CXL instruction (Fig. 4(a)).

Layout (512 bits, MSB first)::

    | op (4b) | actin addr (64b) | actin size (64b)
    | wgt addr (64b) | wgt size (64b)
    | actout addr (64b) | actout size (64b) | auxiliary (124b) |

The auxiliary field carries the NDP flag that the CXL controller uses
to distinguish NDP instructions from ordinary memory traffic inside
Request-with-Data (RwD) flits, plus the GEMM geometry and expert id::

    aux (124b) = isNDP (1) | act fn (2) | m (24) | n (24) | k (24)
               | expert id (16) | device id (8) | reserved (25)

Two kernels are defined (Section 3.4): ``gemm`` and ``gemm+relu``
(with a GeLU variant for GeLU models).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

INSTRUCTION_BYTES = 64

_OP_BITS = 4
_ADDR_BITS = 64
_SIZE_BITS = 64
_AUX_BITS = 124

_AUX_NDP_BITS = 1
_AUX_ACT_BITS = 2
_AUX_DIM_BITS = 24
_AUX_EXPERT_BITS = 16
_AUX_DEVICE_BITS = 8
_AUX_RESERVED_BITS = (
    _AUX_BITS
    - _AUX_NDP_BITS
    - _AUX_ACT_BITS
    - 3 * _AUX_DIM_BITS
    - _AUX_EXPERT_BITS
    - _AUX_DEVICE_BITS
)

_TOTAL_BITS = _OP_BITS + 3 * (_ADDR_BITS + _SIZE_BITS) + _AUX_BITS
assert _TOTAL_BITS == 8 * INSTRUCTION_BYTES, _TOTAL_BITS


class Opcode(enum.IntEnum):
    """4-bit opcode space (values above GEMM_GELU are reserved)."""

    NOP = 0
    GEMM = 1
    GEMM_RELU = 2
    GEMM_GELU = 3


class FusedActivation(enum.IntEnum):
    """2-bit fused-epilogue selector in the auxiliary field."""

    NONE = 0
    RELU = 1
    GELU = 2


_OP_TO_ACT = {
    Opcode.GEMM: FusedActivation.NONE,
    Opcode.GEMM_RELU: FusedActivation.RELU,
    Opcode.GEMM_GELU: FusedActivation.GELU,
}


def _check(value: int, bits: int, label: str) -> int:
    if not 0 <= value < (1 << bits):
        raise ValueError(f"{label}={value} does not fit in {bits} bits")
    return value


@dataclass(frozen=True)
class NDPInstruction:
    """One decoded 64-byte NDP instruction."""

    opcode: Opcode
    actin_addr: int
    actin_size: int
    wgt_addr: int
    wgt_size: int
    actout_addr: int
    actout_size: int
    m: int
    n: int
    k: int
    expert_id: int = 0
    device_id: int = 0
    is_ndp: bool = True

    def __post_init__(self) -> None:
        _check(int(self.opcode), _OP_BITS, "opcode")
        for label in ("actin_addr", "wgt_addr", "actout_addr"):
            _check(getattr(self, label), _ADDR_BITS, label)
        for label in ("actin_size", "wgt_size", "actout_size"):
            _check(getattr(self, label), _SIZE_BITS, label)
        for label in ("m", "n", "k"):
            _check(getattr(self, label), _AUX_DIM_BITS, label)
        _check(self.expert_id, _AUX_EXPERT_BITS, "expert_id")
        _check(self.device_id, _AUX_DEVICE_BITS, "device_id")

    @property
    def fused_activation(self) -> FusedActivation:
        return _OP_TO_ACT.get(self.opcode, FusedActivation.NONE)

    # -- codec ---------------------------------------------------------------

    def encode(self) -> bytes:
        """Pack into the 64-byte wire format."""
        aux = 1 if self.is_ndp else 0
        aux = (aux << _AUX_ACT_BITS) | int(self.fused_activation)
        aux = (aux << _AUX_DIM_BITS) | self.m
        aux = (aux << _AUX_DIM_BITS) | self.n
        aux = (aux << _AUX_DIM_BITS) | self.k
        aux = (aux << _AUX_EXPERT_BITS) | self.expert_id
        aux = (aux << _AUX_DEVICE_BITS) | self.device_id
        aux = aux << _AUX_RESERVED_BITS

        word = int(self.opcode)
        for value, bits in (
            (self.actin_addr, _ADDR_BITS),
            (self.actin_size, _SIZE_BITS),
            (self.wgt_addr, _ADDR_BITS),
            (self.wgt_size, _SIZE_BITS),
            (self.actout_addr, _ADDR_BITS),
            (self.actout_size, _SIZE_BITS),
            (aux, _AUX_BITS),
        ):
            word = (word << bits) | value
        return word.to_bytes(INSTRUCTION_BYTES, "big")

    @classmethod
    def decode(cls, raw: bytes) -> "NDPInstruction":
        """Unpack from the 64-byte wire format."""
        if len(raw) != INSTRUCTION_BYTES:
            raise ValueError(f"instruction must be {INSTRUCTION_BYTES} bytes, got {len(raw)}")
        word = int.from_bytes(raw, "big")

        def take(bits: int) -> int:
            nonlocal word
            value = word & ((1 << bits) - 1)
            word >>= bits
            return value

        take(_AUX_RESERVED_BITS)
        device_id = take(_AUX_DEVICE_BITS)
        expert_id = take(_AUX_EXPERT_BITS)
        k = take(_AUX_DIM_BITS)
        n = take(_AUX_DIM_BITS)
        m = take(_AUX_DIM_BITS)
        act = take(_AUX_ACT_BITS)
        is_ndp = bool(take(_AUX_NDP_BITS))
        actout_size = take(_SIZE_BITS)
        actout_addr = take(_ADDR_BITS)
        wgt_size = take(_SIZE_BITS)
        wgt_addr = take(_ADDR_BITS)
        actin_size = take(_SIZE_BITS)
        actin_addr = take(_ADDR_BITS)
        opcode = Opcode(take(_OP_BITS))

        instruction = cls(
            opcode=opcode,
            actin_addr=actin_addr,
            actin_size=actin_size,
            wgt_addr=wgt_addr,
            wgt_size=wgt_size,
            actout_addr=actout_addr,
            actout_size=actout_size,
            m=m,
            n=n,
            k=k,
            expert_id=expert_id,
            device_id=device_id,
            is_ndp=is_ndp,
        )
        if int(instruction.fused_activation) != act:
            raise ValueError(
                f"aux activation field {act} inconsistent with opcode {opcode!r}"
            )
        return instruction


@dataclass(frozen=True)
class CXLFlit:
    """A CXL.mem Request-with-Data message carrying a 64-byte payload.

    The CXL controller identifies NDP instructions by the ``ndp_flag``
    defined in the reserved bits of the message flit (Section 3.1).
    """

    address: int
    payload: bytes
    ndp_flag: bool = False

    def __post_init__(self) -> None:
        if len(self.payload) != INSTRUCTION_BYTES:
            raise ValueError("RwD payload must be 64 bytes")
        if self.address < 0:
            raise ValueError("address must be non-negative")
