"""Host-side MoNDE device driver (Section 3.4).

Implements the heterogeneous programming model of Fig. 4(a): the host
allocates device memory for experts and activations, compiles
``gemm`` / ``gemm+relu`` kernels into 64-byte CXL instructions, issues
them through the CXL interface, and polls the memory-mapped done
register.  The source-kernel style of the paper::

    actin = actin.monde()          ->  driver.offload(actin)
    monde.run_expert(0)            ->  driver.run_expert(0, actin)

is exposed via :meth:`offload` and :meth:`run_expert`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.instructions import CXLFlit, Opcode
from repro.ndp.controllers import CXLController, NDPController, encode_gemm
from repro.ndp.device import Allocation, MoNDEDevice


@dataclass(frozen=True)
class ExpertHandle:
    """Device-resident expert weights (two linear layers)."""

    expert_id: int
    w1: Allocation
    w2: Allocation
    d_model: int
    d_ff: int
    activation: str


@dataclass(frozen=True)
class DeviceTensor:
    """An activation tensor living in MoNDE device memory."""

    allocation: Allocation
    shape: tuple[int, ...]


class MoNDEDriver:
    """The host driver for one MoNDE device."""

    def __init__(self, device: MoNDEDevice | None = None) -> None:
        self.device = device or MoNDEDevice()
        self.ndp_controller = NDPController(self.device)
        self.cxl = CXLController(self.ndp_controller)
        self._experts: dict[int, ExpertHandle] = {}
        self.kernel_launches = 0

    # -- initialization (MoE layer setup) -------------------------------------

    def load_expert(
        self,
        expert_id: int,
        w1: np.ndarray,
        w2: np.ndarray,
        activation: str = "relu",
    ) -> ExpertHandle:
        """Place one expert's weights in device memory (even banks)."""
        if w1.ndim != 2 or w2.ndim != 2 or w1.shape[1] != w2.shape[0]:
            raise ValueError(f"inconsistent expert weights: {w1.shape}, {w2.shape}")
        if w1.shape[0] != w2.shape[1]:
            raise ValueError("expert must map d_model -> d_ff -> d_model")
        if activation not in ("relu", "gelu"):
            raise ValueError(f"unsupported fused activation {activation!r}")
        a1 = self.device.store_tensor(w1, region="expert")
        a2 = self.device.store_tensor(w2, region="expert")
        handle = ExpertHandle(
            expert_id=expert_id,
            w1=a1,
            w2=a2,
            d_model=w1.shape[0],
            d_ff=w1.shape[1],
            activation=activation,
        )
        self._experts[expert_id] = handle
        self.device.check_capacity()
        return handle

    def expert(self, expert_id: int) -> ExpertHandle:
        if expert_id not in self._experts:
            raise KeyError(f"expert {expert_id} not loaded")
        return self._experts[expert_id]

    # -- AMove ------------------------------------------------------------------

    def offload(self, activations: np.ndarray) -> DeviceTensor:
        """AMove host->device: place input activations in the odd-bank
        activation region (the paper's ``actin.monde()``)."""
        if activations.ndim != 2:
            raise ValueError("activations must be (tokens, d_model)")
        allocation = self.device.store_tensor(activations, region="activation")
        return DeviceTensor(allocation=allocation, shape=activations.shape)

    def to_host(self, tensor: DeviceTensor) -> np.ndarray:
        """AMove device->host: read back an output activation."""
        return self.device.read_tensor(tensor.allocation.addr).reshape(tensor.shape)

    # -- kernels -------------------------------------------------------------------

    def _issue(self, payload: bytes) -> None:
        flit = CXLFlit(address=0, payload=payload, ndp_flag=True)
        self.cxl.receive(flit)
        self.kernel_launches += 1

    def run_expert(self, expert_id: int, actin: DeviceTensor) -> tuple[DeviceTensor, float]:
        """Run one expert FFN on the NDP over ``actin``.

        Issues ``gemm+relu`` (or ``gemm+gelu``) for Linear1 and
        ``gemm`` for Linear2, drains the instruction queue, polls the
        done register, and returns (output handle, device seconds).
        """
        handle = self.expert(expert_id)
        tokens, d_model = actin.shape
        if d_model != handle.d_model:
            raise ValueError(
                f"activation dim {d_model} != expert d_model {handle.d_model}"
            )
        hidden = self.device.allocate(tokens * handle.d_ff * 2, region="activation")
        out = self.device.allocate(tokens * handle.d_model * 2, region="activation")

        op1 = Opcode.GEMM_RELU if handle.activation == "relu" else Opcode.GEMM_GELU
        self._issue(
            encode_gemm(
                op1,
                actin_addr=actin.allocation.addr,
                wgt_addr=handle.w1.addr,
                actout_addr=hidden.addr,
                m=tokens,
                n=handle.d_ff,
                k=handle.d_model,
                expert_id=expert_id,
                device_id=self.device.device_id,
            )
        )
        self._issue(
            encode_gemm(
                Opcode.GEMM,
                actin_addr=hidden.addr,
                wgt_addr=handle.w2.addr,
                actout_addr=out.addr,
                m=tokens,
                n=handle.d_model,
                k=handle.d_ff,
                expert_id=expert_id,
                device_id=self.device.device_id,
            )
        )
        seconds = self.ndp_controller.drain()
        if not self.cxl.poll_done():
            raise RuntimeError("NDP did not raise the done register")
        return DeviceTensor(allocation=out, shape=(tokens, handle.d_model)), seconds

    def run_moe_layer(
        self,
        token_groups: dict[int, np.ndarray],
    ) -> tuple[dict[int, np.ndarray], float]:
        """Run several experts over their routed token groups; returns
        per-expert outputs and the total device seconds."""
        outputs: dict[int, np.ndarray] = {}
        total = 0.0
        for expert_id, tokens in token_groups.items():
            if tokens.shape[0] == 0:
                continue
            actin = self.offload(tokens)
            out, seconds = self.run_expert(expert_id, actin)
            outputs[expert_id] = self.to_host(out)
            total += seconds
        return outputs, total
