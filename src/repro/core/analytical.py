"""The paper's analytical model: Equations 1-6.

Eq. 1  PMove volume   = 2 * E * d_model * d_ff           (elements)
Eq. 2  AMove volume   = 2 * B * S * d_model              (elements)
Eq. 3  t_GWF = t_PM + t_GPU ;  t_MDWF = t_AM + t_MD
Eq. 4  t_PM ~= Expert_GPU / BW_PCIe ;  t_MD ~= Expert_MD / BW_MD
Eq. 5  Expert_Activ = Expert_GPU + Expert_MD
Eq. 6  H = alpha * BW_PCIe / (BW_MD + BW_PCIe) * Expert_Activ

The H formula balances the two workflows of Eq. 3 under the
bandwidth-bound approximation of Eq. 4; alpha micro-controls H when
the NDP-side experts have raised compute intensity (Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.specs import BF16_BYTES


def pmove_elements(n_experts: int, d_model: int, d_ff: int) -> int:
    """Eq. 1: elements moved when every expert crosses the link."""
    return 2 * n_experts * d_model * d_ff


def amove_elements(batch: int, seq: int, d_model: int) -> int:
    """Eq. 2: activation elements moved (input + output)."""
    return 2 * batch * seq * d_model


def pmove_bytes(
    n_experts: int, d_model: int, d_ff: int, dtype_bytes: int = BF16_BYTES
) -> int:
    return pmove_elements(n_experts, d_model, d_ff) * dtype_bytes


def amove_bytes(
    batch: int, seq: int, d_model: int, dtype_bytes: int = BF16_BYTES
) -> int:
    return amove_elements(batch, seq, d_model) * dtype_bytes


@dataclass(frozen=True)
class WorkflowTimes:
    """Eq. 3 terms for one MoE layer."""

    t_pm: float
    t_gpu: float
    t_am: float
    t_md: float

    @property
    def t_gwf(self) -> float:
        return self.t_pm + self.t_gpu

    @property
    def t_mdwf(self) -> float:
        return self.t_am + self.t_md

    @property
    def balanced(self) -> float:
        """Layer latency when the two workflows overlap fully."""
        return max(self.t_gwf, self.t_mdwf)


class AnalyticalModel:
    """Closed-form H selection (Eq. 4-6)."""

    def __init__(self, bw_pcie: float, bw_md: float) -> None:
        if bw_pcie <= 0 or bw_md <= 0:
            raise ValueError("bandwidths must be positive")
        self.bw_pcie = bw_pcie
        self.bw_md = bw_md

    def t_pm(self, expert_gpu_bytes: float) -> float:
        """Eq. 4 left: PMove latency of the GPU-assigned experts."""
        return expert_gpu_bytes / self.bw_pcie

    def t_md(self, expert_md_bytes: float) -> float:
        """Eq. 4 right: NDP latency of the MoNDE-assigned experts
        (bandwidth-bound weight streaming)."""
        return expert_md_bytes / self.bw_md

    @property
    def gpu_share(self) -> float:
        """BW_PCIe / (BW_MD + BW_PCIe): the fraction of activated
        experts the GPU workflow should absorb (Eq. 6 without alpha)."""
        return self.bw_pcie / (self.bw_md + self.bw_pcie)

    def h_value(self, n_active_experts: int, alpha: float = 1.0) -> int:
        """Eq. 6: number of hot experts assigned to the GPU workflow.

        Clamped to [0, n_active_experts].  ``alpha`` is the auto-tuned
        scaling factor (Section 3.3).
        """
        if n_active_experts < 0:
            raise ValueError("n_active_experts must be non-negative")
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        h = alpha * self.gpu_share * n_active_experts
        return int(min(n_active_experts, max(0.0, round(h))))

    def workflow_times(
        self,
        expert_gpu_bytes: float,
        expert_md_bytes: float,
        t_gpu: float = 0.0,
        t_am: float = 0.0,
    ) -> WorkflowTimes:
        """Assemble Eq. 3 from the Eq. 4 approximations.  The paper's
        two intuitions set t_GPU ~= t_AM ~= 0 for inference; pass
        nonzero values to drop that assumption."""
        return WorkflowTimes(
            t_pm=self.t_pm(expert_gpu_bytes),
            t_gpu=t_gpu,
            t_am=t_am,
            t_md=self.t_md(expert_md_bytes),
        )
