"""The evaluated execution schemes and their data-movement strategies.

Schemes (Section 4.2, Fig. 5/6):

- ``IDEAL``: a GPU with infinite memory; every parameter resident.
- ``GPU_PM``: on-demand Parameter Movement -- activated experts are
  fetched over PCIe and computed on the GPU.
- ``MD_AM``: Activation Movement -- all expert computation on the
  MoNDE NDP; only activations cross the link.
- ``MD_LB``: GPU-MoNDE load balancing -- hot experts via PMove on the
  GPU, cold experts via AMove on the NDP, overlapped.
- ``CPU_AM``: activations to the host; the CPU computes the experts
  (the Fig. 8 baseline).
- ``MULTI_GPU``: expert parallelism across GPUs, all parameters
  resident (the Fig. 10 baseline).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.hw.specs import BF16_BYTES


class Scheme(enum.Enum):
    IDEAL = "ideal"
    GPU_PM = "gpu+pm"
    MD_AM = "md+am"
    MD_LB = "md+lb"
    CPU_AM = "cpu+am"
    MULTI_GPU = "multi-gpu"

    @property
    def uses_monde(self) -> bool:
        return self in (Scheme.MD_AM, Scheme.MD_LB)


@dataclass(frozen=True)
class PMoveStrategy:
    """On-demand Parameter Movement accounting.

    Only *activated* experts cross the link (the paper implements the
    on-demand variant of [Huang+ 2023] rather than whole-layer
    over-fetch), and a GPU-side expert buffer may already hold some of
    them (``cached_mask``).
    """

    d_model: int
    d_ff: int
    dtype_bytes: int = BF16_BYTES

    @property
    def expert_bytes(self) -> int:
        return 2 * self.d_model * self.d_ff * self.dtype_bytes

    def transfer_bytes(
        self, token_counts: np.ndarray, cached_mask: np.ndarray | None = None
    ) -> int:
        """Bytes that must cross PCIe for this layer's activated,
        uncached experts."""
        active = np.asarray(token_counts) > 0
        if cached_mask is not None:
            active = active & ~np.asarray(cached_mask, dtype=bool)
        return int(active.sum()) * self.expert_bytes


@dataclass(frozen=True)
class AMoveStrategy:
    """Activation Movement accounting (Eq. 2, per-expert granularity).

    Input activations are scattered per expert (each expert receives
    its routed tokens), outputs gathered back, so total volume is
    2 * (sum of routed token counts) * d_model elements -- for top-k
    routing that is 2 * k * B * S * d_model.
    """

    d_model: int
    dtype_bytes: int = BF16_BYTES

    def transfer_bytes(self, token_counts: np.ndarray) -> int:
        routed = int(np.asarray(token_counts).sum())
        return 2 * routed * self.d_model * self.dtype_bytes

    def input_bytes(self, token_counts: np.ndarray) -> int:
        routed = int(np.asarray(token_counts).sum())
        return routed * self.d_model * self.dtype_bytes

    def output_bytes(self, token_counts: np.ndarray) -> int:
        return self.input_bytes(token_counts)
