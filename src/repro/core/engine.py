"""Stream-timeline execution of one MoE layer under each scheme.

This module turns per-expert routed-token counts into a concrete
schedule on the platform's hardware streams (Fig. 5):

- ``gpu``     -- GPU compute stream (gating, expert FFNs, dense ops)
- ``h2d``     -- PCIe host/device -> GPU direction (PMove weight
                 fetches, AMove outputs returning)
- ``d2h``     -- PCIe GPU -> host/device direction (AMove inputs)
- ``monde``   -- MoNDE NDP compute (per activated cold expert)
- ``cpu``     -- host CPU compute (the CPU+AM baseline)

Each scheme builder returns a :class:`LayerResult` holding the layer
makespan, the populated :class:`~repro.sim.stream.Timeline` (so tests
and Fig. 5 regeneration can assert on overlap), and accounting
(PMove/AMove bytes, H, cache hits).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.cache import ExpertCache
from repro.core.load_balancer import LoadBalancer, Partition
from repro.core.strategies import AMoveStrategy, PMoveStrategy, Scheme
from repro.dram.config import DRAMConfig
from repro.hw.cpu import CPUModel
from repro.hw.gpu import GPUModel
from repro.hw.pcie import PCIeLink
from repro.hw.specs import (
    A100_PCIE,
    MONDE_DEVICE,
    PCIE_GEN4_X16,
    XEON_4310,
    CPUSpec,
    GPUSpec,
    MoNDEDeviceSpec,
    PCIeSpec,
)
from repro.moe.config import MoEModelConfig
from repro.ndp.engine import NDPGemmEngine
from repro.sim.stream import Segment, Timeline


@dataclass(frozen=True)
class Overheads:
    """Host-framework costs charged per MoE layer invocation.

    - ``moe_fixed``: router kernel launches, stream syncs, Python/C++
      dispatch per MoE layer.
    - ``per_routed_token``: token scatter (dispatch) + gather (combine)
      cost per routing event.
    - ``ndp_kernel``: host driver cost to issue one expert's kernels to
      the NDP (two 64-B instructions over CXL + doorbell + completion
      poll; the paper's PyTorch-level implementation pays this per
      offloaded expert).

    Defaults are calibrated so the Fig. 6 scheme ratios land on the
    paper's quoted averages (see EXPERIMENTS.md).
    """

    moe_fixed: float = 300e-6
    per_routed_token: float = 2.2e-6
    ndp_kernel: float = 150e-6


@dataclass
class Platform:
    """The evaluation platform of Table 2, as timing models.

    ``dram_config`` optionally closes the loop with the cycle-level
    memory model: when set, the MoNDE devices' effective bandwidth is
    calibrated by streaming through the FR-FCFS controller for that
    config (cached per config) instead of taken from the spec
    constant, so end-to-end scheme numbers ride on the DRAM
    simulator.
    """

    gpu_spec: GPUSpec = A100_PCIE
    pcie_spec: PCIeSpec = PCIE_GEN4_X16
    cpu_spec: CPUSpec = XEON_4310
    monde_spec: MoNDEDeviceSpec = MONDE_DEVICE
    n_monde_devices: int = 1
    overheads: Overheads = field(default_factory=Overheads)
    dram_config: Optional[DRAMConfig] = None

    def __post_init__(self) -> None:
        if self.n_monde_devices < 1:
            raise ValueError("n_monde_devices must be >= 1")
        self.gpu = GPUModel(self.gpu_spec)
        self.pcie = PCIeLink(self.pcie_spec)
        self.cpu = CPUModel(self.cpu_spec)
        if self.dram_config is not None:
            from repro.dram.calibrate import calibrated_effective_bandwidth

            self.monde_bandwidth = calibrated_effective_bandwidth(self.dram_config)
        else:
            self.monde_bandwidth = self.monde_spec.effective_bandwidth
        self.ndp_engines = [
            NDPGemmEngine(self.monde_spec.ndp, self.monde_bandwidth)
            for _ in range(self.n_monde_devices)
        ]

    @property
    def aggregate_monde_bandwidth(self) -> float:
        """Multi-MoNDE H uses the aggregate device bandwidth (3.3)."""
        return self.n_monde_devices * self.monde_bandwidth


@dataclass
class LayerResult:
    """Outcome of one MoE layer under one scheme."""

    scheme: Scheme
    seconds: float
    timeline: Timeline
    pmove_bytes: int = 0
    amove_bytes: int = 0
    h: int = 0
    n_active: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    t_gwf: float = 0.0
    t_mdwf: float = 0.0


class MoELayerEngine:
    """Builds per-scheme timelines for single MoE layer invocations."""

    def __init__(self, model: MoEModelConfig, platform: Optional[Platform] = None) -> None:
        if not model.is_moe:
            raise ValueError(f"{model.name} has no MoE layers")
        self.model = model
        self.platform = platform or Platform()
        self.pmove = PMoveStrategy(model.d_model, model.d_ff, model.dtype_bytes)
        self.amove = AMoveStrategy(model.d_model, model.dtype_bytes)
        self.balancer = LoadBalancer(
            self.platform.pcie_spec.effective_bandwidth,
            self.platform.aggregate_monde_bandwidth,
        )

    # -- shared pieces -------------------------------------------------------

    def _gating_time(self, n_tokens: int) -> float:
        """Router GEMM (T x E) + top-k on the GPU."""
        gpu = self.platform.gpu
        return gpu.gemm_time(n_tokens, self.model.n_experts, self.model.d_model) + (
            gpu.spec.kernel_launch_overhead
        )

    def _framework_overhead(self, counts: np.ndarray) -> float:
        ov = self.platform.overheads
        routed = int(np.asarray(counts).sum())
        return ov.moe_fixed + ov.per_routed_token * routed

    def _gpu_expert_time(self, tokens: int) -> float:
        return self.platform.gpu.expert_ffn_time(
            tokens, self.model.d_model, self.model.d_ff, self.model.dtype_bytes
        )

    def _ndp_expert_time(self, tokens: int, engine: NDPGemmEngine) -> float:
        compute = engine.expert_ffn_time(tokens, self.model.d_model, self.model.d_ff)
        return compute + self.platform.overheads.ndp_kernel

    def _cpu_expert_time(self, tokens: int) -> float:
        return self.platform.cpu.expert_ffn_time(
            tokens, self.model.d_model, self.model.d_ff, self.model.dtype_bytes
        )

    def _new_timeline(self) -> Timeline:
        return Timeline(["gpu", "h2d", "d2h", "monde", "cpu"])

    # -- GPU-side workflow (PMove + GPU compute) -------------------------------

    def _schedule_gpu_workflow(
        self,
        timeline: Timeline,
        counts: np.ndarray,
        expert_ids: np.ndarray,
        layer_id: int,
        cache: Optional[ExpertCache],
        start_after: float = 0.0,
    ) -> tuple[float, int, int, int]:
        """Schedule PMove transfers + GPU expert compute for the given
        experts; returns (finish time, pmove bytes, hits, misses).

        Transfers serialize on the h2d stream; each expert's compute
        follows its own transfer, overlapping subsequent transfers --
        the on-demand pipelined PMove of Fig. 5's GPU+PM row.
        """
        pcie = self.platform.pcie
        expert_bytes = self.pmove.expert_bytes
        hits = misses = 0
        pmove_bytes = 0
        finish = start_after
        for expert in expert_ids:
            tokens = int(counts[expert])
            if tokens == 0:
                continue
            cached = False
            if cache is not None:
                h, m = cache.access(layer_id, np.asarray([expert]))
                cached = h == 1
                hits += h
                misses += m
            gate = start_after
            deps: list[Segment] = []
            if not cached:
                transfer = timeline.enqueue(
                    "h2d",
                    pcie.transfer_time(expert_bytes),
                    label="p",
                    not_before=gate,
                )
                pmove_bytes += expert_bytes
                deps = [transfer]
            compute = timeline.enqueue(
                "gpu",
                self._gpu_expert_time(tokens),
                label="e",
                after=deps,
                not_before=gate,
            )
            finish = max(finish, compute.end)
        return finish, pmove_bytes, hits, misses

    # -- MoNDE-side workflow (AMove + NDP compute) ------------------------------

    def _schedule_monde_workflow(
        self,
        timeline: Timeline,
        counts: np.ndarray,
        expert_ids: np.ndarray,
        start_after: float = 0.0,
    ) -> tuple[float, int]:
        """Schedule AMove + NDP compute for the given experts over the
        platform's MoNDE devices (round-robin by intensity when more
        than one); returns (finish time, amove bytes)."""
        pcie = self.platform.pcie
        engines = self.platform.ndp_engines
        n_dev = len(engines)

        active = [e for e in expert_ids if counts[e] > 0]
        if not active:
            return start_after, 0
        # Round-robin by compute intensity (Section 3.3).
        order = sorted(active, key=lambda e: (-counts[e], e))
        per_device: list[list[int]] = [[] for _ in range(n_dev)]
        for i, expert in enumerate(order):
            per_device[i % n_dev].append(expert)

        amove_bytes = 0
        finishes: list[float] = []
        out_deps: list[tuple[int, Segment]] = []
        for dev, experts in enumerate(per_device):
            if not experts:
                continue
            dev_counts = np.asarray([counts[e] for e in experts])
            in_bytes = self.amove.input_bytes(dev_counts)
            amove_bytes += in_bytes
            stream_name = "monde" if dev == 0 else f"monde{dev}"
            # Input activations transferred separately to each device.
            ain = timeline.enqueue(
                "d2h", pcie.transfer_time(in_bytes), label="a", not_before=start_after
            )
            prev: list[Segment] = [ain]
            for expert in experts:
                seg = timeline.enqueue(
                    stream_name,
                    self._ndp_expert_time(int(counts[expert]), engines[dev]),
                    label="e",
                    after=prev,
                )
                prev = [seg]
            out_deps.append((dev, prev[0]))

        # Outputs retrieved sequentially from each device (Section 3.3).
        for dev, last in sorted(out_deps, key=lambda t: t[0]):
            experts = per_device[dev]
            dev_counts = np.asarray([counts[e] for e in experts])
            out_bytes = self.amove.output_bytes(dev_counts)
            amove_bytes += out_bytes
            aout = timeline.enqueue(
                "h2d", pcie.transfer_time(out_bytes), label="a", after=[last]
            )
            finishes.append(aout.end)
        return max(finishes), amove_bytes

    # -- schemes ---------------------------------------------------------------

    def layer_time(
        self,
        scheme: Scheme,
        counts: np.ndarray,
        layer_id: int = 0,
        cache: Optional[ExpertCache] = None,
        alpha: float = 1.0,
        n_tokens: Optional[int] = None,
    ) -> LayerResult:
        """Latency of one MoE layer under ``scheme`` for the routed
        ``counts`` (length-E array of token counts per expert)."""
        counts = np.asarray(counts)
        if counts.shape != (self.model.n_experts,):
            raise ValueError(
                f"counts must have shape ({self.model.n_experts},), got {counts.shape}"
            )
        if np.any(counts < 0):
            raise ValueError("token counts must be non-negative")
        tokens = (
            int(n_tokens)
            if n_tokens is not None
            else max(1, int(counts.sum()) // max(1, self.model.top_k))
        )
        if scheme is Scheme.IDEAL:
            return self._ideal(counts, tokens)
        if scheme is Scheme.GPU_PM:
            return self._gpu_pm(counts, tokens, layer_id, cache)
        if scheme is Scheme.MD_AM:
            return self._md_am(counts, tokens)
        if scheme is Scheme.MD_LB:
            return self._md_lb(counts, tokens, layer_id, cache, alpha)
        if scheme is Scheme.CPU_AM:
            return self._cpu_am(counts, tokens)
        raise ValueError(f"scheme {scheme} is not a single-layer scheme")

    def _prologue(self, timeline: Timeline, counts: np.ndarray, tokens: int) -> Segment:
        """Gating + framework dispatch on the GPU stream."""
        gating = timeline.enqueue("gpu", self._gating_time(tokens), label="g")
        dispatch = timeline.enqueue(
            "gpu", self._framework_overhead(counts), label="d", after=[gating]
        )
        return dispatch

    def _ideal(self, counts: np.ndarray, tokens: int) -> LayerResult:
        timeline = self._new_timeline()
        prologue = self._prologue(timeline, counts, tokens)
        finish = prologue.end
        for expert in np.flatnonzero(counts > 0):
            seg = timeline.enqueue(
                "gpu", self._gpu_expert_time(int(counts[expert])), label="e"
            )
            finish = seg.end
        return LayerResult(
            scheme=Scheme.IDEAL,
            seconds=max(finish, prologue.end),
            timeline=timeline,
            n_active=int((counts > 0).sum()),
        )

    def _gpu_pm(
        self,
        counts: np.ndarray,
        tokens: int,
        layer_id: int,
        cache: Optional[ExpertCache],
    ) -> LayerResult:
        timeline = self._new_timeline()
        prologue = self._prologue(timeline, counts, tokens)
        active = np.flatnonzero(counts > 0)
        finish, pmove_bytes, hits, misses = self._schedule_gpu_workflow(
            timeline, counts, active, layer_id, cache, start_after=prologue.end
        )
        return LayerResult(
            scheme=Scheme.GPU_PM,
            seconds=max(finish, prologue.end),
            timeline=timeline,
            pmove_bytes=pmove_bytes,
            n_active=len(active),
            cache_hits=hits,
            cache_misses=misses,
            t_gwf=max(finish, prologue.end),
        )

    def _md_am(self, counts: np.ndarray, tokens: int) -> LayerResult:
        timeline = self._new_timeline()
        prologue = self._prologue(timeline, counts, tokens)
        active = np.flatnonzero(counts > 0)
        finish, amove_bytes = self._schedule_monde_workflow(
            timeline, counts, active, start_after=prologue.end
        )
        return LayerResult(
            scheme=Scheme.MD_AM,
            seconds=max(finish, prologue.end),
            timeline=timeline,
            amove_bytes=amove_bytes,
            n_active=len(active),
            t_mdwf=max(finish, prologue.end),
        )

    def _md_lb(
        self,
        counts: np.ndarray,
        tokens: int,
        layer_id: int,
        cache: Optional[ExpertCache],
        alpha: float,
    ) -> LayerResult:
        timeline = self._new_timeline()
        prologue = self._prologue(timeline, counts, tokens)
        partition: Partition = self.balancer.partition(counts, alpha=alpha)
        gpu_finish, pmove_bytes, hits, misses = self._schedule_gpu_workflow(
            timeline,
            counts,
            partition.hot_experts,
            layer_id,
            cache,
            start_after=prologue.end,
        )
        monde_finish, amove_bytes = self._schedule_monde_workflow(
            timeline, counts, partition.cold_experts, start_after=prologue.end
        )
        finish = max(gpu_finish, monde_finish, prologue.end)
        return LayerResult(
            scheme=Scheme.MD_LB,
            seconds=finish,
            timeline=timeline,
            pmove_bytes=pmove_bytes,
            amove_bytes=amove_bytes,
            h=partition.h,
            n_active=partition.n_active,
            cache_hits=hits,
            cache_misses=misses,
            t_gwf=gpu_finish,
            t_mdwf=monde_finish,
        )

    def _cpu_am(self, counts: np.ndarray, tokens: int) -> LayerResult:
        timeline = self._new_timeline()
        prologue = self._prologue(timeline, counts, tokens)
        active = np.flatnonzero(counts > 0)
        if len(active) == 0:
            return LayerResult(
                scheme=Scheme.CPU_AM, seconds=prologue.end, timeline=timeline
            )
        pcie = self.platform.pcie
        in_bytes = self.amove.input_bytes(counts[active])
        ain = timeline.enqueue(
            "d2h", pcie.transfer_time(in_bytes), label="a", not_before=prologue.end
        )
        prev: list[Segment] = [ain]
        for expert in active:
            seg = timeline.enqueue(
                "cpu", self._cpu_expert_time(int(counts[expert])), label="e", after=prev
            )
            prev = [seg]
        out_bytes = self.amove.output_bytes(counts[active])
        aout = timeline.enqueue(
            "h2d", pcie.transfer_time(out_bytes), label="a", after=prev
        )
        return LayerResult(
            scheme=Scheme.CPU_AM,
            seconds=aout.end,
            timeline=timeline,
            amove_bytes=in_bytes + out_bytes,
            n_active=len(active),
        )
