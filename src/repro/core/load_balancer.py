"""GPU-MoNDE load balancing (Section 3.3).

The balancer assigns the top-H compute-intensive (hot) experts to the
GPU workflow (PMove + GPU compute) and the remaining cold experts to
the MoNDE workflow (AMove + NDP compute), with H from Eq. 6.  The
scaling factor alpha is auto-tuned by periodically re-running a
profiled latency evaluation on recent batches and hill-climbing among
neighboring H candidates, as the paper's framework does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.analytical import AnalyticalModel


@dataclass(frozen=True)
class Partition:
    """One layer's expert split between GPU and MoNDE workflows."""

    hot_experts: np.ndarray
    cold_experts: np.ndarray
    h: int

    @property
    def n_active(self) -> int:
        return len(self.hot_experts) + len(self.cold_experts)


class LoadBalancer:
    """Computes the hot/cold partition for one MoE layer."""

    def __init__(self, bw_pcie: float, bw_md: float, alpha: float = 1.0) -> None:
        self.model = AnalyticalModel(bw_pcie, bw_md)
        self.alpha = alpha

    def partition(self, token_counts: np.ndarray, alpha: float | None = None) -> Partition:
        """Split the activated experts: the H with the most routed
        tokens (most compute-intensive) go to the GPU."""
        counts = np.asarray(token_counts)
        active = np.flatnonzero(counts > 0)
        a = self.alpha if alpha is None else alpha
        h = self.model.h_value(len(active), alpha=a)
        # Sort activated experts by routed tokens, descending; ties by
        # expert id for determinism.
        order = active[np.lexsort((active, -counts[active]))]
        return Partition(hot_experts=order[:h], cold_experts=order[h:], h=h)


@dataclass
class AlphaAutoTuner:
    """Profiled local search over alpha (Section 3.3).

    Every ``period`` layer invocations, re-evaluates the current alpha
    against neighbor candidates on a window of recent token-count
    profiles using a caller-supplied latency evaluator
    ``evaluate(token_counts, alpha, context) -> seconds`` and keeps the
    local optimum.  ``context`` is an opaque per-observation value
    (the runtime passes the layer id so the evaluator can consult the
    GPU expert buffer for that layer).  This mirrors the paper's
    approach of profiling inference on a small set of past input
    batches and searching among H candidates (H+1, H+2, ...).
    """

    evaluate: Callable[[np.ndarray, float, object], float]
    alpha: float = 1.0
    period: int = 2
    window: int = 4
    #: Geometric ladder: with many MoNDE devices the Eq. 6 GPU share
    #: collapses (BW_PCIe << aggregate BW_MD) and alpha must scale far
    #: above 1 to keep compute-heavy hot experts off the NDP -- the
    #: exact situation Section 3.3 introduces alpha for.
    candidates: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)
    _history: list[tuple[np.ndarray, object]] = field(default_factory=list)
    _invocations: int = 0
    _next_retune: int = 0
    retunes: int = 0

    def observe(self, token_counts: np.ndarray, context: object = None) -> float:
        """Record one layer profile; periodically re-tune (with
        exponential backoff once converged).  Returns the alpha to use
        for this invocation."""
        self._history.append((np.asarray(token_counts), context))
        if len(self._history) > self.window:
            self._history.pop(0)
        if self._invocations == 0:
            self._next_retune = self.period
        self._invocations += 1
        if self._invocations >= self._next_retune and self._history:
            self._retune()
            # Back off: profiling is not free, so a converged tuner
            # re-checks progressively less often.
            self._next_retune = self._invocations + min(
                64, self.period * (2**self.retunes)
            )
        return self.alpha

    def _retune(self) -> None:
        import math

        def cost(alpha: float) -> float:
            return float(
                sum(self.evaluate(counts, alpha, ctx) for counts, ctx in self._history)
            )

        # Search the whole candidate ladder (the paper's "H candidates
        # (H+1, H+2, ...)").  Ties keep alpha where it is: with few
        # active experts many alphas map to the same H, and drifting on
        # ties would walk the tuner to the ladder's edge.
        ladder = sorted(set(self.candidates) | {self.alpha})
        best = min(
            ladder,
            key=lambda a: (cost(a), abs(math.log(a) - math.log(self.alpha))),
        )
        if best != self.alpha:
            self.alpha = best
        self.retunes += 1


def round_robin_by_intensity(
    token_counts: np.ndarray, expert_ids: np.ndarray, n_devices: int
) -> list[np.ndarray]:
    """Distribute experts over NDP devices round-robin after sorting
    by compute intensity (routed tokens), Section 3.3 multi-MoNDE."""
    if n_devices < 1:
        raise ValueError("n_devices must be >= 1")
    counts = np.asarray(token_counts)
    ids = np.asarray(expert_ids)
    order = ids[np.lexsort((ids, -counts[ids]))]
    assignment: list[list[int]] = [[] for _ in range(n_devices)]
    for i, expert in enumerate(order):
        assignment[i % n_devices].append(int(expert))
    return [np.asarray(a, dtype=np.int64) for a in assignment]
