"""GPU-side expert buffer with LRU replacement.

Offloading frameworks keep a bounded GPU buffer of recently used
experts: an activated expert already in the buffer needs no PMove.
The buffer explains the paper's asymmetric gains:

- *Decoders* touch few experts per step (B * top-k routing events) and
  the hot experts recur step after step, so the working set fits and
  PMove nearly vanishes -- hence the modest decoder speedups in Fig. 6
  (1.1x for Switch-Large, 1.9x for NLLB-MoE).
- *Encoders* activate most experts of every MoE layer each pass; the
  working set far exceeds the buffer and LRU thrashes, so nearly every
  activation pays a transfer -- hence the large encoder speedups.
"""

from __future__ import annotations

import enum
from collections import OrderedDict

import numpy as np


class ReplacementPolicy(enum.Enum):
    """Expert buffer replacement policies (LRU is the default; FIFO
    and NONE exist for the cache-policy ablation bench)."""

    LRU = "lru"
    FIFO = "fifo"
    NONE = "none"


class ExpertCache:
    """Replacement-policy cache keyed by (layer_id, expert_id)."""

    def __init__(
        self,
        capacity_bytes: float,
        expert_bytes: int,
        policy: ReplacementPolicy = ReplacementPolicy.LRU,
    ) -> None:
        if expert_bytes <= 0:
            raise ValueError("expert_bytes must be positive")
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be non-negative")
        self.capacity_slots = (
            0 if policy is ReplacementPolicy.NONE else int(capacity_bytes // expert_bytes)
        )
        self.expert_bytes = expert_bytes
        self.policy = policy
        self._slots: OrderedDict[tuple[int, int], None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, key: tuple[int, int]) -> bool:
        return key in self._slots

    def access(self, layer_id: int, expert_ids: np.ndarray) -> tuple[int, int]:
        """Touch the given experts of one layer; returns
        (n_hits, n_misses) and installs the misses with LRU eviction.

        If the buffer cannot hold even the current layer's activated
        set, the overflow simply bypasses the cache (streamed through
        a staging buffer), which matches how offload runtimes behave.
        """
        hits = 0
        misses = 0
        for expert in np.asarray(expert_ids).ravel():
            key = (layer_id, int(expert))
            if key in self._slots:
                if self.policy is ReplacementPolicy.LRU:
                    self._slots.move_to_end(key)
                hits += 1
                continue
            misses += 1
            if self.capacity_slots == 0:
                continue
            while len(self._slots) >= self.capacity_slots:
                self._slots.popitem(last=False)
            self._slots[key] = None
        self.hits += hits
        self.misses += misses
        return hits, misses

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        self._slots.clear()


class ReadOnlyCacheView:
    """Non-mutating view of an :class:`ExpertCache`.

    Answers hit/miss from the current buffer contents without
    perturbing LRU order or installing speculative entries.
    """

    def __init__(self, cache: ExpertCache) -> None:
        self._cache = cache

    def access(self, layer_id: int, expert_ids: np.ndarray) -> tuple[int, int]:
        hits = 0
        misses = 0
        for expert in np.asarray(expert_ids).ravel():
            if (layer_id, int(expert)) in self._cache:
                hits += 1
            else:
                misses += 1
        return hits, misses


class SteadyStateCacheView:
    """Steady-state hit predictor for the alpha auto-tuner.

    The tuner costs candidate partitions on *past* profiles (the paper
    re-runs profiled inference on recent batches), so it should charge
    a PMove only for experts that would still miss in steady state:
    an expert that keeps recurring stays resident in the GPU buffer --
    unless the recurring working set exceeds the buffer, in which case
    LRU thrashes and everything misses (the encoder regime).

    Costing against the current buffer instead deadlocks: an all-NDP
    partition never populates the buffer, every evaluation sees
    misses, and H stays pinned at zero.
    """

    def __init__(self, capacity_slots: int) -> None:
        self.capacity_slots = capacity_slots
        self._seen_count: dict[tuple[int, int], int] = {}

    def note(self, layer_id: int, expert_ids: np.ndarray) -> None:
        """Record one observed activation set for a layer."""
        for expert in np.asarray(expert_ids).ravel():
            key = (layer_id, int(expert))
            self._seen_count[key] = self._seen_count.get(key, 0) + 1

    @property
    def working_set_fits(self) -> bool:
        return len(self._seen_count) <= self.capacity_slots

    def access(self, layer_id: int, expert_ids: np.ndarray) -> tuple[int, int]:
        hits = 0
        misses = 0
        fits = self.working_set_fits
        for expert in np.asarray(expert_ids).ravel():
            recurring = self._seen_count.get((layer_id, int(expert)), 0) >= 2
            if fits and recurring:
                hits += 1
            else:
                misses += 1
        return hits, misses
