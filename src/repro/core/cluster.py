"""Functional multi-MoNDE cluster (Section 3.3).

Timing-side multi-device behaviour lives in the layer engine (round-
robin expert distribution over per-device streams).  This module is
the *functional* counterpart: a cluster of real :class:`MoNDEDevice`
instances behind one interface that

- places experts across devices round-robin by declared intensity,
- scatters each expert's routed tokens to its owner device (AMove),
- executes the per-device kernels through each device's driver, and
- gathers outputs back in expert order (the paper retrieves outputs
  from each device sequentially for the combine step).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.driver import MoNDEDriver
from repro.hw.specs import MONDE_DEVICE, MoNDEDeviceSpec
from repro.ndp.device import MoNDEDevice


@dataclass(frozen=True)
class ExpertPlacement:
    """Which device owns an expert."""

    expert_id: int
    device_id: int


class MoNDECluster:
    """N MoNDE devices with round-robin expert placement."""

    def __init__(self, n_devices: int, spec: MoNDEDeviceSpec = MONDE_DEVICE) -> None:
        if n_devices < 1:
            raise ValueError("n_devices must be >= 1")
        self.drivers = [
            MoNDEDriver(MoNDEDevice(spec, device_id=i)) for i in range(n_devices)
        ]
        self._placement: dict[int, int] = {}
        self._next = 0

    @property
    def n_devices(self) -> int:
        return len(self.drivers)

    def placement(self, expert_id: int) -> ExpertPlacement:
        if expert_id not in self._placement:
            raise KeyError(f"expert {expert_id} not placed")
        return ExpertPlacement(expert_id, self._placement[expert_id])

    def load_experts(
        self,
        experts: dict[int, tuple[np.ndarray, np.ndarray]],
        intensities: dict[int, float] | None = None,
        activation: str = "relu",
        policy: str = "round_robin_by_intensity",
    ) -> list[ExpertPlacement]:
        """Place experts via :func:`repro.cluster.sharding.place_experts`
        (default: round-robin, most intense first -- Section 3.3:
        'distributing expert workloads sorted by compute intensity in
        a round-robin manner')."""
        # Local import: the sharding helpers are shared with the
        # cluster-scale serving simulation, whose package pulls in the
        # serving/DRAM stack this functional model does not need.
        from repro.cluster.sharding import place_experts

        ids = sorted(experts)
        intens = (
            None
            if intensities is None
            else [intensities.get(e, 0.0) for e in ids]
        )
        device_of = place_experts(
            len(ids), self.n_devices, intens, policy, start_slot=self._next
        )
        self._next += len(ids)
        order = sorted(
            range(len(ids)),
            key=lambda i: (-(intens[i] if intens else 0.0), ids[i]),
        )
        placements = []
        for i in order:
            expert_id, device_id = ids[i], device_of[i]
            w1, w2 = experts[expert_id]
            self.drivers[device_id].load_expert(expert_id, w1, w2, activation)
            self._placement[expert_id] = device_id
            placements.append(ExpertPlacement(expert_id, device_id))
        return placements

    def run_moe_layer(
        self, token_groups: dict[int, np.ndarray]
    ) -> tuple[dict[int, np.ndarray], float]:
        """Run each expert's token group on its owner device.

        Returns per-expert outputs plus the modeled device-side time:
        devices run concurrently, so the cluster time is the max of the
        per-device sums (outputs are then gathered sequentially, which
        the timing engine accounts for on the PCIe stream).
        """
        per_device: dict[int, dict[int, np.ndarray]] = {}
        for expert_id, tokens in token_groups.items():
            if expert_id not in self._placement:
                raise KeyError(f"expert {expert_id} not placed on any device")
            device_id = self._placement[expert_id]
            per_device.setdefault(device_id, {})[expert_id] = tokens

        outputs: dict[int, np.ndarray] = {}
        device_seconds = []
        for device_id, groups in per_device.items():
            out, seconds = self.drivers[device_id].run_moe_layer(groups)
            outputs.update(out)
            device_seconds.append(seconds)
        return outputs, max(device_seconds) if device_seconds else 0.0

    def expert_count_per_device(self) -> list[int]:
        counts = [0] * self.n_devices
        for device_id in self._placement.values():
            counts[device_id] += 1
        return counts
