"""End-to-end inference timing: the Fig. 6-10 measurement harness.

:class:`MoNDERuntime` walks a full encoder pass or an auto-regressive
decoder generation layer by layer, combining

- dense (non-MoE) block timing on the GPU (identical across schemes,
  since dense parameters are always GPU-resident),
- MoE layer timing from :class:`~repro.core.engine.MoELayerEngine`
  under the selected scheme, with the GPU expert buffer and the
  alpha auto-tuner threaded through, and
- routing traces from :class:`~repro.workloads.traces.RoutingTraceGenerator`.

Throughput is reported in tokens/second and normalized against the
``IDEAL`` infinite-memory GPU, as in Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.cache import ExpertCache, SteadyStateCacheView
from repro.core.engine import LayerResult, MoELayerEngine, Platform
from repro.core.load_balancer import AlphaAutoTuner
from repro.core.multi_device import multi_gpu_layer_time
from repro.core.strategies import Scheme
from repro.hw.specs import GiB
from repro.moe.config import MoEModelConfig
from repro.workloads.traces import RoutingProfile, RoutingTraceGenerator


@dataclass
class InferenceConfig:
    """One evaluation point: model, batch geometry, scheme knobs."""

    model: MoEModelConfig
    batch: int = 4
    seq_len: int = 512
    decode_steps: int = 32
    alpha: float = 1.0
    auto_tune: bool = True
    gpu_expert_buffer_bytes: float = 8 * GiB
    n_gpus: int = 2
    profile: Optional[RoutingProfile] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.batch < 1 or self.seq_len < 1 or self.decode_steps < 1:
            raise ValueError("batch, seq_len, decode_steps must be >= 1")
        if self.n_gpus < 1:
            raise ValueError("n_gpus must be >= 1")


@dataclass
class SchemeResult:
    """End-to-end outcome for one (scheme, part) pair."""

    scheme: Scheme
    part: str
    seconds: float
    moe_seconds: float
    dense_seconds: float
    n_tokens: int
    layer_results: list[LayerResult] = field(default_factory=list)
    cache_hit_rate: float = 0.0
    mean_h: float = 0.0
    alpha_used: float = 1.0

    @property
    def throughput(self) -> float:
        """Tokens per second."""
        if self.seconds <= 0:
            return 0.0
        return self.n_tokens / self.seconds

    @property
    def moe_fraction(self) -> float:
        return self.moe_seconds / self.seconds if self.seconds > 0 else 0.0


class MoNDERuntime:
    """Runs every evaluated scheme for one inference configuration."""

    def __init__(
        self, config: InferenceConfig, platform: Optional[Platform] = None
    ) -> None:
        self.config = config
        self.platform = platform or Platform()
        self.engine = MoELayerEngine(config.model, self.platform)
        self.trace = RoutingTraceGenerator(
            config.model,
            config.batch,
            config.seq_len,
            profile=config.profile,
            seed=config.seed,
        )
        self._cache: dict[tuple[Scheme, str], SchemeResult] = {}

    # -- dense timing ----------------------------------------------------------

    def _dense_ffn_time(self, tokens: int) -> float:
        model = self.config.model
        return self.platform.gpu.expert_ffn_time(
            tokens, model.d_model, model.d_ff, model.dtype_bytes
        )

    def _encoder_dense_time(self, tokens: int) -> float:
        """Attention (+ dense FFN where the block is not MoE) for the
        whole encoder stack."""
        model = self.config.model
        total = 0.0
        for i in range(model.n_encoder_layers):
            total += self.platform.gpu.dense_block_time(
                tokens, model.d_model, model.n_heads, model.dtype_bytes
            )
            if not model.is_moe_block(i):
                total += self._dense_ffn_time(tokens)
        return total

    def _decoder_dense_step_time(self, tokens: int) -> float:
        """Self-attention + cross-attention (+ dense FFN) for one
        auto-regressive step over the whole decoder stack."""
        model = self.config.model
        total = 0.0
        for i in range(model.n_decoder_layers):
            # Self-attention on the new tokens plus cross-attention
            # against the cached encoder context.
            total += 2 * self.platform.gpu.dense_block_time(
                tokens, model.d_model, model.n_heads, model.dtype_bytes
            )
            if not model.is_moe_block(i):
                total += self._dense_ffn_time(tokens)
        return total

    # -- MoE layer dispatch ------------------------------------------------------

    def _new_cache(self) -> ExpertCache:
        return ExpertCache(
            self.config.gpu_expert_buffer_bytes, self.engine.pmove.expert_bytes
        )

    def _new_tuner(self, cache: ExpertCache) -> tuple[AlphaAutoTuner, SteadyStateCacheView]:
        """Profiled evaluator for candidate alphas.

        Candidate partitions are costed against a *steady-state* view
        of the GPU expert buffer: recurring experts count as resident
        when the recurring working set fits (decoder regime), and as
        misses when it thrashes (encoder regime).  A cached hot expert
        makes the GPU workflow nearly free, which pulls decoder-side H
        up to "everything recurring on the GPU, stragglers on the NDP".
        """
        view = SteadyStateCacheView(cache.capacity_slots)

        def evaluate(counts: np.ndarray, alpha: float, context: object) -> float:
            layer_id = int(context) if context is not None else 0
            return self.engine.layer_time(
                Scheme.MD_LB, counts, layer_id=layer_id, cache=view, alpha=alpha
            ).seconds

        return AlphaAutoTuner(evaluate=evaluate, alpha=self.config.alpha), view

    def _moe_layer(
        self,
        scheme: Scheme,
        counts: np.ndarray,
        layer_id: int,
        cache: Optional[ExpertCache],
        tuner: Optional[tuple[AlphaAutoTuner, SteadyStateCacheView]],
        n_tokens: int,
    ) -> LayerResult:
        if scheme is Scheme.MULTI_GPU:
            return multi_gpu_layer_time(
                self.engine, counts, self.config.n_gpus, layer_id
            )
        alpha = self.config.alpha
        if scheme is Scheme.MD_LB and tuner is not None:
            tuner_obj, view = tuner
            view.note(layer_id, np.flatnonzero(np.asarray(counts) > 0))
            alpha = tuner_obj.observe(counts, context=layer_id)
        return self.engine.layer_time(
            scheme,
            counts,
            layer_id=layer_id,
            cache=cache if scheme in (Scheme.GPU_PM, Scheme.MD_LB) else None,
            alpha=alpha,
            n_tokens=n_tokens,
        )

    # -- end-to-end parts ----------------------------------------------------------

    def encoder_result(self, scheme: Scheme) -> SchemeResult:
        """One full encoder pass over B x S tokens."""
        key = (scheme, "encoder")
        if key in self._cache:
            return self._cache[key]
        model = self.config.model
        tokens = self.config.batch * self.config.seq_len
        cache = self._new_cache()
        tuner = self._new_tuner(cache) if self.config.auto_tune else None

        dense = self._encoder_dense_time(tokens)
        layers: list[LayerResult] = []
        moe = 0.0
        rank = 0
        for i in range(model.n_encoder_layers):
            if not model.is_moe_block(i):
                continue
            counts = self.trace.encoder_layer_counts(rank)
            result = self._moe_layer(scheme, counts, i, cache, tuner, tokens)
            layers.append(result)
            moe += result.seconds
            rank += 1
        result = self._finalize(scheme, "encoder", dense, moe, tokens, layers, cache, tuner)
        self._cache[key] = result
        return result

    def decoder_result(self, scheme: Scheme) -> SchemeResult:
        """An auto-regressive generation of ``decode_steps`` steps."""
        key = (scheme, "decoder")
        if key in self._cache:
            return self._cache[key]
        model = self.config.model
        step_tokens = self.config.batch
        cache = self._new_cache()
        tuner = self._new_tuner(cache) if self.config.auto_tune else None

        dense = 0.0
        moe = 0.0
        layers: list[LayerResult] = []
        for step in range(self.config.decode_steps):
            dense += self._decoder_dense_step_time(step_tokens)
            rank = 0
            for i in range(model.n_decoder_layers):
                if not model.is_moe_block(i):
                    continue
                counts = self.trace.decoder_step_counts(rank, step)
                result = self._moe_layer(scheme, counts, i, cache, tuner, step_tokens)
                layers.append(result)
                moe += result.seconds
                rank += 1
        total_tokens = step_tokens * self.config.decode_steps
        result = self._finalize(
            scheme, "decoder", dense, moe, total_tokens, layers, cache, tuner
        )
        self._cache[key] = result
        return result

    def result(self, scheme: Scheme, part: str) -> SchemeResult:
        if part == "encoder":
            return self.encoder_result(scheme)
        if part == "decoder":
            return self.decoder_result(scheme)
        raise ValueError(f"part must be 'encoder' or 'decoder', got {part!r}")

    def _finalize(
        self,
        scheme: Scheme,
        part: str,
        dense: float,
        moe: float,
        tokens: int,
        layers: list[LayerResult],
        cache: ExpertCache,
        tuner: Optional[tuple[AlphaAutoTuner, SteadyStateCacheView]],
    ) -> SchemeResult:
        hs = [r.h for r in layers if r.scheme is Scheme.MD_LB]
        alpha_used = tuner[0].alpha if tuner is not None else self.config.alpha
        return SchemeResult(
            scheme=scheme,
            part=part,
            seconds=dense + moe,
            moe_seconds=moe,
            dense_seconds=dense,
            n_tokens=tokens,
            layer_results=layers,
            cache_hit_rate=cache.hit_rate,
            mean_h=float(np.mean(hs)) if hs else 0.0,
            alpha_used=alpha_used,
        )

    # -- normalized metrics ------------------------------------------------------------

    def normalized_throughput(self, scheme: Scheme, part: str) -> float:
        """Throughput normalized to the Ideal infinite-memory GPU
        (the Fig. 6 metric)."""
        ideal = self.result(Scheme.IDEAL, part)
        target = self.result(scheme, part)
        if ideal.throughput == 0:
            return 0.0
        return target.throughput / ideal.throughput

    def speedup(self, scheme: Scheme, baseline: Scheme, part: str) -> float:
        """Throughput of ``scheme`` over ``baseline`` (Fig. 7's
        "MoE speedup" uses MoE-layer time; this is end-to-end)."""
        base = self.result(baseline, part)
        target = self.result(scheme, part)
        if target.seconds == 0:
            return float("inf")
        return base.seconds / target.seconds

    def moe_speedup(self, scheme: Scheme, baseline: Scheme, part: str) -> float:
        """MoE-layer-only speedup (Fig. 7/8/9 metric)."""
        base = self.result(baseline, part)
        target = self.result(scheme, part)
        if target.moe_seconds == 0:
            return float("inf")
        return base.moe_seconds / target.moe_seconds
