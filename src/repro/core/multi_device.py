"""Multi-GPU expert parallelism (the Fig. 10 baseline).

With expert parallelism the expert parameters are sharded across GPUs
so everything is memory-resident (no PMove), but each MoE layer pays
an all-to-all activation exchange, and GPUs whose experts receive no
tokens sit idle -- the inefficiency the paper highlights for
auto-regressive decoders.

(Multi-MoNDE scaling, Fig. 9, lives in the layer engine itself: the
platform's ``n_monde_devices`` controls the round-robin expert
distribution and per-device streams.)
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import LayerResult, MoELayerEngine
from repro.core.strategies import Scheme
from repro.sim.stream import Segment


def shard_experts(n_experts: int, n_gpus: int) -> list[np.ndarray]:
    """Contiguous expert shards, one per GPU."""
    if n_gpus < 1:
        raise ValueError("n_gpus must be >= 1")
    return [np.asarray(shard) for shard in np.array_split(np.arange(n_experts), n_gpus)]


def multi_gpu_layer_time(
    engine: MoELayerEngine,
    counts: np.ndarray,
    n_gpus: int,
    layer_id: int = 0,
) -> LayerResult:
    """One MoE layer under ``n_gpus``-way expert parallelism.

    Timeline: gating on GPU0, all-to-all scatter of routed activations
    over the inter-GPU links (each direction modeled on the PCIe
    streams), per-GPU expert compute in parallel, all-to-all gather.
    """
    counts = np.asarray(counts)
    model = engine.model
    if counts.shape != (model.n_experts,):
        raise ValueError(f"counts must have shape ({model.n_experts},)")
    timeline = engine._new_timeline()
    tokens = max(1, int(counts.sum()) // max(1, model.top_k))
    prologue = engine._prologue(timeline, counts, tokens)

    pcie = engine.platform.pcie
    routed = int(counts.sum())
    # Fraction of routed tokens whose expert lives on a remote GPU.
    remote = (n_gpus - 1) / n_gpus if n_gpus > 1 else 0.0
    exchange_bytes = int(routed * model.d_model * model.dtype_bytes * remote)
    scatter = timeline.enqueue(
        "d2h", pcie.transfer_time(exchange_bytes), label="a", not_before=prologue.end
    )

    shards = shard_experts(model.n_experts, n_gpus)
    finishes: list[Segment] = []
    for gpu_id, shard in enumerate(shards):
        stream = "gpu" if gpu_id == 0 else f"gpu{gpu_id}"
        prev: list[Segment] = [scatter]
        for expert in shard:
            if counts[expert] == 0:
                continue
            seg = timeline.enqueue(
                stream,
                engine._gpu_expert_time(int(counts[expert])),
                label="e",
                after=prev,
            )
            prev = [seg]
        if prev[0] is not scatter:
            finishes.append(prev[0])

    gather = timeline.enqueue(
        "h2d",
        pcie.transfer_time(exchange_bytes),
        label="a",
        after=finishes or [scatter],
    )
    return LayerResult(
        scheme=Scheme.MULTI_GPU,
        seconds=gather.end,
        timeline=timeline,
        amove_bytes=2 * exchange_bytes,
        n_active=int((counts > 0).sum()),
    )
