"""MoNDE core: the paper's contribution.

- :mod:`repro.core.instructions` -- the 64-byte CXL NDP instruction
  codec (Fig. 4(a)).
- :mod:`repro.core.driver` -- the host-side device driver: memory
  allocation in device address space, kernel launch, done polling
  (Section 3.4).
- :mod:`repro.core.analytical` -- Eq. 1-6: PMove/AMove data volumes,
  the bandwidth-bound latency approximations, and the H formula.
- :mod:`repro.core.load_balancer` -- GPU-MoNDE load balancing with the
  auto-tuned alpha scaling factor (Section 3.3).
- :mod:`repro.core.strategies` -- the evaluated schemes (Fig. 5/6).
- :mod:`repro.core.engine` -- stream-timeline execution of one MoE
  layer under each scheme, with explicit PMove/AMove/compute overlap.
- :mod:`repro.core.runtime` -- end-to-end encoder/decoder inference
  timing and throughput (Fig. 6-10).
- :mod:`repro.core.multi_device` -- multi-MoNDE round-robin expert
  distribution and the expert-parallel multi-GPU baseline.

Submodules import lazily so that leaf packages (e.g. the ISA codec)
can be used without pulling the whole system model.
"""

from typing import Any

__all__ = [
    "AMoveStrategy",
    "AnalyticalModel",
    "InferenceConfig",
    "LoadBalancer",
    "MoELayerEngine",
    "MoNDEDriver",
    "MoNDERuntime",
    "NDPInstruction",
    "Opcode",
    "PMoveStrategy",
    "Scheme",
    "SchemeResult",
]

_LAZY = {
    "AMoveStrategy": ("repro.core.strategies", "AMoveStrategy"),
    "AnalyticalModel": ("repro.core.analytical", "AnalyticalModel"),
    "InferenceConfig": ("repro.core.runtime", "InferenceConfig"),
    "LoadBalancer": ("repro.core.load_balancer", "LoadBalancer"),
    "MoELayerEngine": ("repro.core.engine", "MoELayerEngine"),
    "MoNDEDriver": ("repro.core.driver", "MoNDEDriver"),
    "MoNDERuntime": ("repro.core.runtime", "MoNDERuntime"),
    "NDPInstruction": ("repro.core.instructions", "NDPInstruction"),
    "Opcode": ("repro.core.instructions", "Opcode"),
    "PMoveStrategy": ("repro.core.strategies", "PMoveStrategy"),
    "Scheme": ("repro.core.strategies", "Scheme"),
    "SchemeResult": ("repro.core.runtime", "SchemeResult"),
}


def __getattr__(name: str) -> Any:
    if name in _LAZY:
        import importlib

        module_name, attr = _LAZY[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
