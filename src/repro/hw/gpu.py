"""Roofline GPU timing model with small-GEMM de-rating.

The paper's characterization (Fig. 2(c)) shows that a cold expert with
few routed tokens is strongly memory-bound on the GPU and leaves the
tensor cores idle, while the parameter transfer that precedes it is
far more expensive still.  This model reproduces those two regimes:

- ``gemm_time``: max(compute-time, memory-time) + kernel launch, with
  achievable compute throughput de-rated for small M (few tokens).
- ``expert_ffn_time``: the two back-to-back expert GEMMs
  (d_model -> d_ff -> d_model) plus the elementwise activation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.specs import BF16_BYTES, GPUSpec, gemm_bytes, gemm_flops


@dataclass(frozen=True)
class GEMMTiming:
    """Breakdown of one GEMM's modeled execution on the GPU."""

    compute_time: float
    memory_time: float
    launch_overhead: float
    achieved_flops: float

    @property
    def total(self) -> float:
        return max(self.compute_time, self.memory_time) + self.launch_overhead

    @property
    def is_memory_bound(self) -> bool:
        return self.memory_time >= self.compute_time


class GPUModel:
    """Roofline timing model for a :class:`~repro.hw.specs.GPUSpec`."""

    def __init__(self, spec: GPUSpec) -> None:
        self.spec = spec

    def _efficiency(self, m: int) -> float:
        """Achievable fraction of peak compute for GEMM height ``m``.

        Tensor-core utilization ramps roughly linearly with the number
        of occupied M-tiles until the SMs saturate; ``m_saturate`` rows
        reach ``base_efficiency`` of peak.
        """
        if m <= 0:
            return 1.0
        ramp = min(1.0, m / float(self.spec.m_saturate))
        # Tensor cores execute at least one MMA tile row regardless of
        # M, so utilization bottoms out rather than going to zero.
        ramp = max(ramp, self.spec.min_efficiency)
        return self.spec.base_efficiency * ramp

    def gemm_timing(
        self, m: int, n: int, k: int, dtype_bytes: int = BF16_BYTES
    ) -> GEMMTiming:
        """Model C[m,n] = A[m,k] @ B[k,n] with operands in GPU HBM."""
        if m == 0 or n == 0 or k == 0:
            return GEMMTiming(0.0, 0.0, 0.0, 0.0)
        flops = gemm_flops(m, n, k)
        achieved = self.spec.peak_flops * self._efficiency(m)
        compute_time = flops / achieved
        memory_time = gemm_bytes(m, n, k, dtype_bytes) / self.spec.mem_bandwidth
        return GEMMTiming(
            compute_time=compute_time,
            memory_time=memory_time,
            launch_overhead=self.spec.kernel_launch_overhead,
            achieved_flops=achieved,
        )

    def gemm_time(self, m: int, n: int, k: int, dtype_bytes: int = BF16_BYTES) -> float:
        return self.gemm_timing(m, n, k, dtype_bytes).total

    def expert_ffn_time(
        self,
        tokens: int,
        d_model: int,
        d_ff: int,
        dtype_bytes: int = BF16_BYTES,
    ) -> float:
        """Time to run one expert FFN over ``tokens`` rows on the GPU.

        An expert is Linear1 (d_model -> d_ff), an elementwise
        activation, and Linear2 (d_ff -> d_model); the activation fuses
        into the first GEMM epilogue (the paper's ``gemm+relu`` kernel)
        so it costs no extra pass over memory.
        """
        if tokens == 0:
            return 0.0
        first = self.gemm_time(tokens, d_ff, d_model, dtype_bytes)
        second = self.gemm_time(tokens, d_model, d_ff, dtype_bytes)
        return first + second

    def dense_block_time(
        self,
        tokens: int,
        d_model: int,
        n_heads: int = 16,
        dtype_bytes: int = BF16_BYTES,
    ) -> float:
        """Time for the non-MoE part of one Transformer block.

        Attention is modeled as its four projection GEMMs
        (Q/K/V/output, each d_model x d_model) plus the score/context
        batched GEMMs; layernorms and residuals are bandwidth-only
        passes.  Dense parameters are GPU-resident in every evaluated
        scheme, so this term is identical across schemes -- it shifts
        absolute throughput but not the scheme ordering.
        """
        if tokens == 0:
            return 0.0
        proj = 4 * self.gemm_time(tokens, d_model, d_model, dtype_bytes)
        # Score (tokens x tokens x head_dim per head) and context GEMMs.
        head_dim = max(1, d_model // n_heads)
        score_flops = 2.0 * 2.0 * tokens * tokens * head_dim * n_heads
        attn_math = score_flops / (self.spec.peak_flops * self.spec.base_efficiency)
        elementwise_bytes = 6.0 * tokens * d_model * dtype_bytes
        elementwise = elementwise_bytes / self.spec.mem_bandwidth
        return proj + attn_math + elementwise + 2 * self.spec.kernel_launch_overhead
