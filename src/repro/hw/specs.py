"""Device specifications and the concrete parts catalog.

The constants here mirror Table 2 of the paper ("Workloads and system
configurations"):

- GPU: 1x NVIDIA A100 PCIe.
- CPU: Intel Xeon Silver 4310, 187 GB/s memory bandwidth.
- Interconnect: PCIe Gen4 x16.
- MoNDE: 64 units of 4x4 systolic arrays, 264 KB buffers @ 1 GHz;
  512 GB/s memory bandwidth, 512 GB capacity (8 LPDDR channels of
  68 GB/s per Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

GiB = 1024**3
GB = 10**9
MB = 10**6
KB = 10**3

#: Bytes per bfloat16 element (the paper's inference datatype).
BF16_BYTES = 2


def gemm_flops(m: int, n: int, k: int) -> float:
    """Floating-point operations for C[m,n] = A[m,k] @ B[k,n].

    Each output element takes k multiply-adds = 2k flops.
    """
    if min(m, n, k) < 0:
        raise ValueError(f"GEMM dims must be non-negative, got {(m, n, k)}")
    return 2.0 * m * n * k


def gemm_bytes(m: int, n: int, k: int, dtype_bytes: int = BF16_BYTES) -> float:
    """Minimum DRAM traffic for a GEMM: read A and B, write C once."""
    if min(m, n, k) < 0:
        raise ValueError(f"GEMM dims must be non-negative, got {(m, n, k)}")
    return float(dtype_bytes) * (m * k + k * n + m * n)


@dataclass(frozen=True)
class GPUSpec:
    """A GPU for the roofline timing model.

    ``peak_flops`` is the dense bf16/TF32-class tensor-core peak;
    ``mem_bandwidth`` the HBM bandwidth.  ``m_saturate`` is the GEMM
    M-dimension at which the tensor cores reach ``base_efficiency`` of
    peak -- below it, achievable compute throughput falls off linearly
    (cold experts with 1-7 tokens run far below peak, Section 2.2).
    """

    name: str
    peak_flops: float
    mem_bandwidth: float
    mem_capacity: float
    kernel_launch_overhead: float = 8e-6
    base_efficiency: float = 0.75
    m_saturate: int = 128
    min_efficiency: float = 0.05

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.mem_bandwidth <= 0:
            raise ValueError("peak_flops and mem_bandwidth must be positive")
        if not 0 < self.base_efficiency <= 1:
            raise ValueError("base_efficiency must be in (0, 1]")


@dataclass(frozen=True)
class PCIeSpec:
    """A host<->device link (PCIe or CXL over PCIe PHY).

    ``raw_bandwidth`` is the line rate; ``efficiency`` folds in TLP /
    flit framing and DMA overheads, giving the sustained copy
    bandwidth; ``latency`` is the per-transfer setup time.
    """

    name: str
    raw_bandwidth: float
    efficiency: float = 0.80
    latency: float = 2e-6

    def __post_init__(self) -> None:
        if self.raw_bandwidth <= 0:
            raise ValueError("raw_bandwidth must be positive")
        if not 0 < self.efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")

    @property
    def effective_bandwidth(self) -> float:
        return self.raw_bandwidth * self.efficiency


@dataclass(frozen=True)
class CPUSpec:
    """A CPU socket used as the expert-compute fallback (CPU+AM).

    ``stream_efficiency`` de-rates the nominal DRAM bandwidth for
    real-world GEMM streaming; ``numa_penalty`` further de-rates it for
    remote-socket accesses, which the paper calls out as a CPU
    limitation (Section 4.2, "Comparison with the CPU").
    ``op_overhead`` is the per-kernel dispatch cost (thread wake-up,
    task scheduling), substantially higher than a device-side NDP
    dispatch.
    """

    name: str
    peak_flops: float
    mem_bandwidth: float
    stream_efficiency: float = 0.45
    numa_penalty: float = 0.80
    op_overhead: float = 25e-6

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.mem_bandwidth <= 0:
            raise ValueError("peak_flops and mem_bandwidth must be positive")

    @property
    def effective_bandwidth(self) -> float:
        return self.mem_bandwidth * self.stream_efficiency * self.numa_penalty


@dataclass(frozen=True)
class NDPCoreSpec:
    """The MoNDE NDP core (Section 3.1).

    64 SIMD-controlled 4x4 MAC arrays at 1 GHz process 4x256-wide tiles
    in an output-stationary manner.  Each MAC does one multiply-
    accumulate (2 flops) per cycle.
    """

    n_arrays: int = 64
    array_rows: int = 4
    array_cols: int = 4
    clock_hz: float = 1e9
    scratchpad_bytes: int = 88 * 1024
    act_buffer_bytes: int = 88 * 1024
    exp_buffer_bytes: int = 88 * 1024
    dispatch_overhead: float = 2e-6

    @property
    def macs_per_cycle(self) -> int:
        return self.n_arrays * self.array_rows * self.array_cols

    @property
    def peak_flops(self) -> float:
        """2 flops (mul+add) per MAC per cycle."""
        return 2.0 * self.macs_per_cycle * self.clock_hz

    @property
    def tile_rows(self) -> int:
        """Token rows processed per SIMD step (the `4` in 4x256)."""
        return self.array_rows

    @property
    def tile_cols(self) -> int:
        """Output columns per SIMD step across all arrays (the `256`)."""
        return self.n_arrays * self.array_cols

    @property
    def total_buffer_bytes(self) -> int:
        return self.scratchpad_bytes + self.act_buffer_bytes + self.exp_buffer_bytes


@dataclass(frozen=True)
class MoNDEDeviceSpec:
    """The full MoNDE CXL memory device (Section 3.1, Table 2).

    8 LPDDR channels x 64 GB / 68 GB/s each = 512 GB @ ~512 GB/s.
    """

    name: str = "MoNDE CXL-NDP device"
    n_channels: int = 8
    channel_bandwidth: float = 68 * GB
    channel_capacity: float = 64 * GiB
    ndp: NDPCoreSpec = NDPCoreSpec()
    mem_efficiency: float = 0.93

    @property
    def mem_bandwidth(self) -> float:
        return self.n_channels * self.channel_bandwidth

    @property
    def effective_bandwidth(self) -> float:
        """Sustained streaming bandwidth after DRAM protocol overheads.

        The cycle-level DRAM simulator (:mod:`repro.dram`) measures this
        directly; the default here matches its sequential-stream result.
        """
        return self.mem_bandwidth * self.mem_efficiency

    @property
    def mem_capacity(self) -> float:
        return self.n_channels * self.channel_capacity

    def scaled_bandwidth(self, factor: float) -> "MoNDEDeviceSpec":
        """A copy with memory bandwidth (and rate-matched NDP compute)
        scaled by ``factor`` -- the Fig. 7(b) sensitivity knob."""
        if factor <= 0:
            raise ValueError(f"bandwidth scale factor must be positive, got {factor}")
        scaled_ndp = replace(self.ndp, n_arrays=max(1, round(self.ndp.n_arrays * factor)))
        return replace(
            self,
            name=f"{self.name} ({factor:g}x BW)",
            channel_bandwidth=self.channel_bandwidth * factor,
            ndp=scaled_ndp,
        )


# --------------------------------------------------------------------------
# Concrete parts catalog (Table 2 platform).
# --------------------------------------------------------------------------

#: NVIDIA A100 PCIe 80GB: 312 TFLOPS bf16 tensor-core peak, 1935 GB/s HBM2e.
A100_PCIE = GPUSpec(
    name="NVIDIA A100 PCIe",
    peak_flops=312e12,
    mem_bandwidth=1935 * GB,
    mem_capacity=80 * GiB,
)

#: PCIe Gen4 x16: 32 GB/s per direction raw, ~25.6 GB/s sustained.
PCIE_GEN4_X16 = PCIeSpec(name="PCIe Gen4 x16", raw_bandwidth=32 * GB)

#: Intel Xeon Silver 4310 (12C/24T): 187 GB/s nominal DDR4-3200
#: bandwidth (Table 2).  ``peak_flops`` is the *achievable* PyTorch
#: bf16 GEMM throughput, not the AVX-512 datasheet peak: bf16 on
#: Ice Lake-SP has no AMX and runs through fp32 conversion, landing a
#: 12-core Silver at a few hundred GFLOP/s -- this is what makes hot
#: experts catastrophically slow on the CPU and drives the paper's
#: 9.1x encoder-side gap in Fig. 8.
XEON_4310 = CPUSpec(
    name="Intel Xeon Silver 4310",
    peak_flops=0.25e12,
    mem_bandwidth=187 * GB,
    stream_efficiency=0.80,
    numa_penalty=0.95,
)

#: The MoNDE device with the paper's default parameters.
MONDE_DEVICE = MoNDEDeviceSpec()
