"""Calibrated hardware timing models.

This package provides the non-NDP half of the evaluation platform in
Table 2 of the paper:

- :mod:`repro.hw.specs` -- device specification dataclasses and the
  catalog of concrete parts (A100 PCIe, PCIe Gen4 x16, Xeon Silver
  4310, the MoNDE CXL device).
- :mod:`repro.hw.gpu` -- a roofline GPU model with small-GEMM
  de-rating and kernel-launch overhead.
- :mod:`repro.hw.pcie` -- PCIe/CXL link transfer timing.
- :mod:`repro.hw.cpu` -- CPU expert-computation timing with NUMA and
  streaming de-rating (the CPU+AM baseline of Fig. 8).

All models speak seconds and bytes; bf16 (2 bytes/element) is the
default datatype as in the paper.
"""

from repro.hw.cpu import CPUModel
from repro.hw.gpu import GPUModel
from repro.hw.pcie import PCIeLink
from repro.hw.specs import (
    A100_PCIE,
    BF16_BYTES,
    MONDE_DEVICE,
    PCIE_GEN4_X16,
    XEON_4310,
    CPUSpec,
    GPUSpec,
    MoNDEDeviceSpec,
    NDPCoreSpec,
    PCIeSpec,
    gemm_bytes,
    gemm_flops,
)

__all__ = [
    "A100_PCIE",
    "BF16_BYTES",
    "CPUModel",
    "CPUSpec",
    "GPUModel",
    "GPUSpec",
    "MONDE_DEVICE",
    "MoNDEDeviceSpec",
    "NDPCoreSpec",
    "PCIE_GEN4_X16",
    "PCIeLink",
    "PCIeSpec",
    "XEON_4310",
    "gemm_bytes",
    "gemm_flops",
]
