"""PCIe / CXL link transfer timing.

Both PMove (expert parameters, GB-scale) and AMove (activations,
KB-to-MB scale) cross this link; its asymmetry between the two data
volumes is the core of the paper's argument (Eq. 1 vs Eq. 2).
"""

from __future__ import annotations

from repro.hw.specs import PCIeSpec


class PCIeLink:
    """Timing model for one direction of a host<->device link."""

    def __init__(self, spec: PCIeSpec) -> None:
        self.spec = spec

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` across the link.

        Per-transfer latency covers DMA descriptor setup and doorbell;
        bandwidth is the framing-de-rated sustained rate.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.spec.latency + nbytes / self.spec.effective_bandwidth

    def bandwidth_bound_time(self, nbytes: float) -> float:
        """Pure bandwidth term (no setup latency); used by the
        analytical load-balancing model, Eq. 4 of the paper."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        return nbytes / self.spec.effective_bandwidth

    def round_trip_time(self, nbytes: float) -> float:
        """Seconds to ship ``nbytes`` of activations to a remote
        device and the (same-sized, to first order) result back --
        the AMove cost a sharded expert pays when its tokens live on
        another device.  Zero bytes cross for free: no transfer, no
        doorbell."""
        if nbytes == 0:
            return 0.0
        return 2.0 * self.transfer_time(nbytes)
