"""CPU expert-computation timing (the CPU+AM baseline of Fig. 8).

The paper compares MoNDE's NDP against running cold experts on the
host CPU.  The CPU reads expert weights from its local DDR at a
de-rated streaming bandwidth (NUMA and prefetch effects), and pays a
per-kernel dispatch overhead that is large relative to the NDP's
device-side dispatch.
"""

from __future__ import annotations

from repro.hw.specs import BF16_BYTES, CPUSpec, gemm_bytes, gemm_flops


class CPUModel:
    """Roofline-with-overheads timing model for a CPU socket."""

    def __init__(self, spec: CPUSpec) -> None:
        self.spec = spec

    def gemm_time(self, m: int, n: int, k: int, dtype_bytes: int = BF16_BYTES) -> float:
        """Model one GEMM with operands in host DRAM."""
        if m == 0 or n == 0 or k == 0:
            return 0.0
        compute = gemm_flops(m, n, k) / self.spec.peak_flops
        memory = gemm_bytes(m, n, k, dtype_bytes) / self.spec.effective_bandwidth
        return max(compute, memory) + self.spec.op_overhead

    def expert_ffn_time(
        self,
        tokens: int,
        d_model: int,
        d_ff: int,
        dtype_bytes: int = BF16_BYTES,
    ) -> float:
        """Time for one expert FFN (two GEMMs) over ``tokens`` rows."""
        if tokens == 0:
            return 0.0
        return self.gemm_time(tokens, d_ff, d_model, dtype_bytes) + self.gemm_time(
            tokens, d_model, d_ff, dtype_bytes
        )
