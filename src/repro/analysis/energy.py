"""Energy model extension: data-movement energy per execution scheme.

The paper reports NDP power overhead (Table 3) but not end-to-end
energy.  This extension estimates the energy of each scheme's MoE
layer from well-established per-bit transport costs plus compute
energy, quantifying the intuition that AMove does not just save time
-- it avoids moving gigabytes across the lowest-efficiency link:

- PCIe Gen4 SerDes + controller: ~10 pJ/bit end to end.
- LPDDR5X access (device-internal): ~4 pJ/bit.
- HBM2e access (GPU-side): ~3.5 pJ/bit.
- DDR4 access (host CPU): ~15 pJ/bit (incl. NUMA interconnect).
- MAC energy at 28 nm, bf16: ~0.5 pJ/flop on the NDP; the GPU's 7 nm
  tensor cores are more efficient per flop (~0.35 pJ) but idle power
  amortization on cold experts erases that in practice -- we model
  marginal energy only.

All constants are module-level and overridable for sensitivity
studies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.strategies import AMoveStrategy, PMoveStrategy, Scheme
from repro.moe.config import MoEModelConfig

PCIE_PJ_PER_BIT = 10.0
LPDDR_PJ_PER_BIT = 4.0
HBM_PJ_PER_BIT = 3.5
DDR_PJ_PER_BIT = 15.0
NDP_PJ_PER_FLOP = 0.5
GPU_PJ_PER_FLOP = 0.35
CPU_PJ_PER_FLOP = 2.0


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules spent by one MoE layer under one scheme."""

    scheme: Scheme
    link_j: float
    memory_j: float
    compute_j: float

    @property
    def total_j(self) -> float:
        return self.link_j + self.memory_j + self.compute_j


def _bits(nbytes: float) -> float:
    return 8.0 * nbytes


class EnergyModel:
    """Per-layer MoE energy for every scheme, from routed counts."""

    def __init__(self, model: MoEModelConfig) -> None:
        if not model.is_moe:
            raise ValueError(f"{model.name} has no MoE layers")
        self.model = model
        self.pmove = PMoveStrategy(model.d_model, model.d_ff, model.dtype_bytes)
        self.amove = AMoveStrategy(model.d_model, model.dtype_bytes)

    def _expert_flops(self, counts: np.ndarray) -> float:
        routed = float(np.asarray(counts).sum())
        return 2.0 * routed * 2.0 * self.model.d_model * self.model.d_ff

    def _weights_touched(self, counts: np.ndarray) -> float:
        active = int((np.asarray(counts) > 0).sum())
        return float(active) * self.pmove.expert_bytes

    def layer_energy(self, scheme: Scheme, counts: np.ndarray) -> EnergyBreakdown:
        """Marginal energy of one MoE layer's expert phase."""
        counts = np.asarray(counts)
        if counts.shape != (self.model.n_experts,):
            raise ValueError(
                f"counts must have shape ({self.model.n_experts},), got {counts.shape}"
            )
        weights = self._weights_touched(counts)
        acts = self.amove.transfer_bytes(counts[counts > 0])
        flops = self._expert_flops(counts)

        if scheme is Scheme.IDEAL:
            return EnergyBreakdown(
                scheme,
                link_j=0.0,
                memory_j=_bits(weights) * HBM_PJ_PER_BIT * 1e-12,
                compute_j=flops * GPU_PJ_PER_FLOP * 1e-12,
            )
        if scheme is Scheme.GPU_PM:
            # Weights: read from device LPDDR, cross PCIe, land+read in HBM.
            memory = _bits(weights) * (LPDDR_PJ_PER_BIT + 2 * HBM_PJ_PER_BIT)
            return EnergyBreakdown(
                scheme,
                link_j=_bits(weights) * PCIE_PJ_PER_BIT * 1e-12,
                memory_j=memory * 1e-12,
                compute_j=flops * GPU_PJ_PER_FLOP * 1e-12,
            )
        if scheme is Scheme.MD_AM:
            memory = _bits(weights) * LPDDR_PJ_PER_BIT + _bits(acts) * (
                HBM_PJ_PER_BIT + LPDDR_PJ_PER_BIT
            )
            return EnergyBreakdown(
                scheme,
                link_j=_bits(acts) * PCIE_PJ_PER_BIT * 1e-12,
                memory_j=memory * 1e-12,
                compute_j=flops * NDP_PJ_PER_FLOP * 1e-12,
            )
        if scheme is Scheme.CPU_AM:
            memory = _bits(weights) * DDR_PJ_PER_BIT + _bits(acts) * (
                HBM_PJ_PER_BIT + DDR_PJ_PER_BIT
            )
            return EnergyBreakdown(
                scheme,
                link_j=_bits(acts) * PCIE_PJ_PER_BIT * 1e-12,
                memory_j=memory * 1e-12,
                compute_j=flops * CPU_PJ_PER_FLOP * 1e-12,
            )
        if scheme is Scheme.MD_LB:
            # Split by the Eq. 6 balance at the default bandwidths.
            from repro.core.load_balancer import LoadBalancer
            from repro.hw.specs import MONDE_DEVICE, PCIE_GEN4_X16

            balancer = LoadBalancer(
                PCIE_GEN4_X16.effective_bandwidth, MONDE_DEVICE.effective_bandwidth
            )
            part = balancer.partition(counts)
            gpu_counts = np.zeros_like(counts)
            gpu_counts[part.hot_experts] = counts[part.hot_experts]
            md_counts = np.zeros_like(counts)
            md_counts[part.cold_experts] = counts[part.cold_experts]
            gpu = self.layer_energy(Scheme.GPU_PM, gpu_counts)
            md = self.layer_energy(Scheme.MD_AM, md_counts)
            return EnergyBreakdown(
                scheme,
                link_j=gpu.link_j + md.link_j,
                memory_j=gpu.memory_j + md.memory_j,
                compute_j=gpu.compute_j + md.compute_j,
            )
        raise ValueError(f"no energy model for scheme {scheme}")

    def compare(self, counts: np.ndarray) -> dict[Scheme, EnergyBreakdown]:
        """All schemes on one layer's routed counts."""
        return {
            scheme: self.layer_energy(scheme, counts)
            for scheme in (
                Scheme.IDEAL, Scheme.GPU_PM, Scheme.MD_AM, Scheme.MD_LB,
                Scheme.CPU_AM,
            )
        }
