"""Analysis: characterization (Fig. 2), area/power (Table 3), reports."""

from repro.analysis.area_power import (
    AreaPower,
    AreaPowerModel,
    TABLE3_REFERENCE,
)
from repro.analysis.characterize import (
    compute_vs_transfer,
    dmodel_scaling,
    param_scaling,
)
from repro.analysis.energy import EnergyBreakdown, EnergyModel
from repro.analysis.report import format_markdown_table, format_table
from repro.analysis.stats import SweepResult, bootstrap_ci, seed_sweep

__all__ = [
    "AreaPower",
    "AreaPowerModel",
    "EnergyBreakdown",
    "EnergyModel",
    "SweepResult",
    "TABLE3_REFERENCE",
    "bootstrap_ci",
    "compute_vs_transfer",
    "dmodel_scaling",
    "format_markdown_table",
    "format_table",
    "param_scaling",
    "seed_sweep",
]
