"""Seed-sweep statistics for experiment robustness.

The paper reports averages over its datasets; our workloads are
sampled, so headline numbers should come with spread.  This module
runs a metric across seeds and reports mean, standard deviation, and a
bootstrap confidence interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


@dataclass(frozen=True)
class SweepResult:
    """Statistics of one metric over a seed sweep."""

    values: tuple[float, ...]
    mean: float
    std: float
    ci_low: float
    ci_high: float

    @property
    def n(self) -> int:
        return len(self.values)

    def format(self, precision: int = 2) -> str:
        return (
            f"{self.mean:.{precision}f} +/- {self.std:.{precision}f} "
            f"(95% CI [{self.ci_low:.{precision}f}, {self.ci_high:.{precision}f}], "
            f"n={self.n})"
        )


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean."""
    if not values:
        raise ValueError("values must be non-empty")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    data = np.asarray(values, dtype=np.float64)
    if len(data) == 1:
        return float(data[0]), float(data[0])
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, len(data), size=(n_resamples, len(data)))
    means = data[idx].mean(axis=1)
    lo = float(np.percentile(means, 100 * (1 - confidence) / 2))
    hi = float(np.percentile(means, 100 * (1 + confidence) / 2))
    return lo, hi


def seed_sweep(
    metric: Callable[[int], float],
    seeds: Sequence[int],
    confidence: float = 0.95,
) -> SweepResult:
    """Evaluate ``metric(seed)`` across seeds and summarize."""
    if not seeds:
        raise ValueError("seeds must be non-empty")
    values = tuple(float(metric(seed)) for seed in seeds)
    lo, hi = bootstrap_ci(values, confidence=confidence)
    return SweepResult(
        values=values,
        mean=float(np.mean(values)),
        std=float(np.std(values)),
        ci_low=lo,
        ci_high=hi,
    )
