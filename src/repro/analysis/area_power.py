"""Area and power model for the MoNDE NDP core (Table 3).

The paper synthesizes the NDP core in a 28 nm node at 1 GHz and
reports per-component area/power; on-chip buffers come from a
commercial memory compiler.  We reproduce Table 3 from *unit* costs
(per-PE and per-KiB) calibrated to those numbers, so the model
extrapolates to scaled NDP configurations (e.g. the Fig. 7(b)
rate-matched compute scaling):

===============  ==========  =========
Component        Area (mm2)  Power (W)
===============  ==========  =========
Systolic PEs     2.042       0.993
SIMD control     0.053       0.033
Scratchpad       0.289       0.258
Operand buffers  0.570       0.526
===============  ==========  =========

Total 2.954 mm2 (~0.9 Gb of DRAM-cell-equivalent area) and 1.81 W,
a 1.6% power overhead on the 114.2 W base memory device.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.specs import MONDE_DEVICE, NDPCoreSpec

#: Table 3 of the paper: component -> (area mm^2, power W).
TABLE3_REFERENCE = {
    "systolic_pe": (2.042, 0.993),
    "simd_control": (0.053, 0.033),
    "scratchpad": (0.289, 0.258),
    "operand_buffers": (0.570, 0.526),
}

#: Paper-reported base memory-expander power (Micron power calculator
#: scaled to the target LPDDR device).
BASE_MEMORY_POWER_W = 114.2

#: "3.0 mm^2 ... corresponds to approximately 0.9 Gb DRAM cells".
DRAM_GBIT_PER_MM2 = 0.9 / 3.0

# Unit costs calibrated to Table 3 at the paper's configuration
# (1024 PEs; 88 KiB scratchpad; 176 KiB operand buffers).
_PAPER_N_PES = 64 * 4 * 4
_PAPER_SCRATCH_KIB = 88.0
_PAPER_OPERAND_KIB = 176.0

PE_AREA_MM2 = TABLE3_REFERENCE["systolic_pe"][0] / _PAPER_N_PES
PE_POWER_W = TABLE3_REFERENCE["systolic_pe"][1] / _PAPER_N_PES
CONTROL_AREA_FRACTION = (
    TABLE3_REFERENCE["simd_control"][0] / TABLE3_REFERENCE["systolic_pe"][0]
)
CONTROL_POWER_FRACTION = (
    TABLE3_REFERENCE["simd_control"][1] / TABLE3_REFERENCE["systolic_pe"][1]
)
SCRATCH_AREA_MM2_PER_KIB = TABLE3_REFERENCE["scratchpad"][0] / _PAPER_SCRATCH_KIB
SCRATCH_POWER_W_PER_KIB = TABLE3_REFERENCE["scratchpad"][1] / _PAPER_SCRATCH_KIB
OPERAND_AREA_MM2_PER_KIB = TABLE3_REFERENCE["operand_buffers"][0] / _PAPER_OPERAND_KIB
OPERAND_POWER_W_PER_KIB = TABLE3_REFERENCE["operand_buffers"][1] / _PAPER_OPERAND_KIB


@dataclass(frozen=True)
class AreaPower:
    """Area/power of one component."""

    name: str
    area_mm2: float
    power_w: float


class AreaPowerModel:
    """Analytical area/power for an :class:`NDPCoreSpec` at 28 nm / 1 GHz."""

    def __init__(self, spec: NDPCoreSpec | None = None) -> None:
        self.spec = spec or MONDE_DEVICE.ndp

    def components(self) -> list[AreaPower]:
        spec = self.spec
        n_pes = spec.n_arrays * spec.array_rows * spec.array_cols
        pe = AreaPower("systolic_pe", n_pes * PE_AREA_MM2, n_pes * PE_POWER_W)
        control = AreaPower(
            "simd_control",
            pe.area_mm2 * CONTROL_AREA_FRACTION,
            pe.power_w * CONTROL_POWER_FRACTION,
        )
        scratch_kib = spec.scratchpad_bytes / 1024.0
        scratch = AreaPower(
            "scratchpad",
            scratch_kib * SCRATCH_AREA_MM2_PER_KIB,
            scratch_kib * SCRATCH_POWER_W_PER_KIB,
        )
        operand_kib = (spec.act_buffer_bytes + spec.exp_buffer_bytes) / 1024.0
        operand = AreaPower(
            "operand_buffers",
            operand_kib * OPERAND_AREA_MM2_PER_KIB,
            operand_kib * OPERAND_POWER_W_PER_KIB,
        )
        return [pe, control, scratch, operand]

    @property
    def total_area_mm2(self) -> float:
        return sum(c.area_mm2 for c in self.components())

    @property
    def total_power_w(self) -> float:
        return sum(c.power_w for c in self.components())

    @property
    def dram_cell_equivalent_gbit(self) -> float:
        """How much DRAM capacity the NDP's silicon displaces."""
        return self.total_area_mm2 * DRAM_GBIT_PER_MM2

    def power_overhead_fraction(self, base_power_w: float = BASE_MEMORY_POWER_W) -> float:
        """NDP power as a fraction of the base memory device power
        (the paper reports 1.6%)."""
        if base_power_w <= 0:
            raise ValueError("base_power_w must be positive")
        return self.total_power_w / base_power_w

    def table(self) -> list[tuple[str, float, float]]:
        """(component, area, power) rows, Table 3 layout."""
        return [(c.name, c.area_mm2, c.power_w) for c in self.components()]
