"""MoE characterization: the Fig. 2 analyses.

- :func:`param_scaling` -- Fig. 2(a): memory footprint vs E.
- :func:`dmodel_scaling` -- Fig. 2(b): single-expert vs activation
  size (and their ratio) vs d_model.
- :func:`compute_vs_transfer` -- Fig. 2(c): single-expert GPU compute
  time vs PCIe transfer time across routed-token counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.gpu import GPUModel
from repro.hw.pcie import PCIeLink
from repro.hw.specs import A100_PCIE, BF16_BYTES, PCIE_GEN4_X16
from repro.moe.config import MoEModelConfig


@dataclass(frozen=True)
class ParamScalingRow:
    """One bar of Fig. 2(a)."""

    model: str
    n_experts: int
    non_expert_gb: float
    expert_gb: float

    @property
    def total_gb(self) -> float:
        return self.non_expert_gb + self.expert_gb


def param_scaling(
    base: MoEModelConfig, expert_counts: list[int]
) -> list[ParamScalingRow]:
    """Memory footprint of ``base`` across expert counts (0 = dense)."""
    rows = []
    for e in expert_counts:
        cfg = base.with_experts(e)
        rows.append(
            ParamScalingRow(
                model=cfg.name,
                n_experts=e,
                non_expert_gb=cfg.non_expert_bytes / 1e9,
                expert_gb=cfg.total_expert_bytes / 1e9,
            )
        )
    return rows


@dataclass(frozen=True)
class DmodelScalingRow:
    """One point of Fig. 2(b)."""

    d_model: int
    expert_gb: float
    activation_gb: float

    @property
    def ratio(self) -> float:
        """Expert size over activation size: the PMove/AMove gap."""
        if self.activation_gb == 0:
            return float("inf")
        return self.expert_gb / self.activation_gb


def dmodel_scaling(
    d_models: list[int],
    n_tokens: int = 6144,
    dtype_bytes: int = BF16_BYTES,
) -> list[DmodelScalingRow]:
    """Single-expert bytes (2 * d * 4d, quadratic) vs activation bytes
    for ``n_tokens`` tokens (linear) across embedding dims."""
    rows = []
    for d in d_models:
        expert_bytes = 2 * d * 4 * d * dtype_bytes
        act_bytes = n_tokens * d * dtype_bytes
        rows.append(
            DmodelScalingRow(
                d_model=d,
                expert_gb=expert_bytes / 1e9,
                activation_gb=act_bytes / 1e9,
            )
        )
    return rows


@dataclass(frozen=True)
class ComputeTransferRow:
    """One point of Fig. 2(c)."""

    d_model: int
    tokens: int
    compute_ms: float
    transfer_ms: float
    achieved_tflops: float

    @property
    def transfer_dominates(self) -> bool:
        return self.transfer_ms > self.compute_ms

    @property
    def transfer_to_compute(self) -> float:
        if self.compute_ms == 0:
            return float("inf")
        return self.transfer_ms / self.compute_ms


def compute_vs_transfer(
    token_counts: list[int],
    d_model: int,
    d_ff: int | None = None,
    gpu: GPUModel | None = None,
    pcie: PCIeLink | None = None,
    dtype_bytes: int = BF16_BYTES,
) -> list[ComputeTransferRow]:
    """Fig. 2(c): expert FFN compute time on the GPU vs the time to
    PMove that expert over PCIe, across routed-token counts."""
    gpu = gpu or GPUModel(A100_PCIE)
    pcie = pcie or PCIeLink(PCIE_GEN4_X16)
    d_ff = d_ff if d_ff is not None else 4 * d_model
    expert_bytes = 2 * d_model * d_ff * dtype_bytes
    transfer_ms = pcie.transfer_time(expert_bytes) * 1e3
    rows = []
    for tokens in token_counts:
        compute = gpu.expert_ffn_time(tokens, d_model, d_ff, dtype_bytes)
        flops = 2.0 * 2.0 * tokens * d_model * d_ff
        rows.append(
            ComputeTransferRow(
                d_model=d_model,
                tokens=tokens,
                compute_ms=compute * 1e3,
                transfer_ms=transfer_ms,
                achieved_tflops=(flops / compute / 1e12) if compute > 0 else 0.0,
            )
        )
    return rows
