"""Plain-text and markdown table formatting for bench reports."""

from __future__ import annotations

from typing import Any, Sequence


def _stringify(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width aligned table (for terminal bench output)."""
    cells = [[_stringify(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """GitHub-flavored markdown table (for EXPERIMENTS.md)."""
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        lines.append("| " + " | ".join(_stringify(v) for v in row) + " |")
    return "\n".join(lines)
