"""Event primitives for the discrete-event engine."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True, frozen=True)
class Event:
    """A timestamped callback.

    Events order by ``(time, seq)``; ``seq`` is a monotonically
    increasing tie-breaker so that events scheduled at the same
    simulated time fire in scheduling order (deterministic replay).
    """

    time: float
    seq: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)


class EventQueue:
    """A priority queue of :class:`Event` objects.

    Supports cancellation: :meth:`cancel` marks an event dead without
    paying the O(n) cost of removal; dead events are skipped on pop.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._dead: set[int] = set()
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap) - len(self._dead)

    def __bool__(self) -> bool:
        return len(self) > 0

    def push(self, time: float, action: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``action`` at absolute simulated ``time``."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        event = Event(time=time, seq=next(self._counter), action=action, label=label)
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Mark ``event`` as cancelled; it will be skipped when popped."""
        self._dead.add(event.seq)

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.seq in self._dead:
                self._dead.discard(event.seq)
                continue
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the earliest live event without popping."""
        while self._heap:
            event = self._heap[0]
            if event.seq in self._dead:
                heapq.heappop(self._heap)
                self._dead.discard(event.seq)
                continue
            return event.time
        return None
