"""Discrete-event simulation kernel and stream timeline calculus.

Two complementary abstractions are provided:

- :class:`~repro.sim.engine.SimEngine` -- a classic discrete-event
  engine (priority queue of timestamped callbacks) used where event
  interleaving matters.
- :class:`~repro.sim.stream.Timeline` / :class:`~repro.sim.stream.Stream`
  -- a deterministic "stream calculus" in the style of CUDA streams:
  work items enqueued on a stream serialize, items on different streams
  overlap, and cross-stream dependencies are expressed as explicit
  completion-time joins.  The MoNDE execution engine (Fig. 5 of the
  paper) is built on this.
"""

from repro.sim.engine import SimEngine
from repro.sim.events import Event, EventQueue
from repro.sim.stream import Segment, Stream, Timeline
from repro.sim.trace import TraceRecorder, render_gantt

__all__ = [
    "Event",
    "EventQueue",
    "Segment",
    "SimEngine",
    "Stream",
    "Timeline",
    "TraceRecorder",
    "render_gantt",
]
