"""Trace recording and ASCII Gantt rendering for stream timelines.

Used to regenerate the paper's Fig. 5 (qualitative workflow comparison
between Ideal, GPU+PM, MD+AM and MD+LB) as text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim.stream import Segment, Timeline


@dataclass
class TraceRecorder:
    """Accumulates labelled (time, message) trace points."""

    points: list[tuple[float, str]] = field(default_factory=list)

    def record(self, time: float, message: str) -> None:
        self.points.append((time, message))

    def formatted(self) -> str:
        lines = [f"[{t:12.6f}s] {msg}" for t, msg in sorted(self.points)]
        return "\n".join(lines)


def render_gantt(
    timeline: Timeline,
    width: int = 72,
    horizon: Optional[float] = None,
    label_chars: int = 1,
) -> str:
    """Render a timeline as an ASCII Gantt chart.

    Each stream becomes one row; each segment is drawn with the first
    ``label_chars`` characters of its label (or ``#``).  Example::

        gpu   |ggg...eeee|
        pcie  |...ppppp..|
        monde |...eeeee..|
    """
    span = horizon if horizon is not None else timeline.makespan()
    if span <= 0:
        return "(empty timeline)"

    streams = timeline.streams
    name_width = max((len(n) for n in streams), default=0)
    lines = []
    for name, stream in streams.items():
        row = [" "] * width
        for seg in stream.segments:
            lo = int(round(seg.start / span * (width - 1)))
            hi = int(round(seg.end / span * (width - 1)))
            hi = max(hi, lo)  # zero-duration segments still get one cell
            mark = (seg.label[:label_chars] or "#") if seg.label else "#"
            for i in range(lo, min(hi + 1, width)):
                row[i] = mark[0]
        lines.append(f"{name:<{name_width}} |{''.join(row)}|")
    lines.append(f"{'':<{name_width}}  0{'':{width - 10}}{span:.3e}s")
    return "\n".join(lines)


def overlap_fraction(a: list[Segment], b: list[Segment]) -> float:
    """Fraction of the busy time of ``a`` that overlaps segments of ``b``.

    Used in tests to assert that the load-balanced scheme actually
    overlaps GPU and NDP work (the point of Fig. 5's MD+LB row).
    """
    total = sum(seg.duration for seg in a)
    if total == 0:
        return 0.0
    overlap = 0.0
    for sa in a:
        for sb in b:
            lo = max(sa.start, sb.start)
            hi = min(sa.end, sb.end)
            if hi > lo:
                overlap += hi - lo
    return overlap / total
