"""Stream timeline calculus for modeling overlapped hardware execution.

The MoNDE paper's Fig. 5 reasons about MoE execution as work items
placed on parallel hardware streams (GPU compute, PCIe host-to-device,
PCIe device-to-host, MoNDE NDP, CPU).  Items on one stream serialize;
items on different streams overlap; a cross-stream dependency delays an
item until its producers complete.

:class:`Timeline` owns a set of named :class:`Stream` objects and
records every placed :class:`Segment` so the schedule can be inspected,
asserted on in tests, and rendered as an ASCII Gantt chart
(:func:`repro.sim.trace.render_gantt`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional


@dataclass(frozen=True)
class Segment:
    """One contiguous piece of work placed on a stream."""

    stream: str
    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "Segment") -> bool:
        """True if the two segments overlap in time (open intervals)."""
        return self.start < other.end and other.start < self.end


class Stream:
    """A serializing hardware resource (one in-flight item at a time)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.available_at = 0.0
        self.busy_time = 0.0
        self.segments: list[Segment] = []

    def enqueue(
        self,
        duration: float,
        label: str = "",
        not_before: float = 0.0,
    ) -> Segment:
        """Place ``duration`` units of work on this stream.

        The work starts at ``max(stream free time, not_before)`` --
        ``not_before`` encodes cross-stream dependencies (pass the max
        of the producers' ``end`` times).
        """
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        start = max(self.available_at, not_before)
        segment = Segment(stream=self.name, label=label, start=start, end=start + duration)
        self.available_at = segment.end
        self.busy_time += duration
        self.segments.append(segment)
        return segment

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Busy fraction over ``[0, horizon]`` (default: stream makespan)."""
        end = self.available_at if horizon is None else horizon
        if end <= 0:
            return 0.0
        return min(1.0, self.busy_time / end)


class Timeline:
    """A collection of named streams with a shared clock origin."""

    def __init__(self, stream_names: Iterable[str] = ()) -> None:
        self._streams: dict[str, Stream] = {}
        for name in stream_names:
            self.add_stream(name)

    def add_stream(self, name: str) -> Stream:
        if name in self._streams:
            raise ValueError(f"stream {name!r} already exists")
        stream = Stream(name)
        self._streams[name] = stream
        return stream

    def stream(self, name: str) -> Stream:
        """Get a stream, creating it lazily if needed."""
        if name not in self._streams:
            return self.add_stream(name)
        return self._streams[name]

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    @property
    def streams(self) -> dict[str, Stream]:
        return dict(self._streams)

    def enqueue(
        self,
        stream: str,
        duration: float,
        label: str = "",
        after: Iterable[Segment] = (),
        not_before: float = 0.0,
    ) -> Segment:
        """Enqueue work on ``stream`` that must start after every
        segment in ``after`` finishes and not before ``not_before``.
        """
        gate = not_before
        for dep in after:
            gate = max(gate, dep.end)
        return self.stream(stream).enqueue(duration, label=label, not_before=gate)

    def makespan(self) -> float:
        """Completion time of the last segment across all streams."""
        ends = [s.available_at for s in self._streams.values() if s.segments]
        return max(ends) if ends else 0.0

    def all_segments(self) -> list[Segment]:
        """Every placed segment, sorted by start time then stream name."""
        segments = [seg for s in self._streams.values() for seg in s.segments]
        return sorted(segments, key=lambda seg: (seg.start, seg.stream, seg.end))


@dataclass
class WorkItem:
    """Declarative description of a unit of work, used by schedulers
    that build a :class:`Timeline` from a dependency DAG."""

    stream: str
    duration: float
    label: str = ""
    deps: list["WorkItem"] = field(default_factory=list)
    _segment: Optional[Segment] = field(default=None, repr=False)

    def place(self, timeline: Timeline) -> Segment:
        """Recursively place this item and its dependencies."""
        if self._segment is not None:
            return self._segment
        dep_segments = [dep.place(timeline) for dep in self.deps]
        self._segment = timeline.enqueue(
            self.stream, self.duration, label=self.label, after=dep_segments
        )
        return self._segment
