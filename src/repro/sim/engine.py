"""A minimal deterministic discrete-event simulation engine."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.events import Event, EventQueue


class SimEngine:
    """Discrete-event engine with deterministic same-time ordering.

    Typical use::

        engine = SimEngine()
        engine.schedule(10.0, lambda: engine.schedule_in(5.0, done))
        engine.run()
        assert engine.now == 15.0
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def schedule(self, time: float, action: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``action`` at absolute time ``time`` (>= now)."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: time={time} < now={self._now}"
            )
        return self._queue.push(time, action, label)

    def schedule_in(self, delay: float, action: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``action`` after ``delay`` simulated time units."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self._queue.push(self._now + delay, action, label)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        self._queue.cancel(event)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the final simulated time.
        """
        if self._running:
            raise RuntimeError("engine is already running (re-entrant run())")
        self._running = True
        try:
            fired = 0
            while self._queue:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                if max_events is not None and fired >= max_events:
                    break
                event = self._queue.pop()
                assert event is not None
                self._now = event.time
                event.action()
                self.events_processed += 1
                fired += 1
            else:
                if until is not None:
                    self._now = max(self._now, until)
        finally:
            self._running = False
        return self._now

    def reset(self) -> None:
        """Discard all pending events and rewind the clock to zero."""
        self._queue = EventQueue()
        self._now = 0.0
        self.events_processed = 0
