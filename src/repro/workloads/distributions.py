"""Expert-load distributions calibrated to the paper's Fig. 3.

Fig. 3 measures the average token distribution across experts for
NLLB-MoE (encoder layer 0, batch 4, top-2, E=128, FLORES-200
Eng->Fra): binned by routed-token count, the average number of experts
per bin is::

    tokens   0     1-3    4-7   8-15  16-31  32-63  64-127  128+
    experts  25.48 72.56  24.63 1.86  0.08   1.2    0.67    1.52

i.e. ~96% of experts are cold (<8 tokens) while ~1.5 hot experts
absorb the bulk of the 4096 routing events.  A Zipf popularity over
experts reproduces this shape; the exponent is the skew knob.
"""

from __future__ import annotations

import numpy as np

#: Fig. 3 bucket edges (inclusive lower bounds; last bucket open).
FIG3_BUCKETS = [0, 1, 4, 8, 16, 32, 64, 128]

#: Fig. 3 measured average experts per bucket (see module docstring).
FIG3_REFERENCE = [25.48, 72.56, 24.63, 1.86, 0.08, 1.2, 0.67, 1.52]


def zipf_popularity(
    n_experts: int,
    exponent: float,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Zipf-distributed expert popularity, randomly permuted so hot
    experts land at arbitrary expert ids (as in trained routers).

    ``exponent`` 0 gives uniform routing; ~1 is Fig. 3-like; >1.5
    concentrates almost all tokens on a handful of experts (deep
    decoder layers).
    """
    if n_experts < 1:
        raise ValueError("n_experts must be >= 1")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    ranks = np.arange(1, n_experts + 1, dtype=np.float64)
    weights = ranks**-exponent
    weights /= weights.sum()
    if rng is not None:
        rng.shuffle(weights)
    return weights


def mixture_popularity(
    n_experts: int,
    rng: np.random.Generator,
    hot_fraction: float = 0.90,
    n_hot: int = 2,
    tail_shape: float = 0.55,
) -> np.ndarray:
    """Hot/cold mixture popularity matching Fig. 3's bimodal shape.

    ``n_hot`` experts share ``hot_fraction`` of all routing events
    (geometrically weighted among themselves); the remaining experts
    receive Gamma(``tail_shape``)-distributed weights -- an
    overdispersed thin tail, so some cold experts get a few tokens and
    others none, exactly the 0 / 1-3 / 4-7 spread the paper measures.

    Raising ``hot_fraction`` and lowering ``tail_shape`` models the
    sharper concentration of deeper layers.
    """
    if n_experts < 1:
        raise ValueError("n_experts must be >= 1")
    if not 0.0 <= hot_fraction < 1.0:
        raise ValueError("hot_fraction must be in [0, 1)")
    if not 1 <= n_hot <= n_experts:
        raise ValueError(f"n_hot must be in [1, {n_experts}]")
    if tail_shape <= 0:
        raise ValueError("tail_shape must be positive")
    weights = np.zeros(n_experts, dtype=np.float64)
    hot_ids = rng.choice(n_experts, size=n_hot, replace=False)
    hot_weights = 0.6 ** np.arange(n_hot)
    weights[hot_ids] = hot_fraction * hot_weights / hot_weights.sum()
    cold_ids = np.setdiff1d(np.arange(n_experts), hot_ids)
    if len(cold_ids) > 0:
        tail = rng.gamma(tail_shape, 1.0, size=len(cold_ids))
        total = tail.sum()
        if total <= 0:
            tail = np.full(len(cold_ids), 1.0)
            total = tail.sum()
        weights[cold_ids] = (1.0 - hot_fraction) * tail / total
    return weights


def sample_expert_counts(
    n_experts: int,
    n_events: int,
    exponent: float,
    rng: np.random.Generator,
    popularity: np.ndarray | None = None,
) -> np.ndarray:
    """Sample routed-token counts per expert for ``n_events`` routing
    events (= tokens * top_k) under a Zipf popularity."""
    if n_events < 0:
        raise ValueError("n_events must be non-negative")
    if popularity is None:
        popularity = zipf_popularity(n_experts, exponent, rng)
    if popularity.shape != (n_experts,):
        raise ValueError("popularity shape mismatch")
    if n_events == 0:
        return np.zeros(n_experts, dtype=np.int64)
    return rng.multinomial(n_events, popularity).astype(np.int64)


def bucket_histogram(counts: np.ndarray, buckets: list[int] | None = None) -> np.ndarray:
    """Bin per-expert token counts into Fig. 3's buckets; returns the
    number of experts per bucket."""
    edges = FIG3_BUCKETS if buckets is None else buckets
    counts = np.asarray(counts)
    out = np.zeros(len(edges), dtype=np.int64)
    for value in counts:
        placed = 0
        for i, lo in enumerate(edges):
            if value >= lo:
                placed = i
        out[placed] += 1
    return out


def hot_cold_split(counts: np.ndarray, threshold: int = 8) -> tuple[int, int]:
    """Number of (hot, cold) experts at Fig. 3's hot/cold boundary."""
    counts = np.asarray(counts)
    hot = int((counts >= threshold).sum())
    cold = int(((counts > 0) & (counts < threshold)).sum())
    return hot, cold
