"""Named model workloads (Table 2).

A :class:`Workload` fixes *what is being served*: model, task, batch
geometry, and calibrated routing profile -- the inputs to the runtime
cost model and the expert replay geometry.  (Traffic *scenarios* --
how load arrives over time, tenant mixes, popularity drift -- are a
separate concept and live in :data:`repro.traffic.SCENARIOS`.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.moe.config import MoEModelConfig
from repro.moe.zoo import nllb_moe_128, switch_large_128
from repro.workloads.traces import RoutingProfile


@dataclass(frozen=True)
class Workload:
    """A workload: model, task name, batch geometry, routing profile."""

    name: str
    model: MoEModelConfig
    task: str
    batch: int
    seq_len: int
    decode_steps: int
    profile: RoutingProfile

    def describe(self) -> str:
        return (
            f"{self.name}: {self.model.name} on {self.task}, "
            f"B={self.batch}, S={self.seq_len}, "
            f"{self.decode_steps} decode steps"
        )


def xsum_like(batch: int = 4, seq_len: int = 512, decode_steps: int = 32) -> Workload:
    """Switch-Large-128 on an XSum-like language-modeling workload
    (top-1 gating, Table 2)."""
    return Workload(
        name=f"xsum-b{batch}",
        model=switch_large_128(),
        task="XSum language modeling",
        batch=batch,
        seq_len=seq_len,
        decode_steps=decode_steps,
        # Language-modeling routing is sticky: decode steps reuse the
        # same hot experts almost exclusively, so PMove nearly
        # vanishes behind the GPU expert buffer (Fig. 6's 1.1x).
        profile=RoutingProfile(decoder_min_hot_fraction=0.97),
    )


def flores_like(batch: int = 4, seq_len: int = 512, decode_steps: int = 32) -> Workload:
    """NLLB-MoE on a FLORES-200-like machine-translation workload
    (top-2 gating, Table 2)."""
    return Workload(
        name=f"flores-b{batch}",
        model=nllb_moe_128(),
        task="FLORES-200 machine translation",
        batch=batch,
        seq_len=seq_len,
        decode_steps=decode_steps,
        # Multilingual translation routes more diversely across decode
        # steps (200 languages share the experts), so cold experts
        # keep appearing and PMove stays on the critical path
        # (Fig. 6's 1.9x decoder gap).
        profile=RoutingProfile(decoder_min_hot_fraction=0.86),
    )


WORKLOADS = {
    "xsum": xsum_like,
    "flores": flores_like,
}
