"""Binary on-disk DRAM trace format (``.dramtrace``).

Request-object lists stop scaling long before the controller does: a
100M-request trace is ~10 GB of :class:`~repro.dram.request.Request`
instances but only ~1.7 GB on disk in this format, and ``np.memmap``
loads it lazily (the OS pages records in as the simulation touches
them), so traces far larger than RAM stream straight into
:meth:`~repro.dram.controller.MemoryController.simulate_arrays`
without ever constructing a Python object per request.

Layout (all little-endian, fixed offsets)::

    offset  size  field
    0       8     magic  b"DRAMTRC\\0"
    8       2     uint16 format version (TRACE_VERSION)
    10      2     uint16 reserved (written as 0)
    12      8     int64  record count
    20      17*n  packed records

    record: int64 addr, int64 arrive_cycle, uint8 flags

Records are packed (17 bytes, no padding) so the file is exactly
``20 + 17 * n`` bytes; numpy handles the unaligned fields natively and
field access on the memmap (``records["addr"]``) yields strided
*views*, not copies.

``flags`` encodes request kind and priority:

- bit 0 (:data:`FLAG_WRITE`): 1 = write, 0 = read;
- bits 1-3 (:data:`PRIORITY_SHIFT`/:data:`PRIORITY_MAX`): a 0-7
  priority class, carried for schedulers that arbitrate on it (the
  current FR-FCFS controller preserves but ignores it);
- bits 4-7: reserved, must be written as 0.

Versioning rules: readers reject any version other than
:data:`TRACE_VERSION` (via the same
:func:`~repro.workloads.serialization.check_format_version` helper the
JSON routing-trace format uses).  Additive changes (new flag bits from
the reserved range, trailing header fields inside new record types)
require a version bump; the magic never changes.

Write with :func:`write_trace` (one shot) or :class:`TraceWriter`
(chunked appends, so multi-hundred-million-request traces are
generated without materializing the whole trace in memory); read with
:func:`load_trace`.
"""

from __future__ import annotations

import os
import pathlib
from typing import Iterator, Optional

import numpy as np

from repro.dram.request import FLAG_WRITE, PRIORITY_MAX, PRIORITY_SHIFT
from repro.util.atomic_io import replace_into_place, tmp_path_for
from repro.workloads.serialization import check_format_version

TRACE_MAGIC = b"DRAMTRC\x00"
TRACE_VERSION = 1
TRACE_SUFFIX = ".dramtrace"


class TraceCorruptionError(ValueError):
    """A ``.dramtrace`` file's bytes disagree with its header.

    Raised for the shapes real crashes produce -- a truncated tail, a
    stale header whose record count undershoots the bytes on disk, a
    record that decodes to an impossible address mid-stream.  Subclasses
    ``ValueError`` so every existing ``except ValueError`` caller keeps
    working; adds structure for recovery tooling:

    - ``byte_offset``: first byte known to be bad (file offset);
    - ``recoverable_records``: length of the consistent record prefix
      before that point (what ``load_trace(recover=True)`` salvages);
    - ``detail``: the human-readable diagnosis (also the message).
    """

    def __init__(
        self,
        path,
        detail: str,
        byte_offset: int = -1,
        recoverable_records: int = 0,
    ) -> None:
        super().__init__(detail)
        self.path = pathlib.Path(path)
        self.byte_offset = byte_offset
        self.recoverable_records = recoverable_records
        self.detail = detail

_PRIORITY_FIELD = PRIORITY_MAX << PRIORITY_SHIFT
_KNOWN_FLAGS = FLAG_WRITE | _PRIORITY_FIELD

HEADER_DTYPE = np.dtype(
    [("magic", "S8"), ("version", "<u2"), ("reserved", "<u2"), ("n_records", "<i8")]
)
RECORD_DTYPE = np.dtype([("addr", "<i8"), ("arrive_cycle", "<i8"), ("flags", "u1")])
HEADER_BYTES = HEADER_DTYPE.itemsize  # 20
RECORD_BYTES = RECORD_DTYPE.itemsize  # 17 (packed, no padding)


def pack_flags(write_mask, priority=0) -> np.ndarray:
    """Build a flags column from a write mask and priority classes."""
    write_mask = np.asarray(write_mask, dtype=bool)
    priority = np.asarray(priority, dtype=np.int64)
    if priority.ndim == 0:
        priority = np.broadcast_to(priority, write_mask.shape)
    if priority.size and (priority.min() < 0 or priority.max() > PRIORITY_MAX):
        raise ValueError(f"priority must be in [0, {PRIORITY_MAX}]")
    return write_mask.astype(np.uint8) | (priority.astype(np.uint8) << PRIORITY_SHIFT)


def flags_write_mask(flags) -> np.ndarray:
    """Boolean is-write column from a flags column."""
    return (np.asarray(flags) & FLAG_WRITE).astype(bool)


def flags_priority(flags) -> np.ndarray:
    """Priority-class column (0..7) from a flags column."""
    return (np.asarray(flags, dtype=np.uint8) & _PRIORITY_FIELD) >> PRIORITY_SHIFT


def _pack_header(n_records: int) -> bytes:
    header = np.zeros((), dtype=HEADER_DTYPE)
    header["magic"] = TRACE_MAGIC
    header["version"] = TRACE_VERSION
    header["n_records"] = n_records
    return header.tobytes()


def _normalize_columns(
    addrs, arrive_cycles, flags
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    addrs = np.ascontiguousarray(addrs, dtype=np.int64)
    if addrs.ndim != 1:
        raise ValueError("addrs must be one-dimensional")
    n = addrs.shape[0]
    if arrive_cycles is None:
        arrive_cycles = np.zeros(n, dtype=np.int64)
    else:
        arrive_cycles = np.ascontiguousarray(arrive_cycles, dtype=np.int64)
    if flags is None:
        flags = np.zeros(n, dtype=np.uint8)
    else:
        flags = np.ascontiguousarray(flags, dtype=np.uint8)
    if arrive_cycles.shape != (n,) or flags.shape != (n,):
        raise ValueError(
            f"column length mismatch: {n} addrs, "
            f"{arrive_cycles.shape[0]} arrive_cycles, {flags.shape[0]} flags"
        )
    if np.any(flags & ~np.uint8(_KNOWN_FLAGS)):
        raise ValueError("flags use reserved bits 4-7; only write/priority are defined")
    return addrs, arrive_cycles, flags


class TraceWriter:
    """Streaming ``.dramtrace`` writer with atomic publication.

    Appends column chunks to a sibling temporary file
    (``<name>.<pid>.tmp``); :meth:`close` patches the header's record
    count, fsyncs, and atomically renames the staging file over
    ``path`` -- so arbitrarily long traces are generated chunk by
    chunk with bounded memory, and a crash (or :meth:`abort`) at any
    point leaves either the previous complete trace or no trace under
    the real name, never a partial one.  Usable as a context manager.
    """

    def __init__(self, path) -> None:
        self.path = pathlib.Path(path)
        self._tmp = tmp_path_for(self.path)
        self._fh = open(self._tmp, "wb")
        self._n = 0
        self._fh.write(_pack_header(0))

    def append(self, addrs, arrive_cycles=None, flags=None) -> int:
        """Append one chunk of parallel columns; returns rows written."""
        if self._fh is None:
            raise ValueError("trace writer is closed")
        addrs, arrive_cycles, flags = _normalize_columns(addrs, arrive_cycles, flags)
        records = np.empty(addrs.shape[0], dtype=RECORD_DTYPE)
        records["addr"] = addrs
        records["arrive_cycle"] = arrive_cycles
        records["flags"] = flags
        self._fh.write(records.tobytes())
        self._n += records.shape[0]
        return records.shape[0]

    def close(self) -> None:
        """Finalize the header and atomically publish the trace."""
        if self._fh is None:
            return
        try:
            self._fh.seek(0)
            self._fh.write(_pack_header(self._n))
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None
            replace_into_place(self._tmp, self.path)
        except BaseException:
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            self._tmp.unlink(missing_ok=True)
            raise

    def abort(self) -> None:
        """Discard the staging file without publishing -- a failed
        generation never leaves behind a valid-looking partial (or
        spuriously empty) trace, and any previous trace under ``path``
        survives untouched."""
        if self._fh is None:
            return
        self._fh.close()
        self._fh = None
        self._tmp.unlink(missing_ok=True)

    @property
    def n_records(self) -> int:
        return self._n

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.close()


def write_trace(path, addrs, arrive_cycles=None, flags=None) -> int:
    """Write one full trace in a single shot; returns rows written."""
    with TraceWriter(path) as writer:
        return writer.append(addrs, arrive_cycles, flags)


class MappedTrace:
    """A loaded ``.dramtrace``: zero-copy column views over the file.

    ``addrs`` / ``arrive_cycles`` / ``flags`` are strided views into
    the record memmap (or into one in-memory read for ``mmap=False``);
    nothing is materialized until an operation consumes a column.
    """

    def __init__(
        self, path: pathlib.Path, records: np.ndarray, mmapped: bool = False
    ) -> None:
        self.path = path
        self.records = records
        # memmap-backed views page bytes in lazily, so a file that
        # shrinks *after* load_trace validated it would fault (or read
        # zeros) mid-iteration; iter_chunks re-checks the size per
        # chunk when mmapped so truncation surfaces as a structured
        # TraceCorruptionError instead.
        self._mmapped = mmapped
        self._expected_size = HEADER_BYTES + records.shape[0] * RECORD_BYTES

    def __len__(self) -> int:
        return self.records.shape[0]

    @property
    def addrs(self) -> np.ndarray:
        return self.records["addr"]

    @property
    def arrive_cycles(self) -> np.ndarray:
        return self.records["arrive_cycle"]

    @property
    def flags(self) -> np.ndarray:
        return self.records["flags"]

    @property
    def write_mask(self) -> np.ndarray:
        return flags_write_mask(self.records["flags"])

    @property
    def priorities(self) -> np.ndarray:
        return flags_priority(self.records["flags"])

    def iter_chunks(self, chunk_size: int, with_offsets: bool = False) -> Iterator:
        """Yield materialized ``(addrs, arrive_cycles, flags)`` column
        chunks of at most ``chunk_size`` rows, in file order -- the
        streamed form consumers use to bound peak memory on traces
        larger than RAM.

        With ``with_offsets=True``, yields ``(offset, columns)`` pairs
        where ``offset`` is the chunk's starting row in the file --
        what chunked consumers (the controller's
        ``simulate_trace_streaming``) need to scatter per-request
        outputs back to file order.
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        n = self.records.shape[0]
        for lo in range(0, n, chunk_size):
            if self._mmapped:
                hi = min(lo + chunk_size, n)
                needed = HEADER_BYTES + hi * RECORD_BYTES
                try:
                    size = self.path.stat().st_size
                except OSError as exc:
                    raise TraceCorruptionError(
                        self.path,
                        f"{self.path}: trace file vanished mid-stream "
                        f"({exc}); {lo} record(s) already streamed",
                        byte_offset=HEADER_BYTES + lo * RECORD_BYTES,
                        recoverable_records=lo,
                    ) from exc
                if size < needed:
                    raise TraceCorruptionError(
                        self.path,
                        f"{self.path}: trace file truncated mid-stream to "
                        f"{size} bytes (chunk at record {lo} needs "
                        f"{needed}); {lo} record(s) salvageable before "
                        "the damage",
                        byte_offset=size,
                        recoverable_records=lo,
                    )
            chunk = self.records[lo : lo + chunk_size]
            columns = (
                np.ascontiguousarray(chunk["addr"]),
                np.ascontiguousarray(chunk["arrive_cycle"]),
                np.ascontiguousarray(chunk["flags"]),
            )
            yield (lo, columns) if with_offsets else columns


def read_header(path) -> tuple[int, int]:
    """Validate a trace file's header; returns (version, n_records).

    Header/size mismatches are detected in *both* directions and
    raised as :class:`TraceCorruptionError` carrying the salvageable
    record count: fewer bytes than the header promises (a lost tail),
    and more bytes than it promises (including the crash-before-
    header-patch shape: a stale n=0 header with trailing record
    bytes).
    """
    path = pathlib.Path(path)
    size = path.stat().st_size
    if size < HEADER_BYTES:
        raise TraceCorruptionError(
            path,
            f"{path}: truncated trace file ({size} bytes; "
            f"the header alone is {HEADER_BYTES})",
            byte_offset=size,
        )
    with open(path, "rb") as fh:
        raw = fh.read(HEADER_BYTES)
    # Compare the magic on the raw bytes: numpy S-type scalars strip
    # trailing NULs, and the magic ends in one.
    if raw[:8] != TRACE_MAGIC:
        raise ValueError(f"{path}: not a .dramtrace file (bad magic)")
    header = np.frombuffer(raw, dtype=HEADER_DTYPE)[0]
    check_format_version(int(header["version"]), TRACE_VERSION, str(path))
    n = int(header["n_records"])
    if n < 0:
        raise ValueError(f"{path}: negative record count {n}")
    expected = HEADER_BYTES + n * RECORD_BYTES
    if size != expected:
        # Whole records actually on disk; what recovery can salvage.
        on_disk = (size - HEADER_BYTES) // RECORD_BYTES
        recoverable = min(n, on_disk) if size < expected else on_disk
        raise TraceCorruptionError(
            path,
            f"{path}: truncated or oversized trace file: {size} bytes "
            f"on disk, header promises {n} records ({expected} bytes); "
            f"{recoverable} record(s) recoverable",
            byte_offset=min(size, expected),
            recoverable_records=recoverable,
        )
    return int(header["version"]), n


def load_trace(path, mmap: bool = True, recover: bool = False) -> MappedTrace:
    """Open a ``.dramtrace`` for reading.

    ``mmap=True`` (default) maps the records with ``np.memmap`` --
    zero-copy, lazily paged, read-only.  ``mmap=False`` reads the file
    into memory instead (useful when the file will be deleted or
    rewritten while the arrays are alive).

    ``recover=True`` salvages a corrupt file's consistent record
    prefix (the ``recoverable_records`` a
    :class:`TraceCorruptionError` reports) instead of raising --
    whole records only, never a torn one.  Files broken beyond a
    header/size mismatch (bad magic, unreadable header) still raise.
    """
    path = pathlib.Path(path)
    try:
        _, n = read_header(path)
    except TraceCorruptionError as exc:
        if not recover or exc.recoverable_records <= 0:
            raise
        n = exc.recoverable_records
    if n == 0:
        records = np.empty(0, dtype=RECORD_DTYPE)
    elif mmap:
        records = np.memmap(
            path, dtype=RECORD_DTYPE, mode="r", offset=HEADER_BYTES, shape=(n,)
        )
    else:
        with open(path, "rb") as fh:
            fh.seek(HEADER_BYTES)
            records = np.frombuffer(fh.read(), dtype=RECORD_DTYPE, count=n).copy()
    return MappedTrace(path, records, mmapped=(mmap and n > 0))


def generate_trace_file(
    path,
    pattern: str,
    n_requests: int,
    config=None,
    seed: int = 0,
    arrival: Optional[str] = None,
    arrival_gap: float = 8.0,
    chunk_requests: int = 4_000_000,
) -> int:
    """Generate a named workload straight to a ``.dramtrace`` file.

    ``pattern`` selects from
    :data:`~repro.workloads.traces.MEMORY_TRACE_ARRAYS` and
    ``arrival`` (optionally) from
    :data:`~repro.workloads.traces.ARRIVAL_PROCESSES`; this is the
    array-native export hook behind ``repro trace gen``.  The packed
    record buffer is written in ``chunk_requests``-row chunks (via
    :class:`TraceWriter`), so the 17-byte-per-record staging copy
    never exceeds one chunk; the generator's own column arrays are
    the footprint floor.  Returns the number of records written.
    """
    from repro.workloads.traces import generate_trace_arrays

    if n_requests < 0:
        raise ValueError("n_requests must be non-negative")
    if chunk_requests < 1:
        raise ValueError("chunk_requests must be >= 1")
    addrs, arrive_cycles, flags = generate_trace_arrays(
        pattern,
        n_requests,
        config=config,
        seed=seed,
        arrival=arrival,
        arrival_gap=arrival_gap,
    )
    with TraceWriter(path) as writer:
        for lo in range(0, n_requests, chunk_requests):
            hi = lo + chunk_requests
            writer.append(addrs[lo:hi], arrive_cycles[lo:hi], flags[lo:hi])
        return writer.n_records
