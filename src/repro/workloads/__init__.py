"""Synthetic workloads: routing traces and batch generators.

The paper evaluates on XSum (language modeling, Switch-Large) and
FLORES-200 (machine translation, NLLB-MoE).  Neither dataset nor the
trained routers are available offline, so this package generates
routing traces whose *expert skew* is calibrated to the paper's
measurement (Fig. 3): a few hot experts take most tokens while the
majority are cold (0-7 tokens) -- the property MoNDE exploits.
"""

from repro.workloads.distributions import (
    FIG3_BUCKETS,
    FIG3_REFERENCE,
    bucket_histogram,
    sample_expert_counts,
    zipf_popularity,
)
from repro.workloads.catalog import (
    WORKLOADS,
    Workload,
    flores_like,
    xsum_like,
)
from repro.workloads.serialization import SavedTrace, capture_trace
from repro.workloads.trace_io import MappedTrace, TraceWriter, load_trace, write_trace
from repro.workloads.traces import RoutingProfile, RoutingTraceGenerator

__all__ = [
    "FIG3_BUCKETS",
    "FIG3_REFERENCE",
    "MappedTrace",
    "RoutingProfile",
    "RoutingTraceGenerator",
    "SavedTrace",
    "TraceWriter",
    "WORKLOADS",
    "Workload",
    "bucket_histogram",
    "capture_trace",
    "flores_like",
    "load_trace",
    "sample_expert_counts",
    "write_trace",
    "xsum_like",
    "zipf_popularity",
]
