"""Routing- and memory-trace generation for the timing models.

A :class:`RoutingTraceGenerator` produces per-layer token counts for
encoder passes and per-step counts for auto-regressive decoding; the
module-level ``*_memory_trace`` functions produce the corresponding
64-byte DRAM request streams (streaming weight fetches, uniform random
access, and skewed MoE expert fetches) consumed by the cycle-level
memory controller and the ``benchmarks/perf`` harness.

Routing traces model two properties measured on trained MoE models:

- *Depth-dependent skew*: early layers route broadly (Fig. 3's layer 0
  activates ~100 of 128 experts), deeper layers concentrate sharply.
- *Temporal persistence*: each layer's expert popularity is fixed
  across decode steps, so decoders touch the same hot experts step
  after step (the property that makes the GPU expert buffer effective
  and keeps decoder PMove small -- Fig. 6's modest decoder gains).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dram.config import DRAMConfig, LPDDR5X_8533
from repro.dram.request import Request
from repro.moe.config import MoEModelConfig
from repro.workloads.distributions import mixture_popularity, sample_expert_counts


@dataclass(frozen=True)
class RoutingProfile:
    """Skew schedule across MoE-layer depth.

    Expert popularity follows the Fig. 3-calibrated hot/cold mixture
    (:func:`repro.workloads.distributions.mixture_popularity`).  The
    hot experts' event share ramps from ``hot_fraction_first`` at the
    first MoE layer to ``hot_fraction_last`` at the deepest, and the
    cold tail sparsifies (``tail_shape_first`` -> ``tail_shape_last``);
    decoder layers are floored at ``decoder_min_hot_fraction``.
    """

    hot_fraction_first: float = 0.88
    hot_fraction_last: float = 0.975
    tail_shape_first: float = 0.55
    tail_shape_last: float = 0.30
    n_hot: int = 2
    decoder_min_hot_fraction: float = 0.94

    def _ramp(self, first: float, last: float, rank: int, n_layers: int) -> float:
        if n_layers <= 1:
            return last
        frac = rank / (n_layers - 1)
        return first + frac * (last - first)

    def popularity(
        self,
        n_experts: int,
        rank: int,
        n_layers: int,
        decoder: bool,
        rng: np.random.Generator,
    ) -> np.ndarray:
        hot = self._ramp(self.hot_fraction_first, self.hot_fraction_last, rank, n_layers)
        if decoder:
            hot = max(hot, self.decoder_min_hot_fraction)
        tail = self._ramp(self.tail_shape_first, self.tail_shape_last, rank, n_layers)
        return mixture_popularity(
            n_experts, rng, hot_fraction=hot, n_hot=self.n_hot, tail_shape=tail
        )


class RoutingTraceGenerator:
    """Deterministic (seeded) routing traces for one model + batch."""

    def __init__(
        self,
        model: MoEModelConfig,
        batch: int,
        seq_len: int,
        profile: RoutingProfile | None = None,
        seed: int = 0,
    ) -> None:
        if batch < 1 or seq_len < 1:
            raise ValueError("batch and seq_len must be >= 1")
        if not model.is_moe:
            raise ValueError(f"model {model.name} has no experts to route")
        self.model = model
        self.batch = batch
        self.seq_len = seq_len
        self.profile = profile or RoutingProfile()
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        # Fixed per-layer popularity: one vector per (part, MoE rank).
        self._popularity: dict[tuple[str, int], np.ndarray] = {}

    _PART_CODES = {"encoder": 0xE, "decoder": 0xD}

    def _layer_popularity(self, part: str, rank: int, n_layers: int) -> np.ndarray:
        key = (part, rank)
        if key not in self._popularity:
            # Stable per-part code: str hash() is salted per process
            # and would make traces irreproducible across runs.
            rng = np.random.default_rng((self.seed, self._PART_CODES[part], rank))
            self._popularity[key] = self.profile.popularity(
                self.model.n_experts,
                rank,
                n_layers,
                decoder=(part == "decoder"),
                rng=rng,
            )
        return self._popularity[key]

    # -- encoder -------------------------------------------------------------

    @property
    def encoder_tokens(self) -> int:
        return self.batch * self.seq_len

    def encoder_layer_counts(self, moe_layer_rank: int) -> np.ndarray:
        """Token counts per expert for one encoder MoE layer pass."""
        n_layers = max(1, self.model.n_moe_encoder_layers)
        popularity = self._layer_popularity("encoder", moe_layer_rank, n_layers)
        events = self.encoder_tokens * self.model.top_k
        return sample_expert_counts(
            self.model.n_experts, events, 0.0, self._rng, popularity=popularity
        )

    def encoder_trace(self) -> list[np.ndarray]:
        """Counts for every encoder MoE layer, shallow to deep."""
        return [
            self.encoder_layer_counts(rank)
            for rank in range(self.model.n_moe_encoder_layers)
        ]

    # -- decoder -------------------------------------------------------------

    @property
    def decoder_tokens_per_step(self) -> int:
        """Auto-regressive decoding routes one token per sequence."""
        return self.batch

    def decoder_step_counts(self, moe_layer_rank: int, step: int) -> np.ndarray:
        """Token counts per expert for one decoder MoE layer at one
        auto-regressive step."""
        n_layers = max(1, self.model.n_moe_decoder_layers)
        popularity = self._layer_popularity("decoder", moe_layer_rank, n_layers)
        events = self.decoder_tokens_per_step * self.model.top_k
        rng = np.random.default_rng((self.seed, moe_layer_rank, step, 0xD))
        return sample_expert_counts(
            self.model.n_experts, events, 0.0, rng, popularity=popularity
        )

    def decoder_trace(self, n_steps: int) -> list[list[np.ndarray]]:
        """Counts[step][moe_layer_rank] for an ``n_steps`` generation."""
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        return [
            [
                self.decoder_step_counts(rank, step)
                for rank in range(self.model.n_moe_decoder_layers)
            ]
            for step in range(n_steps)
        ]


# -- DRAM request-stream generation ------------------------------------------
#
# The cycle-level memory controller consumes flat lists of 64-byte
# requests; these generators produce the three access shapes that
# bound its behaviour (and that ``repro bench`` times): contiguous
# streaming (expert-weight fetch), uniform random (worst case), and
# skewed MoE expert fetches (the paper's serving mix: a few hot
# experts streamed repeatedly over a long cold tail).  All address
# math is numpy-vectorized so trace generation never dominates a
# million-request simulation.
#
# Each generator exists in two forms: an array-native ``*_arrays``
# form returning ``(addrs, write_mask)`` columns (what
# ``MemoryController.simulate_arrays`` and the ``.dramtrace`` export
# in :mod:`repro.workloads.trace_io` consume), and a thin
# ``list[Request]`` wrapper kept for the object API.  The array form
# is the source of truth; the wrapper never re-rolls the RNG, so both
# forms of one (pattern, seed) describe the same trace.


def _build_requests(addrs: np.ndarray, write_mask: np.ndarray) -> list[Request]:
    from repro.dram.request import requests_from_arrays

    return requests_from_arrays(addrs, flags=write_mask.astype(np.uint8))


def streaming_memory_trace_arrays(
    n_requests: int,
    config: DRAMConfig = LPDDR5X_8533,
    base: int = 0,
    write_fraction: float = 0.0,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Contiguous 64-byte stream from ``base``, wrapping at capacity;
    returns ``(addrs, write_mask)`` columns."""
    if n_requests < 0:
        raise ValueError("n_requests must be non-negative")
    org = config.organization
    step = org.access_bytes
    total_blocks = org.total_capacity_bytes // step
    blocks = (base // step + np.arange(n_requests, dtype=np.int64)) % total_blocks
    rng = np.random.default_rng(seed)
    writes = (
        rng.random(n_requests) < write_fraction
        if write_fraction > 0
        else np.zeros(n_requests, dtype=bool)
    )
    return blocks * step, writes


def streaming_memory_trace(
    n_requests: int,
    config: DRAMConfig = LPDDR5X_8533,
    base: int = 0,
    write_fraction: float = 0.0,
    seed: int = 0,
) -> list[Request]:
    """Contiguous 64-byte stream from ``base``, wrapping at capacity."""
    return _build_requests(
        *streaming_memory_trace_arrays(n_requests, config, base, write_fraction, seed)
    )


def random_memory_trace_arrays(
    n_requests: int,
    config: DRAMConfig = LPDDR5X_8533,
    write_fraction: float = 0.25,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Uniform-random 64-byte requests over the full address space;
    returns ``(addrs, write_mask)`` columns."""
    if n_requests < 0:
        raise ValueError("n_requests must be non-negative")
    org = config.organization
    step = org.access_bytes
    rng = np.random.default_rng(seed)
    blocks = rng.integers(
        0, org.total_capacity_bytes // step, size=n_requests, dtype=np.int64
    )
    writes = rng.random(n_requests) < write_fraction
    return blocks * step, writes


def random_memory_trace(
    n_requests: int,
    config: DRAMConfig = LPDDR5X_8533,
    write_fraction: float = 0.25,
    seed: int = 0,
) -> list[Request]:
    """Uniform-random 64-byte requests over the full address space."""
    return _build_requests(
        *random_memory_trace_arrays(n_requests, config, write_fraction, seed)
    )


def moe_expert_memory_trace_arrays(
    n_requests: int,
    config: DRAMConfig = LPDDR5X_8533,
    n_experts: int = 128,
    expert_bytes: int = 1 << 22,
    burst_blocks: int = 32,
    hot_fraction: float = 0.9,
    n_hot: int = 2,
    tail_shape: float = 0.4,
    write_fraction: float = 0.1,
    seed: int = 0,
    experts: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Skewed MoE expert-weight traffic; returns ``(addrs,
    write_mask)`` columns.

    Experts own contiguous weight regions; each *burst* picks an
    expert from the Fig. 3-calibrated hot/cold mixture and streams
    ``burst_blocks`` consecutive 64-byte blocks from that expert's
    region (resuming where the expert's previous fetch left off).  A
    ``write_fraction`` of bursts are activation writebacks.  The
    result interleaves long sequential runs (hot experts, row hits)
    with scattered cold-expert fetches (row misses) -- the mix that
    makes FR-FCFS lookahead matter.

    With an explicit ``experts`` array (one expert id per burst) the
    popularity sampling is skipped and the bursts target exactly that
    sequence -- the trace-faithful path
    :func:`repro.traffic.routing_trace.routing_dram_arrays` uses to
    replay real routing traces through the identical region layout,
    resume-offset, and writeback math.
    """
    if n_requests < 0:
        raise ValueError("n_requests must be non-negative")
    if n_experts < 1 or burst_blocks < 1:
        raise ValueError("n_experts and burst_blocks must be >= 1")
    org = config.organization
    step = org.access_bytes
    total_blocks = org.total_capacity_bytes // step
    if n_experts > total_blocks:
        raise ValueError(
            f"{n_experts} experts cannot fit in {total_blocks} blocks of capacity"
        )
    expert_blocks = max(burst_blocks, expert_bytes // step)
    if n_experts * expert_blocks > total_blocks:
        # Shrink regions to fit the device; bursts wrap inside the
        # (possibly shorter-than-burst) region via the modulo below.
        expert_blocks = total_blocks // n_experts

    rng = np.random.default_rng(seed)
    if experts is not None:
        experts = np.asarray(experts, dtype=np.int64)
        if experts.ndim != 1:
            raise ValueError("experts must be a 1-D array of expert ids")
        if len(experts) and (experts.min() < 0 or experts.max() >= n_experts):
            raise ValueError(
                f"expert ids must be in [0, {n_experts}), got "
                f"[{int(experts.min())}, {int(experts.max())}]"
            )
        n_bursts = len(experts)
        if n_requests > n_bursts * burst_blocks:
            raise ValueError(
                f"{n_requests} requests need more than the "
                f"{n_bursts} provided expert bursts x {burst_blocks} blocks"
            )
    else:
        popularity = mixture_popularity(
            n_experts, rng, hot_fraction=hot_fraction, n_hot=n_hot,
            tail_shape=tail_shape,
        )
        n_bursts = -(-n_requests // burst_blocks)
        experts = rng.choice(n_experts, size=n_bursts, p=popularity)

    # Per-burst resume offset: the k-th fetch of an expert starts
    # where its (k-1)-th left off (vectorized cumulative count).
    order = np.argsort(experts, kind="stable")
    sorted_experts = experts[order]
    group_start = np.r_[0, np.flatnonzero(np.diff(sorted_experts)) + 1]
    sizes = np.diff(np.r_[group_start, n_bursts])
    cumcount_sorted = np.arange(n_bursts) - np.repeat(group_start, sizes)
    cumcount = np.empty(n_bursts, dtype=np.int64)
    cumcount[order] = cumcount_sorted

    start_blocks = (
        experts.astype(np.int64) * expert_blocks
        + (cumcount * burst_blocks) % expert_blocks
    )
    # Offsets wrap within each expert's region, never into a neighbour's.
    offsets = np.arange(burst_blocks, dtype=np.int64)
    region_base = experts.astype(np.int64)[:, None] * expert_blocks
    blocks = (
        (start_blocks[:, None] - region_base + offsets) % expert_blocks + region_base
    )
    burst_writes = rng.random(n_bursts) < write_fraction
    writes = np.repeat(burst_writes, burst_blocks)
    addrs = blocks.reshape(-1)[:n_requests] * step
    return addrs, writes[:n_requests]


def moe_expert_memory_trace(
    n_requests: int,
    config: DRAMConfig = LPDDR5X_8533,
    n_experts: int = 128,
    expert_bytes: int = 1 << 22,
    burst_blocks: int = 32,
    hot_fraction: float = 0.9,
    n_hot: int = 2,
    tail_shape: float = 0.4,
    write_fraction: float = 0.1,
    seed: int = 0,
) -> list[Request]:
    """Skewed MoE expert-weight traffic (Request-object form of
    :func:`moe_expert_memory_trace_arrays`)."""
    return _build_requests(
        *moe_expert_memory_trace_arrays(
            n_requests,
            config,
            n_experts,
            expert_bytes,
            burst_blocks,
            hot_fraction,
            n_hot,
            tail_shape,
            write_fraction,
            seed,
        )
    )


#: Named trace generators used by ``repro bench`` / benchmarks/perf.
MEMORY_TRACES = {
    "streaming": streaming_memory_trace,
    "random": random_memory_trace,
    "moe-skewed": moe_expert_memory_trace,
}

#: Array-native forms of :data:`MEMORY_TRACES` (same keys, same
#: seed-for-seed traces): each returns ``(addrs, write_mask)``.
MEMORY_TRACE_ARRAYS = {
    "streaming": streaming_memory_trace_arrays,
    "random": random_memory_trace_arrays,
    "moe-skewed": moe_expert_memory_trace_arrays,
}


def generate_trace_arrays(
    pattern: str,
    n_requests: int,
    config: DRAMConfig | None = None,
    seed: int = 0,
    arrival: str | None = None,
    arrival_gap: float = 8.0,
    **generator_kwargs,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One-stop array-native trace: ``(addrs, arrive_cycles, flags)``.

    ``pattern`` selects from :data:`MEMORY_TRACE_ARRAYS` and
    ``arrival`` (optionally) from :data:`ARRIVAL_PROCESSES` with mean
    gap ``arrival_gap``; ``arrival=None`` keeps the all-at-cycle-0
    batch default.  The flags column uses the ``.dramtrace`` encoding
    (:func:`repro.workloads.trace_io.pack_flags`).  This is the shared
    entry point behind ``repro trace gen`` and the array path of
    ``repro bench``.
    """
    from repro.workloads.trace_io import pack_flags

    try:
        generator = MEMORY_TRACE_ARRAYS[pattern]
    except KeyError:
        raise ValueError(
            f"unknown pattern {pattern!r}; choose from {sorted(MEMORY_TRACE_ARRAYS)}"
        ) from None
    addrs, write_mask = generator(
        n_requests, config=config or LPDDR5X_8533, seed=seed, **generator_kwargs
    )
    if arrival is None:
        arrive_cycles = np.zeros(n_requests, dtype=np.int64)
    else:
        try:
            process = ARRIVAL_PROCESSES[arrival]
        except KeyError:
            raise ValueError(
                f"unknown arrival process {arrival!r}; "
                f"choose from {sorted(ARRIVAL_PROCESSES)}"
            ) from None
        arrive_cycles = process(n_requests, arrival_gap, seed=seed)
    return addrs, arrive_cycles, pack_flags(write_mask)


# -- arrival-process generation -----------------------------------------------
#
# The controller honors ``Request.arrive_cycle``, so a memory trace is
# really (addresses, arrivals).  These generators produce sorted
# arrival-cycle arrays for the three open-loop shapes that bound
# queueing behaviour -- Poisson (memoryless serving traffic),
# fixed-rate batches (lockstep inference steps), and on/off bursts
# (think periodic expert prefetch storms) -- all seeded and offset by
# ``start_cycle`` so multi-stream traces can be phase-shifted.


def poisson_arrival_cycles(
    n: int,
    mean_gap_cycles: float,
    seed: int = 0,
    start_cycle: int = 0,
) -> np.ndarray:
    """Open-loop Poisson arrivals: exponential inter-arrival gaps with
    the given mean, floored to integer cycles."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if mean_gap_cycles <= 0:
        raise ValueError("mean_gap_cycles must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(mean_gap_cycles, size=n)
    return start_cycle + np.floor(np.cumsum(gaps)).astype(np.int64)


def batched_arrival_cycles(
    n: int,
    batch_size: int,
    batch_gap_cycles: int,
    start_cycle: int = 0,
) -> np.ndarray:
    """Fixed-rate batched arrivals: ``batch_size`` requests land
    together every ``batch_gap_cycles`` (deterministic)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if batch_size < 1 or batch_gap_cycles < 1:
        raise ValueError("batch_size and batch_gap_cycles must be >= 1")
    batches = np.arange(n, dtype=np.int64) // batch_size
    return start_cycle + batches * batch_gap_cycles


def onoff_arrival_cycles(
    n: int,
    mean_gap_cycles: float,
    on_cycles: int,
    off_cycles: int,
    seed: int = 0,
    start_cycle: int = 0,
) -> np.ndarray:
    """On/off bursty arrivals: Poisson arrivals at ``mean_gap_cycles``
    during ``on_cycles``-long active periods separated by silent
    ``off_cycles`` gaps.  Arrivals are generated on a compressed
    active-time axis and expanded by the duty cycle, so the offered
    load during bursts is rate-exact."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if mean_gap_cycles <= 0:
        raise ValueError("mean_gap_cycles must be positive")
    if on_cycles < 1 or off_cycles < 0:
        raise ValueError("on_cycles must be >= 1 and off_cycles >= 0")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(mean_gap_cycles, size=n)
    active = np.floor(np.cumsum(gaps)).astype(np.int64)
    period = on_cycles + off_cycles
    return start_cycle + (active // on_cycles) * period + active % on_cycles


def apply_arrivals(requests: list[Request], cycles: np.ndarray) -> list[Request]:
    """Stamp an arrival-cycle array onto a request list, in place."""
    if len(requests) != len(cycles):
        raise ValueError(
            f"{len(cycles)} arrival cycles for {len(requests)} requests"
        )
    for req, cycle in zip(requests, cycles.tolist()):
        req.arrive_cycle = int(cycle)
    return requests


def _batched_process(
    n: int, mean_gap_cycles: float, seed: int = 0, start_cycle: int = 0
) -> np.ndarray:
    if mean_gap_cycles <= 0:
        raise ValueError("mean_gap_cycles must be positive")
    return batched_arrival_cycles(
        n,
        batch_size=64,
        batch_gap_cycles=max(1, int(round(64 * mean_gap_cycles))),
        start_cycle=start_cycle,
    )


def _onoff_process(
    n: int, mean_gap_cycles: float, seed: int = 0, start_cycle: int = 0
) -> np.ndarray:
    # 4x the offered rate while on, 1/4 duty cycle: same mean rate.
    if mean_gap_cycles <= 0:
        raise ValueError("mean_gap_cycles must be positive")
    return onoff_arrival_cycles(
        n,
        mean_gap_cycles / 4.0,
        on_cycles=max(1, int(round(256 * mean_gap_cycles))),
        off_cycles=max(1, int(round(768 * mean_gap_cycles))),
        seed=seed,
        start_cycle=start_cycle,
    )


#: Named arrival processes (``repro bench --arrival``).  Each takes
#: (n, mean_gap_cycles, seed, start_cycle) and returns sorted cycles;
#: the batched/on-off shapes keep the same offered rate as a Poisson
#: process with the same mean gap.
ARRIVAL_PROCESSES = {
    "poisson": poisson_arrival_cycles,
    "batched": _batched_process,
    "onoff": _onoff_process,
}
