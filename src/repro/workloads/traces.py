"""Routing-trace generation for the timing models.

A :class:`RoutingTraceGenerator` produces per-layer token counts for
encoder passes and per-step counts for auto-regressive decoding, with
two properties measured on trained MoE models:

- *Depth-dependent skew*: early layers route broadly (Fig. 3's layer 0
  activates ~100 of 128 experts), deeper layers concentrate sharply.
- *Temporal persistence*: each layer's expert popularity is fixed
  across decode steps, so decoders touch the same hot experts step
  after step (the property that makes the GPU expert buffer effective
  and keeps decoder PMove small -- Fig. 6's modest decoder gains).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.moe.config import MoEModelConfig
from repro.workloads.distributions import mixture_popularity, sample_expert_counts


@dataclass(frozen=True)
class RoutingProfile:
    """Skew schedule across MoE-layer depth.

    Expert popularity follows the Fig. 3-calibrated hot/cold mixture
    (:func:`repro.workloads.distributions.mixture_popularity`).  The
    hot experts' event share ramps from ``hot_fraction_first`` at the
    first MoE layer to ``hot_fraction_last`` at the deepest, and the
    cold tail sparsifies (``tail_shape_first`` -> ``tail_shape_last``);
    decoder layers are floored at ``decoder_min_hot_fraction``.
    """

    hot_fraction_first: float = 0.88
    hot_fraction_last: float = 0.975
    tail_shape_first: float = 0.55
    tail_shape_last: float = 0.30
    n_hot: int = 2
    decoder_min_hot_fraction: float = 0.94

    def _ramp(self, first: float, last: float, rank: int, n_layers: int) -> float:
        if n_layers <= 1:
            return last
        frac = rank / (n_layers - 1)
        return first + frac * (last - first)

    def popularity(
        self,
        n_experts: int,
        rank: int,
        n_layers: int,
        decoder: bool,
        rng: np.random.Generator,
    ) -> np.ndarray:
        hot = self._ramp(self.hot_fraction_first, self.hot_fraction_last, rank, n_layers)
        if decoder:
            hot = max(hot, self.decoder_min_hot_fraction)
        tail = self._ramp(self.tail_shape_first, self.tail_shape_last, rank, n_layers)
        return mixture_popularity(
            n_experts, rng, hot_fraction=hot, n_hot=self.n_hot, tail_shape=tail
        )


class RoutingTraceGenerator:
    """Deterministic (seeded) routing traces for one model + batch."""

    def __init__(
        self,
        model: MoEModelConfig,
        batch: int,
        seq_len: int,
        profile: RoutingProfile | None = None,
        seed: int = 0,
    ) -> None:
        if batch < 1 or seq_len < 1:
            raise ValueError("batch and seq_len must be >= 1")
        if not model.is_moe:
            raise ValueError(f"model {model.name} has no experts to route")
        self.model = model
        self.batch = batch
        self.seq_len = seq_len
        self.profile = profile or RoutingProfile()
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        # Fixed per-layer popularity: one vector per (part, MoE rank).
        self._popularity: dict[tuple[str, int], np.ndarray] = {}

    _PART_CODES = {"encoder": 0xE, "decoder": 0xD}

    def _layer_popularity(self, part: str, rank: int, n_layers: int) -> np.ndarray:
        key = (part, rank)
        if key not in self._popularity:
            # Stable per-part code: str hash() is salted per process
            # and would make traces irreproducible across runs.
            rng = np.random.default_rng((self.seed, self._PART_CODES[part], rank))
            self._popularity[key] = self.profile.popularity(
                self.model.n_experts,
                rank,
                n_layers,
                decoder=(part == "decoder"),
                rng=rng,
            )
        return self._popularity[key]

    # -- encoder -------------------------------------------------------------

    @property
    def encoder_tokens(self) -> int:
        return self.batch * self.seq_len

    def encoder_layer_counts(self, moe_layer_rank: int) -> np.ndarray:
        """Token counts per expert for one encoder MoE layer pass."""
        n_layers = max(1, self.model.n_moe_encoder_layers)
        popularity = self._layer_popularity("encoder", moe_layer_rank, n_layers)
        events = self.encoder_tokens * self.model.top_k
        return sample_expert_counts(
            self.model.n_experts, events, 0.0, self._rng, popularity=popularity
        )

    def encoder_trace(self) -> list[np.ndarray]:
        """Counts for every encoder MoE layer, shallow to deep."""
        return [
            self.encoder_layer_counts(rank)
            for rank in range(self.model.n_moe_encoder_layers)
        ]

    # -- decoder -------------------------------------------------------------

    @property
    def decoder_tokens_per_step(self) -> int:
        """Auto-regressive decoding routes one token per sequence."""
        return self.batch

    def decoder_step_counts(self, moe_layer_rank: int, step: int) -> np.ndarray:
        """Token counts per expert for one decoder MoE layer at one
        auto-regressive step."""
        n_layers = max(1, self.model.n_moe_decoder_layers)
        popularity = self._layer_popularity("decoder", moe_layer_rank, n_layers)
        events = self.decoder_tokens_per_step * self.model.top_k
        rng = np.random.default_rng((self.seed, moe_layer_rank, step, 0xD))
        return sample_expert_counts(
            self.model.n_experts, events, 0.0, rng, popularity=popularity
        )

    def decoder_trace(self, n_steps: int) -> list[list[np.ndarray]]:
        """Counts[step][moe_layer_rank] for an ``n_steps`` generation."""
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        return [
            [
                self.decoder_step_counts(rank, step)
                for rank in range(self.model.n_moe_decoder_layers)
            ]
            for step in range(n_steps)
        ]
