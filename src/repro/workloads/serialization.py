"""Routing-trace serialization.

Traces drive every timing experiment, so being able to persist and
replay them matters for reproducibility: a saved trace pins the exact
expert loads a result was measured on, independent of generator
version or seed behaviour.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

import numpy as np

FORMAT_VERSION = 1


def check_format_version(found, expected: int, what: str) -> None:
    """Reject a persisted-trace version mismatch with a clear error.

    Shared by every versioned on-disk format (the JSON routing traces
    here, the binary ``.dramtrace`` DRAM traces in
    :mod:`repro.workloads.trace_io`, and the co-simulation sweep
    results in :mod:`repro.cosim.sweep`): a reader must refuse
    payloads written by a different format version instead of
    mis-parsing them.
    """
    if found != expected:
        raise ValueError(
            f"{what}: unsupported format version {found!r} "
            f"(this build reads version {expected}); "
            "regenerate the trace or upgrade the reader"
        )


@dataclass
class SavedTrace:
    """A serializable routing trace for one (model, batch) workload."""

    model_name: str
    n_experts: int
    batch: int
    seq_len: int
    encoder_layers: list[np.ndarray] = field(default_factory=list)
    #: decoder_steps[step][moe_layer_rank]
    decoder_steps: list[list[np.ndarray]] = field(default_factory=list)

    def validate(self) -> None:
        for counts in self.encoder_layers:
            if counts.shape != (self.n_experts,):
                raise ValueError("encoder layer counts shape mismatch")
            if np.any(counts < 0):
                raise ValueError("negative token counts")
        for step in self.decoder_steps:
            for counts in step:
                if counts.shape != (self.n_experts,):
                    raise ValueError("decoder step counts shape mismatch")
                if np.any(counts < 0):
                    raise ValueError("negative token counts")

    # -- codec -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": FORMAT_VERSION,
            "model": self.model_name,
            "n_experts": self.n_experts,
            "batch": self.batch,
            "seq_len": self.seq_len,
            "encoder_layers": [c.tolist() for c in self.encoder_layers],
            "decoder_steps": [
                [c.tolist() for c in step] for step in self.decoder_steps
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SavedTrace":
        check_format_version(data.get("version"), FORMAT_VERSION, "routing trace")
        trace = cls(
            model_name=data["model"],
            n_experts=int(data["n_experts"]),
            batch=int(data["batch"]),
            seq_len=int(data["seq_len"]),
            encoder_layers=[
                np.asarray(c, dtype=np.int64) for c in data["encoder_layers"]
            ],
            decoder_steps=[
                [np.asarray(c, dtype=np.int64) for c in step]
                for step in data["decoder_steps"]
            ],
        )
        trace.validate()
        return trace

    def save(self, path: str | pathlib.Path) -> None:
        self.validate()
        pathlib.Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "SavedTrace":
        return cls.from_dict(json.loads(pathlib.Path(path).read_text()))


def capture_trace(generator, n_decode_steps: int = 0) -> SavedTrace:
    """Snapshot a :class:`RoutingTraceGenerator` into a SavedTrace."""
    trace = SavedTrace(
        model_name=generator.model.name,
        n_experts=generator.model.n_experts,
        batch=generator.batch,
        seq_len=generator.seq_len,
        encoder_layers=generator.encoder_trace(),
    )
    if n_decode_steps > 0:
        trace.decoder_steps = generator.decoder_trace(n_decode_steps)
    trace.validate()
    return trace
