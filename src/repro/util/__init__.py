"""Cross-cutting utilities shared by every subsystem.

Currently: crash-safe artifact I/O (:mod:`repro.util.atomic_io`) --
the write discipline behind every durable file this repo produces
(``.dramtrace`` traces, cosim sweep JSON, bench baselines, sweep
checkpoints).
"""

from repro.util.atomic_io import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    durable_append,
    fsync_dir,
    replace_into_place,
)

__all__ = [
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "durable_append",
    "fsync_dir",
    "replace_into_place",
]
