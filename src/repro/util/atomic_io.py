"""Crash-safe file writes: tmp file + fsync + ``os.replace``.

Long sweeps and multi-hour trace generations die in exactly the ways
that corrupt half-written artifacts: SIGKILL mid-``write``, power
loss between ``write`` and ``close``, two runs racing on the same
output path.  Every durable artifact in this repo (``.dramtrace``
files, cosim sweep JSON, the committed bench baseline, sweep
checkpoints) therefore goes through the same discipline:

1. write the full payload to a sibling temporary file
   (``<name>.<pid>.tmp`` in the *same directory*, so the final rename
   never crosses a filesystem boundary);
2. flush and ``os.fsync`` the temporary file (data durable);
3. ``os.replace`` it over the destination (atomic on POSIX: readers
   see either the old complete file or the new complete file, never a
   prefix);
4. ``os.fsync`` the containing directory (the rename itself durable).

A crash at any point leaves either the previous artifact intact or a
``*.tmp`` straggler next to it -- never a truncated artifact under
the real name.

Append-only logs (the sweep checkpoint) need durability rather than
atomicity: :func:`durable_append` writes, flushes, and fsyncs one
record so a completed unit of work survives any subsequent crash.
"""

from __future__ import annotations

import json
import os
import pathlib


def fsync_dir(path) -> None:
    """fsync a directory so a rename inside it is durable.

    Best-effort: some filesystems (and all of Windows) refuse to open
    directories; losing the *rename* (not the data) on those is the
    pre-existing behavior, so the error is swallowed.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def tmp_path_for(path) -> pathlib.Path:
    """Sibling temp path for ``path`` (same directory, pid-suffixed
    so concurrent writers never clobber each other's staging file)."""
    path = pathlib.Path(path)
    return path.with_name(f"{path.name}.{os.getpid()}.tmp")


def replace_into_place(tmp, path) -> None:
    """Atomically promote a fully-written ``tmp`` to ``path``.

    ``tmp`` must already be flushed and fsynced (its writer's job);
    this does the atomic rename plus the directory fsync.
    """
    tmp = pathlib.Path(tmp)
    path = pathlib.Path(path)
    os.replace(tmp, path)
    fsync_dir(path.parent)


def atomic_write_bytes(path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically and durably."""
    path = pathlib.Path(path)
    tmp = tmp_path_for(path)
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        replace_into_place(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_write_text(path, text: str) -> None:
    """Write ``text`` (UTF-8) to ``path`` atomically and durably."""
    atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path, payload, indent: int = 2, sort_keys: bool = False) -> None:
    """Serialize ``payload`` and write it atomically and durably.

    The trailing newline matches what ``json.dump`` callers here have
    always produced, so adopting the atomic path changes no bytes.
    """
    atomic_write_text(
        path, json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n"
    )


def durable_append(fh, data: bytes) -> None:
    """Append one record to an open binary file and make it durable
    (flush + fsync) before returning -- the checkpoint-log write
    discipline: a record either fully survives a crash or was never
    acknowledged."""
    fh.write(data)
    fh.flush()
    os.fsync(fh.fileno())
