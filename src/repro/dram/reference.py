"""Reference (pre-optimization) FR-FCFS scheduler.

This is the original list-based ``MemoryController`` hot path, kept
verbatim as an executable specification: ``_drain_channel`` rebuilds
the candidate window, the per-bank representatives, and the live-row
set from scratch on every issued command, and removes completed
requests with an O(n) ``list.remove``.  The production controller in
:mod:`repro.dram.controller` replaces all of that with indexed
per-bank queues and incrementally maintained candidates, but must stay
*bit-identical* to this model -- the equivalence suite in
``tests/dram/test_scheduler_equivalence.py`` and the perf harness in
``benchmarks/perf/`` both run the two against each other.

Do not optimize this module; its value is being obviously equal to
the seed implementation.
"""

from __future__ import annotations

import numpy as np

from repro.dram.channel import Channel
from repro.dram.controller import ControllerStats, MemoryController, SchedulerPolicy
from repro.dram.request import Request, RequestKind, requests_from_arrays


class ReferenceMemoryController(MemoryController):
    """Drop-in :class:`MemoryController` with the original O(n^2)
    per-channel drain loop and scalar address decoding."""

    def simulate(self, requests: list[Request]) -> ControllerStats:
        stats = ControllerStats()
        org = self.config.organization
        for channel in self.channels:
            stats.busy_channel_cycles[channel.index] = 0
            stats.idle_channel_cycles[channel.index] = 0
        per_channel: list[list[Request]] = [[] for _ in range(org.n_channels)]
        for req in requests:
            req.reset_for_sim()
            if req.arrive_cycle < 0:
                raise ValueError("arrive_cycle must be non-negative")
            req.decoded = self.mapper.decode(req.addr)
            per_channel[req.decoded.channel].append(req)

        final_cycle = 0
        for channel, queue in zip(self.channels, per_channel):
            if not queue:
                continue
            # FIFO order is arrival order; sort() is stable, so
            # same-cycle arrivals keep input order (the all-zero batch
            # case keeps the original queues exactly).
            queue.sort(key=lambda r: r.arrive_cycle)
            last, idle = self._drain_channel_reference(channel, queue, stats)
            final_cycle = max(final_cycle, last)
            stats.busy_channel_cycles[channel.index] = last
            stats.idle_channel_cycles[channel.index] = idle
        overhead = self.config.timing.refresh_overhead
        if overhead > 0 and final_cycle > 0:
            stats.refresh_cycles = int(round(final_cycle * overhead / (1 - overhead)))
            final_cycle += stats.refresh_cycles
        stats.total_cycles = final_cycle
        stats.requests = len(requests)
        stats.reads = sum(1 for r in requests if r.kind is RequestKind.READ)
        stats.writes = stats.requests - stats.reads
        if requests:
            delays = np.fromiter(
                (r.first_command_cycle - r.arrive_cycle for r in requests),
                dtype=np.int64,
                count=len(requests),
            )
            self._fill_queue_stats(stats, delays)
        return stats

    def simulate_arrays(
        self,
        addrs,
        arrive_cycles=None,
        flags=None,
    ) -> ControllerStats:
        """Oracle path for the array-native API: materialize the
        equivalent ``Request`` list and run the reference scheduler.

        Deliberately the obviously-correct composition (columns ->
        objects -> original drain loop), so the equivalence suite can
        pit ``MemoryController.simulate_arrays`` against it the same
        way ``simulate`` is pitted against this class.
        """
        requests = requests_from_arrays(addrs, arrive_cycles, flags)
        return self.simulate(requests)

    def _drain_channel_reference(
        self, channel: Channel, queue: list[Request], stats: ControllerStats
    ) -> tuple[int, int]:
        org = self.config.organization

        def flat(d):
            return d.flat_bank_index(org.n_bankgroups, org.banks_per_group)

        n = len(queue)
        cursor = 0  # next not-yet-arrived request (queue is sorted)
        pending: list[Request] = []
        idle = 0
        last_complete = 0
        head_skips = 0
        while pending or cursor < n:
            # A request becomes schedulable once channel time (the
            # command-bus cycle) reaches its arrival; when the queue is
            # empty, channel time jumps to the next arrival and the gap
            # counts as idle.
            if not pending:
                nxt = queue[cursor].arrive_cycle
                if nxt > channel._cmd_bus_next:
                    idle += nxt - channel._cmd_bus_next
                    channel._cmd_bus_next = nxt
            while (
                cursor < n
                and len(pending) < self.window
                and queue[cursor].arrive_cycle <= channel._cmd_bus_next
            ):
                pending.append(queue[cursor])
                cursor += 1

            window = pending[: self.window]
            fcfs = self.policy is SchedulerPolicy.FCFS
            forced = head_skips >= self.starvation_cap
            if fcfs or forced:
                window = pending[:1]

            live_rows = {(flat(r.decoded), r.decoded.row) for r in window}

            # Representative request per bank: oldest row hit, else oldest.
            rep: dict[int, tuple[int, Request]] = {}
            for age, req in enumerate(window):
                bank_index = flat(req.decoded)
                bank = channel.banks[bank_index]
                current = rep.get(bank_index)
                is_hit = bank.open_row == req.decoded.row
                if current is None:
                    rep[bank_index] = (age, req)
                elif is_hit and channel.banks[bank_index].open_row != current[1].decoded.row:
                    rep[bank_index] = (age, req)

            best = None  # (ready, col_pref, age, cmd, bank_index, req)
            for bank_index, (age, req) in rep.items():
                bank = channel.banks[bank_index]
                cmd, _ = bank.next_command_ready(req.decoded.row)
                if cmd == "RDWR":
                    is_write = req.kind is RequestKind.WRITE
                    ready = channel.earliest_col(bank_index, is_write)
                    # Column commands pipeline behind CAS latency, so a
                    # one-cycle slip never bubbles the data bus; let
                    # equally-ready ACT/PRE win ties to hide row switches.
                    key = (ready, 1, age)
                elif cmd == "ACT":
                    ready = channel.earliest_act(bank_index)
                    key = (ready, 0, age)
                else:  # PRE
                    if not forced and (bank_index, bank.open_row) in live_rows:
                        continue
                    ready = channel.earliest_pre(bank_index)
                    key = (ready, 0, age)
                if best is None or key < best[0]:
                    best = (key, cmd, bank_index, req)

            if best is None:
                # Every bank is gated behind a live open row (possible
                # only under forced/FCFS narrowing); fall back to the
                # head request's needed command unconditionally.
                req = window[0]
                bank_index = flat(req.decoded)
                cmd, _ = channel.banks[bank_index].next_command_ready(req.decoded.row)
                best = ((0, 0, 0), cmd, bank_index, req)

            _, cmd, bank_index, req = best
            decoded = req.decoded
            bank = channel.banks[bank_index]

            if cmd == "PRE":
                cycle = channel.earliest_pre(bank_index)
            elif cmd == "ACT":
                cycle = channel.earliest_act(bank_index)
            else:
                cycle = channel.earliest_col(
                    bank_index, req.kind is RequestKind.WRITE
                )

            # Open-loop arrivals: if a request lands before the chosen
            # command would issue and the window has room, advance
            # channel time to the arrival and re-derive the decision so
            # the newcomer competes for the slot.
            if (
                cursor < n
                and len(pending) < self.window
                and queue[cursor].arrive_cycle <= cycle
            ):
                channel._cmd_bus_next = queue[cursor].arrive_cycle
                continue

            if req.first_command_cycle is None:
                req.first_command_cycle = cycle

            if cmd == "PRE":
                channel.issue_precharge(cycle, bank_index)
                stats.precharges += 1
                if req.row_hit is None:
                    req.row_hit = False
                    stats.row_conflicts += 1
            elif cmd == "ACT":
                channel.issue_activate(cycle, bank_index, decoded.row)
                stats.activates += 1
                if req.row_hit is None:
                    req.row_hit = False
                    stats.row_misses += 1
            else:
                is_write = req.kind is RequestKind.WRITE
                if is_write:
                    done = channel.issue_write(cycle, bank_index, decoded.column)
                else:
                    done = channel.issue_read(cycle, bank_index, decoded.column)
                if req.row_hit is None:
                    req.row_hit = True
                    stats.row_hits += 1
                req.complete_cycle = done
                last_complete = max(last_complete, done)
                pending.remove(req)
                if pending and req is not window[0]:
                    head_skips += 1
                else:
                    head_skips = 0
        return last_complete, idle
