"""FR-FCFS memory controller over one or more channels.

FR-FCFS (first-ready, first-come-first-served) prefers requests whose
row is already open (row hits) and otherwise issues the command that
can go out earliest across banks, with an age cap to prevent
starvation -- the policy Ramulator defaults to and the one assumed by
the paper's bandwidth reasoning.

Scheduling works bank-by-bank over a lookahead window:

1. For every bank with pending requests in the window, select its
   *representative* request: the oldest row hit if one exists, else
   the oldest request for that bank.
2. For each representative, compute the next command it needs (RD/WR,
   ACT, or PRE) and the earliest cycle the channel can issue it.
3. Issue the candidate with the smallest ready cycle (column commands
   win ties, then age).  This naturally overlaps row activation and
   precharge under ongoing data transfers.

The implementation is the *indexed* form of that policy, built for
million-request traces (see :mod:`repro.dram.reference` for the
original windowed-list form it is kept bit-identical to):

- the lookahead window is maintained incrementally as per-bank FIFO
  deques plus per-(bank, row) deques, so the per-bank representative
  (oldest row hit, else oldest) is always a deque head -- no per-issue
  window rebuild, no ``list.remove``;
- each bank's candidate command is cached and only recomputed when
  that bank's queue or row state changes (at most two banks per
  issued command);
- channel/bank timing state is mirrored into local integers for the
  duration of a drain, so the issue arbitration is a tight loop over
  at most ``n_banks`` cached candidates with no attribute access or
  method calls, then written back.

Address decoding is vectorized over the whole trace with
:meth:`~repro.dram.address.AddressMapper.decode_batch`.

Arrivals are honored end-to-end: per-channel queues are ordered by
``Request.arrive_cycle`` (stable, so all-at-cycle-0 batch traces keep
input order and bit-identical schedules), requests only become
schedulable once channel time reaches their arrival, idle gaps are
skipped via a sorted-arrival cursor, and per-request queue delays are
aggregated into :class:`ControllerStats`.

The native ingestion API is :meth:`MemoryController.simulate_arrays`:
parallel ``(addrs, arrive_cycles, flags)`` columns -- exactly what the
``.dramtrace`` mmap format (:mod:`repro.workloads.trace_io`) and the
array trace generators yield -- drive the indexed drain loop directly,
no :class:`~repro.dram.request.Request` objects anywhere.
:meth:`MemoryController.simulate` is a thin adapter that shreds a
Request list into those columns and scatters the per-request outputs
(decoded coordinates, first-command/completion cycles, row-hit class)
back onto the objects.
"""

from __future__ import annotations

import enum
import heapq
import logging
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.dram.address import AddressMapper, MappingScheme
from repro.dram.channel import Channel
from repro.dram.config import DRAMConfig
from repro.dram.request import (
    FLAG_WRITE,
    Command,
    CommandKind,
    DecodedAddress,
    Request,
    arrays_from_requests,
)
from repro.dram.resilience import KIND_SERIAL_FALLBACK, ResilienceReport


if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dram.parallel import ParallelDrainExecutor

logger = logging.getLogger(__name__)


class SchedulerPolicy(enum.Enum):
    FR_FCFS = "fr-fcfs"
    FCFS = "fcfs"


@dataclass
class ControllerStats:
    """Aggregate statistics for one simulation run."""

    requests: int = 0
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    activates: int = 0
    precharges: int = 0
    total_cycles: int = 0
    refresh_cycles: int = 0
    busy_channel_cycles: dict[int, int] = field(default_factory=dict)
    #: Cycles each channel sat with an empty queue waiting for the
    #: next arrival (always 0 for all-at-cycle-0 batch traces).
    idle_channel_cycles: dict[int, int] = field(default_factory=dict)
    #: Queue delay: cycles from a request's arrival to the first
    #: command issued on its behalf (see Request.queue_delay).
    queue_delay_mean: float = 0.0
    queue_delay_p50: float = 0.0
    queue_delay_p99: float = 0.0
    queue_delay_max: int = 0

    def __post_init__(self) -> None:
        # Degradation record for the run (see repro.dram.resilience).
        # Deliberately a plain attribute, NOT a dataclass field: the
        # equivalence suites compare ``dataclasses.asdict(stats)``, and
        # a degraded-but-recovered parallel run must still compare
        # bit-identical to the serial run it reproduced.
        self.resilience = ResilienceReport()

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses + self.row_conflicts
        return self.row_hits / total if total else 0.0


@dataclass(frozen=True)
class RequestTimings:
    """Per-request scheduler outputs for one ``simulate_arrays`` run.

    Parallel to the input columns (input order): the cycle the first
    command issued on each request's behalf, the cycle its last data
    beat landed, its queue delay (first command minus arrival -- the
    per-request form of the aggregate ``queue_delay_*`` stats, and the
    signal the serving co-simulation feeds back into its cost model),
    and whether it was served as a row hit.
    """

    first_command_cycles: np.ndarray
    complete_cycles: np.ndarray
    queue_delays: np.ndarray
    row_hits: np.ndarray

    def __len__(self) -> int:
        return self.first_command_cycles.shape[0]


# Candidate command codes used by the indexed scheduler.
_ACT, _PRE, _COL = 0, 1, 2


class MemoryController:
    """Schedules 64-byte requests over the channels of a DRAM config."""

    def __init__(
        self,
        config: DRAMConfig,
        scheme: MappingScheme = MappingScheme.RO_BA_BG_RA_CO_CH,
        policy: SchedulerPolicy = SchedulerPolicy.FR_FCFS,
        window: int = 64,
        starvation_cap: int = 512,
        workers: Optional[int] = None,
        executor: Optional["ParallelDrainExecutor"] = None,
    ) -> None:
        if window < 1:
            raise ValueError("scheduler window must be >= 1")
        self.config = config
        self.mapper = AddressMapper(config.organization, scheme)
        self.policy = policy
        self.window = window
        self.starvation_cap = starvation_cap
        self.channels = [
            Channel(i, config) for i in range(config.organization.n_channels)
        ]
        # Parallel channel draining: channels are timing-independent,
        # so with workers >= 2 the per-channel drains fan out over a
        # persistent process pool (see repro.dram.parallel) and stats
        # merge deterministically -- bit-identical to the serial path.
        workers = 0 if workers is None else int(workers)
        if workers < 0:
            raise ValueError("workers must be non-negative")
        self.workers = workers
        self._executor = executor
        self._owns_executor = executor is None

    # -- parallel-drain lifecycle ------------------------------------------

    @property
    def parallel_enabled(self) -> bool:
        """True when per-channel drains fan out over a worker pool."""
        return self._executor is not None or self.workers >= 2

    def _ensure_executor(self):
        if self._executor is None:
            from repro.dram.parallel import ParallelDrainExecutor

            self._executor = ParallelDrainExecutor(self.workers)
        return self._executor

    def close(self) -> None:
        """Shut down the controller-owned worker pool (no-op when the
        executor was injected or never created)."""
        if self._owns_executor and self._executor is not None:
            self._executor.close()
            self._executor = None

    def __enter__(self) -> "MemoryController":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- simulation --------------------------------------------------------

    def simulate(self, requests: list[Request]) -> ControllerStats:
        """Run all requests to completion; fills in per-request
        ``complete_cycle`` and returns aggregate stats.

        Thin adapter over the array-native core (see
        :meth:`simulate_arrays`): the request list is shredded into
        ``(addrs, arrive_cycles, flags)`` columns, the columns are
        simulated, and the per-request outputs are scattered back onto
        the objects.  Stats are bit-identical to the array path on the
        same columns.
        """
        stats = self._empty_stats()
        n = len(requests)
        stats.requests = n
        if n == 0:
            return stats
        for r in requests:
            r.reset_for_sim()
        addrs, arrive, flags = arrays_from_requests(requests)
        if arrive.min() < 0:
            raise ValueError("arrive_cycle must be non-negative")
        batch, first, complete, hit = self._simulate_columns(
            addrs, arrive, (flags & FLAG_WRITE).astype(bool), stats
        )
        # Scatter decoded coordinates and scheduler outputs back onto
        # the objects (API compatibility; the array path skips this).
        for req, ch, ra, bg, ba, ro, co, fc, cc, h in zip(
            requests,
            batch.channel.tolist(),
            batch.rank.tolist(),
            batch.bankgroup.tolist(),
            batch.bank.tolist(),
            batch.row.tolist(),
            batch.column.tolist(),
            first.tolist(),
            complete.tolist(),
            hit.tolist(),
        ):
            req.decoded = DecodedAddress(ch, ra, bg, ba, ro, co)
            req.first_command_cycle = fc
            req.complete_cycle = cc
            req.row_hit = h
        return stats

    def simulate_arrays(
        self,
        addrs,
        arrive_cycles=None,
        flags=None,
        detail: bool = False,
    ) -> ControllerStats | tuple[ControllerStats, RequestTimings]:
        """Array-native :meth:`simulate`: drive the scheduler straight
        from trace columns, constructing no ``Request`` objects.

        ``addrs`` is any int64-compatible sequence of byte addresses
        (an ``np.memmap`` column view from
        :func:`repro.workloads.trace_io.load_trace` streams zero-copy);
        ``arrive_cycles`` defaults to the all-at-cycle-0 batch;
        ``flags`` uses the ``.dramtrace`` encoding (bit 0 = write,
        ``None`` = all reads; priority bits are accepted and ignored).
        Returns stats bit-identical to ``simulate`` on the equivalent
        Request list.

        With ``detail=True``, returns ``(stats, RequestTimings)``: the
        per-request first-command / completion / queue-delay / row-hit
        arrays in input order -- the per-request form of the aggregate
        queue-delay percentiles, needed by consumers (the serving
        co-simulation) that map DRAM queueing back onto the individual
        upstream requests that caused it.
        """
        stats = self._empty_stats()
        try:
            n = len(addrs)
        except TypeError:
            addrs = list(addrs)
            n = len(addrs)
        stats.requests = n
        if n == 0:
            if detail:
                empty = np.zeros(0, dtype=np.int64)
                return stats, RequestTimings(
                    empty, empty.copy(), empty.copy(), np.zeros(0, dtype=bool)
                )
            return stats
        if arrive_cycles is None:
            arrive = np.zeros(n, dtype=np.int64)
        else:
            arrive = np.asarray(arrive_cycles)
            if len(arrive) != n:
                raise ValueError(f"{len(arrive)} arrive_cycles for {n} addrs")
            if arrive.min() < 0:
                raise ValueError("arrive_cycle must be non-negative")
            arrive = arrive.astype(np.int64, copy=False)
        if flags is None:
            is_write = np.zeros(n, dtype=bool)
        else:
            if len(flags) != n:
                raise ValueError(f"{len(flags)} flags for {n} addrs")
            is_write = (np.asarray(flags) & FLAG_WRITE).astype(bool)
        if not isinstance(addrs, (list, np.ndarray)):
            addrs = np.asarray(addrs)
        _, first, complete, hit = self._simulate_columns(addrs, arrive, is_write, stats)
        if detail:
            return stats, RequestTimings(
                first_command_cycles=first,
                complete_cycles=complete,
                queue_delays=first - arrive,
                row_hits=hit,
            )
        return stats

    def simulate_trace_streaming(
        self,
        path,
        window: int = 1_000_000,
        mmap: bool = True,
    ) -> ControllerStats:
        """Simulate an on-disk ``.dramtrace`` with bounded resident
        state: trace columns stream through
        :meth:`~repro.workloads.trace_io.MappedTrace.iter_chunks` in
        ``window``-request admission chunks, and each channel drains
        through a resumable :meth:`_drain_channel_gen` that compacts
        completed requests at every chunk boundary.

        Stats are bit-identical to ``simulate_arrays`` on the full
        columns (the equivalence is pinned in
        ``tests/dram/test_streaming.py``).  Resident state is one
        decoded chunk plus the scheduler window per channel plus one
        ``int64`` queue delay per request (the exact-percentile stats
        require every delay) -- independent of how much larger than
        RAM the mapped trace records are.

        Requires each channel's arrivals to be non-decreasing in file
        order (any globally time-sorted trace qualifies, including
        all-at-cycle-0 batches); raises ``ValueError`` otherwise, since
        chunked admission cannot re-sort what it has not yet seen.

        Corruption surfaces *structured*: a chunk whose records fail
        validation (an address beyond device capacity or negative --
        how a flipped high bit manifests -- or reserved flag bits set)
        raises :class:`~repro.workloads.trace_io.TraceCorruptionError`
        naming the offending byte offset and the count of records
        already streamed cleanly before the damage, as does a file
        truncated out from under the memmap mid-stream.
        """
        from repro.dram.request import FLAG_WRITE as _FLAG_WRITE
        from repro.workloads.trace_io import (
            HEADER_BYTES,
            RECORD_BYTES,
            TraceCorruptionError,
            _KNOWN_FLAGS,
            load_trace,
        )

        if window < 1:
            raise ValueError("streaming window must be >= 1")
        trace = load_trace(path, mmap=mmap)
        n = len(trace)
        stats = self._empty_stats()
        stats.requests = n
        if n == 0:
            return stats
        org = self.config.organization
        n_channels = org.n_channels
        delays = np.zeros(n, dtype=np.int64)
        gens = {}
        last_seen = [None] * n_channels  # per-channel arrival high-water
        writes = 0
        for base, (addrs, arrive, flags) in trace.iter_chunks(
            window, with_offsets=True
        ):
            if arrive.shape[0] and int(arrive.min()) < 0:
                raise ValueError("arrive_cycle must be non-negative")
            bad_flags = np.flatnonzero(flags & ~np.uint8(_KNOWN_FLAGS))
            if bad_flags.size:
                bad = base + int(bad_flags[0])
                raise TraceCorruptionError(
                    path,
                    f"{path}: record {bad} uses reserved flag bits "
                    f"(flags={int(flags[int(bad_flags[0])]):#04x}); "
                    f"{base} record(s) streamed cleanly before this chunk",
                    byte_offset=HEADER_BYTES + bad * RECORD_BYTES,
                    recoverable_records=base,
                )
            try:
                batch = self.mapper.decode_batch(addrs)
            except TraceCorruptionError:
                raise
            except ValueError as exc:
                raise TraceCorruptionError(
                    path,
                    f"{path}: undecodable record in chunk at record "
                    f"{base} ({exc}); {base} record(s) streamed cleanly "
                    "before this chunk",
                    byte_offset=HEADER_BYTES + base * RECORD_BYTES,
                    recoverable_records=base,
                ) from exc
            flat = batch.flat_bank_index(org.n_bankgroups, org.banks_per_group)
            is_write = (flags & _FLAG_WRITE).astype(bool)
            writes += int(np.count_nonzero(is_write))
            # Stable per-channel split in file order; with per-channel
            # monotone arrivals this reproduces the in-memory path's
            # lexsort((arrive, channel)) queues chunk by chunk.
            sel = np.argsort(batch.channel, kind="stable")
            counts = np.bincount(batch.channel, minlength=n_channels)
            bounds = np.concatenate(([0], np.cumsum(counts)))
            for ci in range(n_channels):
                lo, hi = int(bounds[ci]), int(bounds[ci + 1])
                if lo == hi:
                    continue
                idxs = sel[lo:hi]
                arr_c = arrive[idxs]
                if (arr_c.shape[0] > 1 and bool(np.any(np.diff(arr_c) < 0))) or (
                    last_seen[ci] is not None and int(arr_c[0]) < last_seen[ci]
                ):
                    raise ValueError(
                        f"{path}: channel {ci} arrivals are not non-decreasing "
                        "in file order; streaming simulation needs a "
                        "time-sorted trace (use simulate_arrays for "
                        "unsorted traces)"
                    )
                last_seen[ci] = int(arr_c[-1])
                gen = gens.get(ci)
                if gen is None:
                    gen = self._drain_channel_gen(
                        self.channels[ci], stats, delays_out=delays
                    )
                    next(gen)
                    gens[ci] = gen
                k = hi - lo
                gen.send(
                    (
                        flat[idxs].tolist(),
                        batch.row[idxs].tolist(),
                        batch.column[idxs].tolist(),
                        is_write[idxs].tolist(),
                        arr_c.tolist(),
                        [-1] * k,
                        [0] * k,
                        [-1] * k,
                        (base + idxs).tolist(),
                        False,
                    )
                )
        final_cycle = 0
        for ci, gen in gens.items():
            try:
                gen.send(None)
            except StopIteration as stop:
                last, idle = stop.value
            else:  # pragma: no cover - defensive
                raise AssertionError("channel drain did not complete on EOF")
            final_cycle = max(final_cycle, last)
            stats.busy_channel_cycles[ci] = last
            stats.idle_channel_cycles[ci] = idle
        stats.writes = writes
        stats.reads = n - writes
        overhead = self.config.timing.refresh_overhead
        if overhead > 0 and final_cycle > 0:
            stats.refresh_cycles = int(round(final_cycle * overhead / (1 - overhead)))
            final_cycle += stats.refresh_cycles
        stats.total_cycles = final_cycle
        self._fill_queue_stats(stats, delays)
        return stats

    def _empty_stats(self) -> ControllerStats:
        stats = ControllerStats()
        for channel in self.channels:
            stats.busy_channel_cycles[channel.index] = 0
            stats.idle_channel_cycles[channel.index] = 0
        return stats

    def _simulate_columns(
        self,
        addrs,
        arrive: np.ndarray,
        is_write: np.ndarray,
        stats: ControllerStats,
    ) -> tuple:
        """Shared core: simulate decoded columns, fill ``stats``, and
        return ``(batch, first_command, complete, row_hit)`` arrays in
        input order.

        Channels are timing-independent, so each channel's queue is
        drained separately and stats are merged.
        """
        org = self.config.organization
        n = len(arrive)
        batch = self.mapper.decode_batch(addrs)
        flat = batch.flat_bank_index(org.n_bankgroups, org.banks_per_group)
        stats.writes = int(np.count_nonzero(is_write))
        stats.reads = n - stats.writes

        # Stable split into per-channel FIFO queues, ordered by
        # arrival within each channel (lexsort is stable, so equal
        # arrive_cycles keep input order -- the all-zero batch case
        # degenerates to the original input-order queues).
        order = np.lexsort((arrive, batch.channel))
        counts = np.bincount(batch.channel, minlength=org.n_channels)
        bounds = np.concatenate(([0], np.cumsum(counts)))
        bf_sorted = flat[order]
        row_sorted = batch.row[order]
        col_sorted = batch.column[order]
        wr_sorted = np.asarray(is_write)[order]
        arr_sorted = np.asarray(arrive)[order]

        first = np.zeros(n, dtype=np.int64)
        complete = np.zeros(n, dtype=np.int64)
        hit = np.zeros(n, dtype=bool)

        def drain_serial() -> int:
            cycle = 0
            bf_list = bf_sorted.tolist()
            row_list = row_sorted.tolist()
            col_list = col_sorted.tolist()
            wr_list = wr_sorted.tolist()
            arr_list = arr_sorted.tolist()
            for channel in self.channels:
                lo, hi = int(bounds[channel.index]), int(bounds[channel.index + 1])
                if lo == hi:
                    continue
                o_first = [-1] * (hi - lo)
                o_complete = [0] * (hi - lo)
                o_hit = [-1] * (hi - lo)
                last, idle = self._drain_channel(
                    channel,
                    bf_list[lo:hi],
                    row_list[lo:hi],
                    col_list[lo:hi],
                    wr_list[lo:hi],
                    arr_list[lo:hi],
                    o_first,
                    o_complete,
                    o_hit,
                    stats,
                )
                idxs = order[lo:hi]
                first[idxs] = o_first
                complete[idxs] = o_complete
                hit[idxs] = o_hit
                cycle = max(cycle, last)
                stats.busy_channel_cycles[channel.index] = last
                stats.idle_channel_cycles[channel.index] = idle
            return cycle

        nonempty = int(np.count_nonzero(counts))
        if (
            self.parallel_enabled
            and nonempty >= 2
            and not any(ch.record_commands for ch in self.channels)
        ):
            from repro.dram.parallel import ParallelDrainError

            # Fan the independent per-channel drains out over the
            # worker pool; the executor writes the sorted-order
            # first/complete/hit slices into shared memory and hands
            # back each channel's post-drain state and stat deltas.
            try:
                final_cycle = self._ensure_executor().drain(
                    self, bf_sorted, row_sorted, col_sorted, wr_sorted,
                    arr_sorted, bounds, order, stats, first, complete, hit,
                )
            except ParallelDrainError as exc:
                # The executor's drain is transactional, so the
                # channels are untouched and the whole drain can rerun
                # serially -- slower, bit-identical, recorded.
                logger.warning(
                    "parallel drain unrecoverable (%s); falling back to "
                    "the serial path",
                    exc,
                )
                stats.resilience.record(
                    KIND_SERIAL_FALLBACK,
                    detail=f"parallel drain unrecoverable ({exc}); whole "
                    "drain rerun serially",
                )
                final_cycle = drain_serial()
        else:
            final_cycle = drain_serial()
        # Refresh duty-cycle derate: every tREFI window loses tRFC
        # cycles of availability (first-order streaming model).
        overhead = self.config.timing.refresh_overhead
        if overhead > 0 and final_cycle > 0:
            stats.refresh_cycles = int(round(final_cycle * overhead / (1 - overhead)))
            final_cycle += stats.refresh_cycles
        stats.total_cycles = final_cycle
        self._fill_queue_stats(stats, first - arrive)
        return batch, first, complete, hit

    @staticmethod
    def _fill_queue_stats(stats: ControllerStats, delays: np.ndarray) -> None:
        """Aggregate per-request queue delays (first-command cycle
        minus arrival cycle, input order) into the stats block.

        Empty delay arrays (a zero-request run) leave the queue stats
        at their zeroed defaults instead of tripping ``mean``/``max``
        on n=0."""
        if delays.shape[0] == 0:
            stats.queue_delay_mean = 0.0
            stats.queue_delay_p50 = 0.0
            stats.queue_delay_p99 = 0.0
            stats.queue_delay_max = 0
            return
        stats.queue_delay_mean = float(delays.mean())
        stats.queue_delay_p50 = float(np.percentile(delays, 50))
        stats.queue_delay_p99 = float(np.percentile(delays, 99))
        stats.queue_delay_max = int(delays.max())

    def sustained_bandwidth(self, stats: ControllerStats) -> float:
        """Bytes/s implied by a run's request count and cycle span."""
        if stats.total_cycles == 0:
            return 0.0
        nbytes = stats.requests * self.config.organization.access_bytes
        return nbytes / self.config.timing.cycles_to_seconds(stats.total_cycles)

    # -- per-channel scheduling -------------------------------------------

    def _drain_channel(
        self,
        channel: Channel,
        bf: list[int],
        row: list[int],
        col: list[int],
        iswr: list[bool],
        arr: list[int],
        o_first: list[int],
        o_complete: list[int],
        o_hit: list[int],
        stats: ControllerStats,
    ) -> tuple[int, int]:
        """Drain one channel's FIFO queue (requests given as parallel
        arrays of flat bank index / row / column / is-write /
        arrive-cycle, ordered by arrival).

        Per-request outputs land in the ``o_*`` lists (same order as
        the inputs): first-command cycle, completion cycle, and row-hit
        class (1 hit / 0 miss-or-conflict); ``-1`` means not yet set.

        Single-feed wrapper over :meth:`_drain_channel_gen` -- the
        whole queue goes in as one final chunk, so the generator runs
        to completion without ever yielding for more input.  Returns
        ``(last_complete_cycle, idle_cycles)``.
        """
        gen = self._drain_channel_gen(channel, stats)
        next(gen)
        try:
            gen.send((bf, row, col, iswr, arr, o_first, o_complete, o_hit, None, True))
        except StopIteration as stop:
            return stop.value
        raise AssertionError("channel drain did not complete on a final feed")

    def _drain_channel_gen(
        self,
        channel: Channel,
        stats: ControllerStats,
        delays_out: Optional[np.ndarray] = None,
    ):
        """Resumable form of the per-channel drain loop.

        A generator that is fed the channel's requests in one or more
        arrival-ordered chunks and schedules exactly as if it had seen
        the whole queue up front.  Protocol::

            gen = controller._drain_channel_gen(channel, stats, delays)
            next(gen)                      # prime to the first request
            gen.send((bf, row, col, iswr, arr,
                      o_first, o_complete, o_hit, gidx, eof))  # repeat
            gen.send(None)                 # end of input (or eof=True)
            # -> StopIteration.value == (last_complete_cycle, idle)

        Each feed appends parallel column lists (flat bank index, row,
        column, is-write, arrive-cycle), matching output slots, and
        optionally ``gidx`` -- each request's global input-order index.
        The generator yields (requesting more input) exactly when every
        fed request has been admitted and the scheduling window has
        room: any later decision could be preempted by an arrival it
        has not seen yet, so it refuses to guess.  Feeding ``eof``
        (or ``None``) instead lets it run to completion.

        One command issues per loop iteration; a request leaves the
        queue when its column command issues.  The candidate scan runs
        over per-bank cached (command, representative, bank-ready)
        triples; global channel constraints (command bus, tCCD, data
        bus, tRRD/tFAW, tWTR) are folded in as per-class floors
        computed once per iteration.

        Open-loop arrivals: a request enters the scheduling window
        only once channel time (the command-bus cycle ``cb``) has
        reached its ``arrive_cycle``.  When the window empties with
        arrivals still outstanding, channel time jumps to the next
        arrival (the gap is accounted as idle); when an arrival lands
        before the chosen command would issue (and the window has
        room), channel time advances to that arrival and the decision
        is re-derived so the newcomer competes.

        Bounded-memory streaming: at every yield point the generator
        *compacts* -- completed requests are dropped from the buffers
        (their queue delays scattered to ``delays_out`` at ``gidx``)
        and the <= ``window`` live requests are renumbered, so resident
        state is one fed chunk plus the scheduler window regardless of
        trace length.  Renumbering preserves relative request order
        (the only thing arbitration ties break on), and candidate
        caches are rebuilt through the same dirty-refresh pass that
        maintains them incrementally, so the command stream is
        bit-identical to the single-feed run.  ``delays_out``/``gidx``
        may be omitted only for single-feed (eof) use, where outputs
        stay in the caller's ``o_*`` lists.
        """
        t = channel.timing
        org = self.config.organization
        n_banks = len(channel.banks)
        fcfs = self.policy is SchedulerPolicy.FCFS
        cap = self.starvation_cap

        # Request buffers -- adopted from the first feed (so the
        # single-feed wrapper mutates its caller's lists in place),
        # extended by later feeds, compacted at yield points.
        bf: list[int] = []
        row: list[int] = []
        col: list[int] = []
        iswr: list[bool] = []
        arr: list[int] = []
        o_first: list[int] = []
        o_complete: list[int] = []
        o_hit: list[int] = []
        gidx: Optional[list[int]] = None
        n = 0
        eof = False

        # Timing locals.
        tRCD, tRP, tRAS, tRC = t.tRCD, t.tRP, t.tRAS, t.tRC
        tCL, tCWL, tWR, tWTR = t.tCL, t.tCWL, t.tWR, t.tWTR
        tCCD_S, tCCD_L, tRRD, tFAW = t.tCCD_S, t.tCCD_L, t.tRRD, t.tFAW
        burst = t.burst_cycles

        # Mirror channel state into locals (written back on exit).
        cb = channel._cmd_bus_next
        dnext = channel._data_bus_next
        lcc = channel._last_col_cycle
        lbg = channel._last_col_bankgroup
        law = channel._last_was_write
        raw = channel._read_after_write_ok
        lact = channel._last_act_cycle
        hist = channel._act_history  # shared deque, mutated in place
        hist_full = hist.maxlen
        recording = channel.record_commands
        commands = channel.commands

        # Mirror per-bank state into parallel lists.
        banks = channel.banks
        b_open = [b.open_row for b in banks]
        b_eact = [b.earliest_act for b in banks]
        b_epre = [b.earliest_pre for b in banks]
        b_ecol = [b.earliest_col for b in banks]
        b_hits = [0] * n_banks
        bpg = org.banks_per_group
        nbg = org.n_bankgroups
        bg_of = [(b // bpg) % nbg for b in range(n_banks)]

        # Window bookkeeping: per-bank FIFO of in-window request seqs,
        # per-(bank, row) FIFO for row-hit heads, cached candidates.
        alive: list[bool] = []
        bank_q: list[deque | None] = [None] * n_banks
        bank_rows: list[dict | None] = [None] * n_banks
        active: set[int] = set()
        cand_cmd = [0] * n_banks
        cand_seq = [0] * n_banks
        cand_part = [0] * n_banks

        # Arbitration structures.  Row-hit (column) candidates are
        # scanned directly -- there are rarely more than a handful.
        # ACT and PRE candidates live in per-class min-heaps split at
        # the class's global ready floor, which is monotone
        # non-decreasing (command bus, tRRD and tFAW horizons only
        # move forward), so entries migrate one way from the
        # above-floor heap (ordered by bank-ready cycle) to the
        # below-floor heap (ordered by age, since every entry at or
        # below the floor becomes ready at exactly the floor).  Banks
        # are versioned for lazy invalidation: a heap entry is live
        # iff it carries the bank's current version.
        heappush, heappop, heapify_ = heapq.heappush, heapq.heappop, heapq.heapify
        col_set: set[int] = set()
        act_L: list = []  # (seq, bank, ver): ready == class floor
        act_H: list = []  # (part, seq, bank, ver): ready == part
        pre_L: list = []
        pre_H: list = []
        bank_ver = [0] * n_banks
        g_act_est = -(10**9)  # lower bound of the ACT floor (monotone)
        heap_cap = 128 + 4 * n_banks

        def insert(s: int) -> None:
            b = bf[s]
            q = bank_q[b]
            if q is None:
                bank_q[b] = deque((s,))
                bank_rows[b] = {row[s]: deque((s,))}
            else:
                q.append(s)
                rows = bank_rows[b]
                rd = rows.get(row[s])
                if rd is None:
                    rows[row[s]] = deque((s,))
                else:
                    rd.append(s)
            active.add(b)

        window_cap = self.window
        dirty: list[int] = []

        pos = 0  # next not-yet-admitted request (arrival order)
        in_window = 0
        idle = 0
        remaining = 0
        head = 0
        head_skips = 0
        last_complete = 0

        while True:
            # Admit arrived requests into the scheduling window (the
            # queue order is arrival order, so admission is a cursor).
            while pos < n and in_window < window_cap and arr[pos] <= cb:
                insert(pos)
                dirty.append(bf[pos])
                pos += 1
                in_window += 1
            if not eof and pos == n and in_window < window_cap:
                # Every fed request is admitted and the window has
                # room: the next decision could be preempted by an
                # arrival this generator has not seen, so compact the
                # buffers and ask the caller for more input.
                if n:
                    if delays_out is not None:
                        for s in range(n):
                            if not alive[s]:
                                delays_out[gidx[s]] = o_first[s] - arr[s]
                    live = [s for s in range(n) if alive[s]]
                    bf = [bf[s] for s in live]
                    row = [row[s] for s in live]
                    col = [col[s] for s in live]
                    iswr = [iswr[s] for s in live]
                    arr = [arr[s] for s in live]
                    o_first = [o_first[s] for s in live]
                    o_complete = [o_complete[s] for s in live]
                    o_hit = [o_hit[s] for s in live]
                    if gidx is not None:
                        gidx = [gidx[s] for s in live]
                    n = pos = remaining = in_window = len(live)
                    head = 0
                    alive = [True] * n
                    # Rebuild the window indexes over the renumbered
                    # seqs (ascending, so relative order -- the only
                    # arbitration tie-breaker -- is preserved) and
                    # leave candidate recomputation to the standard
                    # dirty-refresh pass.
                    bank_q = [None] * n_banks
                    bank_rows = [None] * n_banks
                    active = set()
                    for s in range(n):
                        insert(s)
                    act_L = []
                    act_H = []
                    pre_L = []
                    pre_H = []
                    col_set.clear()
                    dirty = list(active)
                fed = yield True
                if fed is None:
                    eof = True
                else:
                    fbf, frow, fcol, fwr, farr, ff, fc, fh, fg, feof = fed
                    if bf:
                        bf.extend(fbf)
                        row.extend(frow)
                        col.extend(fcol)
                        iswr.extend(fwr)
                        arr.extend(farr)
                        o_first.extend(ff)
                        o_complete.extend(fc)
                        o_hit.extend(fh)
                        if gidx is not None and fg is not None:
                            gidx.extend(fg)
                    else:
                        bf, row, col, iswr, arr = fbf, frow, fcol, fwr, farr
                        o_first, o_complete, o_hit, gidx = ff, fc, fh, fg
                    alive.extend([True] * len(fbf))
                    remaining += len(fbf)
                    n = len(bf)
                    eof = bool(feof)
                continue
            if in_window == 0:
                if pos == n:
                    # End of input with everything completed.
                    break
                # Queue empty with arrivals outstanding: jump channel
                # time to the next arrival.
                nxt = arr[pos]
                idle += nxt - cb
                cb = nxt
                continue

            # Refresh cached candidates for banks whose queues or row
            # state changed since the last issue.
            for b in dirty:
                if b not in active:
                    continue
                q = bank_q[b]
                while q and not alive[q[0]]:
                    q.popleft()
                bank_ver[b] += 1
                if not q:
                    active.discard(b)
                    col_set.discard(b)
                    continue
                orow = b_open[b]
                if orow is None:
                    cand_cmd[b] = _ACT
                    s = cand_seq[b] = q[0]
                    p = cand_part[b] = b_eact[b]
                    col_set.discard(b)
                    if p <= g_act_est:
                        heappush(act_L, (s, b, bank_ver[b]))
                    else:
                        heappush(act_H, (p, s, b, bank_ver[b]))
                else:
                    rd = bank_rows[b].get(orow)
                    if rd:
                        cand_cmd[b] = _COL
                        cand_seq[b] = rd[0]
                        cand_part[b] = b_ecol[b]
                        col_set.add(b)
                    else:
                        cand_cmd[b] = _PRE
                        s = cand_seq[b] = q[0]
                        p = cand_part[b] = b_epre[b]
                        col_set.discard(b)
                        if p <= cb:
                            heappush(pre_L, (s, b, bank_ver[b]))
                        else:
                            heappush(pre_H, (p, s, b, bank_ver[b]))
            del dirty[:]

            # Compact lazily-invalidated heaps before they bloat.
            if len(act_L) + len(act_H) > heap_cap:
                act_L = [
                    (cand_seq[b2], b2, bank_ver[b2])
                    for b2 in active
                    if cand_cmd[b2] == _ACT and cand_part[b2] <= g_act_est
                ]
                act_H = [
                    (cand_part[b2], cand_seq[b2], b2, bank_ver[b2])
                    for b2 in active
                    if cand_cmd[b2] == _ACT and cand_part[b2] > g_act_est
                ]
                heapify_(act_L)
                heapify_(act_H)
            if len(pre_L) + len(pre_H) > heap_cap:
                pre_L = [
                    (cand_seq[b2], b2, bank_ver[b2])
                    for b2 in active
                    if cand_cmd[b2] == _PRE and cand_part[b2] <= cb
                ]
                pre_H = [
                    (cand_part[b2], cand_seq[b2], b2, bank_ver[b2])
                    for b2 in active
                    if cand_cmd[b2] == _PRE and cand_part[b2] > cb
                ]
                heapify_(pre_L)
                heapify_(pre_H)

            if fcfs or head_skips >= cap:
                # Narrowed window: schedule the head request alone.
                while not alive[head]:
                    head += 1
                s = head
                b = bf[s]
                orow = b_open[b]
                if orow == row[s]:
                    cmd = _COL
                    g = (dnext - tCWL) if iswr[s] else (dnext - tCL)
                    if law and not iswr[s]:
                        g2 = raw - tCL
                        if g2 > g:
                            g = g2
                    x = lcc + (tCCD_L if bg_of[b] == lbg else tCCD_S)
                    if x > g:
                        g = x
                    cycle = max(b_ecol[b], cb, g)
                elif orow is None:
                    cmd = _ACT
                    cycle = max(b_eact[b], cb, lact + tRRD)
                    if len(hist) == hist_full:
                        x = hist[0] + tFAW
                        if x > cycle:
                            cycle = x
                else:
                    cmd = _PRE
                    cycle = max(b_epre[b], cb)
            else:
                # ACT-class ready floor (monotone; see structures above).
                g_act = lact + tRRD
                if cb > g_act:
                    g_act = cb
                if len(hist) == hist_full:
                    x = hist[0] + tFAW
                    if x > g_act:
                        g_act = x
                g_act_est = g_act

                # Migrate entries that dropped to/below their floor.
                while act_H and act_H[0][0] <= g_act:
                    _, s, b2, v = heappop(act_H)
                    if bank_ver[b2] == v:
                        heappush(act_L, (s, b2, v))
                while pre_H and pre_H[0][0] <= cb:
                    _, s, b2, v = heappop(pre_H)
                    if bank_ver[b2] == v:
                        heappush(pre_L, (s, b2, v))

                # ACT winner: everything in L is ready at the floor, so
                # the oldest wins; otherwise the smallest bank-ready.
                best_ready = -1
                best_seq = 0
                b = -1
                cmd = _ACT
                while act_L and bank_ver[act_L[0][1]] != act_L[0][2]:
                    heappop(act_L)
                if act_L:
                    top = act_L[0]
                    best_ready = g_act
                    best_seq = top[0]
                    b = top[1]
                else:
                    while act_H and bank_ver[act_H[0][2]] != act_H[0][3]:
                        heappop(act_H)
                    if act_H:
                        top = act_H[0]
                        best_ready = top[0]
                        best_seq = top[1]
                        b = top[2]

                # PRE winner (same class shape; floor is the command bus).
                while pre_L and bank_ver[pre_L[0][1]] != pre_L[0][2]:
                    heappop(pre_L)
                if pre_L:
                    top = pre_L[0]
                    p = cb
                    s = top[0]
                    b2 = top[1]
                else:
                    while pre_H and bank_ver[pre_H[0][2]] != pre_H[0][3]:
                        heappop(pre_H)
                    if pre_H:
                        top = pre_H[0]
                        p = top[0]
                        s = top[1]
                        b2 = top[2]
                    else:
                        p = -1
                if p >= 0 and (
                    best_ready < 0
                    or p < best_ready
                    or (p == best_ready and s < best_seq)
                ):
                    best_ready = p
                    best_seq = s
                    b = b2
                    cmd = _PRE

                # Column candidates: scanned directly (usually few);
                # they lose ready-cycle ties to ACT/PRE by design.
                if col_set:
                    g_col_r = dnext - tCL
                    if law:
                        x = raw - tCL
                        if x > g_col_r:
                            g_col_r = x
                    if cb > g_col_r:
                        g_col_r = cb
                    g_col_w = dnext - tCWL
                    if cb > g_col_w:
                        g_col_w = cb
                    ccd_same = lcc + tCCD_L
                    ccd_diff = lcc + tCCD_S
                    for b2 in col_set:
                        p = cand_part[b2]
                        s = cand_seq[b2]
                        g = g_col_w if iswr[s] else g_col_r
                        if g > p:
                            p = g
                        x = ccd_same if bg_of[b2] == lbg else ccd_diff
                        if x > p:
                            p = x
                        if (
                            best_ready < 0
                            or p < best_ready
                            or (p == best_ready and cmd == _COL and s < best_seq)
                        ):
                            best_ready = p
                            best_seq = s
                            b = b2
                            cmd = _COL
                s = best_seq
                cycle = best_ready

            # Open-loop arrivals: if a request lands before the chosen
            # command would issue and the window has room, advance
            # channel time to the arrival and re-derive the decision so
            # the newcomer competes for the slot.
            if pos < n and in_window < window_cap and arr[pos] <= cycle:
                cb = arr[pos]
                continue

            # -- issue the chosen command (mirrors Channel.issue_*) ----
            if o_first[s] < 0:
                o_first[s] = cycle
            if cmd == _PRE:
                b_open[b] = None
                x = cycle + tRP
                if x > b_eact[b]:
                    b_eact[b] = x
                cb = cycle + 1
                stats.precharges += 1
                if o_hit[s] < 0:
                    o_hit[s] = 0
                    stats.row_conflicts += 1
                if recording:
                    commands.append(
                        Command(cycle, CommandKind.PRECHARGE, channel.index, b)
                    )
                dirty.append(b)
            elif cmd == _ACT:
                r = row[s]
                b_open[b] = r
                b_ecol[b] = cycle + tRCD
                b_epre[b] = cycle + tRAS
                b_eact[b] = cycle + tRC
                cb = cycle + 1
                hist.append(cycle)
                lact = cycle
                stats.activates += 1
                if o_hit[s] < 0:
                    o_hit[s] = 0
                    stats.row_misses += 1
                if recording:
                    commands.append(
                        Command(cycle, CommandKind.ACTIVATE, channel.index, b, row=r)
                    )
                dirty.append(b)
            else:
                w = iswr[s]
                if w:
                    done = cycle + tCWL + burst
                    x = done + tWR
                    if x > b_epre[b]:
                        b_epre[b] = x
                    dnext = done
                    raw = done + tWTR
                    law = True
                else:
                    x = cycle + burst
                    if x > b_epre[b]:
                        b_epre[b] = x
                    done = cycle + tCL + burst
                    dnext = done
                    law = False
                b_hits[b] += 1
                cb = cycle + 1
                lcc = cycle
                lbg = bg_of[b]
                if o_hit[s] < 0:
                    o_hit[s] = 1
                    stats.row_hits += 1
                o_complete[s] = done
                if done > last_complete:
                    last_complete = done
                if recording:
                    commands.append(
                        Command(
                            cycle,
                            CommandKind.WRITE if w else CommandKind.READ,
                            channel.index,
                            b,
                            column=col[s],
                        )
                    )
                # Retire the request and slide the window forward.
                while not alive[head]:
                    head += 1
                was_head = s == head
                alive[s] = False
                remaining -= 1
                rows = bank_rows[b]
                rd = rows[row[s]]
                rd.popleft()
                if not rd:
                    del rows[row[s]]
                dirty.append(b)
                in_window -= 1
                if remaining and not was_head:
                    head_skips += 1
                else:
                    head_skips = 0

        # Scatter queue delays for requests retired since the last
        # compaction (streaming mode; earlier chunks were emitted at
        # their compaction points).
        if delays_out is not None:
            for s in range(n):
                delays_out[gidx[s]] = o_first[s] - arr[s]

        # Write mirrored state back to the channel/bank objects.
        channel._cmd_bus_next = cb
        channel._data_bus_next = dnext
        channel._last_col_cycle = lcc
        channel._last_col_bankgroup = lbg
        channel._last_was_write = law
        channel._read_after_write_ok = raw
        channel._last_act_cycle = lact
        for i, bank in enumerate(banks):
            bank.open_row = b_open[i]
            bank.earliest_act = b_eact[i]
            bank.earliest_pre = b_epre[i]
            bank.earliest_col = b_ecol[i]
            bank.row_hits += b_hits[i]
        return last_complete, idle
