"""FR-FCFS memory controller over one or more channels.

FR-FCFS (first-ready, first-come-first-served) prefers requests whose
row is already open (row hits) and otherwise issues the command that
can go out earliest across banks, with an age cap to prevent
starvation -- the policy Ramulator defaults to and the one assumed by
the paper's bandwidth reasoning.

Scheduling works bank-by-bank over a lookahead window:

1. For every bank with pending requests in the window, select its
   *representative* request: the oldest row hit if one exists, else
   the oldest request for that bank.
2. For each representative, compute the next command it needs (RD/WR,
   ACT, or PRE) and the earliest cycle the channel can issue it.  A
   PRE is suppressed while any window request still needs the open row.
3. Issue the candidate with the smallest ready cycle (column commands
   win ties, then age).  This naturally overlaps row activation and
   precharge under ongoing data transfers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.dram.address import AddressMapper, MappingScheme
from repro.dram.channel import Channel
from repro.dram.config import DRAMConfig
from repro.dram.request import Request, RequestKind


class SchedulerPolicy(enum.Enum):
    FR_FCFS = "fr-fcfs"
    FCFS = "fcfs"


@dataclass
class ControllerStats:
    """Aggregate statistics for one simulation run."""

    requests: int = 0
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    activates: int = 0
    precharges: int = 0
    total_cycles: int = 0
    refresh_cycles: int = 0
    busy_channel_cycles: dict[int, int] = field(default_factory=dict)

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses + self.row_conflicts
        return self.row_hits / total if total else 0.0


class MemoryController:
    """Schedules 64-byte requests over the channels of a DRAM config."""

    def __init__(
        self,
        config: DRAMConfig,
        scheme: MappingScheme = MappingScheme.RO_BA_BG_RA_CO_CH,
        policy: SchedulerPolicy = SchedulerPolicy.FR_FCFS,
        window: int = 64,
        starvation_cap: int = 512,
    ) -> None:
        if window < 1:
            raise ValueError("scheduler window must be >= 1")
        self.config = config
        self.mapper = AddressMapper(config.organization, scheme)
        self.policy = policy
        self.window = window
        self.starvation_cap = starvation_cap
        self.channels = [Channel(i, config) for i in range(config.organization.n_channels)]

    # -- simulation --------------------------------------------------------

    def simulate(self, requests: list[Request]) -> ControllerStats:
        """Run all requests to completion; fills in per-request
        ``complete_cycle`` and returns aggregate stats.

        Channels are timing-independent, so each channel's queue is
        drained separately and stats are merged.
        """
        stats = ControllerStats()
        org = self.config.organization
        per_channel: list[list[Request]] = [[] for _ in range(org.n_channels)]
        for req in requests:
            req.decoded = self.mapper.decode(req.addr)
            per_channel[req.decoded.channel].append(req)

        final_cycle = 0
        for channel, queue in zip(self.channels, per_channel):
            if not queue:
                continue
            last = self._drain_channel(channel, queue, stats)
            final_cycle = max(final_cycle, last)
            stats.busy_channel_cycles[channel.index] = last
        # Refresh duty-cycle derate: every tREFI window loses tRFC
        # cycles of availability (first-order streaming model).
        overhead = self.config.timing.refresh_overhead
        if overhead > 0 and final_cycle > 0:
            stats.refresh_cycles = int(round(final_cycle * overhead / (1 - overhead)))
            final_cycle += stats.refresh_cycles
        stats.total_cycles = final_cycle
        stats.requests = len(requests)
        stats.reads = sum(1 for r in requests if r.kind is RequestKind.READ)
        stats.writes = stats.requests - stats.reads
        return stats

    def sustained_bandwidth(self, stats: ControllerStats) -> float:
        """Bytes/s implied by a run's request count and cycle span."""
        if stats.total_cycles == 0:
            return 0.0
        nbytes = stats.requests * self.config.organization.access_bytes
        return nbytes / self.config.timing.cycles_to_seconds(stats.total_cycles)

    # -- per-channel scheduling -------------------------------------------

    def _drain_channel(
        self, channel: Channel, queue: list[Request], stats: ControllerStats
    ) -> int:
        org = self.config.organization
        flat = lambda d: d.flat_bank_index(org.n_bankgroups, org.banks_per_group)
        pending = list(queue)
        last_complete = 0
        head_skips = 0
        while pending:
            window = pending[: self.window]
            fcfs = self.policy is SchedulerPolicy.FCFS
            forced = head_skips >= self.starvation_cap
            if fcfs or forced:
                window = pending[:1]

            live_rows = {(flat(r.decoded), r.decoded.row) for r in window}

            # Representative request per bank: oldest row hit, else oldest.
            rep: dict[int, tuple[int, Request]] = {}
            for age, req in enumerate(window):
                bank_index = flat(req.decoded)
                bank = channel.banks[bank_index]
                current = rep.get(bank_index)
                is_hit = bank.open_row == req.decoded.row
                if current is None:
                    rep[bank_index] = (age, req)
                elif is_hit and channel.banks[bank_index].open_row != current[1].decoded.row:
                    rep[bank_index] = (age, req)

            best = None  # (ready, col_pref, age, cmd, bank_index, req)
            for bank_index, (age, req) in rep.items():
                bank = channel.banks[bank_index]
                cmd, _ = bank.next_command_ready(req.decoded.row)
                if cmd == "RDWR":
                    is_write = req.kind is RequestKind.WRITE
                    ready = channel.earliest_col(bank_index, is_write)
                    # Column commands pipeline behind CAS latency, so a
                    # one-cycle slip never bubbles the data bus; let
                    # equally-ready ACT/PRE win ties to hide row switches.
                    key = (ready, 1, age)
                elif cmd == "ACT":
                    ready = channel.earliest_act(bank_index)
                    key = (ready, 0, age)
                else:  # PRE
                    if not forced and (bank_index, bank.open_row) in live_rows:
                        continue
                    ready = channel.earliest_pre(bank_index)
                    key = (ready, 0, age)
                if best is None or key < best[0]:
                    best = (key, cmd, bank_index, req)

            if best is None:
                # Every bank is gated behind a live open row (possible
                # only under forced/FCFS narrowing); fall back to the
                # head request's needed command unconditionally.
                req = window[0]
                bank_index = flat(req.decoded)
                cmd, _ = channel.banks[bank_index].next_command_ready(req.decoded.row)
                best = ((0, 0, 0), cmd, bank_index, req)

            _, cmd, bank_index, req = best
            decoded = req.decoded
            bank = channel.banks[bank_index]

            if cmd == "PRE":
                cycle = channel.earliest_pre(bank_index)
                channel.issue_precharge(cycle, bank_index)
                stats.precharges += 1
                if req.row_hit is None:
                    req.row_hit = False
                    stats.row_conflicts += 1
            elif cmd == "ACT":
                cycle = channel.earliest_act(bank_index)
                channel.issue_activate(cycle, bank_index, decoded.row)
                stats.activates += 1
                if req.row_hit is None:
                    req.row_hit = False
                    stats.row_misses += 1
            else:
                is_write = req.kind is RequestKind.WRITE
                cycle = channel.earliest_col(bank_index, is_write)
                if is_write:
                    done = channel.issue_write(cycle, bank_index, decoded.column)
                else:
                    done = channel.issue_read(cycle, bank_index, decoded.column)
                if req.row_hit is None:
                    req.row_hit = True
                    stats.row_hits += 1
                req.complete_cycle = done
                last_complete = max(last_complete, done)
                pending.remove(req)
                if pending and req is not window[0]:
                    head_skips += 1
                else:
                    head_skips = 0
        return last_complete
