"""Parallel per-channel drain execution for :class:`MemoryController`.

DRAM channels share no timing state -- the controller already drains
them one at a time through the self-contained
:meth:`~repro.dram.controller.MemoryController._drain_channel` loop
and merges stats afterwards.  This module fans those independent
drains out over a persistent ``multiprocessing`` pool:

- the parent copies the arrival-sorted column arrays (flat bank index,
  row, column, is-write, arrive-cycle) into one shared-memory block
  and allocates a second for the per-request outputs;
- each worker attaches by name (``np.frombuffer`` views, zero-copy),
  slices its channel's ``[lo, hi)`` rows, replays the exact serial
  drain loop on a worker-cached controller whose channel was seeded
  with the parent channel's state, and writes ``first`` / ``complete``
  / ``hit`` into the output block;
- the worker ships back a :class:`ChannelState` snapshot plus its
  stat deltas, and the parent applies snapshots / sums counters in
  channel-index order.

Determinism: every worker runs the identical ``_drain_channel`` code
on identical inputs, the output arrays land at fixed offsets, and the
merged counters are order-independent integer sums -- so the parallel
path is *bit-identical* to the serial one (pinned by
``tests/dram/test_parallel.py``) and the speedup is bounded only by
channel count and cores.

Start methods: ``fork`` is preferred where available (cheap workers,
no import re-execution); everything shipped to workers -- the module
-level :func:`_drain_worker`, pickled ``(config, policy, window,
starvation_cap)`` parameters, and :class:`ChannelState` -- is
picklable, so the same code runs under ``spawn`` (macOS/Windows or
``start_method="spawn"``) unchanged.

Supervision: :meth:`ParallelDrainExecutor.drain` does not trust the
pool.  Each per-channel task is submitted asynchronously and watched:
a task that raises is resubmitted with deterministic bounded
exponential backoff; a worker that dies (OOM kill, SIGKILL, segfault)
is detected by the pool's worker-pid set changing, after which the
pool is respawned and every outstanding task resubmitted; a task that
exceeds ``task_timeout`` triggers the same respawn.  A task that
exhausts ``max_retries`` is drained *serially in the parent* on the
same shared-memory blocks -- the channels are independent, so one
poisoned channel degrades to serial while the rest stay parallel.
Every recovery action is recorded in the
:class:`~repro.dram.resilience.ResilienceReport` attached to the
run's ``ControllerStats`` and logged on ``repro.resilience``.  The
drain is transactional: channel states and caller-visible stats are
only touched once every channel has a result, so an unrecoverable
failure (:class:`ParallelDrainError`) leaves the controller exactly
as it was and the caller can rerun the whole drain serially.
"""

from __future__ import annotations

import logging
import multiprocessing
import pickle
import time
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Optional

import numpy as np

from repro.dram.resilience import (
    KIND_POOL_RESPAWN,
    KIND_SERIAL_FALLBACK,
    KIND_TASK_RETRY,
    KIND_TASK_TIMEOUT,
    KIND_WORKER_DEATH,
    ResilienceReport,
)

logger = logging.getLogger(__name__)


class ParallelDrainError(RuntimeError):
    """The parallel drain could not complete even with supervision
    (e.g. the pool cannot be (re)created).  The drain is transactional,
    so the controller is untouched and the caller falls back to the
    serial path."""

_I8 = np.dtype("<i8").itemsize

#: Input block layout: four int64 columns then one uint8 column.
_IN_BYTES_PER_ROW = 4 * _I8 + 1
#: Output block layout: two int64 columns then one uint8 column.
_OUT_BYTES_PER_ROW = 2 * _I8 + 1


def _input_views(buf, n: int):
    """(bf, row, col, arr, iswr) views over the input block."""
    bf = np.frombuffer(buf, dtype=np.int64, count=n, offset=0)
    row = np.frombuffer(buf, dtype=np.int64, count=n, offset=n * _I8)
    col = np.frombuffer(buf, dtype=np.int64, count=n, offset=2 * n * _I8)
    arr = np.frombuffer(buf, dtype=np.int64, count=n, offset=3 * n * _I8)
    iswr = np.frombuffer(buf, dtype=np.uint8, count=n, offset=4 * n * _I8)
    return bf, row, col, arr, iswr


def _output_views(buf, n: int):
    """(first, complete, hit) views over the output block."""
    first = np.frombuffer(buf, dtype=np.int64, count=n, offset=0)
    complete = np.frombuffer(buf, dtype=np.int64, count=n, offset=n * _I8)
    hit = np.frombuffer(buf, dtype=np.uint8, count=n, offset=2 * n * _I8)
    return first, complete, hit


@dataclass
class ChannelState:
    """Picklable snapshot of one channel's scheduler-visible state.

    Captured from the parent before a drain is shipped out, applied to
    the worker-cached controller's channel so the drain starts exactly
    where the parent's channel left off, then captured again after the
    drain and applied back to the parent -- repeated ``simulate`` calls
    on one controller stay bit-identical to the serial path.  Bank
    ``row_hits`` are carried as absolute counters, so the worker's
    in-place increments transfer without separate delta bookkeeping.
    """

    cmd_bus_next: int
    data_bus_next: int
    last_col_cycle: int
    last_col_bankgroup: int
    last_was_write: bool
    read_after_write_ok: int
    last_act_cycle: int
    act_history: list
    open_rows: list
    earliest_act: list
    earliest_pre: list
    earliest_col: list
    row_hits: list

    @classmethod
    def capture(cls, channel) -> "ChannelState":
        return cls(
            cmd_bus_next=channel._cmd_bus_next,
            data_bus_next=channel._data_bus_next,
            last_col_cycle=channel._last_col_cycle,
            last_col_bankgroup=channel._last_col_bankgroup,
            last_was_write=channel._last_was_write,
            read_after_write_ok=channel._read_after_write_ok,
            last_act_cycle=channel._last_act_cycle,
            act_history=list(channel._act_history),
            open_rows=[b.open_row for b in channel.banks],
            earliest_act=[b.earliest_act for b in channel.banks],
            earliest_pre=[b.earliest_pre for b in channel.banks],
            earliest_col=[b.earliest_col for b in channel.banks],
            row_hits=[b.row_hits for b in channel.banks],
        )

    def apply(self, channel) -> None:
        channel._cmd_bus_next = self.cmd_bus_next
        channel._data_bus_next = self.data_bus_next
        channel._last_col_cycle = self.last_col_cycle
        channel._last_col_bankgroup = self.last_col_bankgroup
        channel._last_was_write = self.last_was_write
        channel._read_after_write_ok = self.read_after_write_ok
        channel._last_act_cycle = self.last_act_cycle
        channel._act_history.clear()
        channel._act_history.extend(self.act_history)
        for bank, orow, eact, epre, ecol, hits in zip(
            channel.banks,
            self.open_rows,
            self.earliest_act,
            self.earliest_pre,
            self.earliest_col,
            self.row_hits,
        ):
            bank.open_row = orow
            bank.earliest_act = eact
            bank.earliest_pre = epre
            bank.earliest_col = ecol
            bank.row_hits = hits


#: Worker-process cache: one controller per distinct parameter blob,
#: reused across tasks so channel/mapper construction is paid once.
_WORKER_CONTROLLERS: dict = {}


def _worker_controller(params: bytes):
    controller = _WORKER_CONTROLLERS.get(params)
    if controller is None:
        from repro.dram.controller import MemoryController

        config, policy, window, starvation_cap = pickle.loads(params)
        controller = MemoryController(
            config, policy=policy, window=window, starvation_cap=starvation_cap
        )
        _WORKER_CONTROLLERS[params] = controller
    return controller


def _drain_worker(
    params: bytes,
    channel_index: int,
    in_name: str,
    n: int,
    lo: int,
    hi: int,
    out_name: str,
    state: ChannelState,
) -> tuple:
    """Drain one channel's row slice inside a pool worker.

    Module-level and fully picklable, so it works under both ``fork``
    and ``spawn`` start methods.  Returns ``(channel_index, post-drain
    ChannelState, activates, precharges, row_hits, row_misses,
    row_conflicts, last_complete_cycle, idle_cycles)``; per-request
    outputs go straight into the shared output block.
    """
    from repro.dram.controller import ControllerStats
    from repro.faults import maybe_inject_worker_fault

    # Deterministic fault-injection hook (no-op unless a plan is
    # installed in the environment): this is how the chaos harness
    # kills/hangs/fails exactly the worker attempts it means to.
    maybe_inject_worker_fault(channel_index)

    controller = _worker_controller(params)
    # Pool workers share the parent's resource-tracker process, so
    # attaching here only re-adds the names the parent registered at
    # creation; the parent's unlink is the single cleanup point.
    shm_in = shared_memory.SharedMemory(name=in_name)
    shm_out = shared_memory.SharedMemory(name=out_name)
    try:
        bf, row, col, arr, iswr = _input_views(shm_in.buf, n)
        k = hi - lo
        o_first = [-1] * k
        o_complete = [0] * k
        o_hit = [-1] * k
        channel = controller.channels[channel_index]
        state.apply(channel)
        stats = ControllerStats()
        last, idle = controller._drain_channel(
            channel,
            bf[lo:hi].tolist(),
            row[lo:hi].tolist(),
            col[lo:hi].tolist(),
            [bool(w) for w in iswr[lo:hi]],
            arr[lo:hi].tolist(),
            o_first,
            o_complete,
            o_hit,
            stats,
        )
        first, complete, hit = _output_views(shm_out.buf, n)
        first[lo:hi] = o_first
        complete[lo:hi] = o_complete
        hit[lo:hi] = o_hit
        result = (
            channel_index,
            ChannelState.capture(channel),
            stats.activates,
            stats.precharges,
            stats.row_hits,
            stats.row_misses,
            stats.row_conflicts,
            last,
            idle,
        )
        del bf, row, col, arr, iswr, first, complete, hit
        return result
    finally:
        try:
            shm_in.close()
            shm_out.close()
        except BufferError:  # pragma: no cover - views still alive on error
            pass


class ParallelDrainExecutor:
    """Persistent worker pool that drains independent channels in
    parallel.

    Created lazily by ``MemoryController(workers=N)`` or explicitly
    and shared across controllers (``MemoryController(...,
    executor=ex)`` -- how the co-simulation driver amortizes one pool
    over the fresh controller it builds per iteration).  The pool
    itself is created on first use and survives across ``drain``
    calls; shared-memory blocks are per call.
    """

    def __init__(
        self,
        workers: int,
        start_method: Optional[str] = None,
        task_timeout: Optional[float] = None,
        max_retries: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
        poll_interval: float = 0.05,
    ) -> None:
        workers = int(workers)
        if workers < 2:
            raise ValueError("parallel draining needs workers >= 2")
        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else "spawn"
        elif start_method not in methods:
            raise ValueError(
                f"start method {start_method!r} unavailable (have {methods})"
            )
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError("task_timeout must be positive (or None)")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if backoff_base < 0 or backoff_cap < 0:
            raise ValueError("backoff must be non-negative")
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        self.workers = workers
        self.start_method = start_method
        #: wall-clock budget per task *attempt*; ``None`` disables the
        #: timeout (worker-death detection still covers kill/crash).
        self.task_timeout = task_timeout
        #: resubmits per task before it degrades to the in-parent
        #: serial fallback.
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.poll_interval = poll_interval
        self._ctx = multiprocessing.get_context(start_method)
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._ctx.Pool(self.workers)
        return self._pool

    def _pool_pids(self) -> Optional[frozenset]:
        """Pids of the live pool workers (None when unobservable).

        ``Pool`` keeps its worker ``Process`` handles in ``_pool`` and
        silently replaces dead workers -- the replacement changes this
        pid set, which is the only portable signal that a worker died,
        since the dead worker's in-flight task simply never returns.
        Guarded with ``getattr`` so a stdlib that drops the attribute
        degrades to timeout-only supervision instead of crashing.
        """
        pool = self._pool
        procs = getattr(pool, "_pool", None)
        if procs is None:
            return None
        try:
            return frozenset(p.pid for p in procs)
        except Exception:  # pragma: no cover - racing pool teardown
            return None

    def _respawn_pool(self):
        """Terminate the (possibly wedged) pool and build a fresh one."""
        if self._pool is not None:
            try:
                self._pool.terminate()
                self._pool.join()
            except Exception as exc:  # pragma: no cover - teardown races
                logger.warning("pool teardown during respawn failed: %s", exc)
            self._pool = None
        return self._ensure_pool()

    def backoff_seconds(self, attempt: int) -> float:
        """Deterministic bounded exponential backoff before resubmit
        ``attempt`` (1-based): base * 2^(attempt-1), capped."""
        return min(self.backoff_base * (2 ** max(attempt - 1, 0)), self.backoff_cap)

    def _supervise(self, tasks, resilience):
        """Run drain tasks under supervision.

        Submits each task asynchronously and watches for three failure
        shapes: a task that *raises* (picklable failure -- retried with
        backoff), a *worker death* (pid-set change; the dead worker's
        in-flight task would never return, so the pool is respawned and
        all outstanding tasks resubmitted), and a *task timeout* (same
        respawn treatment, since a wedged worker holds a pool slot
        hostage).  Resubmission is safe because drain tasks are
        idempotent: each applies its pre-drain state snapshot and
        writes outputs at fixed offsets.

        Returns ``(results, failed)`` where ``results`` maps channel
        index to the worker result tuple and ``failed`` lists channels
        that exhausted ``max_retries`` (the caller drains those
        serially).  Raises :class:`ParallelDrainError` only when the
        pool itself cannot be (re)created.
        """
        task_by_ci = {task[1]: task for task in tasks}
        results: dict = {}
        failed: list = []
        attempts = {ci: 0 for ci in task_by_ci}
        pending: dict = {}
        deadlines: dict = {}

        def submit(ci):
            attempts[ci] += 1
            pending[ci] = self._ensure_pool().apply_async(
                _drain_worker, task_by_ci[ci]
            )
            if self.task_timeout is not None:
                deadlines[ci] = time.monotonic() + self.task_timeout

        def retry_or_fail(cis, reason):
            ready = []
            backoff = 0.0
            for ci in cis:
                pending.pop(ci, None)
                deadlines.pop(ci, None)
                if attempts[ci] > self.max_retries:
                    failed.append(ci)
                    logger.error(
                        "channel %d drain gave up after %d attempts: %s",
                        ci,
                        attempts[ci],
                        reason,
                    )
                    continue
                b = self.backoff_seconds(attempts[ci])
                resilience.record(
                    KIND_TASK_RETRY,
                    channel=ci,
                    attempt=attempts[ci] + 1,
                    backoff_seconds=b,
                    detail=reason,
                )
                backoff = max(backoff, b)
                ready.append(ci)
            if ready and backoff > 0:
                time.sleep(backoff)
            for ci in ready:
                submit(ci)

        try:
            self._ensure_pool()
        except Exception as exc:
            raise ParallelDrainError(f"cannot create worker pool: {exc}") from exc
        known_pids = self._pool_pids()

        def respawn_and_resubmit(reason):
            nonlocal known_pids
            outstanding = list(pending)
            pending.clear()
            deadlines.clear()
            resilience.record(KIND_POOL_RESPAWN, detail=reason)
            try:
                self._respawn_pool()
            except Exception as exc:
                raise ParallelDrainError(
                    f"cannot respawn worker pool: {exc}"
                ) from exc
            known_pids = self._pool_pids()
            retry_or_fail(outstanding, reason)

        for ci in sorted(task_by_ci):
            submit(ci)
        while pending:
            # Block briefly on one in-flight task, then harvest every
            # completion -- cheaper than a busy poll, still bounded so
            # death/timeout checks below run regularly.
            next(iter(pending.values())).wait(self.poll_interval)
            for ci in [c for c, ar in pending.items() if ar.ready()]:
                ar = pending.pop(ci)
                deadlines.pop(ci, None)
                try:
                    results[ci] = ar.get(0)
                except Exception as exc:
                    retry_or_fail([ci], f"worker raised {exc!r}")
            if not pending:
                break
            current = self._pool_pids()
            if (
                known_pids is not None
                and current is not None
                and current != known_pids
            ):
                # Pool silently replaced a dead worker; its in-flight
                # task is lost forever, so respawn and resubmit.
                gone = sorted(known_pids - current)
                resilience.record(
                    KIND_WORKER_DEATH,
                    detail=f"pool worker(s) died (pids {gone} gone)",
                )
                respawn_and_resubmit("worker death; pool respawned")
                continue
            if deadlines:
                now = time.monotonic()
                expired = sorted(ci for ci, dl in deadlines.items() if now >= dl)
                if expired:
                    for ci in expired:
                        resilience.record(
                            KIND_TASK_TIMEOUT,
                            channel=ci,
                            attempt=attempts[ci],
                            detail=(
                                f"no result within {self.task_timeout:.3f}s"
                            ),
                        )
                    respawn_and_resubmit("task timeout; pool respawned")
        return results, failed

    def _serial_drain_task(self, controller, task, arrays, out_buf, n):
        """Drain one channel in the parent after the pool gave up on
        it.

        Replays exactly what :func:`_drain_worker` would have done --
        same pre-drain state snapshot, same output offsets -- but on
        the parent's controller.  The channel's pre-drain state is
        restored before returning (even on failure), so the caller's
        transactional merge applies every channel's post-state
        uniformly.
        """
        from repro.dram.controller import ControllerStats

        _params, ci, _in_name, _n, lo, hi, _out_name, state0 = task
        bf, row, col, wr, arr = arrays
        channel = controller.channels[ci]
        k = hi - lo
        o_first = [-1] * k
        o_complete = [0] * k
        o_hit = [-1] * k
        local = ControllerStats()
        state0.apply(channel)
        try:
            last, idle = controller._drain_channel(
                channel,
                bf[lo:hi].tolist(),
                row[lo:hi].tolist(),
                col[lo:hi].tolist(),
                [bool(w) for w in wr[lo:hi]],
                arr[lo:hi].tolist(),
                o_first,
                o_complete,
                o_hit,
                local,
            )
            post = ChannelState.capture(channel)
        finally:
            state0.apply(channel)
        first, complete, hit = _output_views(out_buf, n)
        first[lo:hi] = o_first
        complete[lo:hi] = o_complete
        hit[lo:hi] = o_hit
        del first, complete, hit
        return (
            ci,
            post,
            local.activates,
            local.precharges,
            local.row_hits,
            local.row_misses,
            local.row_conflicts,
            last,
            idle,
        )

    def drain(
        self,
        controller,
        bf_sorted: np.ndarray,
        row_sorted: np.ndarray,
        col_sorted: np.ndarray,
        wr_sorted: np.ndarray,
        arr_sorted: np.ndarray,
        bounds: np.ndarray,
        order: np.ndarray,
        stats,
        first: np.ndarray,
        complete: np.ndarray,
        hit: np.ndarray,
    ) -> int:
        """Drain every non-empty channel of ``controller`` in parallel.

        Inputs are the arrival-sorted column arrays and channel
        ``bounds`` that the serial path would slice per channel;
        ``order`` maps sorted positions back to input order.  Fills
        ``stats`` counters / per-channel cycles and the per-request
        ``first`` / ``complete`` / ``hit`` arrays (input order)
        exactly as the serial loop does, and returns the final cycle
        (max last-completion over channels).
        """
        n = int(bf_sorted.shape[0])
        params = pickle.dumps(
            (
                controller.config,
                controller.policy,
                controller.window,
                controller.starvation_cap,
            )
        )
        shm_in = shared_memory.SharedMemory(
            create=True, size=max(1, n * _IN_BYTES_PER_ROW)
        )
        shm_out = shared_memory.SharedMemory(
            create=True, size=max(1, n * _OUT_BYTES_PER_ROW)
        )
        try:
            i_bf, i_row, i_col, i_arr, i_wr = _input_views(shm_in.buf, n)
            i_bf[:] = bf_sorted
            i_row[:] = row_sorted
            i_col[:] = col_sorted
            i_arr[:] = arr_sorted
            i_wr[:] = wr_sorted
            tasks = []
            for channel in controller.channels:
                ci = channel.index
                lo, hi = int(bounds[ci]), int(bounds[ci + 1])
                if lo == hi:
                    continue
                tasks.append(
                    (
                        params,
                        ci,
                        shm_in.name,
                        n,
                        lo,
                        hi,
                        shm_out.name,
                        ChannelState.capture(channel),
                    )
                )
            resilience = getattr(stats, "resilience", None)
            if resilience is None:
                resilience = ResilienceReport()
            results, failed = self._supervise(tasks, resilience)
            if failed:
                task_by_ci = {task[1]: task for task in tasks}
                arrays = (bf_sorted, row_sorted, col_sorted, wr_sorted, arr_sorted)
                for ci in sorted(failed):
                    resilience.record(
                        KIND_SERIAL_FALLBACK,
                        channel=ci,
                        detail="retries exhausted; channel drained serially "
                        "in parent",
                    )
                    try:
                        results[ci] = self._serial_drain_task(
                            controller, task_by_ci[ci], arrays, shm_out.buf, n
                        )
                    except Exception as exc:
                        raise ParallelDrainError(
                            f"serial fallback for channel {ci} failed: {exc}"
                        ) from exc
            final_cycle = 0
            # Transactional merge, in channel-index order: no channel
            # state or caller-visible counter is touched until every
            # channel has a result, so any failure above leaves the
            # controller untouched.  Counters are order-independent
            # integer sums, so the merged stats match the serial
            # accumulation exactly.
            for ci in sorted(results):
                _, state, acts, pres, hits, misses, confs, last, idle = results[ci]
                state.apply(controller.channels[ci])
                stats.activates += acts
                stats.precharges += pres
                stats.row_hits += hits
                stats.row_misses += misses
                stats.row_conflicts += confs
                stats.busy_channel_cycles[ci] = last
                stats.idle_channel_cycles[ci] = idle
                if last > final_cycle:
                    final_cycle = last
            o_first, o_complete, o_hit = _output_views(shm_out.buf, n)
            first[order] = o_first
            complete[order] = o_complete
            hit[order] = o_hit != 0
            del i_bf, i_row, i_col, i_arr, i_wr, o_first, o_complete, o_hit
            return final_cycle
        finally:
            try:
                shm_in.close()
                shm_in.unlink()
                shm_out.close()
                shm_out.unlink()
            except BufferError:  # pragma: no cover - views alive on error
                pass

    def close(self) -> None:
        """Shut the pool down; the executor can be reused afterwards
        (a fresh pool is created on the next drain)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ParallelDrainExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass


class DeviceDrainPool:
    """One drain-worker pool shared by a fleet of per-device
    controllers.

    The cluster backend builds a fresh :class:`MemoryController` per
    device per measurement; giving each its own
    :class:`ParallelDrainExecutor` would spawn ``devices x workers``
    processes and pay pool startup on every measurement.  This pool
    generalizes the per-channel executor to the per-device level: the
    devices of one replica drain *sequentially* (each measurement is an
    independent cold-start simulation), so a single executor -- sized
    to the channel count of one device -- can be vended to every
    controller in turn.  ``workers < 2`` vends ``None`` (serial
    drains), so callers need no special-casing.
    """

    def __init__(self, workers: int = 0, **executor_kwargs) -> None:
        self.workers = int(workers)
        self._executor_kwargs = executor_kwargs
        self._executor: Optional[ParallelDrainExecutor] = None

    def executor(self) -> Optional[ParallelDrainExecutor]:
        """The shared executor (created on first use), or ``None``
        when the pool is sized below 2 workers."""
        if self.workers < 2:
            return None
        if self._executor is None:
            self._executor = ParallelDrainExecutor(
                self.workers, **self._executor_kwargs
            )
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def __enter__(self) -> "DeviceDrainPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
