"""Parallel per-channel drain execution for :class:`MemoryController`.

DRAM channels share no timing state -- the controller already drains
them one at a time through the self-contained
:meth:`~repro.dram.controller.MemoryController._drain_channel` loop
and merges stats afterwards.  This module fans those independent
drains out over a persistent ``multiprocessing`` pool:

- the parent copies the arrival-sorted column arrays (flat bank index,
  row, column, is-write, arrive-cycle) into one shared-memory block
  and allocates a second for the per-request outputs;
- each worker attaches by name (``np.frombuffer`` views, zero-copy),
  slices its channel's ``[lo, hi)`` rows, replays the exact serial
  drain loop on a worker-cached controller whose channel was seeded
  with the parent channel's state, and writes ``first`` / ``complete``
  / ``hit`` into the output block;
- the worker ships back a :class:`ChannelState` snapshot plus its
  stat deltas, and the parent applies snapshots / sums counters in
  channel-index order.

Determinism: every worker runs the identical ``_drain_channel`` code
on identical inputs, the output arrays land at fixed offsets, and the
merged counters are order-independent integer sums -- so the parallel
path is *bit-identical* to the serial one (pinned by
``tests/dram/test_parallel.py``) and the speedup is bounded only by
channel count and cores.

Start methods: ``fork`` is preferred where available (cheap workers,
no import re-execution); everything shipped to workers -- the module
-level :func:`_drain_worker`, pickled ``(config, policy, window,
starvation_cap)`` parameters, and :class:`ChannelState` -- is
picklable, so the same code runs under ``spawn`` (macOS/Windows or
``start_method="spawn"``) unchanged.
"""

from __future__ import annotations

import multiprocessing
import pickle
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Optional

import numpy as np

_I8 = np.dtype("<i8").itemsize

#: Input block layout: four int64 columns then one uint8 column.
_IN_BYTES_PER_ROW = 4 * _I8 + 1
#: Output block layout: two int64 columns then one uint8 column.
_OUT_BYTES_PER_ROW = 2 * _I8 + 1


def _input_views(buf, n: int):
    """(bf, row, col, arr, iswr) views over the input block."""
    bf = np.frombuffer(buf, dtype=np.int64, count=n, offset=0)
    row = np.frombuffer(buf, dtype=np.int64, count=n, offset=n * _I8)
    col = np.frombuffer(buf, dtype=np.int64, count=n, offset=2 * n * _I8)
    arr = np.frombuffer(buf, dtype=np.int64, count=n, offset=3 * n * _I8)
    iswr = np.frombuffer(buf, dtype=np.uint8, count=n, offset=4 * n * _I8)
    return bf, row, col, arr, iswr


def _output_views(buf, n: int):
    """(first, complete, hit) views over the output block."""
    first = np.frombuffer(buf, dtype=np.int64, count=n, offset=0)
    complete = np.frombuffer(buf, dtype=np.int64, count=n, offset=n * _I8)
    hit = np.frombuffer(buf, dtype=np.uint8, count=n, offset=2 * n * _I8)
    return first, complete, hit


@dataclass
class ChannelState:
    """Picklable snapshot of one channel's scheduler-visible state.

    Captured from the parent before a drain is shipped out, applied to
    the worker-cached controller's channel so the drain starts exactly
    where the parent's channel left off, then captured again after the
    drain and applied back to the parent -- repeated ``simulate`` calls
    on one controller stay bit-identical to the serial path.  Bank
    ``row_hits`` are carried as absolute counters, so the worker's
    in-place increments transfer without separate delta bookkeeping.
    """

    cmd_bus_next: int
    data_bus_next: int
    last_col_cycle: int
    last_col_bankgroup: int
    last_was_write: bool
    read_after_write_ok: int
    last_act_cycle: int
    act_history: list
    open_rows: list
    earliest_act: list
    earliest_pre: list
    earliest_col: list
    row_hits: list

    @classmethod
    def capture(cls, channel) -> "ChannelState":
        return cls(
            cmd_bus_next=channel._cmd_bus_next,
            data_bus_next=channel._data_bus_next,
            last_col_cycle=channel._last_col_cycle,
            last_col_bankgroup=channel._last_col_bankgroup,
            last_was_write=channel._last_was_write,
            read_after_write_ok=channel._read_after_write_ok,
            last_act_cycle=channel._last_act_cycle,
            act_history=list(channel._act_history),
            open_rows=[b.open_row for b in channel.banks],
            earliest_act=[b.earliest_act for b in channel.banks],
            earliest_pre=[b.earliest_pre for b in channel.banks],
            earliest_col=[b.earliest_col for b in channel.banks],
            row_hits=[b.row_hits for b in channel.banks],
        )

    def apply(self, channel) -> None:
        channel._cmd_bus_next = self.cmd_bus_next
        channel._data_bus_next = self.data_bus_next
        channel._last_col_cycle = self.last_col_cycle
        channel._last_col_bankgroup = self.last_col_bankgroup
        channel._last_was_write = self.last_was_write
        channel._read_after_write_ok = self.read_after_write_ok
        channel._last_act_cycle = self.last_act_cycle
        channel._act_history.clear()
        channel._act_history.extend(self.act_history)
        for bank, orow, eact, epre, ecol, hits in zip(
            channel.banks,
            self.open_rows,
            self.earliest_act,
            self.earliest_pre,
            self.earliest_col,
            self.row_hits,
        ):
            bank.open_row = orow
            bank.earliest_act = eact
            bank.earliest_pre = epre
            bank.earliest_col = ecol
            bank.row_hits = hits


#: Worker-process cache: one controller per distinct parameter blob,
#: reused across tasks so channel/mapper construction is paid once.
_WORKER_CONTROLLERS: dict = {}


def _worker_controller(params: bytes):
    controller = _WORKER_CONTROLLERS.get(params)
    if controller is None:
        from repro.dram.controller import MemoryController

        config, policy, window, starvation_cap = pickle.loads(params)
        controller = MemoryController(
            config, policy=policy, window=window, starvation_cap=starvation_cap
        )
        _WORKER_CONTROLLERS[params] = controller
    return controller


def _drain_worker(
    params: bytes,
    channel_index: int,
    in_name: str,
    n: int,
    lo: int,
    hi: int,
    out_name: str,
    state: ChannelState,
) -> tuple:
    """Drain one channel's row slice inside a pool worker.

    Module-level and fully picklable, so it works under both ``fork``
    and ``spawn`` start methods.  Returns ``(channel_index, post-drain
    ChannelState, activates, precharges, row_hits, row_misses,
    row_conflicts, last_complete_cycle, idle_cycles)``; per-request
    outputs go straight into the shared output block.
    """
    from repro.dram.controller import ControllerStats

    controller = _worker_controller(params)
    # Pool workers share the parent's resource-tracker process, so
    # attaching here only re-adds the names the parent registered at
    # creation; the parent's unlink is the single cleanup point.
    shm_in = shared_memory.SharedMemory(name=in_name)
    shm_out = shared_memory.SharedMemory(name=out_name)
    try:
        bf, row, col, arr, iswr = _input_views(shm_in.buf, n)
        k = hi - lo
        o_first = [-1] * k
        o_complete = [0] * k
        o_hit = [-1] * k
        channel = controller.channels[channel_index]
        state.apply(channel)
        stats = ControllerStats()
        last, idle = controller._drain_channel(
            channel,
            bf[lo:hi].tolist(),
            row[lo:hi].tolist(),
            col[lo:hi].tolist(),
            [bool(w) for w in iswr[lo:hi]],
            arr[lo:hi].tolist(),
            o_first,
            o_complete,
            o_hit,
            stats,
        )
        first, complete, hit = _output_views(shm_out.buf, n)
        first[lo:hi] = o_first
        complete[lo:hi] = o_complete
        hit[lo:hi] = o_hit
        result = (
            channel_index,
            ChannelState.capture(channel),
            stats.activates,
            stats.precharges,
            stats.row_hits,
            stats.row_misses,
            stats.row_conflicts,
            last,
            idle,
        )
        del bf, row, col, arr, iswr, first, complete, hit
        return result
    finally:
        try:
            shm_in.close()
            shm_out.close()
        except BufferError:  # pragma: no cover - views still alive on error
            pass


class ParallelDrainExecutor:
    """Persistent worker pool that drains independent channels in
    parallel.

    Created lazily by ``MemoryController(workers=N)`` or explicitly
    and shared across controllers (``MemoryController(...,
    executor=ex)`` -- how the co-simulation driver amortizes one pool
    over the fresh controller it builds per iteration).  The pool
    itself is created on first use and survives across ``drain``
    calls; shared-memory blocks are per call.
    """

    def __init__(self, workers: int, start_method: Optional[str] = None) -> None:
        workers = int(workers)
        if workers < 2:
            raise ValueError("parallel draining needs workers >= 2")
        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else "spawn"
        elif start_method not in methods:
            raise ValueError(
                f"start method {start_method!r} unavailable (have {methods})"
            )
        self.workers = workers
        self.start_method = start_method
        self._ctx = multiprocessing.get_context(start_method)
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._ctx.Pool(self.workers)
        return self._pool

    def drain(
        self,
        controller,
        bf_sorted: np.ndarray,
        row_sorted: np.ndarray,
        col_sorted: np.ndarray,
        wr_sorted: np.ndarray,
        arr_sorted: np.ndarray,
        bounds: np.ndarray,
        order: np.ndarray,
        stats,
        first: np.ndarray,
        complete: np.ndarray,
        hit: np.ndarray,
    ) -> int:
        """Drain every non-empty channel of ``controller`` in parallel.

        Inputs are the arrival-sorted column arrays and channel
        ``bounds`` that the serial path would slice per channel;
        ``order`` maps sorted positions back to input order.  Fills
        ``stats`` counters / per-channel cycles and the per-request
        ``first`` / ``complete`` / ``hit`` arrays (input order)
        exactly as the serial loop does, and returns the final cycle
        (max last-completion over channels).
        """
        n = int(bf_sorted.shape[0])
        params = pickle.dumps(
            (
                controller.config,
                controller.policy,
                controller.window,
                controller.starvation_cap,
            )
        )
        shm_in = shared_memory.SharedMemory(
            create=True, size=max(1, n * _IN_BYTES_PER_ROW)
        )
        shm_out = shared_memory.SharedMemory(
            create=True, size=max(1, n * _OUT_BYTES_PER_ROW)
        )
        try:
            i_bf, i_row, i_col, i_arr, i_wr = _input_views(shm_in.buf, n)
            i_bf[:] = bf_sorted
            i_row[:] = row_sorted
            i_col[:] = col_sorted
            i_arr[:] = arr_sorted
            i_wr[:] = wr_sorted
            tasks = []
            for channel in controller.channels:
                ci = channel.index
                lo, hi = int(bounds[ci]), int(bounds[ci + 1])
                if lo == hi:
                    continue
                tasks.append(
                    (
                        params,
                        ci,
                        shm_in.name,
                        n,
                        lo,
                        hi,
                        shm_out.name,
                        ChannelState.capture(channel),
                    )
                )
            results = self._ensure_pool().starmap(_drain_worker, tasks)
            final_cycle = 0
            # Merge in channel-index order (starmap preserves task
            # order); counters are order-independent integer sums, so
            # the merged stats match the serial accumulation exactly.
            for ci, state, acts, pres, hits, misses, confs, last, idle in results:
                state.apply(controller.channels[ci])
                stats.activates += acts
                stats.precharges += pres
                stats.row_hits += hits
                stats.row_misses += misses
                stats.row_conflicts += confs
                stats.busy_channel_cycles[ci] = last
                stats.idle_channel_cycles[ci] = idle
                if last > final_cycle:
                    final_cycle = last
            o_first, o_complete, o_hit = _output_views(shm_out.buf, n)
            first[order] = o_first
            complete[order] = o_complete
            hit[order] = o_hit != 0
            del i_bf, i_row, i_col, i_arr, i_wr, o_first, o_complete, o_hit
            return final_cycle
        finally:
            try:
                shm_in.close()
                shm_in.unlink()
                shm_out.close()
                shm_out.unlink()
            except BufferError:  # pragma: no cover - views alive on error
                pass

    def close(self) -> None:
        """Shut the pool down; the executor can be reused afterwards
        (a fresh pool is created on the next drain)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ParallelDrainExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass
