"""Degradation bookkeeping for the fault-tolerant simulation runtime.

Every recovery action the runtime takes -- a retried pool task, a
worker-pool respawn after a dead worker, a drain that fell back to the
serial path -- is *recorded*, not just logged: the supervisor appends
a :class:`ResilienceEvent` to the :class:`ResilienceReport` attached
to the run's :class:`~repro.dram.controller.ControllerStats`
(``stats.resilience``), so callers can assert a run was clean, surface
degradations in sweep output, or fail CI when a "bit-identical"
parallel run silently limped home on retries.

The report is deliberately **not** a dataclass field of
``ControllerStats``: the equivalence suites (and ``repro bench``'s
exit-code identity gate) compare ``dataclasses.asdict(stats)`` between
implementations, and a degraded-but-recovered parallel run must still
compare bit-identical to the serial run it reproduced.  Attaching the
report as a plain attribute keeps it out of ``asdict`` while keeping
it one hop from the stats every caller already holds.
"""

from __future__ import annotations

import logging
from dataclasses import asdict, dataclass, field

logger = logging.getLogger("repro.resilience")

#: Event kinds, in roughly increasing order of severity.
KIND_TASK_RETRY = "task_retry"
KIND_TASK_TIMEOUT = "task_timeout"
KIND_WORKER_DEATH = "worker_death"
KIND_POOL_RESPAWN = "pool_respawn"
KIND_SERIAL_FALLBACK = "serial_fallback"
KIND_POINT_FAILED = "point_failed"


@dataclass(frozen=True)
class ResilienceEvent:
    """One recovery action taken by the runtime."""

    #: one of the ``KIND_*`` constants above
    kind: str
    #: DRAM channel index (or sweep-point index) the action concerned;
    #: -1 when the action was global (e.g. a whole-pool respawn)
    channel: int = -1
    #: 1-based attempt number that triggered the action (0 = n/a)
    attempt: int = 0
    #: seconds slept before the resubmit (deterministic backoff)
    backoff_seconds: float = 0.0
    detail: str = ""


@dataclass
class ResilienceReport:
    """Aggregated recovery record for one simulation/sweep run."""

    events: list[ResilienceEvent] = field(default_factory=list)

    def record(
        self,
        kind: str,
        channel: int = -1,
        attempt: int = 0,
        backoff_seconds: float = 0.0,
        detail: str = "",
    ) -> ResilienceEvent:
        """Append one event (also emitted on the
        ``repro.resilience`` logger at WARNING level)."""
        event = ResilienceEvent(
            kind=kind,
            channel=channel,
            attempt=attempt,
            backoff_seconds=backoff_seconds,
            detail=detail,
        )
        self.events.append(event)
        logger.warning(
            "resilience: %s channel=%d attempt=%d backoff=%.3fs %s",
            kind,
            channel,
            attempt,
            backoff_seconds,
            detail,
        )
        return event

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    @property
    def task_retries(self) -> int:
        return self.count(KIND_TASK_RETRY)

    @property
    def task_timeouts(self) -> int:
        return self.count(KIND_TASK_TIMEOUT)

    @property
    def worker_deaths(self) -> int:
        return self.count(KIND_WORKER_DEATH)

    @property
    def pool_respawns(self) -> int:
        return self.count(KIND_POOL_RESPAWN)

    @property
    def serial_fallbacks(self) -> int:
        return self.count(KIND_SERIAL_FALLBACK)

    @property
    def degraded(self) -> bool:
        """True when any recovery action was taken this run."""
        return bool(self.events)

    def merge(self, other: "ResilienceReport") -> None:
        self.events.extend(other.events)

    def to_dict(self) -> dict:
        return {
            "degraded": self.degraded,
            "task_retries": self.task_retries,
            "task_timeouts": self.task_timeouts,
            "worker_deaths": self.worker_deaths,
            "pool_respawns": self.pool_respawns,
            "serial_fallbacks": self.serial_fallbacks,
            "events": [asdict(e) for e in self.events],
        }

    def summary(self) -> str:
        if not self.events:
            return "clean (no degradations)"
        return (
            f"{len(self.events)} degradation event(s): "
            f"{self.task_retries} retries, {self.task_timeouts} timeouts, "
            f"{self.worker_deaths} worker deaths, "
            f"{self.pool_respawns} pool respawns, "
            f"{self.serial_fallbacks} serial fallbacks"
        )
