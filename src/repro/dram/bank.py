"""Per-bank DRAM state machine."""

from __future__ import annotations

import enum
from typing import Optional

from repro.dram.timing import DRAMTiming


class BankState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"


class Bank:
    """One DRAM bank: an open-row register plus next-allowed-command
    timestamps maintained under the JEDEC core timing constraints."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.open_row: Optional[int] = None
        self.earliest_act = 0
        self.earliest_pre = 0
        self.earliest_col = 0  # RD or WR
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0

    @property
    def state(self) -> BankState:
        return BankState.CLOSED if self.open_row is None else BankState.OPEN

    def next_command_ready(self, row: int) -> tuple[str, int]:
        """What command does a request for ``row`` need next, and at
        which cycle is the bank ready for it?  Returns ("RDWR"|"ACT"|"PRE", cycle)."""
        if self.open_row == row:
            return "RDWR", self.earliest_col
        if self.open_row is None:
            return "ACT", self.earliest_act
        return "PRE", self.earliest_pre

    def activate(self, cycle: int, row: int, timing: DRAMTiming) -> None:
        if self.open_row is not None:
            raise RuntimeError(f"bank {self.index}: ACT while row {self.open_row} open")
        if cycle < self.earliest_act:
            raise RuntimeError(f"bank {self.index}: ACT at {cycle} < {self.earliest_act}")
        self.open_row = row
        self.earliest_col = cycle + timing.tRCD
        self.earliest_pre = cycle + timing.tRAS
        self.earliest_act = cycle + timing.tRC

    def precharge(self, cycle: int, timing: DRAMTiming) -> None:
        if self.open_row is None:
            raise RuntimeError(f"bank {self.index}: PRE while closed")
        if cycle < self.earliest_pre:
            raise RuntimeError(f"bank {self.index}: PRE at {cycle} < {self.earliest_pre}")
        self.open_row = None
        self.earliest_act = max(self.earliest_act, cycle + timing.tRP)

    def read(self, cycle: int, timing: DRAMTiming) -> int:
        """Issue RD; returns the data-complete cycle."""
        self._check_col(cycle)
        # Keep the row open long enough to finish the burst before PRE.
        self.earliest_pre = max(self.earliest_pre, cycle + timing.burst_cycles)
        self.row_hits += 1
        return cycle + timing.tCL + timing.burst_cycles

    def write(self, cycle: int, timing: DRAMTiming) -> int:
        """Issue WR; returns the data-complete cycle (write recovery
        pushes out the next PRE)."""
        self._check_col(cycle)
        done = cycle + timing.tCWL + timing.burst_cycles
        self.earliest_pre = max(self.earliest_pre, done + timing.tWR)
        self.row_hits += 1
        return done

    def _check_col(self, cycle: int) -> None:
        if self.open_row is None:
            raise RuntimeError(f"bank {self.index}: column command while closed")
        if cycle < self.earliest_col:
            raise RuntimeError(
                f"bank {self.index}: column command at {cycle} < {self.earliest_col}"
            )
