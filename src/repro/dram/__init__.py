"""A Ramulator-style cycle-level DRAM simulator.

The paper models the MoNDE memory with Ramulator [Kim+, IEEE CAL'15]
over an LPDDR device (Section 4.1).  This package reimplements that
substrate: explicit bank state machines, bank-group timing, a FR-FCFS
memory controller per channel, and the paper's ro-ba-bg-ra-co-ch
address mapping with even/odd bank partitioning between expert
parameters and activations (Section 3.4, "Memory Allocation").

The simulator is used two ways:

- directly, in micro-benchmarks and tests (sustained bandwidth,
  row-hit rates, partitioning ablations), and
- as the calibration source for the effective-bandwidth constants the
  system-level NDP model consumes (:class:`~repro.dram.calibrate.BandwidthCalibrator`).
"""

from repro.dram.address import AddressMapper, DecodedBatch, MappingScheme
from repro.dram.bank import Bank, BankState
from repro.dram.calibrate import (
    BandwidthCalibrator,
    CalibrationResult,
    calibrated_effective_bandwidth,
)
from repro.dram.channel import Channel
from repro.dram.config import LPDDR5X_8533, DRAMOrganization
from repro.dram.controller import ControllerStats, MemoryController, SchedulerPolicy
from repro.dram.request import (
    FLAG_WRITE,
    Command,
    CommandKind,
    Request,
    RequestKind,
    arrays_from_requests,
    requests_from_arrays,
)
from repro.dram.timing import DRAMTiming

__all__ = [
    "AddressMapper",
    "Bank",
    "BankState",
    "BandwidthCalibrator",
    "CalibrationResult",
    "Channel",
    "Command",
    "CommandKind",
    "ControllerStats",
    "DecodedBatch",
    "FLAG_WRITE",
    "DRAMOrganization",
    "DRAMTiming",
    "LPDDR5X_8533",
    "MappingScheme",
    "MemoryController",
    "Request",
    "RequestKind",
    "SchedulerPolicy",
    "arrays_from_requests",
    "calibrated_effective_bandwidth",
    "requests_from_arrays",
]
