"""Controller-throughput benchmark harness (``repro bench``).

Times :class:`~repro.dram.controller.MemoryController.simulate` --
requests simulated per wall-clock second -- on the three access
shapes from :mod:`repro.workloads.traces` (streaming, uniform random,
skewed MoE), optionally against the pre-optimization reference
scheduler from :mod:`repro.dram.reference`, and emits a JSON payload
(``BENCH_controller.json``) so successive PRs accumulate a perf
trajectory.  Trace generation is excluded from the timed region.

The committed baseline lives at ``benchmarks/perf/BENCH_controller.json``;
see ``benchmarks/perf/README.md`` for how to read and refresh it.
"""

from __future__ import annotations

import json
import platform as _platform
import time
from dataclasses import asdict, dataclass
from typing import Optional, Sequence

from repro.dram.config import DRAMConfig, LPDDR5X_8533
from repro.dram.controller import ControllerStats, MemoryController
from repro.dram.reference import ReferenceMemoryController

#: Patterns benched by default, in report order.
DEFAULT_PATTERNS = ("streaming", "random", "moe-skewed")


@dataclass(frozen=True)
class BenchRun:
    """One timed simulate() call."""

    pattern: str
    implementation: str  # "indexed" | "reference"
    n_requests: int
    elapsed_seconds: float
    requests_per_second: float
    total_cycles: int
    row_hit_rate: float
    row_hits: int
    row_misses: int
    row_conflicts: int
    activates: int
    precharges: int
    queue_delay_mean: float
    queue_delay_p99: float
    idle_cycles: int


def _make_trace(
    pattern: str,
    n_requests: int,
    config: DRAMConfig,
    seed: int,
    arrival: Optional[str] = None,
    arrival_gap: float = 8.0,
):
    from repro.workloads.traces import ARRIVAL_PROCESSES, MEMORY_TRACES, apply_arrivals

    try:
        generator = MEMORY_TRACES[pattern]
    except KeyError:
        raise ValueError(
            f"unknown pattern {pattern!r}; choose from {sorted(MEMORY_TRACES)}"
        ) from None
    requests = generator(n_requests, config=config, seed=seed)
    if arrival is not None:
        try:
            process = ARRIVAL_PROCESSES[arrival]
        except KeyError:
            raise ValueError(
                f"unknown arrival process {arrival!r}; "
                f"choose from {sorted(ARRIVAL_PROCESSES)}"
            ) from None
        apply_arrivals(requests, process(n_requests, arrival_gap, seed=seed))
    return requests


def _run_one(
    pattern: str,
    implementation: str,
    n_requests: int,
    config: DRAMConfig,
    seed: int,
    arrival: Optional[str] = None,
    arrival_gap: float = 8.0,
    **controller_kwargs,
) -> tuple[BenchRun, ControllerStats]:
    cls = ReferenceMemoryController if implementation == "reference" else MemoryController
    requests = _make_trace(pattern, n_requests, config, seed, arrival, arrival_gap)
    controller = cls(config, **controller_kwargs)
    start = time.perf_counter()
    stats = controller.simulate(requests)
    elapsed = time.perf_counter() - start
    run = BenchRun(
        pattern=pattern,
        implementation=implementation,
        n_requests=n_requests,
        elapsed_seconds=elapsed,
        requests_per_second=n_requests / elapsed if elapsed > 0 else 0.0,
        total_cycles=stats.total_cycles,
        row_hit_rate=stats.row_hit_rate,
        row_hits=stats.row_hits,
        row_misses=stats.row_misses,
        row_conflicts=stats.row_conflicts,
        activates=stats.activates,
        precharges=stats.precharges,
        queue_delay_mean=stats.queue_delay_mean,
        queue_delay_p99=stats.queue_delay_p99,
        idle_cycles=sum(stats.idle_channel_cycles.values()),
    )
    return run, stats


def bench_controller(
    n_requests: int = 1_000_000,
    patterns: Sequence[str] = DEFAULT_PATTERNS,
    reference_requests: Optional[int] = None,
    include_reference: bool = True,
    config: DRAMConfig = LPDDR5X_8533,
    seed: int = 7,
    arrival: Optional[str] = None,
    arrival_gap: float = 8.0,
    **controller_kwargs,
) -> dict:
    """Bench every pattern; returns the JSON-ready payload.

    ``reference_requests`` caps the reference runs (its drain loop is
    O(n^2), so full-length runs can take minutes); when capped, the
    recorded speedup is *conservative* -- the reference throughput is
    measured at the shorter, faster-for-it length.  When lengths
    match, the two implementations' ControllerStats are also checked
    for bit-identity and the result recorded per pattern.

    ``arrival`` selects an open-loop arrival process
    (:data:`repro.workloads.traces.ARRIVAL_PROCESSES`) stamped onto the
    trace with a mean inter-arrival gap of ``arrival_gap`` cycles;
    ``None`` keeps the all-at-cycle-0 batch default.
    """
    if n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    ref_n = reference_requests if reference_requests is not None else n_requests
    results = {}
    for pattern in patterns:
        indexed, indexed_stats = _run_one(
            pattern, "indexed", n_requests, config, seed,
            arrival, arrival_gap, **controller_kwargs
        )
        entry = {"indexed": asdict(indexed)}
        if include_reference:
            reference, reference_stats = _run_one(
                pattern, "reference", ref_n, config, seed,
                arrival, arrival_gap, **controller_kwargs
            )
            entry["reference"] = asdict(reference)
            entry["speedup"] = (
                indexed.requests_per_second / reference.requests_per_second
                if reference.requests_per_second
                else float("inf")
            )
            if ref_n == n_requests:
                entry["stats_identical"] = asdict(indexed_stats) == asdict(
                    reference_stats
                )
        results[pattern] = entry
    return {
        "benchmark": "dram-controller-throughput",
        "n_requests": n_requests,
        "reference_requests": ref_n if include_reference else None,
        "seed": seed,
        "arrival": arrival,
        "arrival_gap_cycles": arrival_gap if arrival is not None else None,
        "config": "LPDDR5X_8533" if config is LPDDR5X_8533 else "custom",
        "python": _platform.python_version(),
        "machine": _platform.machine(),
        "patterns": results,
    }


def write_bench(payload: dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")


def format_bench(payload: dict) -> str:
    """Human-readable table for the CLI."""
    from repro.analysis.report import format_table

    rows = []
    for pattern, entry in payload["patterns"].items():
        idx = entry["indexed"]
        ref = entry.get("reference")
        rows.append(
            [
                pattern,
                idx["n_requests"],
                round(idx["elapsed_seconds"], 3),
                int(idx["requests_per_second"]),
                int(ref["requests_per_second"]) if ref else "-",
                round(entry["speedup"], 1) if ref else "-",
                round(idx["row_hit_rate"], 3),
                round(idx["queue_delay_p99"], 1),
            ]
        )
    return format_table(
        [
            "pattern", "requests", "sec", "req/s", "ref req/s", "speedup",
            "hit rate", "q-delay p99",
        ],
        rows,
    )
