"""Controller-throughput benchmark harness (``repro bench``).

Times the cycle-level memory controller -- requests simulated per
wall-clock second -- on the access shapes from
:mod:`repro.workloads.traces` (streaming, uniform random, skewed MoE)
or on an on-disk ``.dramtrace`` file (``--trace-file``), and emits a
JSON payload (``BENCH_controller.json``) so successive PRs accumulate
a perf trajectory.

Timed implementations per pattern:

- ``indexed`` -- one ``simulate()`` call on a pre-built Request list
  (the historical simulate-only number; ingestion excluded).
- ``reference`` -- same, on the pre-optimization O(n^2) scheduler
  from :mod:`repro.dram.reference`.
- ``objects`` -- *end-to-end* Request-list path: materializing the
  object list from trace columns (or a trace file) **plus**
  ``simulate()``.
- ``arrays`` -- *end-to-end* array-native path: (for ``--trace-file``)
  mmap-loading the columns **plus** ``simulate_arrays()``; in-memory
  columns feed the scheduler directly, so ingestion is free.
- ``parallel`` (``--workers N``, N >= 2) -- the array path with
  per-channel drains fanned out over the worker pool
  (:mod:`repro.dram.parallel`); pool startup is included in the timed
  region, so this is the cold end-to-end number.
- ``streaming`` (``--trace-file`` + ``--stream-window W``) -- the
  bounded-resident-state path: ``simulate_trace_streaming`` feeding
  ``W``-request chunks through the resumable per-channel drains.

``object_layer_speedup`` (arrays req/s over objects req/s) is the
object-layer overhead the array-native front door removes;
``parallel_speedup`` is parallel req/s over arrays req/s.  Every
same-length pair is also checked for bit-identical stats
(``parallel_identical`` / ``streaming_identical`` alongside the
existing checks; ``repro bench`` exits nonzero on any mismatch).

The committed baseline lives at ``benchmarks/perf/BENCH_controller.json``;
see ``benchmarks/perf/README.md`` for how to read and refresh it, and
``benchmarks/perf/check_regression.py`` for the CI regression gate.
"""

from __future__ import annotations

import pathlib
import platform as _platform
import time
from dataclasses import asdict, dataclass
from typing import Optional, Sequence

from repro.dram.config import DRAMConfig, LPDDR5X_8533
from repro.dram.controller import ControllerStats, MemoryController
from repro.dram.reference import ReferenceMemoryController
from repro.dram.request import requests_from_arrays

#: Patterns benched by default, in report order.
DEFAULT_PATTERNS = ("streaming", "random", "moe-skewed")


@dataclass(frozen=True)
class BenchRun:
    """One timed run of one implementation.

    ``elapsed_seconds`` covers the whole timed region;
    ``ingest_seconds`` is the portion spent turning the trace into the
    implementation's input form (file load and/or Request-object
    construction) before the simulate call -- 0.0 where ingestion is
    excluded (``indexed``/``reference``) or free (in-memory
    ``arrays``).
    """

    pattern: str
    implementation: str  # "indexed" | "reference" | "arrays" | "objects"
    n_requests: int
    elapsed_seconds: float
    ingest_seconds: float
    requests_per_second: float
    total_cycles: int
    row_hit_rate: float
    row_hits: int
    row_misses: int
    row_conflicts: int
    activates: int
    precharges: int
    queue_delay_mean: float
    queue_delay_p99: float
    idle_cycles: int


def _make_run(
    pattern: str,
    implementation: str,
    n_requests: int,
    elapsed: float,
    ingest: float,
    stats: ControllerStats,
) -> BenchRun:
    return BenchRun(
        pattern=pattern,
        implementation=implementation,
        n_requests=n_requests,
        elapsed_seconds=elapsed,
        ingest_seconds=ingest,
        requests_per_second=n_requests / elapsed if elapsed > 0 else 0.0,
        total_cycles=stats.total_cycles,
        row_hit_rate=stats.row_hit_rate,
        row_hits=stats.row_hits,
        row_misses=stats.row_misses,
        row_conflicts=stats.row_conflicts,
        activates=stats.activates,
        precharges=stats.precharges,
        queue_delay_mean=stats.queue_delay_mean,
        queue_delay_p99=stats.queue_delay_p99,
        idle_cycles=sum(stats.idle_channel_cycles.values()),
    )


def _make_columns(
    pattern: str,
    n_requests: int,
    config: DRAMConfig,
    seed: int,
    arrival: Optional[str] = None,
    arrival_gap: float = 8.0,
):
    from repro.workloads.traces import generate_trace_arrays

    return generate_trace_arrays(
        pattern, n_requests, config=config, seed=seed,
        arrival=arrival, arrival_gap=arrival_gap,
    )


def _bench_entry(
    pattern: str,
    config: DRAMConfig,
    columns,
    trace_file: Optional[str],
    ref_columns,
    include_reference: bool,
    controller_kwargs: dict,
    workers: Optional[int] = None,
    stream_window: Optional[int] = None,
) -> dict:
    """Time every implementation on one trace; returns the JSON entry.

    ``columns`` are the in-memory ``(addrs, arrive_cycles, flags)``
    for the trace; when ``trace_file`` is set, the end-to-end paths
    re-load it from disk inside their timed regions instead of using
    the columns directly.
    """
    addrs, arrive, flags = columns
    n_requests = len(addrs)

    # End-to-end Request-list path: object construction + simulate().
    # The simulate() portion alone is the historical "indexed" number.
    controller = MemoryController(config, **controller_kwargs)
    start = time.perf_counter()
    if trace_file is not None:
        from repro.workloads.trace_io import load_trace

        trace = load_trace(trace_file)
        requests = requests_from_arrays(
            trace.addrs, trace.arrive_cycles, trace.flags
        )
    else:
        requests = requests_from_arrays(addrs, arrive, flags)
    mid = time.perf_counter()
    objects_stats = controller.simulate(requests)
    end = time.perf_counter()
    entry = {
        "indexed": asdict(
            _make_run(pattern, "indexed", n_requests, end - mid, 0.0, objects_stats)
        ),
        "objects": asdict(
            _make_run(
                pattern, "objects", n_requests, end - start, mid - start, objects_stats
            )
        ),
    }
    del requests

    # End-to-end array-native path: (load +) simulate_arrays().
    controller = MemoryController(config, **controller_kwargs)
    start = time.perf_counter()
    if trace_file is not None:
        trace = load_trace(trace_file)
        a, c, f = trace.addrs, trace.arrive_cycles, trace.flags
        mid = time.perf_counter()
    else:
        a, c, f = addrs, arrive, flags
        mid = start
    arrays_stats = controller.simulate_arrays(a, c, f)
    end = time.perf_counter()
    arrays_run = _make_run(
        pattern, "arrays", n_requests, end - start, mid - start, arrays_stats
    )
    entry["arrays"] = asdict(arrays_run)
    entry["object_layer_speedup"] = (
        arrays_run.requests_per_second
        / entry["objects"]["requests_per_second"]
        if entry["objects"]["requests_per_second"]
        else float("inf")
    )
    entry["array_path_identical"] = asdict(arrays_stats) == asdict(objects_stats)

    if workers is not None and workers >= 2:
        # Parallel per-channel draining: same array path, drains
        # fanned out over a worker pool.  The pool spins up inside the
        # timed region (cold number); amortized per-call cost is lower
        # when the controller is reused.
        controller = MemoryController(config, workers=workers, **controller_kwargs)
        try:
            start = time.perf_counter()
            if trace_file is not None:
                trace = load_trace(trace_file)
                a, c, f = trace.addrs, trace.arrive_cycles, trace.flags
                mid = time.perf_counter()
            else:
                a, c, f = addrs, arrive, flags
                mid = start
            parallel_stats = controller.simulate_arrays(a, c, f)
            end = time.perf_counter()
        finally:
            controller.close()
        parallel_run = _make_run(
            pattern, "parallel", n_requests, end - start, mid - start, parallel_stats
        )
        entry["parallel"] = asdict(parallel_run)
        entry["parallel_workers"] = workers
        entry["parallel_speedup"] = (
            parallel_run.requests_per_second / arrays_run.requests_per_second
            if arrays_run.requests_per_second
            else float("inf")
        )
        entry["parallel_identical"] = asdict(parallel_stats) == asdict(arrays_stats)

    if stream_window is not None and trace_file is not None:
        # Bounded-window streaming: chunked admission through the
        # resumable per-channel drains, end to end from the file.
        controller = MemoryController(config, **controller_kwargs)
        start = time.perf_counter()
        streaming_stats = controller.simulate_trace_streaming(
            trace_file, window=stream_window
        )
        end = time.perf_counter()
        streaming_run = _make_run(
            pattern, "streaming", n_requests, end - start, 0.0, streaming_stats
        )
        entry["streaming"] = asdict(streaming_run)
        entry["streaming_window"] = stream_window
        entry["streaming_identical"] = asdict(streaming_stats) == asdict(arrays_stats)

    if include_reference:
        ref_addrs, ref_arrive, ref_flags = ref_columns
        ref_requests = requests_from_arrays(ref_addrs, ref_arrive, ref_flags)
        controller = ReferenceMemoryController(config, **controller_kwargs)
        start = time.perf_counter()
        reference_stats = controller.simulate(ref_requests)
        end = time.perf_counter()
        reference_run = _make_run(
            pattern, "reference", len(ref_addrs), end - start, 0.0, reference_stats
        )
        entry["reference"] = asdict(reference_run)
        entry["speedup"] = (
            entry["indexed"]["requests_per_second"]
            / reference_run.requests_per_second
            if reference_run.requests_per_second
            else float("inf")
        )
        if len(ref_addrs) == n_requests:
            entry["stats_identical"] = asdict(objects_stats) == asdict(reference_stats)
    return entry


def bench_controller(
    n_requests: int = 1_000_000,
    patterns: Sequence[str] = DEFAULT_PATTERNS,
    reference_requests: Optional[int] = None,
    include_reference: bool = True,
    config: DRAMConfig = LPDDR5X_8533,
    seed: int = 7,
    arrival: Optional[str] = None,
    arrival_gap: float = 8.0,
    workers: Optional[int] = None,
    **controller_kwargs,
) -> dict:
    """Bench every pattern; returns the JSON-ready payload.

    ``reference_requests`` caps the reference runs (its drain loop is
    O(n^2), so full-length runs can take minutes); when capped, the
    recorded speedup is *conservative* -- the reference throughput is
    measured at the shorter, faster-for-it length.  When lengths
    match, the implementations' ControllerStats are also checked for
    bit-identity and the result recorded per pattern
    (``stats_identical``; ``array_path_identical`` covers arrays vs
    objects and is always recorded).

    ``arrival`` selects an open-loop arrival process
    (:data:`repro.workloads.traces.ARRIVAL_PROCESSES`) stamped onto the
    trace with a mean inter-arrival gap of ``arrival_gap`` cycles;
    ``None`` keeps the all-at-cycle-0 batch default.

    ``workers`` >= 2 adds a ``parallel`` run per pattern: the array
    path with per-channel drains fanned out over that many pool
    workers, checked bit-identical against the serial array run.
    """
    if n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    ref_n = reference_requests if reference_requests is not None else n_requests
    results = {}
    for pattern in patterns:
        columns = _make_columns(
            pattern, n_requests, config, seed, arrival, arrival_gap
        )
        ref_columns = None
        if include_reference:
            ref_columns = (
                columns
                if ref_n == n_requests
                else _make_columns(pattern, ref_n, config, seed, arrival, arrival_gap)
            )
        results[pattern] = _bench_entry(
            pattern, config, columns, None, ref_columns,
            include_reference, controller_kwargs, workers=workers,
        )
    return {
        "benchmark": "dram-controller-throughput",
        "n_requests": n_requests,
        "reference_requests": ref_n if include_reference else None,
        "seed": seed,
        "arrival": arrival,
        "arrival_gap_cycles": arrival_gap if arrival is not None else None,
        "workers": workers,
        "config": "LPDDR5X_8533" if config is LPDDR5X_8533 else "custom",
        "python": _platform.python_version(),
        "machine": _platform.machine(),
        "patterns": results,
    }


def bench_trace_file(
    trace_file: str,
    reference_requests: Optional[int] = None,
    include_reference: bool = False,
    config: DRAMConfig = LPDDR5X_8533,
    workers: Optional[int] = None,
    stream_window: Optional[int] = None,
    **controller_kwargs,
) -> dict:
    """Bench an on-disk ``.dramtrace``: end-to-end (load + simulate)
    array path vs the Request-list path, same payload shape as
    :func:`bench_controller` with one pattern named after the file.

    Both end-to-end implementations re-open the file inside their
    timed regions; the array path feeds the ``np.memmap`` column views
    straight into ``simulate_arrays`` (the OS streams pages in as the
    drain touches them), the object path pays the full per-request
    materialization.  The reference scheduler is optional and capped
    at ``reference_requests`` (it is O(n^2) in trace length).

    ``workers`` >= 2 adds the ``parallel`` run (load + parallel
    ``simulate_arrays``); ``stream_window`` adds the ``streaming`` run
    (``simulate_trace_streaming`` with that admission window), both
    checked bit-identical against the serial array run.
    """
    from repro.workloads.trace_io import load_trace

    path = pathlib.Path(trace_file)
    trace = load_trace(path)
    n_requests = len(trace)
    if n_requests < 1:
        raise ValueError(f"{path}: empty trace")
    pattern = path.stem
    columns = (trace.addrs, trace.arrive_cycles, trace.flags)
    ref_columns = None
    ref_n = reference_requests if reference_requests is not None else n_requests
    if include_reference:
        ref_columns = (
            trace.addrs[:ref_n],
            trace.arrive_cycles[:ref_n],
            trace.flags[:ref_n],
        )
    entry = _bench_entry(
        pattern, config, columns, str(path), ref_columns,
        include_reference, controller_kwargs,
        workers=workers, stream_window=stream_window,
    )
    return {
        "benchmark": "dram-controller-throughput",
        "trace_file": str(path),
        "n_requests": n_requests,
        "reference_requests": ref_n if include_reference else None,
        "seed": None,
        "arrival": None,
        "arrival_gap_cycles": None,
        "workers": workers,
        "stream_window": stream_window,
        "config": "LPDDR5X_8533" if config is LPDDR5X_8533 else "custom",
        "python": _platform.python_version(),
        "machine": _platform.machine(),
        "patterns": {pattern: entry},
    }


def write_bench(payload: dict, path: str) -> None:
    """Atomically publish a bench payload: a crash mid-refresh must
    never leave a torn baseline for the regression gate to read."""
    from repro.util.atomic_io import atomic_write_json

    atomic_write_json(path, payload, indent=2, sort_keys=False)


def format_bench(payload: dict) -> str:
    """Human-readable table for the CLI."""
    from repro.analysis.report import format_table

    rows = []
    for pattern, entry in payload["patterns"].items():
        impls = ("arrays", "parallel", "streaming", "objects", "indexed", "reference")
        for impl in impls:
            run = entry.get(impl)
            if run is None:
                continue
            label = impl
            if impl == "parallel":
                label = f"parallel(w={entry.get('parallel_workers', '?')})"
            elif impl == "streaming":
                label = f"streaming(win={entry.get('streaming_window', '?')})"
            rows.append(
                [
                    pattern,
                    label,
                    run["n_requests"],
                    round(run["elapsed_seconds"], 3),
                    int(run["requests_per_second"]),
                    round(run["row_hit_rate"], 3),
                    round(run["queue_delay_p99"], 1),
                ]
            )
        rows.append(
            [
                pattern,
                "-> arrays vs objects",
                "",
                "",
                f"{entry['object_layer_speedup']:.2f}x",
                "",
                "",
            ]
        )
        if "parallel_speedup" in entry:
            rows.append(
                [
                    pattern,
                    "-> parallel vs arrays",
                    "",
                    "",
                    f"{entry['parallel_speedup']:.2f}x",
                    "",
                    "",
                ]
            )
    return format_table(
        ["pattern", "impl", "requests", "sec", "req/s", "hit rate", "q-delay p99"],
        rows,
    )


def all_identity_checks_pass(payload: dict) -> bool:
    """True iff every recorded bit-identity check in a payload holds
    (used by the CLI to turn a silent mismatch into a failing exit)."""
    for entry in payload["patterns"].values():
        for key in (
            "array_path_identical",
            "stats_identical",
            "parallel_identical",
            "streaming_identical",
        ):
            if not entry.get(key, True):
                return False
    return True


def bench_parallel_section(
    trace_sizes: Sequence[int] = (1_000_000, 10_000_000),
    workers_grid: Sequence[int] = (2, 4),
    pattern: str = "random",
    config: DRAMConfig = LPDDR5X_8533,
    seed: int = 7,
    **controller_kwargs,
) -> dict:
    """The committed baseline's ``parallel`` section: serial vs
    parallel wall clock per trace size and worker count.

    Per trace size the serial array path runs once, then each worker
    count runs the identical columns through a fresh ``workers=N``
    controller.  Pool spin-up happens *inside* the timed region (the
    cold number is what a one-shot CLI user pays; warm per-call cost
    is lower when a controller or executor is reused), so the
    recorded speedups are conservative, most visibly on the smaller
    trace.  ``identical`` records the
    bit-identity check against the serial stats, ``speedup`` the
    serial/parallel elapsed ratio.  ``cpu_count`` captures the machine
    the numbers were taken on -- speedup saturates at
    ``min(workers, channels, cores)``, so single-digit-core CI boxes
    will not reproduce the multi-core ratios.
    """
    import os

    sizes = {}
    for n in trace_sizes:
        columns = _make_columns(pattern, n, config, seed)
        addrs, arrive, flags = columns
        controller = MemoryController(config, **controller_kwargs)
        start = time.perf_counter()
        serial_stats = controller.simulate_arrays(addrs, arrive, flags)
        serial_elapsed = time.perf_counter() - start
        per_workers = {}
        for w in workers_grid:
            controller = MemoryController(config, workers=w, **controller_kwargs)
            try:
                start = time.perf_counter()
                par_stats = controller.simulate_arrays(addrs, arrive, flags)
                elapsed = time.perf_counter() - start
            finally:
                controller.close()
            per_workers[str(w)] = {
                "elapsed_seconds": elapsed,
                "requests_per_second": n / elapsed if elapsed > 0 else 0.0,
                "speedup": serial_elapsed / elapsed if elapsed > 0 else float("inf"),
                "identical": asdict(par_stats) == asdict(serial_stats),
            }
        sizes[str(n)] = {
            "serial_seconds": serial_elapsed,
            "serial_requests_per_second": n / serial_elapsed if serial_elapsed else 0.0,
            "workers": per_workers,
        }
    return {
        "benchmark": "dram-controller-parallel-drain",
        "pattern": pattern,
        "seed": seed,
        "config": "LPDDR5X_8533" if config is LPDDR5X_8533 else "custom",
        "cpu_count": os.cpu_count(),
        "channels": config.organization.n_channels,
        "python": _platform.python_version(),
        "machine": _platform.machine(),
        "traces": sizes,
    }
