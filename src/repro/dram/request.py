"""Memory request and DRAM command types.

Besides the object types, this module owns the *column* encoding of a
request stream -- the ``(addrs, arrive_cycles, flags)`` parallel
arrays that :meth:`~repro.dram.controller.MemoryController.simulate_arrays`
consumes and the ``.dramtrace`` format persists -- and the adapters
between the two representations (:func:`requests_from_arrays` /
:func:`arrays_from_requests`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

#: flags bit 0: request is a write (else a read).
FLAG_WRITE = 0x01
#: flags bits 1-3: priority class, 0 (lowest) .. PRIORITY_MAX.  Stored
#: and round-tripped by the trace format; the FR-FCFS scheduler does
#: not (yet) arbitrate on it.
PRIORITY_SHIFT = 1
PRIORITY_MAX = 7


class RequestKind(enum.Enum):
    READ = "read"
    WRITE = "write"


class CommandKind(enum.Enum):
    ACTIVATE = "ACT"
    PRECHARGE = "PRE"
    READ = "RD"
    WRITE = "WR"


@dataclass(frozen=True)
class DecodedAddress:
    """A physical address decoded into DRAM coordinates."""

    channel: int
    rank: int
    bankgroup: int
    bank: int
    row: int
    column: int

    def flat_bank_index(self, n_bankgroups: int, banks_per_group: int) -> int:
        """Bank index flattened over (rank, bankgroup, bank-in-group)."""
        return (
            self.rank * n_bankgroups * banks_per_group
            + self.bankgroup * banks_per_group
            + self.bank
        )


@dataclass
class Request:
    """One 64-byte memory request presented to the controller.

    ``arrive_cycle`` is when the request becomes visible to the
    scheduler (open-loop arrivals); the controller fills in
    ``first_command_cycle`` (first ACT/PRE/RD/WR issued on the
    request's behalf) and ``complete_cycle`` (last data beat).
    """

    addr: int
    kind: RequestKind
    arrive_cycle: int = 0
    decoded: Optional[DecodedAddress] = None
    complete_cycle: Optional[int] = None
    row_hit: Optional[bool] = field(default=None)
    first_command_cycle: Optional[int] = None

    @property
    def is_done(self) -> bool:
        return self.complete_cycle is not None

    def latency(self) -> int:
        """Cycles from arrival to data completion."""
        if self.complete_cycle is None:
            raise RuntimeError("request has not completed")
        return self.complete_cycle - self.arrive_cycle

    def queue_delay(self) -> int:
        """Cycles from arrival until the controller first worked on
        this request (0 when it is served the cycle it arrives)."""
        if self.first_command_cycle is None:
            raise RuntimeError("request has not been scheduled")
        return self.first_command_cycle - self.arrive_cycle

    def reset_for_sim(self) -> None:
        """Clear per-run scheduler outputs so a request list can be
        re-simulated without stale completion state."""
        self.decoded = None
        self.complete_cycle = None
        self.row_hit = None
        self.first_command_cycle = None


def requests_from_arrays(addrs, arrive_cycles=None, flags=None) -> list[Request]:
    """Materialize :class:`Request` objects from trace columns.

    The inverse of :func:`arrays_from_requests`, taking the same
    ``(addrs, arrive_cycles, flags)`` column order as every other
    column API (``simulate_arrays``, ``write_trace``,
    ``generate_trace_arrays``).  ``flags`` follows the ``.dramtrace``
    encoding (bit 0 = write), ``None`` means all reads;
    ``arrive_cycles=None`` means the all-at-cycle-0 batch default.
    This is the object-API adapter over array-native traces -- the
    controller itself takes the columns directly via
    ``simulate_arrays`` without this materialization.
    """
    addr_list = (
        addrs.tolist() if isinstance(addrs, np.ndarray) else [int(a) for a in addrs]
    )
    n = len(addr_list)
    wr, rd = RequestKind.WRITE, RequestKind.READ
    if flags is None:
        kinds = [rd] * n
    else:
        kinds = [wr if f & FLAG_WRITE else rd for f in np.asarray(flags).tolist()]
        if len(kinds) != n:
            raise ValueError(f"{len(kinds)} flags for {n} addrs")
    if arrive_cycles is None:
        return [Request(addr=a, kind=k) for a, k in zip(addr_list, kinds)]
    arrive_list = np.asarray(arrive_cycles).tolist()
    if len(arrive_list) != n:
        raise ValueError(f"{len(arrive_list)} arrive_cycles for {n} addrs")
    return [
        Request(addr=a, kind=k, arrive_cycle=c)
        for a, k, c in zip(addr_list, kinds, arrive_list)
    ]


def arrays_from_requests(
    requests: list[Request],
) -> tuple[np.ndarray | list[int], np.ndarray, np.ndarray]:
    """Columns ``(addrs, arrive_cycles, flags)`` for a request list.

    ``addrs`` is int64 except when some address overflows int64, in
    which case the raw Python-int list is returned so the decoder can
    raise its usual beyond-capacity error.
    """
    n = len(requests)
    try:
        addrs = np.fromiter((r.addr for r in requests), dtype=np.int64, count=n)
    except OverflowError:
        addrs = [r.addr for r in requests]
    arrive = np.fromiter((r.arrive_cycle for r in requests), dtype=np.int64, count=n)
    flags = np.fromiter(
        (FLAG_WRITE if r.kind is RequestKind.WRITE else 0 for r in requests),
        dtype=np.uint8,
        count=n,
    )
    return addrs, arrive, flags


@dataclass(frozen=True)
class Command:
    """One DRAM command issued by the controller (for traces/tests)."""

    cycle: int
    kind: CommandKind
    channel: int
    bank_index: int
    row: int = -1
    column: int = -1
