"""Memory request and DRAM command types."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class RequestKind(enum.Enum):
    READ = "read"
    WRITE = "write"


class CommandKind(enum.Enum):
    ACTIVATE = "ACT"
    PRECHARGE = "PRE"
    READ = "RD"
    WRITE = "WR"


@dataclass(frozen=True)
class DecodedAddress:
    """A physical address decoded into DRAM coordinates."""

    channel: int
    rank: int
    bankgroup: int
    bank: int
    row: int
    column: int

    def flat_bank_index(self, n_bankgroups: int, banks_per_group: int) -> int:
        """Bank index flattened over (rank, bankgroup, bank-in-group)."""
        return (
            self.rank * n_bankgroups * banks_per_group
            + self.bankgroup * banks_per_group
            + self.bank
        )


@dataclass
class Request:
    """One 64-byte memory request presented to the controller.

    ``arrive_cycle`` is when the request becomes visible to the
    scheduler (open-loop arrivals); the controller fills in
    ``first_command_cycle`` (first ACT/PRE/RD/WR issued on the
    request's behalf) and ``complete_cycle`` (last data beat).
    """

    addr: int
    kind: RequestKind
    arrive_cycle: int = 0
    decoded: Optional[DecodedAddress] = None
    complete_cycle: Optional[int] = None
    row_hit: Optional[bool] = field(default=None)
    first_command_cycle: Optional[int] = None

    @property
    def is_done(self) -> bool:
        return self.complete_cycle is not None

    def latency(self) -> int:
        """Cycles from arrival to data completion."""
        if self.complete_cycle is None:
            raise RuntimeError("request has not completed")
        return self.complete_cycle - self.arrive_cycle

    def queue_delay(self) -> int:
        """Cycles from arrival until the controller first worked on
        this request (0 when it is served the cycle it arrives)."""
        if self.first_command_cycle is None:
            raise RuntimeError("request has not been scheduled")
        return self.first_command_cycle - self.arrive_cycle

    def reset_for_sim(self) -> None:
        """Clear per-run scheduler outputs so a request list can be
        re-simulated without stale completion state."""
        self.decoded = None
        self.complete_cycle = None
        self.row_hit = None
        self.first_command_cycle = None


@dataclass(frozen=True)
class Command:
    """One DRAM command issued by the controller (for traces/tests)."""

    cycle: int
    kind: CommandKind
    channel: int
    bank_index: int
    row: int = -1
    column: int = -1
