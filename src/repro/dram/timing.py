"""DRAM timing parameters.

All parameters are stored in *controller cycles*.  Use
:meth:`DRAMTiming.from_nanoseconds` to build a parameter set from
datasheet nanosecond values at a given controller clock.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class DRAMTiming:
    """Core DRAM timing constraints, in controller clock cycles.

    Attributes mirror the usual JEDEC names:

    - ``tRCD``: ACT -> column command (same bank).
    - ``tRP``: PRE -> ACT (same bank).
    - ``tCL``: RD -> first data beat.
    - ``tCWL``: WR -> first data beat.
    - ``tRAS``: ACT -> PRE (same bank).
    - ``tRC``: ACT -> ACT (same bank) = tRAS + tRP.
    - ``tCCD_S`` / ``tCCD_L``: column-to-column, different / same
      bank group.
    - ``tRRD``: ACT -> ACT (different banks).
    - ``tFAW``: rolling window that may contain at most 4 ACTs.
    - ``tWR``: write recovery (last write data -> PRE).
    - ``tWTR``: write-to-read turnaround.
    - ``burst_cycles``: data-bus occupancy of one 64-byte access.
    - ``tREFI`` / ``tRFC``: refresh interval and refresh cycle time
      (0 disables refresh).  The controller folds refresh in as a
      duty-cycle derate: every tREFI window loses tRFC cycles of
      availability, the standard first-order model for streaming
      workloads.
    """

    clock_hz: float
    tRCD: int
    tRP: int
    tCL: int
    tCWL: int
    tRAS: int
    tCCD_S: int
    tCCD_L: int
    tRRD: int
    tFAW: int
    tWR: int
    tWTR: int
    burst_cycles: int = 1
    tREFI: int = 0
    tRFC: int = 0

    def __post_init__(self) -> None:
        for name in (
            "tRCD", "tRP", "tCL", "tCWL", "tRAS",
            "tCCD_S", "tCCD_L", "tRRD", "tFAW", "tWR", "tWTR",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        if self.burst_cycles < 1:
            raise ValueError("burst_cycles must be >= 1")
        if self.tCCD_L < self.tCCD_S:
            raise ValueError("tCCD_L must be >= tCCD_S")
        if self.tREFI < 0 or self.tRFC < 0:
            raise ValueError("tREFI/tRFC must be non-negative")
        if self.tREFI and self.tRFC >= self.tREFI:
            raise ValueError("tRFC must be below tREFI")

    @property
    def tRC(self) -> int:
        return self.tRAS + self.tRP

    @property
    def refresh_overhead(self) -> float:
        """Fraction of time lost to refresh: tRFC / tREFI."""
        if self.tREFI == 0:
            return 0.0
        return self.tRFC / self.tREFI

    @property
    def cycle_time(self) -> float:
        """Seconds per controller cycle."""
        return 1.0 / self.clock_hz

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles * self.cycle_time

    @classmethod
    def from_nanoseconds(
        cls,
        clock_hz: float,
        tRCD_ns: float,
        tRP_ns: float,
        tCL_ns: float,
        tCWL_ns: float,
        tRAS_ns: float,
        tCCD_S_ns: float,
        tCCD_L_ns: float,
        tRRD_ns: float,
        tFAW_ns: float,
        tWR_ns: float,
        tWTR_ns: float,
        burst_cycles: int = 1,
    ) -> "DRAMTiming":
        """Convert datasheet nanosecond constraints to cycles
        (rounding up, as a real controller must; a tiny epsilon guards
        against float noise turning exact multiples into an extra
        cycle)."""

        def to_cycles(ns: float) -> int:
            return int(math.ceil(ns * 1e-9 * clock_hz - 1e-9))

        return cls(
            clock_hz=clock_hz,
            tRCD=to_cycles(tRCD_ns),
            tRP=to_cycles(tRP_ns),
            tCL=to_cycles(tCL_ns),
            tCWL=to_cycles(tCWL_ns),
            tRAS=to_cycles(tRAS_ns),
            tCCD_S=to_cycles(tCCD_S_ns),
            tCCD_L=to_cycles(tCCD_L_ns),
            tRRD=to_cycles(tRRD_ns),
            tFAW=to_cycles(tFAW_ns),
            tWR=to_cycles(tWR_ns),
            tWTR=to_cycles(tWTR_ns),
            burst_cycles=burst_cycles,
        )
