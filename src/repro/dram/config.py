"""DRAM organization and the LPDDR5X-8533 configuration of the paper.

Section 3.1: each x16 chip is 16 Gb at up to 8533 MT/s; a module of 32
chips gives 64 GB and 68 GB/s; 8 channels give 512 GB and ~512 GB/s.
Per channel that is four x16 chips in lockstep -- an 8-byte-wide data
bus at 8533 MT/s, so a 64-byte access is an 8-beat burst.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.timing import DRAMTiming


@dataclass(frozen=True)
class DRAMOrganization:
    """Geometry of one DRAM channel and its address-space slice."""

    n_channels: int = 8
    n_ranks: int = 1
    n_bankgroups: int = 4
    banks_per_group: int = 4
    n_rows: int = 65536
    row_bytes: int = 2048
    access_bytes: int = 64

    def __post_init__(self) -> None:
        if self.row_bytes % self.access_bytes != 0:
            raise ValueError("row_bytes must be a multiple of access_bytes")
        for name in ("n_channels", "n_ranks", "n_bankgroups", "banks_per_group", "n_rows"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    @property
    def n_banks(self) -> int:
        """Banks per channel."""
        return self.n_bankgroups * self.banks_per_group * self.n_ranks

    @property
    def columns_per_row(self) -> int:
        """64-byte column accesses per row."""
        return self.row_bytes // self.access_bytes

    @property
    def channel_capacity_bytes(self) -> int:
        return self.n_banks * self.n_rows * self.row_bytes

    @property
    def total_capacity_bytes(self) -> int:
        return self.n_channels * self.channel_capacity_bytes


@dataclass(frozen=True)
class DRAMConfig:
    """Organization plus timing: everything a controller needs."""

    organization: DRAMOrganization
    timing: DRAMTiming

    def __post_init__(self) -> None:
        # The controller's refresh derate divides by (1 - overhead);
        # an overhead at or above 1 means the device spends all of its
        # time refreshing, which no JEDEC part does -- reject it here
        # with a clear message rather than dividing by zero (or going
        # negative) deep inside simulate().
        overhead = self.timing.refresh_overhead
        if not 0.0 <= overhead < 1.0:
            raise ValueError(
                f"refresh overhead tRFC/tREFI must be in [0, 1), got {overhead}"
            )

    @property
    def channel_peak_bandwidth(self) -> float:
        """Bytes/s when the data bus streams back-to-back bursts."""
        per_burst = self.organization.access_bytes
        burst_time = self.timing.burst_cycles * self.timing.cycle_time
        return per_burst / burst_time

    @property
    def peak_bandwidth(self) -> float:
        return self.channel_peak_bandwidth * self.organization.n_channels


def _lpddr5x_8533() -> DRAMConfig:
    # Controller clock: one 64B burst (8 beats at 8533 MT/s on an
    # 8-byte bus) per cycle -> 8533e6 / 8 = 1066.6 MHz, 0.9375 ns.
    # At this clock one cycle already spans a full burst, so the
    # column-to-column constraints (sub-nanosecond at WCK rates)
    # collapse to one cycle and the data bus is the column-rate
    # limiter, as in a well-tuned LPDDR5X part.
    clock_hz = 8533e6 / 8.0
    timing = DRAMTiming(
        clock_hz=clock_hz,
        tRCD=19,   # ~18 ns
        tRP=19,    # ~18 ns
        tCL=21,    # ~20 ns
        tCWL=12,   # ~11 ns
        tRAS=45,   # ~42 ns
        tCCD_S=1,
        tCCD_L=1,
        tRRD=8,    # ~7.5 ns
        tFAW=32,   # ~30 ns
        tWR=37,    # ~34 ns
        tWTR=13,   # ~12 ns
        burst_cycles=1,
    )
    # Capacity: 4 ranks x 16 banks x 512Ki rows x 2 KiB = 64 GiB per
    # channel, 512 GiB across 8 channels (Table 2).  Rows/ranks here
    # aggregate the 32 physical chips of the module.
    organization = DRAMOrganization(
        n_channels=8,
        n_ranks=4,
        n_bankgroups=4,
        banks_per_group=4,
        n_rows=524288,
        row_bytes=2048,
        access_bytes=64,
    )
    return DRAMConfig(organization=organization, timing=timing)


#: The paper's MoNDE memory: LPDDR5X-class, 8 channels, ~68 GB/s each.
#: Refresh is disabled here: LPDDR5X per-bank refresh hides most of
#: the blackout behind bank-level parallelism for streaming loads, and
#: the spec-level effective-bandwidth calibration absorbs the rest.
LPDDR5X_8533 = _lpddr5x_8533()


def _with_refresh(config: DRAMConfig) -> DRAMConfig:
    import dataclasses

    # All-bank refresh at JEDEC-like rates: tREFI 3.9 us, tRFC 280 ns.
    timing = dataclasses.replace(
        config.timing,
        tREFI=int(3.9e-6 * config.timing.clock_hz),
        tRFC=int(280e-9 * config.timing.clock_hz),
    )
    return DRAMConfig(organization=config.organization, timing=timing)


#: Pessimistic all-bank-refresh variant (for the refresh microbench).
LPDDR5X_8533_REFRESH = _with_refresh(LPDDR5X_8533)
