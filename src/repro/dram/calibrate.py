"""Bandwidth calibration: cycle-level DRAM runs -> effective-bandwidth
constants for the system-level models.

The paper couples a Ramulator memory model to a cycle-level expert
simulator, then feeds the resulting NDP latencies into an end-to-end
estimate (Section 4.1).  We do the same: the calibrator streams
representative access patterns through :class:`MemoryController` and
reports sustained bandwidth, which the NDP GEMM engine then uses for
its memory-side timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.dram.address import MappingScheme
from repro.dram.config import DRAMConfig, LPDDR5X_8533
from repro.dram.controller import MemoryController
from repro.dram.request import Request, RequestKind


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of one calibration pattern."""

    pattern: str
    nbytes: int
    sustained_bandwidth: float
    peak_bandwidth: float
    row_hit_rate: float
    total_cycles: int

    @property
    def efficiency(self) -> float:
        if self.peak_bandwidth == 0:
            return 0.0
        return self.sustained_bandwidth / self.peak_bandwidth


class BandwidthCalibrator:
    """Generates access patterns and measures sustained bandwidth."""

    def __init__(
        self,
        config: DRAMConfig = LPDDR5X_8533,
        scheme: MappingScheme = MappingScheme.RO_BA_BG_RA_CO_CH,
    ) -> None:
        self.config = config
        self.scheme = scheme

    def _controller(self) -> MemoryController:
        return MemoryController(self.config, scheme=self.scheme)

    def _run(self, pattern: str, addrs: list[int], kinds: list[RequestKind]) -> CalibrationResult:
        controller = self._controller()
        requests = [Request(addr=a, kind=k) for a, k in zip(addrs, kinds)]
        stats = controller.simulate(requests)
        return CalibrationResult(
            pattern=pattern,
            nbytes=len(requests) * self.config.organization.access_bytes,
            sustained_bandwidth=controller.sustained_bandwidth(stats),
            peak_bandwidth=self.config.peak_bandwidth,
            row_hit_rate=stats.row_hit_rate,
            total_cycles=stats.total_cycles,
        )

    def sequential_read(self, nbytes: int = 1 << 20, base: int = 0) -> CalibrationResult:
        """Stream ``nbytes`` of contiguous reads (expert-weight fetch)."""
        step = self.config.organization.access_bytes
        count = nbytes // step
        addrs = (base + step * np.arange(count, dtype=np.int64)).tolist()
        return self._run("sequential-read", addrs, [RequestKind.READ] * count)

    def random_read(self, nbytes: int = 1 << 20, seed: int = 7) -> CalibrationResult:
        """Uniform-random 64B reads over the full address space."""
        rng = np.random.default_rng(seed)
        org = self.config.organization
        step = org.access_bytes
        count = nbytes // step
        mapper_capacity = org.n_channels * org.channel_capacity_bytes
        blocks = rng.integers(0, mapper_capacity // step, size=count, dtype=np.int64)
        addrs = (blocks * step).tolist()
        return self._run("random-read", addrs, [RequestKind.READ] * count)

    def interleaved_streams(
        self,
        nbytes_each: int = 1 << 19,
        partitioned: bool = True,
    ) -> CalibrationResult:
        """Two interleaved streams: expert weights (reads) and
        activations (alternating read/write), either placed in
        disjoint even/odd banks (the paper's Section 3.4 layout) or
        overlapping in the same banks (ablation baseline).

        Partitioning is expressed through the *row* placement: the
        unpartitioned layout puts the two streams in different rows of
        the same banks, so interleaved access ping-pongs rows (a row
        conflict per switch); the partitioned layout gives each stream
        its own banks so both keep their rows open.
        """
        from repro.dram.address import AddressMapper

        mapper = AddressMapper(self.config.organization, self.scheme)
        org = self.config.organization
        count = nbytes_each // org.access_bytes
        weight_addrs: list[int] = []
        act_addrs: list[int] = []
        cols = org.columns_per_row
        for i in range(count):
            channel = i % org.n_channels
            per_channel_i = i // org.n_channels
            column = per_channel_i % cols
            row = per_channel_i // cols
            if partitioned:
                # Weights in even banks-in-group, activations in odd.
                weight_addrs.append(
                    mapper.encode(channel, 0, 0, 0, row % org.n_rows, column)
                )
                act_addrs.append(
                    mapper.encode(channel, 0, 0, 1, row % org.n_rows, column)
                )
            else:
                # Same bank, disjoint row ranges -> conflicts on switch.
                weight_addrs.append(
                    mapper.encode(channel, 0, 0, 0, (2 * row) % org.n_rows, column)
                )
                act_addrs.append(
                    mapper.encode(channel, 0, 0, 0, (2 * row + 1) % org.n_rows, column)
                )
        addrs: list[int] = []
        kinds: list[RequestKind] = []
        for i in range(count):
            addrs.append(weight_addrs[i])
            kinds.append(RequestKind.READ)
            addrs.append(act_addrs[i])
            kinds.append(RequestKind.READ if i % 2 == 0 else RequestKind.WRITE)
        label = "interleaved-partitioned" if partitioned else "interleaved-shared"
        return self._run(label, addrs, kinds)

    def effective_bandwidth(self, nbytes: int = 1 << 20) -> float:
        """Sustained sequential-stream bandwidth -- the constant the
        system-level NDP timing model consumes."""
        return self.sequential_read(nbytes).sustained_bandwidth


@lru_cache(maxsize=32)
def calibrated_effective_bandwidth(
    config: DRAMConfig = LPDDR5X_8533,
    scheme: MappingScheme = MappingScheme.RO_BA_BG_RA_CO_CH,
    nbytes: int = 1 << 20,
) -> float:
    """Cycle-simulated effective bandwidth for ``config``, cached.

    This is the hook the system-level models use to replace the spec
    bandwidth constant with one measured on the cycle-level controller
    (``Platform(dram_config=...)``, ``NDPGemmEngine.from_dram``,
    ``CostModel.from_dram_calibrated``).  Both dataclasses are frozen,
    so the (config, scheme, nbytes) triple is a safe cache key and
    repeated Platform construction stays cheap.
    """
    return BandwidthCalibrator(config, scheme).effective_bandwidth(nbytes)
