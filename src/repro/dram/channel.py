"""One DRAM channel: banks plus shared command/data-bus constraints."""

from __future__ import annotations

from collections import deque

from repro.dram.bank import Bank
from repro.dram.config import DRAMConfig
from repro.dram.request import Command, CommandKind
from repro.dram.timing import DRAMTiming


class Channel:
    """Bank array plus the cross-bank constraints of one channel:

    - one command per cycle on the command bus,
    - data-bus occupancy (one burst at a time),
    - tCCD_S / tCCD_L column-to-column spacing (bank-group aware),
    - tRRD / tFAW activation pacing,
    - write-to-read turnaround (tWTR).
    """

    def __init__(self, index: int, config: DRAMConfig) -> None:
        self.index = index
        self.config = config
        org = config.organization
        self.banks = [Bank(i) for i in range(org.n_banks)]
        self._cmd_bus_next = 0
        self._data_bus_next = 0
        self._last_col_cycle = -(10**9)
        self._last_col_bankgroup = -1
        self._last_was_write = False
        self._read_after_write_ok = 0
        self._act_history: deque[int] = deque(maxlen=4)
        self._last_act_cycle = -(10**9)
        self.commands: list[Command] = []
        self.record_commands = False

    @property
    def timing(self) -> DRAMTiming:
        return self.config.timing

    def bank_index(self, rank: int, bankgroup: int, bank: int) -> int:
        org = self.config.organization
        return (
            rank * org.n_bankgroups * org.banks_per_group
            + bankgroup * org.banks_per_group
            + bank
        )

    def bankgroup_of(self, bank_index: int) -> int:
        return (bank_index // self.config.organization.banks_per_group) % (
            self.config.organization.n_bankgroups
        )

    # -- earliest-issue queries ------------------------------------------

    def earliest_act(self, bank_index: int) -> int:
        t = self.timing
        ready = max(self.banks[bank_index].earliest_act, self._cmd_bus_next)
        ready = max(ready, self._last_act_cycle + t.tRRD)
        if len(self._act_history) == self._act_history.maxlen:
            ready = max(ready, self._act_history[0] + t.tFAW)
        return ready

    def earliest_pre(self, bank_index: int) -> int:
        return max(self.banks[bank_index].earliest_pre, self._cmd_bus_next)

    def earliest_col(self, bank_index: int, is_write: bool) -> int:
        t = self.timing
        ready = max(self.banks[bank_index].earliest_col, self._cmd_bus_next)
        same_group = self.bankgroup_of(bank_index) == self._last_col_bankgroup
        ccd = t.tCCD_L if same_group else t.tCCD_S
        ready = max(ready, self._last_col_cycle + ccd)
        # Data-bus constraint is pipelined behind the CAS latency: the
        # *data* of this command must start after the previous burst
        # ends, so the command itself may issue tCL/tCWL earlier.
        cas = t.tCWL if is_write else t.tCL
        ready = max(ready, self._data_bus_next - cas)
        if not is_write and self._last_was_write:
            ready = max(ready, self._read_after_write_ok - cas)
        return ready

    # -- command issue ---------------------------------------------------

    def issue_activate(self, cycle: int, bank_index: int, row: int) -> None:
        self.banks[bank_index].activate(cycle, row, self.timing)
        self._after_cmd(cycle)
        self._act_history.append(cycle)
        self._last_act_cycle = cycle
        self._record(cycle, CommandKind.ACTIVATE, bank_index, row=row)

    def issue_precharge(self, cycle: int, bank_index: int) -> None:
        self.banks[bank_index].precharge(cycle, self.timing)
        self._after_cmd(cycle)
        self._record(cycle, CommandKind.PRECHARGE, bank_index)

    def issue_read(self, cycle: int, bank_index: int, column: int) -> int:
        done = self.banks[bank_index].read(cycle, self.timing)
        self._after_col(cycle, bank_index, is_write=False)
        self._record(cycle, CommandKind.READ, bank_index, column=column)
        return done

    def issue_write(self, cycle: int, bank_index: int, column: int) -> int:
        done = self.banks[bank_index].write(cycle, self.timing)
        self._after_col(cycle, bank_index, is_write=True)
        self._record(cycle, CommandKind.WRITE, bank_index, column=column)
        return done

    # -- internals ---------------------------------------------------------

    def _after_cmd(self, cycle: int) -> None:
        self._cmd_bus_next = cycle + 1

    def _after_col(self, cycle: int, bank_index: int, is_write: bool) -> None:
        t = self.timing
        self._after_cmd(cycle)
        self._last_col_cycle = cycle
        self._last_col_bankgroup = self.bankgroup_of(bank_index)
        data_start = cycle + (t.tCWL if is_write else t.tCL)
        self._data_bus_next = data_start + t.burst_cycles
        if is_write:
            self._read_after_write_ok = data_start + t.burst_cycles + t.tWTR
        self._last_was_write = is_write

    def _record(
        self,
        cycle: int,
        kind: CommandKind,
        bank_index: int,
        row: int = -1,
        column: int = -1,
    ) -> None:
        if self.record_commands:
            self.commands.append(
                Command(
                    cycle=cycle,
                    kind=kind,
                    channel=self.index,
                    bank_index=bank_index,
                    row=row,
                    column=column,
                )
            )
