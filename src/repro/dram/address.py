"""Physical-address-to-DRAM-coordinate mapping.

Section 3.4 of the paper: data in the MoNDE memory space is mapped
``ro-ba-bg-ra-co-ch`` (fields listed MSB -> LSB) "in order to fully
utilize the DRAM bandwidth for contiguous memory accesses".  With the
channel bits lowest, consecutive 64-byte blocks interleave across all
channels; the column bits next keep each channel streaming within an
open row; bank / bank-group bits above that expose bank-level
parallelism for row-activation overlap; row bits change slowest.

A naive ``ROW_MAJOR`` scheme (channel highest, column lowest) is also
provided as the ablation baseline: contiguous data then lives in a
single channel and crosses rows within one bank, destroying both
channel parallelism and row locality for streams.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.dram.config import DRAMOrganization
from repro.dram.request import DecodedAddress


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def _log2(value: int) -> int:
    return value.bit_length() - 1


@dataclass(frozen=True)
class DecodedBatch:
    """Struct-of-arrays result of :meth:`AddressMapper.decode_batch`.

    Each field is an ``int64`` array of one DRAM coordinate per input
    address, in input order.  Indexing materializes the equivalent
    :class:`DecodedAddress` (with plain Python ints, exactly as the
    scalar :meth:`AddressMapper.decode` would have produced).
    """

    channel: np.ndarray
    rank: np.ndarray
    bankgroup: np.ndarray
    bank: np.ndarray
    row: np.ndarray
    column: np.ndarray

    def __len__(self) -> int:
        return len(self.channel)

    def __getitem__(self, i: int) -> DecodedAddress:
        return DecodedAddress(
            channel=int(self.channel[i]),
            rank=int(self.rank[i]),
            bankgroup=int(self.bankgroup[i]),
            bank=int(self.bank[i]),
            row=int(self.row[i]),
            column=int(self.column[i]),
        )

    def flat_bank_index(self, n_bankgroups: int, banks_per_group: int) -> np.ndarray:
        """Vectorized :meth:`DecodedAddress.flat_bank_index`."""
        return (
            self.rank * (n_bankgroups * banks_per_group)
            + self.bankgroup * banks_per_group
            + self.bank
        )


class MappingScheme(enum.Enum):
    #: The paper's mapping: row | bank | bankgroup | rank | column | channel.
    RO_BA_BG_RA_CO_CH = "ro-ba-bg-ra-co-ch"
    #: Naive mapping: channel | rank | bankgroup | bank | row | column.
    ROW_MAJOR = "row-major"


class AddressMapper:
    """Bit-sliced address decoder for a :class:`DRAMOrganization`.

    All geometry dimensions must be powers of two (as in real parts);
    the 6 lowest bits (64-byte access offset) are dropped first.
    """

    def __init__(
        self,
        organization: DRAMOrganization,
        scheme: MappingScheme = MappingScheme.RO_BA_BG_RA_CO_CH,
    ) -> None:
        org = organization
        for name, value in (
            ("n_channels", org.n_channels),
            ("n_ranks", org.n_ranks),
            ("n_bankgroups", org.n_bankgroups),
            ("banks_per_group", org.banks_per_group),
            ("n_rows", org.n_rows),
            ("columns_per_row", org.columns_per_row),
            ("access_bytes", org.access_bytes),
        ):
            if not _is_power_of_two(value):
                raise ValueError(f"{name} must be a power of two, got {value}")
        self.organization = org
        self.scheme = scheme
        self._offset_bits = _log2(org.access_bytes)
        self._bits = {
            "ch": _log2(org.n_channels),
            "ra": _log2(org.n_ranks),
            "bg": _log2(org.n_bankgroups),
            "ba": _log2(org.banks_per_group),
            "ro": _log2(org.n_rows),
            "co": _log2(org.columns_per_row),
        }
        if scheme is MappingScheme.RO_BA_BG_RA_CO_CH:
            self._order_lsb_to_msb = ["ch", "co", "ra", "bg", "ba", "ro"]
        elif scheme is MappingScheme.ROW_MAJOR:
            self._order_lsb_to_msb = ["co", "ro", "ba", "bg", "ra", "ch"]
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown mapping scheme: {scheme}")

    @property
    def address_bits(self) -> int:
        """Total decodable address bits (including the access offset)."""
        return self._offset_bits + sum(self._bits.values())

    @property
    def capacity_bytes(self) -> int:
        return 1 << self.address_bits

    def decode(self, addr: int) -> DecodedAddress:
        """Decode a byte address into DRAM coordinates."""
        if addr < 0:
            raise ValueError(f"address must be non-negative, got {addr}")
        if addr >= self.capacity_bytes:
            raise ValueError(
                f"address {addr:#x} beyond device capacity {self.capacity_bytes:#x}"
            )
        block = addr >> self._offset_bits
        fields: dict[str, int] = {}
        for name in self._order_lsb_to_msb:
            width = self._bits[name]
            fields[name] = block & ((1 << width) - 1)
            block >>= width
        return DecodedAddress(
            channel=fields["ch"],
            rank=fields["ra"],
            bankgroup=fields["bg"],
            bank=fields["ba"],
            row=fields["ro"],
            column=fields["co"],
        )

    def decode_batch(self, addrs) -> DecodedBatch:
        """Vectorized :meth:`decode` for a whole request stream.

        ``addrs`` is any integer sequence/array of byte addresses.
        Validation matches the scalar path: the first negative or
        beyond-capacity address raises the same ``ValueError``.
        """
        if self.address_bits >= 63:  # int64 cannot hold the address space
            decoded = [self.decode(int(addr)) for addr in addrs]
            return DecodedBatch(
                channel=np.array([d.channel for d in decoded], dtype=np.int64),
                rank=np.array([d.rank for d in decoded], dtype=np.int64),
                bankgroup=np.array([d.bankgroup for d in decoded], dtype=np.int64),
                bank=np.array([d.bank for d in decoded], dtype=np.int64),
                row=np.array([d.row for d in decoded], dtype=np.int64),
                column=np.array([d.column for d in decoded], dtype=np.int64),
            )
        try:
            a = np.asarray(addrs, dtype=np.int64)
        except OverflowError:
            # Some address exceeds int64; with address_bits < 63 it is
            # necessarily beyond capacity (or negative) -- let the
            # scalar path raise its usual ValueError for it.
            for addr in addrs:
                self.decode(int(addr))
            raise AssertionError("unreachable: an address must have overflowed")
        if a.ndim != 1:
            a = a.reshape(-1)
        if a.size:
            invalid = (a < 0) | (a >= self.capacity_bytes)
            if invalid.any():
                bad = int(a[int(np.argmax(invalid))])
                if bad < 0:
                    raise ValueError(f"address must be non-negative, got {bad}")
                raise ValueError(
                    f"address {bad:#x} beyond device capacity {self.capacity_bytes:#x}"
                )
        block = a >> self._offset_bits
        fields: dict[str, np.ndarray] = {}
        for name in self._order_lsb_to_msb:
            width = self._bits[name]
            fields[name] = block & ((1 << width) - 1)
            block = block >> width
        return DecodedBatch(
            channel=fields["ch"],
            rank=fields["ra"],
            bankgroup=fields["bg"],
            bank=fields["ba"],
            row=fields["ro"],
            column=fields["co"],
        )

    def encode(
        self,
        channel: int,
        rank: int,
        bankgroup: int,
        bank: int,
        row: int,
        column: int,
    ) -> int:
        """Inverse of :meth:`decode` (round-trips exactly)."""
        fields = {
            "ch": channel, "ra": rank, "bg": bankgroup,
            "ba": bank, "ro": row, "co": column,
        }
        limits = {
            "ch": self.organization.n_channels,
            "ra": self.organization.n_ranks,
            "bg": self.organization.n_bankgroups,
            "ba": self.organization.banks_per_group,
            "ro": self.organization.n_rows,
            "co": self.organization.columns_per_row,
        }
        for name, value in fields.items():
            if not 0 <= value < limits[name]:
                raise ValueError(f"{name}={value} out of range [0, {limits[name]})")
        block = 0
        for name in reversed(self._order_lsb_to_msb):
            block = (block << self._bits[name]) | fields[name]
        return block << self._offset_bits

    def sequential_stream(self, base: int, nbytes: int) -> list[int]:
        """Addresses of the 64-byte blocks covering ``[base, base+nbytes)``."""
        if base % self.organization.access_bytes != 0:
            raise ValueError("base must be access-aligned")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        step = self.organization.access_bytes
        count = -(-nbytes // step)
        return (base + step * np.arange(count, dtype=np.int64)).tolist()
