"""Encoder/decoder stacks and the full seq2seq model."""

import numpy as np
import pytest

from repro.moe import MoESeq2Seq, nllb_moe_tiny, switch_large_tiny
from repro.moe.transformer import ForwardRecord


@pytest.fixture(scope="module")
def model():
    return MoESeq2Seq(switch_large_tiny(), seed=0)


@pytest.fixture
def src(model):
    rng = np.random.default_rng(0)
    return rng.integers(0, model.config.vocab_size, size=(2, 10))


def test_encode_shape(model, src):
    out = model.encode(src)
    assert out.shape == (2, 10, model.config.d_model)


def test_moe_blocks_interleave(model):
    """moe_every=2: blocks 1 and 3 (0-indexed) host MoE FFNs."""
    flags = [b.is_moe for b in model.encoder.blocks]
    assert flags == [False, True, False, True]


def test_nllb_tiny_interleave():
    m = MoESeq2Seq(nllb_moe_tiny(), seed=0)
    flags = [b.is_moe for b in m.encoder.blocks]
    assert flags == [False, False, False, True]  # moe_every=4


def test_forward_record_counts(model, src):
    rec = ForwardRecord()
    model.encode(src, record=rec)
    assert len(rec.encoder_routing) == model.config.n_moe_encoder_layers
    for info in rec.encoder_routing:
        assert info.tokens_per_expert.sum() == 2 * 10 * model.config.top_k


def test_greedy_decode_shape(model, src):
    out = model.greedy_decode(src, max_new_tokens=5)
    assert out.shape[0] == 2
    assert 1 <= out.shape[1] <= 5
    assert np.all(out >= 0) and np.all(out < model.config.vocab_size)


def test_greedy_decode_deterministic(model, src):
    a = model.greedy_decode(src, max_new_tokens=4)
    b = model.greedy_decode(src, max_new_tokens=4)
    np.testing.assert_array_equal(a, b)


def test_decode_records_per_step_routing(model, src):
    rec = ForwardRecord()
    model.greedy_decode(src, max_new_tokens=3, record=rec)
    n_moe_dec = model.config.n_moe_decoder_layers
    assert len(rec.decoder_routing) == 3 * n_moe_dec
    for info in rec.decoder_routing:
        assert info.tokens_per_expert.sum() == 2 * model.config.top_k


def test_eos_stops_generation(model, src):
    """With eos covering the whole vocab impossible, use a token the
    model actually emits: run once, then rerun with that token as EOS."""
    first = model.greedy_decode(src, max_new_tokens=3)
    eos = int(first[0, 0])
    out = model.greedy_decode(src, max_new_tokens=10, eos_id=eos)
    assert out.shape[1] <= 10


def test_embed_rejects_out_of_vocab(model):
    with pytest.raises(ValueError):
        model.embed(np.array([[model.config.vocab_size]]))


def test_max_new_tokens_validated(model, src):
    with pytest.raises(ValueError):
        model.greedy_decode(src, max_new_tokens=0)


def test_record_tokens_per_expert_accessor(model, src):
    rec = ForwardRecord()
    model.encode(src, record=rec)
    counts = rec.tokens_per_expert("encoder")
    assert len(counts) == model.config.n_moe_encoder_layers
    with pytest.raises(ValueError):
        rec.tokens_per_expert("middle")


def test_popularity_bias_concentrates_routing():
    cfg = switch_large_tiny()
    bias = np.full(cfg.n_experts, -30.0)
    bias[1] = 30.0
    model = MoESeq2Seq(cfg, seed=0, popularity_bias=bias)
    rec = ForwardRecord()
    src = np.random.default_rng(1).integers(0, cfg.vocab_size, size=(1, 8))
    model.encode(src, record=rec)
    for info in rec.encoder_routing:
        assert info.tokens_per_expert[1] == 8
