"""Stateless NN math."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.moe.functional import causal_mask, gelu, layer_norm, relu, softmax

finite_arrays = arrays(
    np.float64,
    st.tuples(st.integers(1, 6), st.integers(1, 12)),
    elements=st.floats(-50, 50),
)


def test_relu_clamps_negative():
    x = np.array([-2.0, 0.0, 3.0])
    np.testing.assert_array_equal(relu(x), [0.0, 0.0, 3.0])


def test_gelu_known_values():
    assert gelu(np.array([0.0]))[0] == 0.0
    assert gelu(np.array([10.0]))[0] == pytest.approx(10.0, rel=1e-3)
    assert gelu(np.array([-10.0]))[0] == pytest.approx(0.0, abs=1e-3)


def test_gelu_between_zero_and_identity_for_positive():
    x = np.linspace(0.1, 5, 50)
    y = gelu(x)
    assert np.all(y <= x) and np.all(y >= 0)


@given(finite_arrays)
def test_softmax_rows_sum_to_one(x):
    s = softmax(x, axis=-1)
    np.testing.assert_allclose(s.sum(axis=-1), 1.0, rtol=1e-9)
    assert np.all(s >= 0)


def test_softmax_stability_with_large_logits():
    x = np.array([[1000.0, 1000.0, -1000.0]])
    s = softmax(x)
    assert np.isfinite(s).all()
    np.testing.assert_allclose(s[0, :2], [0.5, 0.5])


@given(finite_arrays)
def test_layer_norm_standardizes(x):
    d = x.shape[-1]
    out = layer_norm(x, np.ones(d), np.zeros(d))
    np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-6)
    # Variance ~1 unless the row is (near-)constant, where the eps
    # in the denominator dominates.
    row_var = x.var(axis=-1)
    for i in range(x.shape[0]):
        if row_var[i] > 1e-3:
            assert out[i].var() == pytest.approx(1.0, rel=1e-2)


def test_layer_norm_gamma_beta():
    x = np.random.default_rng(0).normal(size=(3, 8))
    out = layer_norm(x, 2 * np.ones(8), 3 * np.ones(8))
    base = layer_norm(x, np.ones(8), np.zeros(8))
    np.testing.assert_allclose(out, 2 * base + 3)


def test_causal_mask_shape_and_values():
    m = causal_mask(4)
    assert m.shape == (4, 4)
    assert np.all(np.tril(m) == 0)
    assert np.all(np.isneginf(m[np.triu_indices(4, k=1)]))
