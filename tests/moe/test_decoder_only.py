"""Decoder-only (GPT-style) MoE models."""

import pytest

from repro.core.runtime import InferenceConfig, MoNDERuntime
from repro.core.strategies import Scheme
from repro.moe.zoo import gpt_moe_decoder_only


@pytest.fixture(scope="module")
def model():
    return gpt_moe_decoder_only()


def test_structure(model):
    assert model.n_encoder_layers == 0
    assert model.n_moe_encoder_layers == 0
    assert model.n_moe_decoder_layers == 12
    assert model.activation == "gelu"


def test_parameter_accounting(model):
    # 12 MoE layers x 64 experts x 2*2048*8192 params x 2 B ~ 51.5 GB.
    assert model.total_expert_bytes / 1e9 == pytest.approx(51.5, rel=0.02)
    assert model.non_expert_bytes > 0


def test_decoder_only_runtime(model):
    cfg = InferenceConfig(model=model, batch=4, decode_steps=4)
    rt = MoNDERuntime(cfg)
    lb = rt.decoder_result(Scheme.MD_LB)
    pm = rt.decoder_result(Scheme.GPU_PM)
    assert lb.seconds > 0 and pm.seconds > 0
    assert len(lb.layer_results) == 4 * 12
    # Decoder-regime shape holds for decoder-only models too.
    assert rt.speedup(Scheme.MD_LB, Scheme.GPU_PM, "decoder") > 0.8


def test_encoder_part_is_dense_only(model):
    """With no encoder layers, the encoder pass degenerates cleanly."""
    cfg = InferenceConfig(model=model, batch=1, decode_steps=2)
    rt = MoNDERuntime(cfg)
    result = rt.encoder_result(Scheme.MD_LB)
    assert result.moe_seconds == 0.0
    assert result.layer_results == []
