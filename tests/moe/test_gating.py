"""Top-k router and the dropless routing plan."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.moe.gating import Router


@pytest.fixture
def rng():
    return np.random.default_rng(3)


def make_router(rng, d=16, e=8, k=2, bias=None):
    return Router(d, e, k, rng, popularity_bias=bias)


def test_plan_shapes(rng):
    router = make_router(rng)
    plan = router.route(rng.normal(size=(10, 16)))
    assert plan.expert_indices.shape == (10, 2)
    assert plan.combine_weights.shape == (10, 2)
    assert plan.n_tokens == 10 and plan.top_k == 2 and plan.n_experts == 8


def test_dropless_conservation(rng):
    """Every routing event lands on exactly one expert slot."""
    router = make_router(rng)
    plan = router.route(rng.normal(size=(33, 16)))
    assert plan.tokens_per_expert.sum() == 33 * 2
    plan.validate()


def test_top1_routing(rng):
    router = make_router(rng, k=1)
    plan = router.route(rng.normal(size=(5, 16)))
    np.testing.assert_allclose(plan.combine_weights, 1.0)


def test_combine_weights_normalized_and_ordered(rng):
    router = make_router(rng, k=3)
    plan = router.route(rng.normal(size=(20, 16)))
    np.testing.assert_allclose(plan.combine_weights.sum(axis=1), 1.0)
    # Top-k ordering: first expert has the highest gate.
    assert np.all(plan.combine_weights[:, 0] >= plan.combine_weights[:, -1])


def test_expert_token_ids_consistent(rng):
    router = make_router(rng)
    tokens = rng.normal(size=(12, 16))
    plan = router.route(tokens)
    for expert, ids in enumerate(plan.expert_token_ids):
        for token in ids:
            assert expert in plan.expert_indices[token]


def test_no_duplicate_experts_per_token(rng):
    router = make_router(rng, k=3)
    plan = router.route(rng.normal(size=(50, 16)))
    for row in plan.expert_indices:
        assert len(set(row.tolist())) == 3


def test_popularity_bias_skews_routing(rng):
    """A strong bias toward expert 0 routes (almost) all tokens there."""
    bias = np.zeros(8)
    bias[0] = 50.0
    router = make_router(rng, k=1, bias=bias)
    plan = router.route(rng.normal(size=(40, 16)))
    assert plan.tokens_per_expert[0] == 40


def test_active_experts(rng):
    bias = np.full(8, -50.0)
    bias[2] = 50.0
    router = make_router(rng, k=1, bias=bias)
    plan = router.route(rng.normal(size=(10, 16)))
    np.testing.assert_array_equal(plan.active_experts, [2])


def test_bad_top_k_rejected(rng):
    with pytest.raises(ValueError):
        Router(16, 8, 0, rng)
    with pytest.raises(ValueError):
        Router(16, 8, 9, rng)


def test_bad_bias_shape_rejected(rng):
    with pytest.raises(ValueError):
        Router(16, 8, 1, rng, popularity_bias=np.zeros(7))


def test_bad_input_shape_rejected(rng):
    router = make_router(rng)
    with pytest.raises(ValueError):
        router.route(rng.normal(size=(5, 17)))


@settings(max_examples=25)
@given(
    n_tokens=st.integers(1, 64),
    e=st.integers(2, 16),
    k=st.integers(1, 4),
    seed=st.integers(0, 100),
)
def test_routing_invariants_property(n_tokens, e, k, seed):
    k = min(k, e)
    rng = np.random.default_rng(seed)
    router = Router(8, e, k, rng)
    plan = router.route(rng.normal(size=(n_tokens, 8)))
    plan.validate()
    assert plan.tokens_per_expert.sum() == n_tokens * k
    assert len(plan.active_experts) <= min(e, n_tokens * k)
