"""Multi-head attention: masking, caching, cross-attention."""

import numpy as np
import pytest

from repro.moe.attention import KVCache, MultiHeadAttention


@pytest.fixture
def rng():
    return np.random.default_rng(11)


@pytest.fixture
def attn(rng):
    return MultiHeadAttention(d_model=32, n_heads=4, rng=rng)


def test_output_shape(attn, rng):
    x = rng.normal(size=(2, 7, 32))
    assert attn(x).shape == (2, 7, 32)


def test_d_model_must_divide_heads(rng):
    with pytest.raises(ValueError):
        MultiHeadAttention(d_model=30, n_heads=4, rng=rng)


def test_rejects_wrong_input(attn):
    with pytest.raises(ValueError):
        attn(np.zeros((2, 7, 16)))


def test_causal_mask_blocks_future(attn, rng):
    """Changing future tokens must not affect earlier outputs."""
    x = rng.normal(size=(1, 6, 32))
    out1 = attn(x, causal=True)
    x2 = x.copy()
    x2[0, 4:, :] += 10.0
    out2 = attn(x2, causal=True)
    np.testing.assert_allclose(out1[0, :4], out2[0, :4], rtol=1e-9)


def test_non_causal_attends_everywhere(attn, rng):
    x = rng.normal(size=(1, 6, 32))
    out1 = attn(x)
    x2 = x.copy()
    x2[0, 5, :] += 10.0
    out2 = attn(x2)
    assert not np.allclose(out1[0, 0], out2[0, 0])


def test_kv_cache_matches_full_forward(attn, rng):
    """Step-by-step decoding with a KV cache equals one causal pass."""
    x = rng.normal(size=(1, 5, 32))
    full = attn(x, causal=True)
    cache = KVCache()
    steps = [attn(x[:, i : i + 1, :], causal=True, cache=cache) for i in range(5)]
    stepped = np.concatenate(steps, axis=1)
    np.testing.assert_allclose(stepped, full, rtol=1e-8)
    assert cache.length == 5


def test_cross_attention_uses_context(attn, rng):
    x = rng.normal(size=(1, 3, 32))
    ctx1 = rng.normal(size=(1, 9, 32))
    ctx2 = rng.normal(size=(1, 9, 32))
    assert not np.allclose(attn(x, context=ctx1), attn(x, context=ctx2))


def test_cross_attention_cache_computed_once(attn, rng):
    """Cross-attention K/V is cached after the first step."""
    x1 = rng.normal(size=(1, 1, 32))
    x2 = rng.normal(size=(1, 1, 32))
    ctx = rng.normal(size=(1, 4, 32))
    cache = KVCache()
    out1 = attn(x1, context=ctx, cache=cache)
    length_after_first = cache.length
    attn(x2, context=ctx, cache=cache)
    assert cache.length == length_after_first == 4
    # Identical to uncached cross-attention.
    np.testing.assert_allclose(out1, attn(x1, context=ctx), rtol=1e-9)


def test_param_count(attn):
    assert attn.n_params == 4 * (32 * 32 + 32)


def test_permutation_equivariance_without_mask(attn, rng):
    """Self-attention without mask is permutation-equivariant."""
    x = rng.normal(size=(1, 5, 32))
    perm = np.array([3, 0, 4, 1, 2])
    out = attn(x)
    out_perm = attn(x[:, perm, :])
    np.testing.assert_allclose(out_perm, out[:, perm, :], rtol=1e-8)
