"""MoE FFN layer: dispatch, combine, capacity ablation."""

import numpy as np
import pytest

from repro.moe.moe_layer import MoELayer


@pytest.fixture
def rng():
    return np.random.default_rng(5)


def make_layer(rng, **kw):
    defaults = dict(d_model=16, d_ff=32, n_experts=4, top_k=2)
    defaults.update(kw)
    return MoELayer(rng=rng, **defaults)


def test_output_shape_3d(rng):
    layer = make_layer(rng)
    x = rng.normal(size=(2, 6, 16))
    assert layer(x).shape == (2, 6, 16)


def test_output_shape_2d(rng):
    layer = make_layer(rng)
    x = rng.normal(size=(6, 16))
    assert layer(x).shape == (6, 16)


def test_routing_info_recorded(rng):
    layer = make_layer(rng)
    layer(rng.normal(size=(2, 5, 16)))
    info = layer.last_routing
    assert info is not None
    assert info.tokens_per_expert.sum() == 2 * 5 * 2
    assert info.dropped_tokens == 0


def test_top1_equals_selected_expert_output(rng):
    """With top-1 routing, each token's output is exactly its chosen
    expert's FFN output (gate weight 1)."""
    layer = make_layer(rng, top_k=1)
    x = rng.normal(size=(4, 16))
    out = layer(x)
    plan = layer.last_routing.plan
    for t in range(4):
        expert = int(plan.expert_indices[t, 0])
        np.testing.assert_allclose(out[t], layer.experts[expert](x[t : t + 1])[0])


def test_top2_is_convex_combination(rng):
    layer = make_layer(rng, top_k=2)
    x = rng.normal(size=(3, 16))
    out = layer(x)
    plan = layer.last_routing.plan
    for t in range(3):
        e0, e1 = plan.expert_indices[t]
        w0, w1 = plan.combine_weights[t]
        expected = w0 * layer.experts[int(e0)](x[t : t + 1])[0] + w1 * layer.experts[
            int(e1)
        ](x[t : t + 1])[0]
        np.testing.assert_allclose(out[t], expected, rtol=1e-9)


def test_capacity_factor_drops_tokens(rng):
    """The ablation baseline: a tight capacity drops overflow tokens."""
    bias = np.zeros(4)
    bias[0] = 50.0  # everything routes to expert 0
    layer = make_layer(rng, top_k=1, popularity_bias=bias, capacity_factor=0.5)
    x = rng.normal(size=(8, 16))
    layer(x)
    info = layer.last_routing
    assert info.dropped_tokens > 0
    assert info.tokens_per_expert[0] == layer._capacity(8)


def test_dropless_by_default(rng):
    bias = np.zeros(4)
    bias[0] = 50.0
    layer = make_layer(rng, top_k=1, popularity_bias=bias)
    layer(rng.normal(size=(8, 16)))
    assert layer.last_routing.dropped_tokens == 0
    assert layer.last_routing.tokens_per_expert[0] == 8


def test_dropped_tokens_keep_residual_shape(rng):
    """Dropped tokens produce zero FFN output (residual carries them)."""
    bias = np.zeros(4)
    bias[0] = 50.0
    layer = make_layer(rng, top_k=1, popularity_bias=bias, capacity_factor=0.25)
    x = rng.normal(size=(8, 16))
    out = layer(x)
    plan = layer.last_routing.plan
    kept = set(plan.expert_token_ids[0][: layer._capacity(8)].tolist())
    for t in range(8):
        if t not in kept:
            np.testing.assert_allclose(out[t], 0.0)


def test_expert_param_count(rng):
    layer = make_layer(rng)
    assert layer.expert_param_count == (16 * 32 + 32) + (32 * 16 + 16)
    assert layer.n_params == layer.router.n_params + 4 * layer.expert_param_count


def test_n_active_experts(rng):
    layer = make_layer(rng)
    layer(rng.normal(size=(1, 2, 16)))
    assert 1 <= layer.last_routing.n_active_experts <= 4


def test_validation(rng):
    with pytest.raises(ValueError):
        make_layer(rng, n_experts=0)
    with pytest.raises(ValueError):
        make_layer(rng, capacity_factor=0.0)
    layer = make_layer(rng)
    with pytest.raises(ValueError):
        layer(rng.normal(size=(2, 5, 17)))
