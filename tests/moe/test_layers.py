"""Linear / LayerNorm / FeedForward layers."""

import numpy as np
import pytest

from repro.moe.layers import FeedForward, LayerNorm, Linear


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def test_linear_shapes_and_params(rng):
    layer = Linear(8, 16, rng)
    x = rng.normal(size=(5, 8))
    assert layer(x).shape == (5, 16)
    assert layer.n_params == 8 * 16 + 16


def test_linear_no_bias(rng):
    layer = Linear(8, 16, rng, bias=False)
    assert layer.n_params == 8 * 16
    np.testing.assert_allclose(layer(np.zeros((2, 8))), 0.0)


def test_linear_is_affine(rng):
    layer = Linear(4, 4, rng)
    x = rng.normal(size=(3, 4))
    y = rng.normal(size=(3, 4))
    np.testing.assert_allclose(
        layer(x) + layer(y) - layer(np.zeros((3, 4))), layer(x + y), rtol=1e-9
    )


def test_linear_rejects_wrong_dim(rng):
    layer = Linear(8, 16, rng)
    with pytest.raises(ValueError):
        layer(np.zeros((2, 9)))


def test_linear_rejects_bad_dims(rng):
    with pytest.raises(ValueError):
        Linear(0, 4, rng)


def test_linear_batched_3d(rng):
    layer = Linear(8, 16, rng)
    x = rng.normal(size=(2, 5, 8))
    assert layer(x).shape == (2, 5, 16)


def test_layernorm_params():
    ln = LayerNorm(32)
    assert ln.n_params == 64
    x = np.random.default_rng(0).normal(size=(4, 32))
    out = ln(x)
    np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-9)


def test_feed_forward_structure(rng):
    ffn = FeedForward(16, 64, rng, activation="relu")
    x = rng.normal(size=(3, 16))
    out = ffn(x)
    assert out.shape == (3, 16)
    expected = np.maximum(x @ ffn.linear1.weight + ffn.linear1.bias, 0)
    expected = expected @ ffn.linear2.weight + ffn.linear2.bias
    np.testing.assert_allclose(out, expected)


def test_feed_forward_param_count(rng):
    ffn = FeedForward(16, 64, rng)
    assert ffn.n_params == (16 * 64 + 64) + (64 * 16 + 16)


def test_feed_forward_gelu(rng):
    from repro.moe.functional import gelu

    ffn = FeedForward(8, 16, rng, activation="gelu")
    x = rng.normal(size=(2, 8))
    hidden = gelu(x @ ffn.linear1.weight + ffn.linear1.bias)
    np.testing.assert_allclose(
        ffn(x), hidden @ ffn.linear2.weight + ffn.linear2.bias
    )


def test_feed_forward_unknown_activation(rng):
    with pytest.raises(ValueError):
        FeedForward(8, 16, rng, activation="swish")
