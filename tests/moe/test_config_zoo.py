"""Model configs and the zoo: Table 2 / Fig. 2(a) accounting."""

import pytest

from repro.moe.config import MoEModelConfig
from repro.moe.zoo import (
    MODEL_ZOO,
    nllb_dense_3b,
    nllb_moe_128,
    switch_large_128,
    switch_variant,
    t5_large_dense,
)


def test_switch_large_matches_table2():
    cfg = switch_large_128()
    assert cfg.d_model == 1024 and cfg.n_experts == 128 and cfg.top_k == 1
    assert cfg.non_expert_bytes / 1e9 == pytest.approx(1.1, abs=0.15)
    assert cfg.total_expert_bytes / 1e9 == pytest.approx(51.5, rel=0.02)


def test_nllb_moe_matches_table2():
    cfg = nllb_moe_128()
    assert cfg.d_model == 2048 and cfg.n_experts == 128 and cfg.top_k == 2
    assert cfg.non_expert_bytes / 1e9 == pytest.approx(5.7, abs=0.4)
    assert cfg.total_expert_bytes / 1e9 == pytest.approx(103.1, rel=0.02)


def test_switch_is_34x_t5_large():
    """Section 2.2: Switch-Large demands ~34x T5-Large's memory."""
    ratio = switch_large_128().total_param_bytes / t5_large_dense().total_param_bytes
    assert 25 < ratio < 45


def test_expert_bytes_unit():
    cfg = nllb_moe_128()
    assert cfg.expert_bytes == 2 * 2048 * 8192 * 2  # ~67 MB


def test_moe_block_interleave():
    cfg = switch_large_128()
    assert not cfg.is_moe_block(0)
    assert cfg.is_moe_block(1)
    assert cfg.n_moe_encoder_layers == 12
    nllb = nllb_moe_128()
    assert nllb.n_moe_encoder_layers == 6
    assert nllb.n_moe_decoder_layers == 6


def test_dense_model_has_no_moe():
    cfg = t5_large_dense()
    assert not cfg.is_moe
    assert cfg.total_expert_bytes == 0
    assert all(not cfg.is_moe_block(i) for i in range(cfg.n_encoder_layers))


def test_with_experts_scaling_is_linear():
    """Fig. 2(a): expert memory scales asymptotically linearly in E."""
    base = switch_large_128()
    sizes = [base.with_experts(e).total_expert_bytes for e in (64, 128, 256, 512)]
    for small, large in zip(sizes, sizes[1:]):
        assert large == 2 * small


def test_with_experts_zero_is_dense():
    dense = switch_large_128().with_experts(0)
    assert not dense.is_moe
    assert "dense" in dense.name


def test_with_d_model_quadratic_expert_growth():
    """Fig. 2(b): expert size grows quadratically with d_model while
    activations grow linearly."""
    base = switch_variant(768, 64)
    e1 = base.with_d_model(1024).expert_bytes
    e2 = base.with_d_model(2048).expert_bytes
    assert e2 == 4 * e1
    a1 = base.with_d_model(1024).activation_bytes(6144)
    a2 = base.with_d_model(2048).activation_bytes(6144)
    assert a2 == 2 * a1


def test_amove_eq2():
    cfg = nllb_moe_128()
    b, s = 4, 512
    assert cfg.amove_bytes(b * s) == 2 * b * s * 2048 * 2


def test_pmove_eq1():
    cfg = nllb_moe_128()
    assert cfg.pmove_bytes_all_experts() == 2 * 128 * 2048 * 8192 * 2


def test_nllb_dense_reference():
    cfg = nllb_dense_3b()
    assert cfg.total_param_bytes / 1e9 == pytest.approx(6.6, abs=1.0)  # ~3.3B bf16


def test_variants_fig7a():
    for d, e in [(768, 64), (768, 128), (1024, 128)]:
        cfg = switch_variant(d, e)
        assert cfg.d_model == d and cfg.n_experts == e
        assert cfg.top_k == 1


def test_zoo_entries_constructible():
    for name, fn in MODEL_ZOO.items():
        cfg = fn()
        assert isinstance(cfg, MoEModelConfig)
        assert cfg.total_param_bytes > 0


def test_config_validation():
    with pytest.raises(ValueError):
        MoEModelConfig(
            name="bad", d_model=0, d_ff=1, n_heads=1, n_encoder_layers=1,
            n_decoder_layers=1, n_experts=1, top_k=1, moe_every=1, vocab_size=10,
        )
    with pytest.raises(ValueError):
        MoEModelConfig(
            name="bad", d_model=8, d_ff=8, n_heads=1, n_encoder_layers=1,
            n_decoder_layers=1, n_experts=4, top_k=5, moe_every=1, vocab_size=10,
        )
