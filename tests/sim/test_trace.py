"""Gantt rendering and overlap measurement."""

from repro.sim.stream import Timeline
from repro.sim.trace import TraceRecorder, overlap_fraction, render_gantt


def test_recorder_formats_sorted():
    rec = TraceRecorder()
    rec.record(2.0, "later")
    rec.record(1.0, "earlier")
    text = rec.formatted()
    assert text.index("earlier") < text.index("later")


def test_render_empty_timeline():
    assert "empty" in render_gantt(Timeline(["gpu"]))


def test_render_shows_stream_rows_and_labels():
    t = Timeline(["gpu", "pcie"])
    t.enqueue("gpu", 1.0, label="g")
    t.enqueue("pcie", 1.0, label="p", not_before=1.0)
    art = render_gantt(t, width=20)
    lines = art.splitlines()
    assert lines[0].startswith("gpu")
    assert "g" in lines[0]
    assert lines[1].startswith("pcie")
    assert "p" in lines[1]


def test_render_positions_reflect_time():
    t = Timeline(["s"])
    t.enqueue("s", 1.0, label="a")
    t.enqueue("s", 1.0, label="b", not_before=9.0)
    row = render_gantt(t, width=40).splitlines()[0]
    assert row.index("a") < row.index("b")


def test_overlap_fraction_full_and_none():
    t = Timeline(["a", "b", "c"])
    sa = t.enqueue("a", 4.0)
    sb = t.enqueue("b", 4.0)
    sc = t.enqueue("c", 4.0, not_before=10.0)
    assert overlap_fraction([sa], [sb]) == 1.0
    assert overlap_fraction([sa], [sc]) == 0.0


def test_overlap_fraction_partial():
    t = Timeline(["a", "b"])
    sa = t.enqueue("a", 4.0)
    sb = t.enqueue("b", 4.0, not_before=2.0)
    assert overlap_fraction([sa], [sb]) == 0.5


def test_overlap_fraction_empty():
    assert overlap_fraction([], []) == 0.0
