"""Discrete-event engine behaviour."""

import pytest

from repro.sim.engine import SimEngine


def test_clock_advances_to_last_event():
    engine = SimEngine()
    engine.schedule(10.0, lambda: None)
    engine.schedule(25.0, lambda: None)
    assert engine.run() == 25.0
    assert engine.events_processed == 2


def test_schedule_in_is_relative():
    engine = SimEngine()
    times = []
    engine.schedule(10.0, lambda: engine.schedule_in(5.0, lambda: times.append(engine.now)))
    engine.run()
    assert times == [15.0]


def test_cannot_schedule_in_past():
    engine = SimEngine()
    engine.schedule(10.0, lambda: None)
    engine.run()
    with pytest.raises(ValueError):
        engine.schedule(5.0, lambda: None)


def test_negative_delay_rejected():
    engine = SimEngine()
    with pytest.raises(ValueError):
        engine.schedule_in(-1.0, lambda: None)


def test_run_until_stops_before_later_events():
    engine = SimEngine()
    fired = []
    engine.schedule(10.0, lambda: fired.append(10))
    engine.schedule(30.0, lambda: fired.append(30))
    engine.run(until=20.0)
    assert fired == [10]
    assert engine.now == 20.0
    engine.run()
    assert fired == [10, 30]


def test_max_events_bound():
    engine = SimEngine()
    fired = []
    for t in (1.0, 2.0, 3.0):
        engine.schedule(t, lambda t=t: fired.append(t))
    engine.run(max_events=2)
    assert fired == [1.0, 2.0]


def test_cancel_prevents_firing():
    engine = SimEngine()
    fired = []
    event = engine.schedule(5.0, lambda: fired.append("x"))
    engine.cancel(event)
    engine.run()
    assert fired == []


def test_cascading_events():
    """An event chain built dynamically runs to completion."""
    engine = SimEngine()
    hops = []

    def hop(n: int):
        hops.append(engine.now)
        if n > 0:
            engine.schedule_in(2.0, lambda: hop(n - 1))

    engine.schedule(0.0, lambda: hop(4))
    final = engine.run()
    assert hops == [0.0, 2.0, 4.0, 6.0, 8.0]
    assert final == 8.0


def test_reset_clears_state():
    engine = SimEngine()
    engine.schedule(5.0, lambda: None)
    engine.run()
    engine.reset()
    assert engine.now == 0.0
    assert engine.events_processed == 0
    engine.schedule(1.0, lambda: None)
    assert engine.run() == 1.0
