"""Event queue primitives."""

import pytest

from repro.sim.events import EventQueue


def test_push_pop_orders_by_time():
    q = EventQueue()
    order = []
    q.push(3.0, lambda: order.append("c"))
    q.push(1.0, lambda: order.append("a"))
    q.push(2.0, lambda: order.append("b"))
    while q:
        q.pop().action()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_scheduling_order():
    q = EventQueue()
    order = []
    for label in "abcde":
        q.push(1.0, lambda tag=label: order.append(tag))
    while q:
        q.pop().action()
    assert order == list("abcde")


def test_len_counts_live_events():
    q = EventQueue()
    e1 = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    assert len(q) == 2
    q.cancel(e1)
    assert len(q) == 1


def test_cancelled_event_is_skipped():
    q = EventQueue()
    fired = []
    e = q.push(1.0, lambda: fired.append("cancelled"))
    q.push(2.0, lambda: fired.append("kept"))
    q.cancel(e)
    while q:
        event = q.pop()
        event.action()
    assert fired == ["kept"]


def test_peek_time_skips_cancelled():
    q = EventQueue()
    e = q.push(1.0, lambda: None)
    q.push(5.0, lambda: None)
    q.cancel(e)
    assert q.peek_time() == 5.0


def test_pop_empty_returns_none():
    q = EventQueue()
    assert q.pop() is None
    assert q.peek_time() is None
    assert not q


def test_negative_time_rejected():
    q = EventQueue()
    with pytest.raises(ValueError):
        q.push(-1.0, lambda: None)
