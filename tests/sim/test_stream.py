"""Stream timeline calculus invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.stream import Stream, Timeline, WorkItem


def test_stream_serializes_work():
    s = Stream("gpu")
    a = s.enqueue(2.0)
    b = s.enqueue(3.0)
    assert a.start == 0.0 and a.end == 2.0
    assert b.start == 2.0 and b.end == 5.0


def test_not_before_delays_start():
    s = Stream("gpu")
    seg = s.enqueue(1.0, not_before=10.0)
    assert seg.start == 10.0 and seg.end == 11.0


def test_negative_duration_rejected():
    s = Stream("gpu")
    with pytest.raises(ValueError):
        s.enqueue(-1.0)


def test_utilization():
    s = Stream("gpu")
    s.enqueue(2.0)
    s.enqueue(2.0, not_before=6.0)
    assert s.utilization() == pytest.approx(0.5)  # 4 busy over [0, 8]


def test_cross_stream_dependency():
    t = Timeline(["pcie", "gpu"])
    transfer = t.enqueue("pcie", 5.0, label="p")
    compute = t.enqueue("gpu", 2.0, label="e", after=[transfer])
    assert compute.start == 5.0
    assert t.makespan() == 7.0


def test_independent_streams_overlap():
    t = Timeline(["a", "b"])
    sa = t.enqueue("a", 4.0)
    sb = t.enqueue("b", 4.0)
    assert sa.overlaps(sb)
    assert t.makespan() == 4.0


def test_lazy_stream_creation():
    t = Timeline()
    t.enqueue("new", 1.0)
    assert "new" in t


def test_duplicate_stream_rejected():
    t = Timeline(["x"])
    with pytest.raises(ValueError):
        t.add_stream("x")


def test_all_segments_sorted():
    t = Timeline(["a", "b"])
    t.enqueue("b", 1.0, not_before=5.0)
    t.enqueue("a", 1.0)
    segs = t.all_segments()
    starts = [s.start for s in segs]
    assert starts == sorted(starts)


def test_work_item_dag_placement():
    t = Timeline()
    load = WorkItem(stream="pcie", duration=3.0, label="load")
    compute = WorkItem(stream="gpu", duration=2.0, label="run", deps=[load])
    store = WorkItem(stream="pcie", duration=1.0, label="store", deps=[compute])
    seg = store.place(t)
    assert seg.start == 5.0 and seg.end == 6.0
    # Re-placing returns the same segment (no duplication).
    assert store.place(t) is seg


def test_zero_duration_segment():
    s = Stream("x")
    seg = s.enqueue(0.0)
    assert seg.duration == 0.0
    assert not seg.overlaps(seg)  # open interval


@given(
    durations=st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=20)
)
def test_stream_makespan_is_sum_of_durations(durations):
    """With no gates, a stream's completion equals total work."""
    s = Stream("s")
    for d in durations:
        s.enqueue(d)
    assert s.available_at == pytest.approx(sum(durations))


@given(
    durations=st.lists(
        st.tuples(st.floats(0, 50), st.floats(0, 50)), min_size=1, max_size=20
    )
)
def test_segments_on_one_stream_never_overlap(durations):
    s = Stream("s")
    for d, gate in durations:
        s.enqueue(d, not_before=gate)
    segs = s.segments
    for a, b in zip(segs, segs[1:]):
        assert a.end <= b.start
