"""WorkItem DAG placement edge cases."""

from repro.sim.stream import Timeline, WorkItem


def test_diamond_dependency():
    """  a -> b, a -> c, (b, c) -> d  on two streams."""
    t = Timeline()
    a = WorkItem(stream="s1", duration=1.0, label="a")
    b = WorkItem(stream="s1", duration=2.0, label="b", deps=[a])
    c = WorkItem(stream="s2", duration=5.0, label="c", deps=[a])
    d = WorkItem(stream="s1", duration=1.0, label="d", deps=[b, c])
    seg = d.place(t)
    # c gates d: starts at max(b.end=3, c.end=6) = 6.
    assert seg.start == 6.0 and seg.end == 7.0


def test_shared_dependency_placed_once():
    t = Timeline()
    a = WorkItem(stream="s", duration=3.0, label="a")
    b = WorkItem(stream="s", duration=1.0, label="b", deps=[a])
    c = WorkItem(stream="s", duration=1.0, label="c", deps=[a])
    b.place(t)
    c.place(t)
    labels = [seg.label for seg in t.stream("s").segments]
    assert labels.count("a") == 1


def test_chain_on_one_stream_serializes():
    t = Timeline()
    prev = None
    for i in range(5):
        deps = [prev] if prev else []
        prev = WorkItem(stream="s", duration=2.0, label=str(i), deps=deps)
    seg = prev.place(t)
    assert seg.end == 10.0
