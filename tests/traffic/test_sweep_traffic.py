"""Traffic columns on the sweep runners (serving-only: fast)."""

import json

from repro.core.strategies import Scheme
from repro.cosim.driver import CosimConfig
from repro.cosim.sweep import SweepResult, run_load_sweep
from repro.experiments.config import TenantConfig, TrafficConfig
from repro.serving.simulator import CostModel

_COST = CostModel(
    encode_seconds_per_token=2e-9, decode_seconds_per_token=2e-8
)
_TENANTS = (
    TenantConfig(name="chat", share=0.6, mean_prompt_tokens=8,
                 mean_decode_tokens=24, slo_p99_ms=1.0),
    TenantConfig(name="batch", share=0.4, mean_prompt_tokens=24,
                 mean_decode_tokens=4),
)


def _sweep(traffic):
    return run_load_sweep(
        _COST,
        Scheme.MD_LB,
        None,  # serving-only: no DRAM feedback, runs in milliseconds
        [1e5, 1e6],
        n_requests=50,
        seed=2,
        mean_prompt_tokens=8,
        mean_decode_tokens=24,
        cosim_config=CosimConfig(),
        traffic=traffic,
    )


def test_tenant_columns_populated():
    sweep, _ = _sweep(TrafficConfig(tenants=_TENANTS))
    assert sweep.tenant_slo_p99_ms == {"chat": 1.0, "batch": None}
    assert sweep.config["traffic"]["tenants"][0]["name"] == "chat"
    for p in sweep.points:
        assert set(p.tenant_closed_p99) == {"chat", "batch"}
        assert p.tenant_completed == {"chat": 30, "batch": 20}
        assert all(v > 0 for v in p.tenant_closed_p99.values())


def test_flash_window_columns_populated():
    sweep, _ = _sweep(
        TrafficConfig(
            shape="flash_crowd", flash_at=0.5, flash_duration=0.1,
            flash_magnitude=8.0,
        )
    )
    for p in sweep.points:
        assert p.closed_flash_p99 > 0
        assert p.closed_steady_p99 > 0


def test_legacy_sweep_unchanged_without_traffic():
    sweep, _ = _sweep(None)
    assert "traffic" not in sweep.config
    assert sweep.tenant_slo_p99_ms == {}
    for p in sweep.points:
        assert p.tenant_closed_p99 == {} and p.tenant_completed == {}
        assert p.closed_flash_p99 == 0.0 and p.closed_steady_p99 == 0.0


def test_traffic_sweep_serializes_and_round_trips():
    sweep, _ = _sweep(TrafficConfig(tenants=_TENANTS))
    payload = json.dumps(sweep.to_dict())
    again = SweepResult.from_dict(json.loads(payload))
    assert again.to_dict() == sweep.to_dict()
    assert again.points[0].tenant_closed_p99 == sweep.points[0].tenant_closed_p99


def test_traffic_sweep_deterministic():
    a, _ = _sweep(TrafficConfig(shape="diurnal", tenants=_TENANTS))
    b, _ = _sweep(TrafficConfig(shape="diurnal", tenants=_TENANTS))
    assert a.to_dict() == b.to_dict()
