"""Tenant-mixed, shape-warped request-stream generation."""

import numpy as np
import pytest

from repro.experiments.config import TenantConfig, TrafficConfig
from repro.serving.workload import RequestGenerator
from repro.traffic.generate import _tenant_counts, generate_requests

_TENANTS = (
    TenantConfig(name="chat", share=0.5, mean_prompt_tokens=8,
                 mean_decode_tokens=24, slo_p99_ms=1.0),
    TenantConfig(name="batch", share=0.3, mean_prompt_tokens=64,
                 mean_decode_tokens=4),
    TenantConfig(name="long", share=0.2, mean_prompt_tokens=128,
                 mean_decode_tokens=16, slo_p99_ms=5.0),
)


def test_tenant_counts_largest_remainder():
    assert _tenant_counts(10, [0.5, 0.3, 0.2]) == [5, 3, 2]
    assert _tenant_counts(7, [0.5, 0.3, 0.2]) == [4, 2, 1]
    assert sum(_tenant_counts(101, [1, 1, 1])) == 101


def test_requests_renumbered_in_arrival_order():
    reqs = generate_requests(
        5.0, 40, mean_prompt_tokens=16, mean_decode_tokens=8,
        seed=3, arrival="poisson", traffic=TrafficConfig(tenants=_TENANTS),
    )
    assert [r.request_id for r in reqs] == list(range(40))
    arrivals = [r.arrival for r in reqs]
    assert arrivals == sorted(arrivals)


def test_tenant_shares_partition_the_count():
    reqs = generate_requests(
        5.0, 40, mean_prompt_tokens=16, mean_decode_tokens=8,
        seed=3, arrival="poisson", traffic=TrafficConfig(tenants=_TENANTS),
    )
    by_tenant = {}
    for r in reqs:
        by_tenant[r.tenant] = by_tenant.get(r.tenant, 0) + 1
    assert by_tenant == {"chat": 20, "batch": 12, "long": 8}


def test_tenant_token_means_differ():
    reqs = generate_requests(
        5.0, 300, mean_prompt_tokens=16, mean_decode_tokens=8,
        seed=3, arrival="poisson", traffic=TrafficConfig(tenants=_TENANTS),
    )
    mean_prompt = {
        name: np.mean([r.prompt_tokens for r in reqs if r.tenant == name])
        for name in ("chat", "long")
    }
    # 8-token chat prompts vs 128-token long-context prompts.
    assert mean_prompt["long"] > 4 * mean_prompt["chat"]


def test_deterministic_across_calls():
    kwargs = dict(
        rate=5.0, n_requests=50, mean_prompt_tokens=16, mean_decode_tokens=8,
        seed=11, arrival="poisson",
        traffic=TrafficConfig(shape="diurnal", tenants=_TENANTS),
    )
    a = generate_requests(**kwargs)
    b = generate_requests(**kwargs)
    assert [(r.arrival, r.tenant, r.prompt_tokens) for r in a] == [
        (r.arrival, r.tenant, r.prompt_tokens) for r in b
    ]


def test_no_tenants_no_shape_matches_stream_shape():
    # A bare (but active) traffic config still produces the anonymous
    # single-tenant stream: same count, ids in order, empty tenant.
    reqs = generate_requests(
        5.0, 30, mean_prompt_tokens=16, mean_decode_tokens=8,
        seed=7, arrival="poisson",
        traffic=TrafficConfig(drift_window_requests=8),
    )
    assert len(reqs) == 30
    assert all(r.tenant == "" for r in reqs)


def test_flash_crowd_compresses_window():
    traffic = TrafficConfig(
        shape="flash_crowd", flash_at=0.5, flash_duration=0.1,
        flash_magnitude=8.0,
    )
    reqs = generate_requests(
        10.0, 400, mean_prompt_tokens=16, mean_decode_tokens=8,
        seed=5, arrival="poisson", traffic=traffic,
    )
    horizon = max(r.arrival for r in reqs)
    in_window = sum(
        1 for r in reqs if 0.5 * horizon <= r.arrival < 0.6 * horizon
    )
    assert in_window / len(reqs) > 0.3


def test_mean_rate_preserved_by_shape():
    plain = RequestGenerator(
        10.0, mean_prompt_tokens=16, mean_decode_tokens=8,
        seed=5, arrival="poisson",
    ).generate(200)
    shaped = generate_requests(
        10.0, 200, mean_prompt_tokens=16, mean_decode_tokens=8,
        seed=5, arrival="poisson", traffic=TrafficConfig(shape="diurnal"),
    )
    # Warping preserves the horizon, so the average offered rate of
    # the shaped stream matches the legacy generator's.
    assert max(r.arrival for r in shaped) == pytest.approx(
        max(r.arrival for r in plain), rel=0.3
    )
