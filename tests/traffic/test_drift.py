"""Popularity drift: seeded re-mixes, deterministic drifting replay."""

import pickle

import numpy as np
import pytest

from repro.experiments import build_components, get_preset
from repro.traffic.drift import DriftSchedule, DriftingReplayPlanner


def test_checkpoint_indexing():
    drift = DriftSchedule(window_requests=20)
    assert drift.checkpoint_of(0) == 0
    assert drift.checkpoint_of(19) == 0
    assert drift.checkpoint_of(20) == 1
    assert drift.checkpoint_of(59) == 2


def test_invalid_schedule_rejected():
    with pytest.raises(ValueError):
        DriftSchedule(window_requests=0)
    with pytest.raises(ValueError):
        DriftSchedule(window_requests=10, mix=1.5)


def test_popularity_at_zero_is_the_base():
    base = np.array([0.6, 0.3, 0.1])
    drift = DriftSchedule(window_requests=10, mix=0.5, seed=4)
    np.testing.assert_allclose(drift.popularity_at(0, base), base)


def test_remix_is_seeded_and_compounds():
    base = np.array([0.6, 0.25, 0.1, 0.05])
    drift = DriftSchedule(window_requests=10, mix=0.5, seed=4)
    first = drift.popularity_at(3, base)
    again = drift.popularity_at(3, base)
    np.testing.assert_array_equal(first, again)
    np.testing.assert_allclose(first.sum(), 1.0)
    # A different seed or layer re-mixes differently.
    other_seed = DriftSchedule(window_requests=10, mix=0.5, seed=5)
    assert not np.allclose(other_seed.popularity_at(3, base), first)
    assert not np.allclose(drift.popularity_at(3, base, layer=1), first)


def test_mix_zero_never_moves():
    base = np.array([0.7, 0.2, 0.1])
    drift = DriftSchedule(window_requests=5, mix=0.0, seed=9)
    np.testing.assert_allclose(drift.popularity_at(7, base), base)


def _drift_planner():
    _, _, planner, _ = build_components(get_preset("popularity_drift"))
    assert isinstance(planner, DriftingReplayPlanner)
    return planner


def test_same_preset_same_seed_bit_identical_bursts():
    a, b = _drift_planner(), _drift_planner()
    for request_id in (0, 19, 20, 45, 120):
        np.testing.assert_array_equal(
            a.request_blocks(request_id, tokens=32),
            b.request_blocks(request_id, tokens=32),
        )


def test_stable_addresses_hold_across_query_order():
    planner = _drift_planner()
    forward = [planner.request_blocks(i, tokens=16) for i in range(0, 60, 7)]
    backward = [
        planner.request_blocks(i, tokens=16) for i in reversed(range(0, 60, 7))
    ]
    for got, want in zip(forward, reversed(backward)):
        np.testing.assert_array_equal(got, want)


def test_drift_actually_changes_popularity_across_windows():
    planner = _drift_planner()
    window = planner.drift.window_requests
    before = planner._popularity_for(0)
    after = planner._popularity_for(3 * window)
    assert any(
        not np.allclose(a, b) for a, b in zip(before, after)
    )


def test_pickle_round_trip_drops_cache_and_matches():
    planner = _drift_planner()
    want = planner.request_blocks(41, tokens=24)
    clone = pickle.loads(pickle.dumps(planner))
    assert clone._drift_cache == {}
    np.testing.assert_array_equal(clone.request_blocks(41, tokens=24), want)
