"""The scenario zoo: registry, preset registration, JSON round trips."""

import json

import pytest

from repro.experiments import ExperimentConfig, PRESET_NAMES, get_preset
from repro.traffic import SCENARIOS

EXPECTED = {
    "diurnal",
    "flash_crowd",
    "multi_tenant",
    "popularity_drift",
    "flash_crowd_smoke",
}


def test_registry_contents():
    assert set(SCENARIOS) == EXPECTED
    for name, scenario in SCENARIOS.items():
        assert scenario.name == name
        assert scenario.intent
        assert name in scenario.describe()


def test_every_scenario_is_a_preset():
    assert EXPECTED <= set(PRESET_NAMES)


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_scenario_config_round_trips_exactly(name):
    config = get_preset(name)
    assert config.traffic.active
    payload = json.dumps(config.to_dict())
    again = ExperimentConfig.from_dict(json.loads(payload))
    assert again == config
    assert again.to_dict() == config.to_dict()


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_scenario_factories_return_fresh_configs(name):
    assert get_preset(name) is not get_preset(name)


def test_scenario_traffic_knobs():
    assert get_preset("diurnal").traffic.shape == "diurnal"
    assert get_preset("flash_crowd").traffic.shape == "flash_crowd"
    mt = get_preset("multi_tenant").traffic
    assert [t.name for t in mt.tenants] == ["chat", "batch", "long_context"]
    assert mt.tenants[0].slo_p99_ms == 1.0
    assert get_preset("popularity_drift").traffic.drift_window_requests == 20
    smoke = get_preset("flash_crowd_smoke").traffic
    assert smoke.shape == "flash_crowd" and len(smoke.tenants) == 2


def test_plain_presets_have_inactive_traffic():
    # The legacy presets must take the exact legacy code path.
    for name in ("smoke", "decode_heavy", "cluster_smoke"):
        assert not get_preset(name).traffic.active
