"""Routing-trace CSV ingestion: corners, errors, round trips."""

import pathlib

import numpy as np
import pytest

from repro.traffic.routing_trace import (
    EmpiricalRoutingProfile,
    TraceExportSpec,
    export_routing_trace,
    load_routing_trace,
    routing_dram_arrays,
    save_routing_trace,
)

EXAMPLE = (
    pathlib.Path(__file__).resolve().parents[2]
    / "examples"
    / "routing_trace_example.csv"
)


def _write(tmp_path, text, name="trace.csv"):
    path = tmp_path / name
    path.write_text(text)
    return path


def test_basic_load_with_header(tmp_path):
    path = _write(
        tmp_path,
        "layer_id,token_id,expert_0_prob,expert_1_prob,expert_2_prob\n"
        "0,0,0.7,0.2,0.1\n"
        "0,1,0.1,0.6,0.3\n",
    )
    trace = load_routing_trace(path, top_k=2)
    assert trace.n_layers == 1
    assert trace.n_tokens == 2
    assert trace.n_experts == 3
    assert trace.top_k == 2
    assert trace.assignments[0].tolist() == [[0, 1], [1, 2]]


def test_headerless_load(tmp_path):
    path = _write(tmp_path, "0,0,0.5,0.5\n0,1,0.9,0.1\n")
    trace = load_routing_trace(path, top_k=1)
    assert trace.n_tokens == 2


def test_top_k_ties_break_toward_lowest_expert_id(tmp_path):
    path = _write(tmp_path, "0,0,0.25,0.25,0.25,0.25\n")
    trace = load_routing_trace(path, top_k=2)
    assert trace.assignments[0].tolist() == [[0, 1]]


def test_rows_not_summing_to_one_are_renormalized(tmp_path):
    path = _write(tmp_path, "0,0,2.0,1.0,1.0\n")
    trace = load_routing_trace(path, top_k=1)
    np.testing.assert_allclose(trace.probs[0][0], [0.5, 0.25, 0.25])


def test_truncate_longer_layers(tmp_path):
    # Layer 0 has 2 tokens, layer 1 has 4: layer 1 truncates to 2.
    path = _write(
        tmp_path,
        "0,0,1,0\n0,1,0,1\n"
        "1,0,1,0\n1,1,0,1\n1,2,1,0\n1,3,0,1\n",
    )
    trace = load_routing_trace(path, top_k=1)
    assert trace.n_tokens == 2
    assert all(a.shape == (2, 1) for a in trace.assignments)


def test_pad_shorter_layers_by_cycling(tmp_path):
    # Layer 0 has 3 tokens, layer 1 has 2: layer 1 pads to 3 by
    # cycling from its own start.
    path = _write(
        tmp_path,
        "0,0,1,0\n0,1,0,1\n0,2,1,0\n"
        "1,0,1,0\n1,1,0,1\n",
    )
    trace = load_routing_trace(path, top_k=1)
    assert trace.n_tokens == 3
    assert trace.assignments[1].ravel().tolist() == [0, 1, 0]


def test_explicit_n_tokens_override(tmp_path):
    path = _write(tmp_path, "0,0,1,0\n0,1,0,1\n0,2,1,0\n")
    trace = load_routing_trace(path, top_k=1, n_tokens=5)
    assert trace.n_tokens == 5
    assert trace.assignments[0].ravel().tolist() == [0, 1, 0, 0, 1]


@pytest.mark.parametrize(
    "body, lineno, fragment",
    [
        ("0,0,0.5,0.5\n0,nope,0.5,0.5\n", 2, "must be integers"),
        ("0,0,0.5,0.5\n0,1,0.5,abc\n", 2, "expert_1_prob is not a number"),
        ("0,0,0.5,0.5\n0,1,0.5,0.4,0.1\n", 2, "expert columns"),
        ("0,0,0.5,0.5\n0,1,0.5,-0.5\n", 2, "finite and non-negative"),
        ("0,0,0.5,0.5\n0,1,0,0\n", 2, "sums to 0"),
        ("0,0,0.5,0.5\n0,1\n", 2, "at least one expert column"),
        ("0,0,0.5,0.5\n-1,0,0.5,0.5\n", 2, "non-negative"),
    ],
)
def test_malformed_rows_name_the_line(tmp_path, body, lineno, fragment):
    path = _write(tmp_path, body)
    with pytest.raises(ValueError) as err:
        load_routing_trace(path)
    assert f"{path}:{lineno}:" in str(err.value)
    assert fragment in str(err.value)


def test_empty_trace_rejected(tmp_path):
    path = _write(tmp_path, "layer_id,token_id,expert_0_prob,expert_1_prob\n")
    with pytest.raises(ValueError, match="empty routing trace"):
        load_routing_trace(path)


def test_top_k_exceeding_experts_rejected(tmp_path):
    path = _write(tmp_path, "0,0,0.5,0.5\n")
    with pytest.raises(ValueError, match="top_k=3 exceeds"):
        load_routing_trace(path, top_k=3)


def test_save_load_round_trip(tmp_path):
    trace = load_routing_trace(EXAMPLE, top_k=2)
    out = tmp_path / "resaved.csv"
    save_routing_trace(out, trace)
    again = load_routing_trace(out, top_k=2)
    assert again.layers == trace.layers
    for a, b in zip(trace.assignments, again.assignments):
        np.testing.assert_array_equal(a, b)
    for a, b in zip(trace.popularities(), again.popularities()):
        np.testing.assert_allclose(a, b)


def test_example_trace_has_the_documented_asymmetry():
    trace = load_routing_trace(EXAMPLE, top_k=2)
    assert trace.n_layers == 4 and trace.n_tokens == 256
    pops = trace.popularities()
    # Encoder layers route broadly; decoder layers concentrate on a
    # small hot set (the Fig. 3 / Fig. 6 asymmetry the CSV encodes).
    assert max(pops[0]) < 0.3
    assert max(pops[2]) > 0.4


def test_empirical_profile_parameterizes_routing_profile():
    trace = load_routing_trace(EXAMPLE, top_k=2)
    profile = EmpiricalRoutingProfile.from_trace(trace)
    pop = profile.popularity(trace.n_experts, rank=0, n_layers=trace.n_layers)
    np.testing.assert_allclose(pop, trace.popularity(0))
    np.testing.assert_allclose(pop.sum(), 1.0)
    # Wider geometry than the trace: zero-padded then renormalized.
    wide = profile.popularity(16, rank=1, n_layers=trace.n_layers)
    assert wide.shape == (16,)
    np.testing.assert_allclose(wide.sum(), 1.0)
    assert np.all(wide[trace.n_experts:] == 0)


def test_expert_sequence_offsets_layers():
    seq_trace = load_routing_trace(EXAMPLE, top_k=2)
    seq = seq_trace.expert_sequence()
    per_layer = seq_trace.n_tokens * seq_trace.top_k
    assert len(seq) == seq_trace.n_layers * per_layer
    for i in range(seq_trace.n_layers):
        chunk = seq[i * per_layer : (i + 1) * per_layer]
        assert chunk.min() >= i * seq_trace.n_experts
        assert chunk.max() < (i + 1) * seq_trace.n_experts


def test_routing_dram_arrays_deterministic():
    trace = load_routing_trace(EXAMPLE, top_k=2)
    spec = TraceExportSpec(seed=5, burst_blocks=4)
    addrs_a, writes_a = routing_dram_arrays(trace, spec)
    addrs_b, writes_b = routing_dram_arrays(trace, spec)
    np.testing.assert_array_equal(addrs_a, addrs_b)
    np.testing.assert_array_equal(writes_a, writes_b)
    assert len(addrs_a) == len(trace.expert_sequence()) * spec.burst_blocks


def test_export_twice_is_byte_identical(tmp_path):
    trace = load_routing_trace(EXAMPLE, top_k=2)
    spec = TraceExportSpec(seed=9, burst_blocks=4)
    a, b = tmp_path / "a.dramtrace", tmp_path / "b.dramtrace"
    n1 = export_routing_trace(trace, a, spec)
    n2 = export_routing_trace(trace, b, spec)
    assert n1 == n2 > 0
    assert a.read_bytes() == b.read_bytes()
