"""Load shapes and the arrival time-warp invariants."""

import numpy as np
import pytest

from repro.traffic.shapes import (
    DiurnalShape,
    FlashCrowdShape,
    SteadyShape,
    warp_times,
)


def _poisson_times(n=400, rate=10.0, seed=3):
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(1.0 / rate, size=n))


def test_steady_warp_is_identity():
    times = _poisson_times()
    np.testing.assert_allclose(warp_times(times, SteadyShape()), times)


@pytest.mark.parametrize(
    "shape",
    [
        DiurnalShape(trough=0.25, peak=1.75),
        FlashCrowdShape(at=0.4, duration=0.2, magnitude=6.0),
        DiurnalShape() * FlashCrowdShape(),
    ],
)
def test_warp_preserves_count_horizon_and_order(shape):
    times = _poisson_times()
    warped = warp_times(times, shape)
    assert len(warped) == len(times)
    # Endpoints pinned: same horizon, so the mean offered rate is
    # unchanged -- only the within-run timing moves.
    np.testing.assert_allclose(warped[-1], times[-1])
    assert np.all(np.diff(warped) >= 0)
    assert warped[0] >= 0


def test_flash_crowd_concentrates_arrivals_in_window():
    times = np.linspace(0.0, 100.0, 1001)
    shape = FlashCrowdShape(at=0.5, duration=0.1, magnitude=8.0)
    warped = warp_times(times, shape)
    horizon = warped[-1]
    in_window = np.sum((warped >= 0.5 * horizon) & (warped < 0.6 * horizon))
    # Uniform input puts ~10% of arrivals there; an 8x spike pulls in
    # far more.
    assert in_window / len(warped) > 0.3


def test_diurnal_modulates_both_directions():
    shape = DiurnalShape(trough=0.2, peak=1.8)
    t = np.linspace(0, 1, 101)
    f = shape.factor(t)
    assert f.min() == pytest.approx(0.2, abs=1e-6)
    assert f.max() == pytest.approx(1.8, abs=1e-6)


def test_composed_shape_multiplies_factors():
    a = DiurnalShape(trough=0.5, peak=1.5)
    b = FlashCrowdShape(at=0.2, duration=0.2, magnitude=3.0)
    t = np.linspace(0, 1, 11)
    np.testing.assert_allclose((a * b).factor(t), a.factor(t) * b.factor(t))


def test_empty_and_zero_horizon_inputs_pass_through():
    shape = DiurnalShape()
    assert warp_times(np.array([]), shape).size == 0
    np.testing.assert_allclose(
        warp_times(np.zeros(3), shape), np.zeros(3)
    )


@pytest.mark.parametrize(
    "ctor",
    [
        lambda: DiurnalShape(trough=0.0),
        lambda: DiurnalShape(trough=1.5, peak=1.0),
        lambda: DiurnalShape(period_fraction=0.0),
        lambda: FlashCrowdShape(at=1.0),
        lambda: FlashCrowdShape(at=0.5, duration=0.6),
        lambda: FlashCrowdShape(magnitude=0.0),
    ],
)
def test_invalid_shape_parameters_rejected(ctor):
    with pytest.raises(ValueError):
        ctor()
