"""Failure/degradation injection: the system responds sensibly when a
component underperforms or misbehaves."""

import dataclasses

import pytest

from repro.core.engine import MoELayerEngine, Overheads, Platform
from repro.core.strategies import Scheme
from repro.hw.specs import MONDE_DEVICE, PCIE_GEN4_X16
from repro.moe import nllb_moe_128
from tests.conftest import make_counts


@pytest.fixture
def counts():
    return make_counts(128, {0: 800, **{e: 3 for e in range(20, 50)}})


def test_crippled_monde_shifts_balance_to_gpu(counts):
    """A 10x slower MoNDE device should push the optimal H up: the
    all-NDP scheme degrades far more than the balanced one."""
    slow_spec = MONDE_DEVICE.scaled_bandwidth(0.1)
    fast = MoELayerEngine(nllb_moe_128(), Platform())
    slow = MoELayerEngine(nllb_moe_128(), Platform(monde_spec=slow_spec))

    am_degradation = (
        slow.layer_time(Scheme.MD_AM, counts).seconds
        / fast.layer_time(Scheme.MD_AM, counts).seconds
    )
    best_slow_lb = min(
        slow.layer_time(Scheme.MD_LB, counts, alpha=a).seconds
        for a in (1.0, 4.0, 16.0, 64.0)
    )
    lb_degradation = best_slow_lb / fast.layer_time(Scheme.MD_LB, counts).seconds
    assert am_degradation > 3.0
    assert lb_degradation < am_degradation


def test_crippled_pcie_hurts_pmove_more_than_amove(counts):
    """A degraded link (e.g. x4 bifurcation) magnifies PMove pain."""
    slow_pcie = dataclasses.replace(PCIE_GEN4_X16, raw_bandwidth=8e9)
    base = MoELayerEngine(nllb_moe_128(), Platform())
    slow = MoELayerEngine(nllb_moe_128(), Platform(pcie_spec=slow_pcie))
    pm_hit = (
        slow.layer_time(Scheme.GPU_PM, counts).seconds
        / base.layer_time(Scheme.GPU_PM, counts).seconds
    )
    am_hit = (
        slow.layer_time(Scheme.MD_AM, counts).seconds
        / base.layer_time(Scheme.MD_AM, counts).seconds
    )
    assert pm_hit > 2.5
    assert am_hit < 1.3


def test_zero_size_expert_buffer_degrades_decoder():
    """Without the GPU expert buffer, decoding pays full PMove."""
    from repro.core.cache import ExpertCache
    from repro.workloads import flores_like
    from repro.workloads.traces import RoutingTraceGenerator

    sc = flores_like(batch=4)
    engine = MoELayerEngine(sc.model, Platform())
    gen = RoutingTraceGenerator(sc.model, 4, 512, profile=sc.profile, seed=0)

    def run(capacity: float) -> float:
        cache = ExpertCache(capacity, engine.pmove.expert_bytes)
        total = 0.0
        for step in range(8):
            for rank in range(6):
                counts = gen.decoder_step_counts(rank, step)
                total += engine.layer_time(
                    Scheme.GPU_PM, counts, layer_id=rank, cache=cache
                ).seconds
        return total

    assert run(0) > 1.5 * run(8 * 1024**3)


def test_corrupted_instruction_rejected():
    """A flit whose aux activation bits disagree with the opcode (bit
    corruption on the link) is refused at decode."""
    from repro.core.instructions import NDPInstruction, Opcode

    inst = NDPInstruction(
        opcode=Opcode.GEMM_RELU, actin_addr=0, actin_size=0, wgt_addr=0,
        wgt_size=0, actout_addr=0, actout_size=0, m=1, n=1, k=1,
    )
    raw = bytearray(inst.encode())
    # Flip bit 122 of the trailing word: the upper bit of the aux
    # fused-activation field, making it disagree with the opcode.
    raw[-16] ^= 0x04
    with pytest.raises(ValueError):
        NDPInstruction.decode(bytes(raw))


def test_overcommitted_device_capacity_detected():
    """Loading more expert bytes than the device holds raises."""
    import dataclasses as dc

    from repro.ndp.device import MoNDEDevice

    tiny = dc.replace(MONDE_DEVICE, channel_capacity=1024.0)
    device = MoNDEDevice(tiny)
    device.allocate(100_000, region="expert")
    with pytest.raises(MemoryError):
        device.check_capacity()


def test_pathological_overheads_still_rank_sanely(counts):
    """Even with huge framework overheads, Ideal stays fastest."""
    heavy = Overheads(moe_fixed=5e-3, per_routed_token=10e-6, ndp_kernel=1e-3)
    engine = MoELayerEngine(nllb_moe_128(), Platform(overheads=heavy))
    ideal = engine.layer_time(Scheme.IDEAL, counts).seconds
    for scheme in (Scheme.GPU_PM, Scheme.MD_AM, Scheme.MD_LB, Scheme.CPU_AM):
        assert engine.layer_time(scheme, counts).seconds >= ideal


def test_hot_heavy_routing_erodes_pure_ndp_advantage():
    """Skew is load-bearing in a specific way: the NDP wins on
    bandwidth-bound *cold* experts.  Concentrating the same routing
    events onto one compute-heavy expert erodes MD+AM's advantage over
    GPU+PM (the NDP becomes MAC-bound), while the balanced scheme
    keeps its edge by moving that expert to the GPU."""
    engine = MoELayerEngine(nllb_moe_128(), Platform())
    cold_heavy = make_counts(128, {e: 4 for e in range(40)})
    hot_heavy = make_counts(128, {0: 2000, **{e: 1 for e in range(89, 128)}})

    def am_advantage(counts):
        return (
            engine.layer_time(Scheme.GPU_PM, counts).seconds
            / engine.layer_time(Scheme.MD_AM, counts).seconds
        )

    assert am_advantage(cold_heavy) > 2 * am_advantage(hot_heavy)
    lb = engine.layer_time(Scheme.MD_LB, hot_heavy, alpha=8.0).seconds
    am = engine.layer_time(Scheme.MD_AM, hot_heavy).seconds
    assert lb < am
