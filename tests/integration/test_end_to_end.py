"""Cross-module integration: functional + timing co-simulation."""

import numpy as np
import pytest

from repro.core.driver import MoNDEDriver
from repro.moe import MoESeq2Seq, nllb_moe_tiny, switch_large_tiny
from repro.moe.moe_layer import MoELayer
from repro.moe.transformer import ForwardRecord


def test_moe_layer_offloaded_to_device_matches_host():
    """Running a real MoE layer's experts through the full MoNDE stack
    (driver -> CXL flits -> NDP controller -> systolic engine) produces
    bit-identical outputs to the host NumPy layer."""
    rng = np.random.default_rng(3)
    layer = MoELayer(d_model=32, d_ff=64, n_experts=4, top_k=2, rng=rng)
    x = rng.normal(size=(10, 32))
    layer(x)  # populates layer.last_routing
    plan = layer.last_routing.plan

    driver = MoNDEDriver()
    for expert_id, expert in enumerate(layer.experts):
        # Device path is weights-only; fold biases in by augmenting
        # would complicate the ISA, so build bias-free references.
        driver.load_expert(
            expert_id, expert.linear1.weight, expert.linear2.weight
        )

    token_groups = {
        e: x[ids] for e, ids in enumerate(plan.expert_token_ids) if len(ids)
    }
    outputs, device_seconds = driver.run_moe_layer(token_groups)
    assert device_seconds > 0

    # Combine on the host exactly as the MoE layer does.
    combined = np.zeros_like(x)
    for expert_id, ids in enumerate(plan.expert_token_ids):
        if len(ids) == 0:
            continue
        slot = np.argmax(plan.expert_indices[ids] == expert_id, axis=1)
        weights = plan.combine_weights[ids, slot][:, None]
        np.add.at(combined, ids, weights * outputs[expert_id])

    # Reference: the same bias-free expert math on the host.
    reference = np.zeros_like(x)
    for expert_id, ids in enumerate(plan.expert_token_ids):
        if len(ids) == 0:
            continue
        e = layer.experts[expert_id]
        out = np.maximum(x[ids] @ e.linear1.weight, 0) @ e.linear2.weight
        slot = np.argmax(plan.expert_indices[ids] == expert_id, axis=1)
        weights = plan.combine_weights[ids, slot][:, None]
        np.add.at(reference, ids, weights * out)

    np.testing.assert_allclose(combined, reference, rtol=1e-9)


def test_model_routing_feeds_timing_engine():
    """Routing recorded from a real forward pass can drive the layer
    timing engine directly (the paper's profiling loop)."""
    from repro.core.engine import MoELayerEngine, Platform
    from repro.core.strategies import Scheme

    model = MoESeq2Seq(nllb_moe_tiny(), seed=0)
    record = ForwardRecord()
    src = np.random.default_rng(0).integers(0, 512, size=(2, 16))
    model.encode(src, record=record)

    cfg = model.config
    engine = MoELayerEngine(cfg, Platform())
    for info in record.encoder_routing:
        result = engine.layer_time(Scheme.MD_LB, info.tokens_per_expert)
        assert result.seconds > 0
        assert result.n_active == info.n_active_experts


def test_scaled_down_twin_structure_matches_full():
    """The tiny zoo twins preserve the structural knobs the timing
    model keys on (interleave, gating arity)."""
    from repro.moe.zoo import nllb_moe_128, switch_large_128

    for tiny, full in (
        (switch_large_tiny(), switch_large_128()),
        (nllb_moe_tiny(), nllb_moe_128()),
    ):
        assert tiny.top_k == full.top_k
        assert tiny.moe_every == full.moe_every
        assert tiny.activation == full.activation


def test_device_capacity_accounting_against_model():
    """Loading experts tracks bytes; NLLB-tiny fits trivially, and the
    accounting matches the config's expert-size formula (weights only
    -- biases stay host-side)."""
    cfg = nllb_moe_tiny()
    driver = MoNDEDriver()
    rng = np.random.default_rng(0)
    for e in range(cfg.n_experts):
        driver.load_expert(
            e,
            rng.normal(size=(cfg.d_model, cfg.d_ff)),
            rng.normal(size=(cfg.d_ff, cfg.d_model)),
        )
    # store_tensor keeps float64 (8 B); the config counts dtype_bytes.
    expected = cfg.n_experts * cfg.expert_params * 8
    assert driver.device.bytes_allocated == expected


@pytest.mark.parametrize("scheme_name", ["gpu+pm", "md+am", "md+lb", "cpu+am"])
def test_every_scheme_is_deterministic(scheme_name):
    from repro.core.runtime import InferenceConfig, MoNDERuntime
    from repro.core.strategies import Scheme
    from repro.workloads import flores_like

    scheme = Scheme(scheme_name)
    sc = flores_like(batch=1)

    def run():
        cfg = InferenceConfig(
            model=sc.model, batch=1, decode_steps=4, profile=sc.profile, seed=3
        )
        return MoNDERuntime(cfg).result(scheme, "encoder").seconds

    assert run() == pytest.approx(run(), rel=1e-12)
