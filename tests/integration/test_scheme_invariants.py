"""Cross-scheme invariants over randomized workloads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import MoELayerEngine, Platform
from repro.core.strategies import Scheme
from repro.moe import nllb_moe_128


@pytest.fixture(scope="module")
def engine():
    return MoELayerEngine(nllb_moe_128(), Platform())


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 1000),
    n_active=st.integers(1, 64),
    max_tokens=st.integers(1, 512),
)
def test_ideal_lower_bounds_everything(seed, n_active, max_tokens):
    engine = MoELayerEngine(nllb_moe_128(), Platform())
    rng = np.random.default_rng(seed)
    counts = np.zeros(128, dtype=np.int64)
    experts = rng.choice(128, size=n_active, replace=False)
    counts[experts] = rng.integers(1, max_tokens + 1, size=n_active)
    ideal = engine.layer_time(Scheme.IDEAL, counts).seconds
    for scheme in (Scheme.GPU_PM, Scheme.MD_AM, Scheme.CPU_AM):
        assert engine.layer_time(scheme, counts).seconds >= ideal * 0.999


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 1000))
def test_md_lb_never_worse_than_best_pure_scheme_with_oracle_alpha(seed):
    """With the best alpha from a small ladder, MD+LB is at least as
    good as min(GPU+PM, MD+AM) up to the prologue difference."""
    engine = MoELayerEngine(nllb_moe_128(), Platform())
    rng = np.random.default_rng(seed)
    counts = np.zeros(128, dtype=np.int64)
    experts = rng.choice(128, size=30, replace=False)
    counts[experts] = rng.integers(1, 200, size=30)
    pm = engine.layer_time(Scheme.GPU_PM, counts).seconds
    am = engine.layer_time(Scheme.MD_AM, counts).seconds
    lb = min(
        engine.layer_time(Scheme.MD_LB, counts, alpha=a).seconds
        for a in (0.25, 1.0, 4.0, 16.0, 64.0)
    )
    assert lb <= min(pm, am) * 1.05


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 500), scale=st.integers(2, 5))
def test_scaling_token_counts_never_reduces_time(seed, scale):
    engine = MoELayerEngine(nllb_moe_128(), Platform())
    rng = np.random.default_rng(seed)
    counts = np.zeros(128, dtype=np.int64)
    experts = rng.choice(128, size=16, replace=False)
    counts[experts] = rng.integers(1, 64, size=16)
    for scheme in (Scheme.IDEAL, Scheme.MD_AM, Scheme.CPU_AM):
        base = engine.layer_time(scheme, counts).seconds
        scaled = engine.layer_time(scheme, counts * scale).seconds
        assert scaled >= base


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 500))
def test_pmove_bytes_match_strategy(seed):
    engine = MoELayerEngine(nllb_moe_128(), Platform())
    rng = np.random.default_rng(seed)
    counts = np.zeros(128, dtype=np.int64)
    experts = rng.choice(128, size=10, replace=False)
    counts[experts] = 1
    result = engine.layer_time(Scheme.GPU_PM, counts)
    assert result.pmove_bytes == engine.pmove.transfer_bytes(counts)
    am = engine.layer_time(Scheme.MD_AM, counts)
    assert am.amove_bytes == engine.amove.transfer_bytes(counts[counts > 0])
