"""The shipped examples must stay runnable."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parents[2] / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_examples_exist():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "ndp_programming_model.py",
        "capacity_planning.py",
        "dram_exploration.py",
        "paper_figures.py",
        "closed_loop_cosim.py",
    } <= names


def test_ndp_programming_model_runs():
    out = run_example("ndp_programming_model.py")
    assert "matches NumPy reference: True" in out
    assert "done register raised: True" in out
    assert "(even banks)" in out and "(odd banks)" in out


def test_dram_exploration_runs():
    out = run_example("dram_exploration.py")
    assert "GB/s" in out
    assert "partitioned banks" in out
    assert "latency min/p50/p99/max" in out


def test_closed_loop_cosim_runs():
    out = run_example("closed_loop_cosim.py")
    assert "closed p99" in out
    assert "1.00x the open-loop p99" in out
    assert "the open-loop prediction" in out


@pytest.mark.slow
def test_quickstart_runs():
    out = run_example("quickstart.py")
    assert "Functional MoE inference" in out
    assert "MD+LB is" in out
