"""PCIe link timing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hw.pcie import PCIeLink
from repro.hw.specs import PCIE_GEN4_X16, PCIeSpec


@pytest.fixture
def link() -> PCIeLink:
    return PCIeLink(PCIE_GEN4_X16)


def test_zero_bytes_is_free(link):
    assert link.transfer_time(0) == 0.0


def test_transfer_includes_latency(link):
    assert link.transfer_time(1) >= PCIE_GEN4_X16.latency


def test_large_transfer_approaches_bandwidth(link):
    nbytes = 10 * 10**9
    time = link.transfer_time(nbytes)
    implied_bw = nbytes / time
    assert implied_bw == pytest.approx(PCIE_GEN4_X16.effective_bandwidth, rel=0.01)


def test_bandwidth_bound_excludes_latency(link):
    nbytes = 1 << 20
    assert link.bandwidth_bound_time(nbytes) == pytest.approx(
        nbytes / PCIE_GEN4_X16.effective_bandwidth
    )
    assert link.bandwidth_bound_time(nbytes) < link.transfer_time(nbytes)


def test_negative_bytes_rejected(link):
    with pytest.raises(ValueError):
        link.transfer_time(-1)
    with pytest.raises(ValueError):
        link.bandwidth_bound_time(-1)


def test_expert_transfer_matches_fig2c_scale(link):
    """A d_model=1024 expert (16 MiB bf16) takes ~0.66 ms on Gen4 x16,
    the scale Fig. 2(c) reports."""
    expert_bytes = 2 * 1024 * 4096 * 2
    t = link.transfer_time(expert_bytes)
    assert 0.4e-3 < t < 1.0e-3


@given(a=st.integers(0, 10**9), b=st.integers(0, 10**9))
def test_transfer_time_is_superadditive_in_splits(a, b):
    """Splitting a transfer never makes it faster (extra latency)."""
    link = PCIeLink(PCIE_GEN4_X16)
    whole = link.transfer_time(a + b)
    split = link.transfer_time(a) + link.transfer_time(b)
    assert split >= whole - 1e-12


def test_custom_spec_efficiency():
    spec = PCIeSpec(name="x", raw_bandwidth=10e9, efficiency=0.5, latency=0.0)
    link = PCIeLink(spec)
    assert link.transfer_time(5e9) == pytest.approx(1.0)
