"""GPU roofline model: the Fig. 2(c) compute side."""

import pytest

from repro.hw.gpu import GPUModel
from repro.hw.specs import A100_PCIE, GPUSpec


@pytest.fixture
def gpu() -> GPUModel:
    return GPUModel(A100_PCIE)


def test_zero_dims_cost_nothing(gpu):
    assert gpu.gemm_time(0, 10, 10) == 0.0
    assert gpu.expert_ffn_time(0, 1024, 4096) == 0.0


def test_small_gemm_is_memory_bound(gpu):
    """A 1-token expert GEMM streams the weights: memory bound."""
    timing = gpu.gemm_timing(1, 4096, 1024)
    assert timing.is_memory_bound


def test_large_gemm_is_compute_bound(gpu):
    timing = gpu.gemm_timing(8192, 8192, 8192)
    assert not timing.is_memory_bound


def test_launch_overhead_floor(gpu):
    """Even a tiny GEMM pays the kernel launch."""
    assert gpu.gemm_time(1, 1, 1) >= A100_PCIE.kernel_launch_overhead


def test_small_m_derates_throughput(gpu):
    small = gpu.gemm_timing(4, 4096, 4096)
    large = gpu.gemm_timing(4096, 4096, 4096)
    assert small.achieved_flops < large.achieved_flops


def test_monotonic_in_tokens(gpu):
    times = [gpu.expert_ffn_time(t, 1024, 4096) for t in (1, 8, 64, 512, 4096)]
    for a, b in zip(times, times[1:]):
        assert b >= a


def test_cold_expert_underutilizes_gpu(gpu):
    """Section 2.2: cold experts leave the tensor cores idle -- the
    achieved TFLOPS of a 1-token expert is a tiny fraction of peak."""
    t = gpu.expert_ffn_time(1, 2048, 8192)
    flops = 2 * 2 * 1 * 2048 * 8192
    achieved = flops / t
    assert achieved < 0.01 * A100_PCIE.peak_flops


def test_expert_ffn_is_two_gemms(gpu):
    tokens, d, ff = 32, 1024, 4096
    expected = gpu.gemm_time(tokens, ff, d) + gpu.gemm_time(tokens, d, ff)
    assert gpu.expert_ffn_time(tokens, d, ff) == pytest.approx(expected)


def test_dense_block_time_positive_and_scales(gpu):
    small = gpu.dense_block_time(128, 1024)
    large = gpu.dense_block_time(2048, 1024)
    assert 0 < small < large


def test_memory_time_uses_hbm_bandwidth(gpu):
    """For a memory-bound GEMM, time ~= bytes / HBM bandwidth."""
    m, n, k = 1, 8192, 2048
    timing = gpu.gemm_timing(m, n, k)
    expected = 2 * (m * k + k * n + m * n) / A100_PCIE.mem_bandwidth
    assert timing.memory_time == pytest.approx(expected)


def test_efficiency_saturates_at_m_saturate():
    spec = GPUSpec(
        name="t", peak_flops=1e12, mem_capacity=1, mem_bandwidth=1e12, m_saturate=64
    )
    gpu = GPUModel(spec)
    sat = gpu.gemm_timing(64, 512, 512).achieved_flops
    beyond = gpu.gemm_timing(640, 512, 512).achieved_flops
    assert sat == pytest.approx(beyond)
    assert sat == pytest.approx(spec.peak_flops * spec.base_efficiency)
