"""Property-based invariants of the hardware timing models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.cpu import CPUModel
from repro.hw.gpu import GPUModel
from repro.hw.pcie import PCIeLink
from repro.hw.specs import A100_PCIE, PCIE_GEN4_X16, XEON_4310

dims = st.integers(1, 8192)


@settings(max_examples=40)
@given(m=dims, n=dims, k=dims)
def test_gpu_gemm_time_positive_and_bounded_below(m, n, k):
    gpu = GPUModel(A100_PCIE)
    t = gpu.gemm_time(m, n, k)
    assert t >= A100_PCIE.kernel_launch_overhead
    # Never faster than peak-compute or HBM-stream bounds.
    flops = 2.0 * m * n * k
    assert t >= flops / A100_PCIE.peak_flops
    bytes_ = 2.0 * (m * k + k * n + m * n)
    assert t >= bytes_ / A100_PCIE.mem_bandwidth


@settings(max_examples=40)
@given(m=dims, n=dims, k=dims, factor=st.integers(2, 4))
def test_gpu_time_monotone_in_each_dim(m, n, k, factor):
    gpu = GPUModel(A100_PCIE)
    base = gpu.gemm_time(m, n, k)
    assert gpu.gemm_time(m * factor, n, k) >= base
    assert gpu.gemm_time(m, n * factor, k) >= base
    assert gpu.gemm_time(m, n, k * factor) >= base


@settings(max_examples=40)
@given(m=dims, n=dims, k=dims)
def test_cpu_never_faster_than_gpu_compute(m, n, k):
    """The Xeon's effective GEMM throughput is far below the A100's;
    for compute-bound shapes the CPU must be slower."""
    gpu = GPUModel(A100_PCIE)
    cpu = CPUModel(XEON_4310)
    if m >= 512:  # clearly compute-bound on both
        assert cpu.gemm_time(m, n, k) > gpu.gemm_time(m, n, k)


@settings(max_examples=40)
@given(nbytes=st.integers(1, 10**10))
def test_pcie_time_monotone(nbytes):
    link = PCIeLink(PCIE_GEN4_X16)
    assert link.transfer_time(nbytes) >= link.transfer_time(nbytes // 2)


@settings(max_examples=30)
@given(tokens=st.integers(1, 4096))
def test_expert_ffn_time_exceeds_either_gemm(tokens):
    gpu = GPUModel(A100_PCIE)
    both = gpu.expert_ffn_time(tokens, 1024, 4096)
    assert both > gpu.gemm_time(tokens, 4096, 1024)
    assert both > gpu.gemm_time(tokens, 1024, 4096)
