"""Device spec catalog: Table 2 platform parameters."""

import pytest

from repro.hw.specs import (
    A100_PCIE,
    MONDE_DEVICE,
    PCIE_GEN4_X16,
    XEON_4310,
    GPUSpec,
    MoNDEDeviceSpec,
    NDPCoreSpec,
    PCIeSpec,
    gemm_bytes,
    gemm_flops,
)


def test_gemm_flops():
    assert gemm_flops(2, 3, 4) == 2 * 2 * 3 * 4
    assert gemm_flops(0, 5, 5) == 0


def test_gemm_flops_rejects_negative():
    with pytest.raises(ValueError):
        gemm_flops(-1, 2, 3)


def test_gemm_bytes_counts_all_operands():
    # A(2x4) + B(4x3) + C(2x3) in bf16.
    assert gemm_bytes(2, 3, 4) == 2 * (8 + 12 + 6)


def test_monde_device_matches_table2():
    """512 GB/s bandwidth, 512 GB capacity (Table 2)."""
    assert MONDE_DEVICE.mem_bandwidth == pytest.approx(544e9)  # 8 x 68 GB/s
    assert MONDE_DEVICE.mem_capacity == 512 * 1024**3
    assert MONDE_DEVICE.effective_bandwidth == pytest.approx(544e9 * 0.93)


def test_ndp_core_matches_paper():
    """64 units of 4x4 systolic arrays, 264 KB buffers @ 1 GHz."""
    ndp = MONDE_DEVICE.ndp
    assert ndp.n_arrays == 64
    assert ndp.array_rows == 4 and ndp.array_cols == 4
    assert ndp.clock_hz == 1e9
    assert ndp.total_buffer_bytes == 264 * 1024
    assert ndp.macs_per_cycle == 1024
    assert ndp.peak_flops == pytest.approx(2.048e12)
    assert ndp.tile_rows == 4
    assert ndp.tile_cols == 256


def test_a100_spec():
    assert A100_PCIE.peak_flops == pytest.approx(312e12)
    assert A100_PCIE.mem_bandwidth == pytest.approx(1935e9)


def test_pcie_gen4_effective_bandwidth():
    assert PCIE_GEN4_X16.raw_bandwidth == 32e9
    assert PCIE_GEN4_X16.effective_bandwidth == pytest.approx(25.6e9)


def test_xeon_spec_table2_bandwidth():
    assert XEON_4310.mem_bandwidth == pytest.approx(187e9)
    assert XEON_4310.effective_bandwidth < XEON_4310.mem_bandwidth


def test_monde_bandwidth_vs_cpu_ratio():
    """Paper: MoNDE memory bandwidth is ~2.7x the CPU's."""
    ratio = MONDE_DEVICE.mem_bandwidth / XEON_4310.mem_bandwidth
    assert 2.5 < ratio < 3.1


def test_scaled_bandwidth_rate_matches_compute():
    """Fig. 7(b): bandwidth scaling rate-matches NDP compute."""
    doubled = MONDE_DEVICE.scaled_bandwidth(2.0)
    assert doubled.mem_bandwidth == pytest.approx(2 * MONDE_DEVICE.mem_bandwidth)
    assert doubled.ndp.n_arrays == 2 * MONDE_DEVICE.ndp.n_arrays
    halved = MONDE_DEVICE.scaled_bandwidth(0.5)
    assert halved.ndp.n_arrays == MONDE_DEVICE.ndp.n_arrays // 2


def test_scaled_bandwidth_rejects_nonpositive():
    with pytest.raises(ValueError):
        MONDE_DEVICE.scaled_bandwidth(0.0)


def test_spec_validation():
    with pytest.raises(ValueError):
        GPUSpec(name="bad", peak_flops=0, mem_bandwidth=1, mem_capacity=1)
    with pytest.raises(ValueError):
        PCIeSpec(name="bad", raw_bandwidth=1, efficiency=1.5)
    with pytest.raises(ValueError):
        GPUSpec(
            name="bad",
            peak_flops=1,
            mem_bandwidth=1,
            mem_capacity=1,
            base_efficiency=0.0,
        )


def test_ndp_spec_is_frozen_default():
    spec = NDPCoreSpec()
    with pytest.raises(AttributeError):
        spec.n_arrays = 32  # type: ignore[misc]


def test_device_spec_default_name():
    assert "MoNDE" in MoNDEDeviceSpec().name
