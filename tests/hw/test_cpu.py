"""CPU expert-compute model (the CPU+AM baseline of Fig. 8)."""

import pytest

from repro.hw.cpu import CPUModel
from repro.hw.specs import MONDE_DEVICE, XEON_4310
from repro.ndp.engine import NDPGemmEngine


@pytest.fixture
def cpu() -> CPUModel:
    return CPUModel(XEON_4310)


def test_zero_work_is_free(cpu):
    assert cpu.gemm_time(0, 1, 1) == 0.0
    assert cpu.expert_ffn_time(0, 2048, 8192) == 0.0


def test_op_overhead_floor(cpu):
    assert cpu.gemm_time(1, 1, 1) >= XEON_4310.op_overhead


def test_cold_expert_is_bandwidth_bound(cpu):
    """Streaming a 67 MB expert dominates over its tiny compute."""
    t = cpu.gemm_time(1, 8192, 2048)
    stream = 2 * (2048 * 8192) / XEON_4310.effective_bandwidth
    assert t == pytest.approx(stream + XEON_4310.op_overhead, rel=0.05)


def test_monotonic_in_tokens(cpu):
    times = [cpu.expert_ffn_time(t, 2048, 8192) for t in (1, 16, 256, 2048)]
    for a, b in zip(times, times[1:]):
        assert b >= a


def test_ndp_beats_cpu_on_cold_experts(cpu):
    """Fig. 8's premise: the NDP's higher internal bandwidth beats the
    CPU's NUMA-derated DRAM for bandwidth-bound cold experts."""
    ndp = NDPGemmEngine(MONDE_DEVICE.ndp, MONDE_DEVICE.effective_bandwidth)
    cpu_time = cpu.expert_ffn_time(4, 2048, 8192)
    ndp_time = ndp.expert_ffn_time(4, 2048, 8192)
    assert cpu_time / ndp_time > 3.0


def test_cpu_derating_stack():
    eff = XEON_4310.effective_bandwidth
    assert eff == pytest.approx(
        XEON_4310.mem_bandwidth
        * XEON_4310.stream_efficiency
        * XEON_4310.numa_penalty
    )
