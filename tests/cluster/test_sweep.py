"""Cluster sweep: single-replica equivalence anchor, fleet physics,
serialization."""

import json

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterSweepResult,
    format_cluster_sweep,
    run_cluster_sweep,
)
from repro.core.strategies import Scheme
from repro.cosim import (
    CosimConfig,
    ExpertReplayPlanner,
    run_load_sweep,
    small_cosim_dram,
)
from repro.serving.simulator import CostModel

RATES = [2e4, 1e6, 4e6]
SWEEP_KWARGS = dict(
    n_requests=60, seed=1,
    mean_prompt_tokens=20, mean_decode_tokens=5,
    cosim_config=CosimConfig(max_iterations=16),
)


@pytest.fixture(scope="module")
def cost():
    return CostModel(encode_seconds_per_token=2e-9, decode_seconds_per_token=2e-8)


@pytest.fixture(scope="module")
def planner():
    return ExpertReplayPlanner(
        n_experts=16, top_k=2, n_moe_layers=2,
        dram_config=small_cosim_dram(), bytes_per_token=8192,
        max_blocks_per_request=1024, expert_bytes=1 << 18, seed=1,
    )


@pytest.fixture(scope="module")
def cluster_sweep(cost, planner):
    cluster = ClusterConfig(
        replicas=(1, 2),
        devices_per_replica=1,
        policies=("replicated",),
        balancer="round_robin",
        activation_bytes_per_token=0,
    )
    return run_cluster_sweep(
        cost, Scheme.MD_LB, planner, RATES, cluster=cluster, **SWEEP_KWARGS
    )


def test_single_replica_bit_identical_to_cosim_sweep(cost, planner, cluster_sweep):
    """The pinned equivalence anchor: one replica, replicated sharding,
    one device, zero activation bytes reproduces the single-device
    sweep bit for bit -- same SweepPoint dataclasses, field by field."""
    single, _ = run_load_sweep(cost, Scheme.MD_LB, planner, RATES, **SWEEP_KWARGS)
    result, _ = cluster_sweep
    anchor = result.curve(1, "replicated")
    assert anchor.points == single.points


def test_replicas_add_capacity(cluster_sweep):
    """Two replicas split the same offered load, so every grid point's
    fleet tail is no worse than the single replica's and the SLO
    capacity is monotone non-decreasing in replica count."""
    result, _ = cluster_sweep
    one = result.curve(1, "replicated")
    two = result.curve(2, "replicated")
    assert len(two.points) == len(RATES)
    for p1, p2 in zip(one.points, two.points):
        assert p2.rate == p1.rate
        assert p2.closed_p99 <= p1.closed_p99
    assert two.slo_capacity_rps >= one.slo_capacity_rps
    # The saturating top rate is where replication actually pays.
    assert two.points[-1].closed_p99 < one.points[-1].closed_p99


def test_shared_slo_and_devices_for_load(cluster_sweep):
    result, _ = cluster_sweep
    assert result.slo_p99_seconds > 0.0
    assert result.slo_auto
    # The lowest rate is sustained by the smallest fleet swept.
    assert result.devices_for_load(RATES[0]) == 1
    # An absurd offered load is beyond every curve.
    assert result.devices_for_load(1e12) is None
    with pytest.raises(KeyError):
        result.curve(3, "replicated")


def test_json_round_trip(cluster_sweep, tmp_path):
    result, _ = cluster_sweep
    path = tmp_path / "cluster.json"
    result.save(path)
    loaded = ClusterSweepResult.load(path)
    assert loaded.scheme == result.scheme
    assert loaded.cluster == result.cluster
    assert loaded.slo_p99_seconds == result.slo_p99_seconds
    assert [c.replicas for c in loaded.curves] == [c.replicas for c in result.curves]
    for got, want in zip(loaded.curves, result.curves):
        assert got.policy == want.policy
        assert got.slo_capacity_rps == want.slo_capacity_rps
        assert got.points == want.points


def test_version_and_kind_rejection(cluster_sweep, tmp_path):
    result, _ = cluster_sweep
    doc = result.to_dict()
    doc["version"] = 99
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(doc))
    with pytest.raises(ValueError, match="format version"):
        ClusterSweepResult.load(path)
    doc["version"] = 1
    doc["kind"] = "cosim_sweep"
    path.write_text(json.dumps(doc))
    with pytest.raises(ValueError, match="cluster sweep"):
        ClusterSweepResult.load(path)


def test_format_cluster_sweep(cluster_sweep):
    result, _ = cluster_sweep
    table = format_cluster_sweep(result)
    assert "replicas" in table and "slo cap (req/s)" in table
    assert "replicated" in table


def test_validation(cost, planner):
    with pytest.raises(ValueError, match="rates"):
        run_cluster_sweep(cost, Scheme.MD_LB, planner, [])
    with pytest.raises(ValueError, match="sorted"):
        run_cluster_sweep(cost, Scheme.MD_LB, planner, [2.0, 1.0])
    with pytest.raises(ValueError, match="planner"):
        run_cluster_sweep(cost, Scheme.MD_LB, None, [1.0])
