"""Sharding policies and analytical expert placement."""

import numpy as np
import pytest

from repro.cluster.sharding import (
    ExpertParallelSharding,
    HotColdSharding,
    ReplicatedSharding,
    SHARDING_POLICIES,
    make_sharding_policy,
    place_experts,
)
from repro.cosim import ExpertReplayPlanner, small_cosim_dram

EXPERT_BYTES = 1 << 17


@pytest.fixture(scope="module")
def planner():
    return ExpertReplayPlanner(
        n_experts=8, top_k=2, n_moe_layers=2,
        dram_config=small_cosim_dram(), bytes_per_token=4096,
        max_blocks_per_request=256, expert_bytes=EXPERT_BYTES, seed=3,
    )


def _sample(planner, n=256):
    """Addresses spread across the expert regions that replay traffic
    actually hits (region id = layer * n_experts + expert)."""
    step = planner.config.organization.access_bytes
    rng = np.random.default_rng(0)
    region = rng.integers(0, planner.n_experts * planner.n_moe_layers, size=n)
    offset = rng.integers(0, EXPERT_BYTES // step, size=n)
    addrs = (region * EXPERT_BYTES + offset * step).astype(np.int64)
    home = rng.integers(0, 2, size=n).astype(np.int64)
    return addrs, home


def test_replicated_serves_at_home(planner):
    addrs, home = _sample(planner)
    out = ReplicatedSharding().device_map(addrs, home, 2, planner)
    assert np.array_equal(out, home)


def test_expert_parallel_is_region_mod_devices(planner):
    addrs, home = _sample(planner)
    out = ExpertParallelSharding().device_map(addrs, home, 3, planner)
    assert np.array_equal(out, planner.region_of_addrs(addrs) % 3)
    # Placement depends on the address alone, never on the home device.
    out2 = ExpertParallelSharding().device_map(addrs, 1 - home, 3, planner)
    assert np.array_equal(out, out2)


def test_hot_cold_splits_by_popularity(planner):
    addrs, home = _sample(planner)
    policy = HotColdSharding(hot_fraction=0.25)
    out = policy.device_map(addrs, home, 2, planner)
    regions = planner.region_of_addrs(addrs)
    hot = np.isin(regions, np.fromiter(planner.hot_region_ids(0.25), dtype=np.int64))
    assert hot.any() and (~hot).any()
    # Hot experts are replicated (served at home); the cold tail shards.
    assert np.array_equal(out[hot], home[hot])
    assert np.array_equal(out[~hot], regions[~hot] % 2)


def test_hot_cold_extremes(planner):
    addrs, home = _sample(planner)
    all_hot = HotColdSharding(hot_fraction=1.0).device_map(addrs, home, 2, planner)
    assert np.array_equal(all_hot, home)
    none_hot = HotColdSharding(hot_fraction=0.0).device_map(addrs, home, 2, planner)
    assert np.array_equal(none_hot, planner.region_of_addrs(addrs) % 2)


def test_make_sharding_policy():
    for name in SHARDING_POLICIES:
        assert make_sharding_policy(name).name == name
    with pytest.raises(ValueError, match="unknown sharding policy"):
        make_sharding_policy("striped")
    with pytest.raises(ValueError, match="hot_fraction"):
        HotColdSharding(hot_fraction=1.5)


def test_place_experts_round_robin_by_intensity():
    # Hottest expert first, dealt round-robin: intensities 4,3,2,1 on
    # 2 devices -> experts 0,2 (slots 0,2) on device 0, 1,3 on device 1.
    device_of = place_experts(4, 2, [4.0, 3.0, 2.0, 1.0])
    assert device_of == [0, 1, 0, 1]
    # Skewed intensities still land an even expert count per device.
    device_of = place_experts(6, 3, [100.0, 1.0, 50.0, 2.0, 25.0, 3.0])
    counts = [device_of.count(d) for d in range(3)]
    assert counts == [2, 2, 2]


def test_place_experts_start_slot_continues_the_deal():
    first = place_experts(3, 2, None, start_slot=0)
    second = place_experts(3, 2, None, start_slot=3)
    assert first == [0, 1, 0]
    assert second == [1, 0, 1]


def test_place_experts_block_policy():
    assert place_experts(6, 3, policy="block") == [0, 0, 1, 1, 2, 2]
    with pytest.raises(ValueError, match="unknown placement policy"):
        place_experts(4, 2, policy="hash")
    with pytest.raises(ValueError, match="length"):
        place_experts(4, 2, [1.0])
