"""ShardedDramBackend: pass-through identity, merged stats, transfers."""

from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.cluster.backend import ShardedDramBackend
from repro.cosim import ExpertReplayPlanner, small_cosim_dram
from repro.dram.controller import MemoryController


EXPERT_BYTES = 1 << 17


@pytest.fixture(scope="module")
def planner():
    return ExpertReplayPlanner(
        n_experts=8, top_k=2, n_moe_layers=2,
        dram_config=small_cosim_dram(), bytes_per_token=4096,
        max_blocks_per_request=256, expert_bytes=EXPERT_BYTES, seed=3,
    )


@pytest.fixture(scope="module")
def trace_arrays(planner):
    """A trace spanning the expert regions replay traffic hits
    (region id = layer * n_experts + expert)."""
    step = planner.config.organization.access_bytes
    rng = np.random.default_rng(1)
    n = 400
    region = rng.integers(0, planner.n_experts * planner.n_moe_layers, size=n)
    offset = rng.integers(0, EXPERT_BYTES // step, size=n)
    addrs = (region * EXPERT_BYTES + offset * step).astype(np.int64)
    arrive = np.sort(rng.integers(0, 5000, size=n)).astype(np.int64)
    flags = np.zeros(n, dtype=np.uint8)
    request_ids = rng.integers(0, 12, size=n).astype(np.int64)
    return addrs, arrive, flags, request_ids


@dataclass
class FakeTrace:
    addrs: np.ndarray
    request_ids: np.ndarray
    tokens_by_request: dict = field(default_factory=dict)

    def __len__(self):
        return len(self.addrs)


def test_single_device_is_controller_passthrough(trace_arrays):
    addrs, arrive, flags, request_ids = trace_arrays
    ref_stats, ref_timings = MemoryController(
        small_cosim_dram(), window=64
    ).simulate_arrays(addrs, arrive, flags, detail=True)
    with ShardedDramBackend(small_cosim_dram(), n_devices=1) as backend:
        stats, timings = backend.simulate(addrs, arrive, flags, request_ids)
    assert stats == ref_stats
    assert np.array_equal(timings.complete_cycles, ref_timings.complete_cycles)
    assert np.array_equal(timings.queue_delays, ref_timings.queue_delays)
    assert backend.transfer_seconds(
        FakeTrace(addrs, request_ids)
    ) == {}


def test_multi_device_merges_counters(planner, trace_arrays):
    addrs, arrive, flags, request_ids = trace_arrays
    with ShardedDramBackend(
        small_cosim_dram(), n_devices=2, policy="expert_parallel",
        planner=planner,
    ) as backend:
        device = backend.device_map(addrs, request_ids)
        assert set(np.unique(device)) == {0, 1}
        stats, timings = backend.simulate(addrs, arrive, flags, request_ids)
    # Every element was simulated exactly once, somewhere.
    assert stats.requests == len(addrs)
    assert stats.reads == len(addrs)
    # Devices run concurrently: the merged span is the max, so it is
    # no longer than a single controller serving the full trace.
    ref_stats, _ = MemoryController(
        small_cosim_dram(), window=64
    ).simulate_arrays(addrs, arrive, flags, detail=True)
    assert stats.total_cycles <= ref_stats.total_cycles
    # Both devices' channels are accounted for (re-keyed dev*C + ch).
    n_channels = small_cosim_dram().organization.n_channels
    assert len(stats.busy_channel_cycles) == 2 * n_channels
    assert (timings.complete_cycles > 0).all()
    # Queue percentiles are recomputed over the merged delays.
    assert stats.queue_delay_p99 >= stats.queue_delay_mean >= 0.0


def test_multi_device_needs_planner_and_request_ids(planner, trace_arrays):
    addrs, arrive, flags, _ = trace_arrays
    with pytest.raises(ValueError, match="planner"):
        ShardedDramBackend(small_cosim_dram(), n_devices=2)
    backend = ShardedDramBackend(
        small_cosim_dram(), n_devices=2, policy="replicated", planner=planner
    )
    with pytest.raises(ValueError, match="request_ids"):
        backend.simulate(addrs, arrive, flags)
    backend.close()


def test_transfer_seconds_policies(planner, trace_arrays):
    addrs, _, _, request_ids = trace_arrays
    tokens = {int(r): 32 for r in np.unique(request_ids)}
    trace = FakeTrace(addrs, request_ids, tokens)

    def total(policy, abpt, hot_fraction=0.25):
        backend = ShardedDramBackend(
            small_cosim_dram(), n_devices=2, policy=policy, planner=planner,
            activation_bytes_per_token=abpt, hot_fraction=hot_fraction,
        )
        with backend:
            return backend.transfer_seconds(trace)

    # Nothing crosses a link: replicated placement, or a free payload.
    assert total("replicated", 512) == {}
    assert total("expert_parallel", 0) == {}
    ep = total("expert_parallel", 512)
    assert ep and all(v > 0 for v in ep.values())
    # Keeping the hot experts home strictly reduces shipped traffic.
    hc = total("hot_cold", 512)
    assert sum(hc.values()) < sum(ep.values())
    # Double the payload, double every round trip (latency term aside,
    # transfers scale with bytes).
    ep2 = total("expert_parallel", 1024)
    for rid, seconds in ep.items():
        assert ep2[rid] > seconds
