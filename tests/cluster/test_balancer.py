"""Request placement across replicas."""

import pytest

from repro.cluster.balancer import BALANCERS, assign_replicas
from repro.cosim import ExpertReplayPlanner, small_cosim_dram
from repro.serving.simulator import CostModel
from repro.serving.workload import Request


def req(i, arrival, prompt=100, decode=10):
    return Request(
        request_id=i, arrival=arrival, prompt_tokens=prompt, decode_tokens=decode
    )


@pytest.fixture
def cost():
    return CostModel(encode_seconds_per_token=1e-4, decode_seconds_per_token=1e-3)


def test_round_robin_deals_in_arrival_order():
    requests = [req(0, 3.0), req(1, 1.0), req(2, 2.0), req(3, 4.0)]
    out = assign_replicas(requests, 2, "round_robin")
    # Arrival order is 1, 2, 0, 3 -> slots 0, 1, 0, 1.
    assert out == [0, 0, 1, 1]


def test_single_replica_gets_everything():
    requests = [req(i, float(i)) for i in range(5)]
    for balancer in BALANCERS:
        assert assign_replicas(requests, 1, balancer) == [0] * 5


def test_least_loaded_tracks_expected_work(cost):
    # One giant request then small ones: the greedy balancer parks the
    # giant on replica 0 and packs the small ones onto replica 1 until
    # their accumulated work catches up.
    requests = [req(0, 0.0, prompt=5000, decode=500)] + [
        req(i, float(i), prompt=10, decode=1) for i in range(1, 6)
    ]
    out = assign_replicas(requests, 2, "least_loaded", cost_model=cost)
    assert out[0] == 0
    assert all(a == 1 for a in out[1:])
    with pytest.raises(ValueError, match="cost model"):
        assign_replicas(requests, 2, "least_loaded")


def test_router_aware_keys_on_expert_region(cost):
    planner = ExpertReplayPlanner(
        n_experts=8, top_k=2, n_moe_layers=2,
        dram_config=small_cosim_dram(), bytes_per_token=4096,
        max_blocks_per_request=256, expert_bytes=1 << 17, seed=3,
    )
    requests = [req(i, float(i)) for i in range(24)]
    out = assign_replicas(requests, 2, "router_aware", planner=planner)
    assert set(out) <= {0, 1}
    # Deterministic: same stream, same placement.
    assert out == assign_replicas(requests, 2, "router_aware", planner=planner)
    # A request's placement is keyed by its first expert region, so it
    # is a function of the request alone -- stable under reordering.
    shuffled = list(reversed(requests))
    shuffled_out = assign_replicas(shuffled, 2, "router_aware", planner=planner)
    assert shuffled_out == list(reversed(out))


def test_router_aware_degrades_without_planner():
    requests = [req(i, float(i)) for i in range(4)]
    assert assign_replicas(requests, 2, "router_aware") == assign_replicas(
        requests, 2, "round_robin"
    )


def test_validation():
    with pytest.raises(ValueError, match="unknown balancer"):
        assign_replicas([], 2, "random")
    with pytest.raises(ValueError, match="n_replicas"):
        assign_replicas([], 0, "round_robin")
