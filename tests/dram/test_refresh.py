"""Refresh modeling (duty-cycle derate)."""

import pytest

from repro.dram.config import LPDDR5X_8533, LPDDR5X_8533_REFRESH
from repro.dram.controller import MemoryController
from repro.dram.request import Request, RequestKind
from repro.dram.timing import DRAMTiming


def seq_reads(n: int) -> list[Request]:
    return [Request(addr=i * 64, kind=RequestKind.READ) for i in range(n)]


def test_default_config_has_no_refresh():
    assert LPDDR5X_8533.timing.refresh_overhead == 0.0


def test_refresh_variant_overhead_fraction():
    timing = LPDDR5X_8533_REFRESH.timing
    # tRFC 280 ns / tREFI 3.9 us ~ 7.2%.
    assert timing.refresh_overhead == pytest.approx(0.072, abs=0.01)


def test_refresh_costs_expected_bandwidth():
    base = MemoryController(LPDDR5X_8533)
    refr = MemoryController(LPDDR5X_8533_REFRESH)
    bw_base = base.sustained_bandwidth(base.simulate(seq_reads(4096)))
    bw_refr = refr.sustained_bandwidth(refr.simulate(seq_reads(4096)))
    expected = 1.0 - LPDDR5X_8533_REFRESH.timing.refresh_overhead
    assert bw_refr / bw_base == pytest.approx(expected, abs=0.01)


def test_refresh_cycles_reported():
    ctrl = MemoryController(LPDDR5X_8533_REFRESH)
    stats = ctrl.simulate(seq_reads(1024))
    assert stats.refresh_cycles > 0
    base = MemoryController(LPDDR5X_8533).simulate(seq_reads(1024))
    assert stats.total_cycles == base.total_cycles + stats.refresh_cycles


def test_refresh_validation():
    with pytest.raises(ValueError):
        DRAMTiming(
            clock_hz=1e9, tRCD=1, tRP=1, tCL=1, tCWL=1, tRAS=1,
            tCCD_S=1, tCCD_L=1, tRRD=1, tFAW=1, tWR=1, tWTR=1,
            tREFI=10, tRFC=10,
        )
    with pytest.raises(ValueError):
        DRAMTiming(
            clock_hz=1e9, tRCD=1, tRP=1, tCL=1, tCWL=1, tRAS=1,
            tCCD_S=1, tCCD_L=1, tRRD=1, tFAW=1, tWR=1, tWTR=1,
            tREFI=-1,
        )


def test_config_rejects_degenerate_refresh_overhead():
    """The controller derate divides by (1 - tRFC/tREFI); DRAMConfig
    must reject overhead >= 1 with a clear error even if handed a
    timing object that dodged DRAMTiming's own validation."""
    from repro.dram.config import DRAMConfig, DRAMOrganization

    good = DRAMTiming(
        clock_hz=1e9, tRCD=1, tRP=1, tCL=1, tCWL=1, tRAS=1,
        tCCD_S=1, tCCD_L=1, tRRD=1, tFAW=1, tWR=1, tWTR=1,
    )
    # Forge tRFC >= tREFI behind the frozen dataclass's back (models a
    # hand-built or deserialized timing that skipped __post_init__).
    object.__setattr__(good, "tREFI", 10)
    object.__setattr__(good, "tRFC", 10)
    with pytest.raises(ValueError, match="refresh overhead"):
        DRAMConfig(organization=DRAMOrganization(), timing=good)
