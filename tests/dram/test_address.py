"""Address mapping: the ro-ba-bg-ra-co-ch scheme of Section 3.4."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dram.address import AddressMapper, MappingScheme
from repro.dram.config import LPDDR5X_8533, DRAMOrganization

ORG = LPDDR5X_8533.organization


@pytest.fixture
def mapper() -> AddressMapper:
    return AddressMapper(ORG)


def test_consecutive_blocks_interleave_channels(mapper):
    """With channel bits lowest, consecutive 64B blocks hit
    consecutive channels -- the contiguous-bandwidth property."""
    decoded = [mapper.decode(i * 64) for i in range(ORG.n_channels)]
    assert [d.channel for d in decoded] == list(range(ORG.n_channels))


def test_within_channel_blocks_walk_columns(mapper):
    """After the channel interleave, the next bits walk columns of the
    same row (row hits for streams)."""
    stride = ORG.n_channels * 64
    decoded = [mapper.decode(i * stride) for i in range(ORG.columns_per_row)]
    assert [d.column for d in decoded] == list(range(ORG.columns_per_row))
    assert len({(d.row, d.bank, d.bankgroup) for d in decoded}) == 1


def test_row_bits_change_slowest(mapper):
    """The row only increments after a full sweep of banks."""
    sweep = ORG.n_channels * ORG.columns_per_row * ORG.n_banks * 64
    assert mapper.decode(sweep - 64).row == 0
    assert mapper.decode(sweep).row == 1


def test_row_major_keeps_channel_fixed():
    naive = AddressMapper(ORG, MappingScheme.ROW_MAJOR)
    decoded = [naive.decode(i * 64) for i in range(64)]
    assert len({d.channel for d in decoded}) == 1


def test_encode_decode_roundtrip_exhaustive_small():
    org = DRAMOrganization(
        n_channels=2, n_ranks=1, n_bankgroups=2, banks_per_group=2,
        n_rows=4, row_bytes=256, access_bytes=64,
    )
    mapper = AddressMapper(org)
    seen = set()
    for block in range(org.total_capacity_bytes // 64):
        addr = block * 64
        d = mapper.decode(addr)
        assert mapper.encode(d.channel, d.rank, d.bankgroup, d.bank, d.row, d.column) == addr
        seen.add((d.channel, d.rank, d.bankgroup, d.bank, d.row, d.column))
    # Bijective: every coordinate tuple hit exactly once.
    assert len(seen) == org.total_capacity_bytes // 64


_MAX_BLOCK = ORG.total_capacity_bytes // 64 - 1


@given(block=st.integers(0, _MAX_BLOCK))
def test_decode_encode_roundtrip_property(block):
    mapper = AddressMapper(ORG)
    addr = block * 64
    d = mapper.decode(addr)
    assert mapper.encode(d.channel, d.rank, d.bankgroup, d.bank, d.row, d.column) == addr


@given(block=st.integers(0, _MAX_BLOCK))
def test_decoded_fields_in_range(block):
    mapper = AddressMapper(ORG)
    d = mapper.decode(block * 64)
    assert 0 <= d.channel < ORG.n_channels
    assert 0 <= d.bankgroup < ORG.n_bankgroups
    assert 0 <= d.bank < ORG.banks_per_group
    assert 0 <= d.row < ORG.n_rows
    assert 0 <= d.column < ORG.columns_per_row


def test_encode_rejects_out_of_range(mapper):
    with pytest.raises(ValueError):
        mapper.encode(ORG.n_channels, 0, 0, 0, 0, 0)
    with pytest.raises(ValueError):
        mapper.encode(0, 0, 0, 0, ORG.n_rows, 0)


def test_decode_rejects_negative(mapper):
    with pytest.raises(ValueError):
        mapper.decode(-64)


def test_decode_rejects_beyond_capacity(mapper):
    with pytest.raises(ValueError):
        mapper.decode(ORG.total_capacity_bytes)


def test_non_power_of_two_geometry_rejected():
    bad = DRAMOrganization(n_channels=3)
    with pytest.raises(ValueError):
        AddressMapper(bad)


def test_sequential_stream_helper(mapper):
    addrs = mapper.sequential_stream(0, 1024)
    assert len(addrs) == 16
    assert addrs[1] - addrs[0] == 64
    with pytest.raises(ValueError):
        mapper.sequential_stream(13, 64)


def test_capacity_matches_organization(mapper):
    assert mapper.capacity_bytes == ORG.total_capacity_bytes
