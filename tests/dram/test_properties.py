"""Property-based DRAM controller invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.address import MappingScheme
from repro.dram.config import LPDDR5X_8533
from repro.dram.controller import MemoryController, SchedulerPolicy
from repro.dram.request import Request, RequestKind

_MAX_BLOCK = LPDDR5X_8533.organization.total_capacity_bytes // 64 - 1


@settings(max_examples=20, deadline=None)
@given(
    blocks=st.lists(st.integers(0, _MAX_BLOCK), min_size=1, max_size=120),
    write_mask=st.integers(0, 2**32 - 1),
    scheme=st.sampled_from(list(MappingScheme)),
    policy=st.sampled_from(list(SchedulerPolicy)),
)
def test_all_requests_always_complete(blocks, write_mask, scheme, policy):
    """No deadlock, no starvation: any request mix drains, every
    completion is at or after arrival + CAS latency."""
    ctrl = MemoryController(LPDDR5X_8533, scheme=scheme, policy=policy)
    reqs = [
        Request(
            addr=b * 64,
            kind=RequestKind.WRITE if (write_mask >> (i % 32)) & 1 else RequestKind.READ,
        )
        for i, b in enumerate(blocks)
    ]
    stats = ctrl.simulate(reqs)
    assert stats.requests == len(reqs)
    assert all(r.is_done for r in reqs)
    timing = LPDDR5X_8533.timing
    for r in reqs:
        min_cas = timing.tCWL if r.kind is RequestKind.WRITE else timing.tCL
        assert r.latency() >= min_cas
    # Stats account for every request exactly once.
    assert stats.row_hits + stats.row_misses + stats.row_conflicts == len(reqs)


@settings(max_examples=15, deadline=None)
@given(blocks=st.lists(st.integers(0, 4096), min_size=2, max_size=80))
def test_commands_non_decreasing_per_channel(blocks):
    """The command bus serializes: issue cycles never go backwards."""
    ctrl = MemoryController(LPDDR5X_8533)
    for ch in ctrl.channels:
        ch.record_commands = True
    reqs = [Request(addr=b * 64, kind=RequestKind.READ) for b in blocks]
    ctrl.simulate(reqs)
    for ch in ctrl.channels:
        cycles = [c.cycle for c in ch.commands]
        assert cycles == sorted(cycles)
        # One command per cycle.
        assert len(cycles) == len(set(cycles))


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 500))
def test_completion_order_data_bus_exclusive(seed):
    """No two data bursts overlap on one channel's data bus."""
    rng = np.random.default_rng(seed)
    ctrl = MemoryController(LPDDR5X_8533)
    blocks = rng.integers(0, 1 << 20, size=64)
    reqs = [Request(addr=int(b) * 64, kind=RequestKind.READ) for b in blocks]
    ctrl.simulate(reqs)
    by_channel: dict[int, list[int]] = {}
    for r in reqs:
        assert r.decoded is not None and r.complete_cycle is not None
        by_channel.setdefault(r.decoded.channel, []).append(r.complete_cycle)
    burst = LPDDR5X_8533.timing.burst_cycles
    for completions in by_channel.values():
        completions.sort()
        for a, b in zip(completions, completions[1:]):
            assert b - a >= burst
