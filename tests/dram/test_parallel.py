"""Bit-exactness of the parallel channel-drain path.

``MemoryController(workers=N)`` fans the independent per-channel
drains out over a process pool (:mod:`repro.dram.parallel`); these
tests demand that the parallel path produce *identical* aggregate
stats and per-request timing arrays to the serial path -- across
worker counts, scheduler policies, arrival processes, DRAM
geometries, the reference oracle, repeated (state-carrying) simulate
calls, and both pool start methods.
"""

from __future__ import annotations

import os
from dataclasses import asdict

import numpy as np
import pytest

from repro.dram.config import DRAMConfig, DRAMOrganization, LPDDR5X_8533
from repro.dram.controller import MemoryController, SchedulerPolicy
from repro.dram.parallel import ParallelDrainExecutor
from repro.dram.reference import ReferenceMemoryController
from repro.workloads.traces import generate_trace_arrays

# Multi-channel geometry small enough that short traces still create
# row conflicts and starvation pressure on every channel.
QUAD_ORG = DRAMOrganization(
    n_channels=4,
    n_ranks=1,
    n_bankgroups=2,
    banks_per_group=2,
    n_rows=128,
    row_bytes=512,
    access_bytes=64,
)
QUAD_CONFIG = DRAMConfig(organization=QUAD_ORG, timing=LPDDR5X_8533.timing)

WORKER_GRID = sorted({1, 2, os.cpu_count() or 1})


def columns(config, n=2500, seed=11, arrival="poisson", gap=6.0, pattern="random"):
    return generate_trace_arrays(
        pattern, n, config=config, seed=seed, arrival=arrival, arrival_gap=gap
    )


def assert_identical(config, cols, workers, **ctrl_kwargs):
    addrs, arrive, flags = cols
    serial_stats, serial_t = MemoryController(config, **ctrl_kwargs).simulate_arrays(
        addrs, arrive, flags, detail=True
    )
    with MemoryController(config, workers=workers, **ctrl_kwargs) as par:
        par_stats, par_t = par.simulate_arrays(addrs, arrive, flags, detail=True)
    assert asdict(par_stats) == asdict(serial_stats)
    assert np.array_equal(par_t.first_command_cycles, serial_t.first_command_cycles)
    assert np.array_equal(par_t.complete_cycles, serial_t.complete_cycles)
    assert np.array_equal(par_t.queue_delays, serial_t.queue_delays)
    assert np.array_equal(par_t.row_hits, serial_t.row_hits)
    return serial_stats


@pytest.mark.parametrize("workers", WORKER_GRID)
@pytest.mark.parametrize("policy", [SchedulerPolicy.FR_FCFS, SchedulerPolicy.FCFS])
def test_policies_bit_identical(workers, policy):
    assert_identical(QUAD_CONFIG, columns(QUAD_CONFIG), workers, policy=policy)


@pytest.mark.parametrize("arrival", [None, "poisson", "batched", "onoff"])
def test_arrival_processes_bit_identical(arrival):
    cols = columns(QUAD_CONFIG, arrival=arrival)
    assert_identical(QUAD_CONFIG, cols, workers=2)


@pytest.mark.parametrize("pattern", ["streaming", "random", "moe-skewed"])
def test_paper_config_patterns_bit_identical(pattern):
    cols = columns(LPDDR5X_8533, n=4000, pattern=pattern)
    assert_identical(LPDDR5X_8533, cols, workers=2)


def test_small_window_and_starvation_cap():
    cols = columns(QUAD_CONFIG, n=1500, gap=2.0)
    assert_identical(QUAD_CONFIG, cols, workers=2, window=4, starvation_cap=8)


def test_matches_reference_oracle():
    """Parallel == serial == the O(n^2) pre-optimization scheduler."""
    addrs, arrive, flags = columns(QUAD_CONFIG, n=700)
    oracle = ReferenceMemoryController(QUAD_CONFIG).simulate_arrays(
        addrs, arrive, flags
    )
    with MemoryController(QUAD_CONFIG, workers=2) as par:
        par_stats = par.simulate_arrays(addrs, arrive, flags)
    assert asdict(par_stats) == asdict(oracle)


def test_repeated_simulate_carries_channel_state():
    """Back-to-back simulate calls accumulate channel/bank state; the
    worker-side state round trip must keep the second run identical."""
    cols = columns(QUAD_CONFIG, n=1200)
    serial = MemoryController(QUAD_CONFIG)
    with MemoryController(QUAD_CONFIG, workers=2) as par:
        for _ in range(3):
            s = serial.simulate_arrays(*cols)
            p = par.simulate_arrays(*cols)
            assert asdict(p) == asdict(s)


def test_simulate_object_path_parallel():
    """The Request-list adapter rides the same parallel core."""
    from repro.dram.request import requests_from_arrays

    addrs, arrive, flags = columns(QUAD_CONFIG, n=900)
    serial_reqs = requests_from_arrays(addrs, arrive, flags)
    par_reqs = requests_from_arrays(addrs, arrive, flags)
    s = MemoryController(QUAD_CONFIG).simulate(serial_reqs)
    with MemoryController(QUAD_CONFIG, workers=2) as par:
        p = par.simulate(par_reqs)
    assert asdict(p) == asdict(s)
    for a, b in zip(serial_reqs, par_reqs):
        assert a.complete_cycle == b.complete_cycle
        assert a.first_command_cycle == b.first_command_cycle
        assert a.row_hit == b.row_hit
        assert a.decoded == b.decoded


def test_spawn_start_method_bit_identical():
    """The worker and its payload must survive pickling (spawn)."""
    cols = columns(QUAD_CONFIG, n=600)
    serial = MemoryController(QUAD_CONFIG).simulate_arrays(*cols)
    with ParallelDrainExecutor(2, start_method="spawn") as executor:
        par = MemoryController(QUAD_CONFIG, executor=executor)
        par_stats = par.simulate_arrays(*cols)
    assert asdict(par_stats) == asdict(serial)


def test_executor_reuse_across_controllers():
    """One pool amortizes over many controllers (the cosim pattern)."""
    cols = columns(QUAD_CONFIG, n=800)
    serial = MemoryController(QUAD_CONFIG).simulate_arrays(*cols)
    with ParallelDrainExecutor(2) as executor:
        for _ in range(2):
            par = MemoryController(QUAD_CONFIG, executor=executor)
            assert asdict(par.simulate_arrays(*cols)) == asdict(serial)


def test_record_commands_falls_back_to_serial():
    """Command recording is unsupported in workers; the controller
    must drain serially (and still record) rather than fail."""
    addrs, arrive, flags = columns(QUAD_CONFIG, n=400)
    serial = MemoryController(QUAD_CONFIG)
    for ch in serial.channels:
        ch.record_commands = True
    s = serial.simulate_arrays(addrs, arrive, flags)
    with MemoryController(QUAD_CONFIG, workers=2) as par:
        for ch in par.channels:
            ch.record_commands = True
        p = par.simulate_arrays(addrs, arrive, flags)
        assert asdict(p) == asdict(s)
        for sc, pc in zip(serial.channels, par.channels):
            assert sc.commands == pc.commands


def test_single_channel_trace_stays_serial():
    """With every request on one channel there is nothing to fan out;
    the dispatch condition must take the serial path (and match)."""
    org = DRAMOrganization(
        n_channels=1,
        n_ranks=1,
        n_bankgroups=2,
        banks_per_group=2,
        n_rows=128,
        row_bytes=512,
        access_bytes=64,
    )
    config = DRAMConfig(organization=org, timing=LPDDR5X_8533.timing)
    cols = columns(config, n=500)
    s = MemoryController(config).simulate_arrays(*cols)
    with MemoryController(config, workers=2) as par:
        p = par.simulate_arrays(*cols)
    assert asdict(p) == asdict(s)


def test_invalid_worker_counts_rejected():
    with pytest.raises(ValueError):
        MemoryController(QUAD_CONFIG, workers=-1)
    with pytest.raises(ValueError):
        ParallelDrainExecutor(1)
    with pytest.raises(ValueError):
        ParallelDrainExecutor(2, start_method="not-a-method")


def test_workers_zero_and_one_are_serial():
    for workers in (None, 0, 1):
        controller = MemoryController(QUAD_CONFIG, workers=workers)
        assert not controller.parallel_enabled
        controller.close()


def test_executor_close_is_idempotent():
    executor = ParallelDrainExecutor(2)
    executor.close()
    executor.close()  # double close must be a no-op
    with MemoryController(QUAD_CONFIG, workers=2) as controller:
        controller.close()
        controller.close()


def test_executor_reusable_after_close():
    """close() tears the pool down but does not poison the executor:
    the next drain lazily respins a fresh pool and still matches."""
    cols = columns(QUAD_CONFIG, n=500)
    serial = MemoryController(QUAD_CONFIG).simulate_arrays(*cols)
    executor = ParallelDrainExecutor(2)
    try:
        first = MemoryController(QUAD_CONFIG, executor=executor)
        assert asdict(first.simulate_arrays(*cols)) == asdict(serial)
        executor.close()
        second = MemoryController(QUAD_CONFIG, executor=executor)
        assert asdict(second.simulate_arrays(*cols)) == asdict(serial)
    finally:
        executor.close()


def test_executor_context_manager_reentry():
    """Each `with` block gets a working pool; exit closes it."""
    cols = columns(QUAD_CONFIG, n=500)
    serial = MemoryController(QUAD_CONFIG).simulate_arrays(*cols)
    executor = ParallelDrainExecutor(2)
    for _ in range(2):
        with executor:
            controller = MemoryController(QUAD_CONFIG, executor=executor)
            assert asdict(controller.simulate_arrays(*cols)) == asdict(serial)
        assert executor._pool is None  # pool released on exit
