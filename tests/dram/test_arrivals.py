"""Open-loop arrival semantics: equivalence, queueing stats, hygiene.

The controller honors ``Request.arrive_cycle``: requests become
schedulable only once channel time reaches their arrival, idle gaps
are skipped, and queue delays are aggregated into
:class:`ControllerStats`.  The indexed scheduler and the reference
oracle implement the same semantics and must agree bit-for-bit on
stats, per-request completion cycles, and full command streams for
nonzero and bursty arrivals too.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.dram.config import DRAMConfig, DRAMOrganization, LPDDR5X_8533
from repro.dram.controller import MemoryController, SchedulerPolicy
from repro.dram.reference import ReferenceMemoryController
from repro.dram.request import Request, RequestKind
from repro.dram.timing import DRAMTiming

SMALL_ORG = DRAMOrganization(
    n_channels=2,
    n_ranks=1,
    n_bankgroups=2,
    banks_per_group=2,
    n_rows=64,
    row_bytes=512,
    access_bytes=64,
)

# Spiky timing corner: distinct tCCD_S/tCCD_L, multi-cycle bursts,
# long write recovery (same corner the base equivalence suite uses).
SPIKY_TIMING = DRAMTiming(
    clock_hz=1e9,
    tRCD=5,
    tRP=4,
    tCL=7,
    tCWL=3,
    tRAS=11,
    tCCD_S=2,
    tCCD_L=5,
    tRRD=3,
    tFAW=20,
    tWR=9,
    tWTR=4,
    burst_cycles=2,
)

SMALL_CONFIG = DRAMConfig(organization=SMALL_ORG, timing=SPIKY_TIMING)


def make_trace(config, n, seed, arrival="poisson", mean_gap=12.0, write_fraction=0.3):
    rng = np.random.default_rng(seed)
    org = config.organization
    step = org.access_bytes
    blocks = rng.integers(0, org.total_capacity_bytes // step, size=n)
    writes = rng.random(n) < write_fraction
    if arrival == "poisson":
        cycles = np.floor(np.cumsum(rng.exponential(mean_gap, n))).astype(np.int64)
    elif arrival == "bursty":
        # Tight batches separated by long silences, with jitter that
        # makes some arrivals land mid-drain.
        cycles = (np.arange(n) // 16) * int(mean_gap * 40) + rng.integers(0, 7, size=n)
        cycles = np.sort(cycles)
    elif arrival == "zero":
        cycles = np.zeros(n, dtype=np.int64)
    else:
        raise ValueError(arrival)
    return [
        Request(
            addr=int(b) * step,
            kind=RequestKind.WRITE if w else RequestKind.READ,
            arrive_cycle=int(c),
        )
        for b, w, c in zip(blocks, writes, cycles)
    ]


def assert_equivalent(config, trace_kwargs, ctrl_kwargs):
    fast = MemoryController(config, **ctrl_kwargs)
    ref = ReferenceMemoryController(config, **ctrl_kwargs)
    for c in fast.channels + ref.channels:
        c.record_commands = True
    fast_reqs = make_trace(config, **trace_kwargs)
    ref_reqs = make_trace(config, **trace_kwargs)

    fast_stats = fast.simulate(fast_reqs)
    ref_stats = ref.simulate(ref_reqs)

    assert dataclasses.asdict(fast_stats) == dataclasses.asdict(ref_stats)
    for i, (a, b) in enumerate(zip(fast_reqs, ref_reqs)):
        assert a.complete_cycle == b.complete_cycle, f"request {i}"
        assert a.first_command_cycle == b.first_command_cycle, f"request {i}"
        assert a.row_hit == b.row_hit, f"request {i}"
    for cf, cr in zip(fast.channels, ref.channels):
        assert cf.commands == cr.commands
        assert cf._cmd_bus_next == cr._cmd_bus_next
        assert cf._data_bus_next == cr._data_bus_next
    return fast_stats


@pytest.mark.parametrize("policy", [SchedulerPolicy.FR_FCFS, SchedulerPolicy.FCFS])
@pytest.mark.parametrize("window", [1, 8, 64])
@pytest.mark.parametrize("arrival", ["poisson", "bursty"])
def test_arrival_equivalence_small_config(policy, window, arrival):
    assert_equivalent(
        SMALL_CONFIG,
        dict(n=300, seed=17, arrival=arrival),
        dict(policy=policy, window=window),
    )


@pytest.mark.parametrize("arrival", ["poisson", "bursty"])
@pytest.mark.parametrize("seed", range(3))
def test_arrival_equivalence_paper_config(arrival, seed):
    assert_equivalent(
        LPDDR5X_8533,
        dict(n=250, seed=seed, arrival=arrival, mean_gap=6.0),
        dict(window=64),
    )


@pytest.mark.parametrize("cap", [1, 3, 512])
def test_arrival_equivalence_starvation_cap(cap):
    assert_equivalent(
        SMALL_CONFIG,
        dict(n=250, seed=29, arrival="bursty", write_fraction=0.5),
        dict(window=16, starvation_cap=cap),
    )


def test_zero_arrivals_match_default_trace():
    """An explicit all-zero arrival trace must produce exactly the same
    schedule, stats, and completion cycles as the legacy no-arrival
    path (bit-identical batch behaviour)."""
    ctrl_a = MemoryController(SMALL_CONFIG)
    ctrl_b = MemoryController(SMALL_CONFIG)
    for c in ctrl_a.channels + ctrl_b.channels:
        c.record_commands = True
    with_zero = make_trace(SMALL_CONFIG, n=300, seed=5, arrival="zero")
    plain = [Request(addr=r.addr, kind=r.kind) for r in with_zero]
    stats_a = ctrl_a.simulate(with_zero)
    stats_b = ctrl_b.simulate(plain)
    assert dataclasses.asdict(stats_a) == dataclasses.asdict(stats_b)
    assert [r.complete_cycle for r in with_zero] == [r.complete_cycle for r in plain]
    for ca, cb in zip(ctrl_a.channels, ctrl_b.channels):
        assert ca.commands == cb.commands
    assert all(v == 0 for v in stats_a.idle_channel_cycles.values())


def test_sparse_arrivals_have_zero_queue_delay():
    """Property: when inter-arrival gaps dwarf service time, every
    request is served the cycle it arrives -- queue delay 0."""
    ctrl = MemoryController(LPDDR5X_8533)
    rng = np.random.default_rng(11)
    n = 200
    gap = 2000  # >> tRC + tCL + burst at the paper timing
    blocks = rng.integers(
        0, LPDDR5X_8533.organization.total_capacity_bytes // 64, size=n
    )
    reqs = [
        Request(addr=int(b) * 64, kind=RequestKind.READ, arrive_cycle=i * gap)
        for i, b in enumerate(blocks)
    ]
    stats = ctrl.simulate(reqs)
    assert all(r.queue_delay() == 0 for r in reqs)
    assert stats.queue_delay_mean == 0.0
    assert stats.queue_delay_p99 == 0.0
    assert stats.queue_delay_max == 0
    assert sum(stats.idle_channel_cycles.values()) > 0


def test_bursty_arrivals_have_nonzero_queue_delay():
    ctrl = MemoryController(SMALL_CONFIG)
    reqs = make_trace(SMALL_CONFIG, n=400, seed=3, arrival="bursty")
    stats = ctrl.simulate(reqs)
    assert stats.queue_delay_p99 > 0
    assert stats.queue_delay_max >= stats.queue_delay_p99
    assert stats.queue_delay_mean > 0
    # Bursts are separated by silences, so channels also idle.
    assert sum(stats.idle_channel_cycles.values()) > 0


def test_queue_delay_and_latency_ordering():
    """first command >= arrival, completion > first command."""
    ctrl = MemoryController(SMALL_CONFIG)
    reqs = make_trace(SMALL_CONFIG, n=300, seed=41, arrival="poisson")
    ctrl.simulate(reqs)
    for r in reqs:
        assert r.first_command_cycle >= r.arrive_cycle
        assert r.complete_cycle > r.first_command_cycle
        assert r.latency() >= r.queue_delay()


def test_arrival_order_beats_input_order():
    """Queues are ordered by arrival: a late-submitted request with an
    early arrive_cycle is served like an early one."""
    ctrl = MemoryController(SMALL_CONFIG, policy=SchedulerPolicy.FCFS)
    # Two requests to the same bank/row region; input order reversed
    # relative to arrival order.
    late = Request(addr=0, kind=RequestKind.READ, arrive_cycle=500)
    early = Request(addr=64, kind=RequestKind.READ, arrive_cycle=0)
    ctrl.simulate([late, early])
    assert early.first_command_cycle < late.first_command_cycle


def test_negative_arrival_rejected():
    bad = [Request(addr=0, kind=RequestKind.READ, arrive_cycle=-1)]
    with pytest.raises(ValueError, match="arrive_cycle"):
        MemoryController(SMALL_CONFIG).simulate(bad)
    bad2 = [Request(addr=0, kind=RequestKind.READ, arrive_cycle=-1)]
    with pytest.raises(ValueError, match="arrive_cycle"):
        ReferenceMemoryController(SMALL_CONFIG).simulate(bad2)


def test_resimulating_same_requests_resets_stale_state():
    """Regression: re-simulating the same Request list must not reuse
    prior complete_cycle/row_hit/decoded values."""
    reqs = make_trace(SMALL_CONFIG, n=200, seed=13, arrival="zero")
    first = MemoryController(SMALL_CONFIG).simulate(reqs)
    first_cycles = [r.complete_cycle for r in reqs]
    second = MemoryController(SMALL_CONFIG).simulate(reqs)
    assert dataclasses.asdict(first) == dataclasses.asdict(second)
    assert [r.complete_cycle for r in reqs] == first_cycles
    # Same for the reference oracle.
    ref_reqs = make_trace(SMALL_CONFIG, n=200, seed=13, arrival="zero")
    ref_first = ReferenceMemoryController(SMALL_CONFIG).simulate(ref_reqs)
    ref_second = ReferenceMemoryController(SMALL_CONFIG).simulate(ref_reqs)
    assert dataclasses.asdict(ref_first) == dataclasses.asdict(ref_second)
    assert dataclasses.asdict(first) == dataclasses.asdict(ref_first)


def test_channel_cycle_dicts_cover_idle_channels():
    """Channels that received no requests still get (0) entries, so
    utilization reports never KeyError."""
    org = LPDDR5X_8533.organization
    for ctrl in (
        MemoryController(LPDDR5X_8533),
        ReferenceMemoryController(LPDDR5X_8533),
    ):
        # All requests land on one channel (consecutive rows, channel 0).
        reqs = [
            Request(addr=ctrl.mapper.encode(0, 0, 0, 0, row=0, column=i % 8),
                    kind=RequestKind.READ)
            for i in range(8)
        ]
        stats = ctrl.simulate(reqs)
        assert set(stats.busy_channel_cycles) == set(range(org.n_channels))
        assert set(stats.idle_channel_cycles) == set(range(org.n_channels))
        busy = [v for v in stats.busy_channel_cycles.values() if v > 0]
        assert len(busy) == 1  # only the targeted channel worked

    empty_stats = MemoryController(LPDDR5X_8533).simulate([])
    assert set(empty_stats.busy_channel_cycles) == set(range(org.n_channels))
    assert all(v == 0 for v in empty_stats.busy_channel_cycles.values())
