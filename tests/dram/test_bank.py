"""Bank state machine: JEDEC core timing constraints."""

import pytest

from repro.dram.bank import Bank, BankState
from repro.dram.config import LPDDR5X_8533

T = LPDDR5X_8533.timing


@pytest.fixture
def bank() -> Bank:
    return Bank(0)


def test_initial_state_closed(bank):
    assert bank.state is BankState.CLOSED
    assert bank.next_command_ready(5)[0] == "ACT"


def test_activate_opens_row(bank):
    bank.activate(0, row=7, timing=T)
    assert bank.state is BankState.OPEN
    assert bank.open_row == 7
    assert bank.next_command_ready(7) == ("RDWR", T.tRCD)
    assert bank.next_command_ready(8)[0] == "PRE"


def test_act_respects_trcd(bank):
    bank.activate(0, 1, T)
    with pytest.raises(RuntimeError):
        bank.read(T.tRCD - 1, T)
    done = bank.read(T.tRCD, T)
    assert done == T.tRCD + T.tCL + T.burst_cycles


def test_act_respects_tras_before_pre(bank):
    bank.activate(0, 1, T)
    with pytest.raises(RuntimeError):
        bank.precharge(T.tRAS - 1, T)
    bank.precharge(T.tRAS, T)
    assert bank.state is BankState.CLOSED


def test_pre_respects_trp_before_act(bank):
    bank.activate(0, 1, T)
    bank.precharge(T.tRAS, T)
    with pytest.raises(RuntimeError):
        bank.activate(T.tRAS + T.tRP - 1, 2, T)
    bank.activate(T.tRAS + T.tRP, 2, T)
    assert bank.open_row == 2


def test_act_to_act_respects_trc(bank):
    bank.activate(0, 1, T)
    # Even after an immediate PRE at tRAS, same-bank ACT waits for tRC.
    bank.precharge(T.tRAS, T)
    assert bank.earliest_act >= T.tRC


def test_double_activate_rejected(bank):
    bank.activate(0, 1, T)
    with pytest.raises(RuntimeError):
        bank.activate(T.tRC, 2, T)


def test_precharge_closed_rejected(bank):
    with pytest.raises(RuntimeError):
        bank.precharge(100, T)


def test_column_command_on_closed_rejected(bank):
    with pytest.raises(RuntimeError):
        bank.read(100, T)


def test_write_recovery_pushes_precharge(bank):
    bank.activate(0, 1, T)
    done = bank.write(T.tRCD, T)
    assert done == T.tRCD + T.tCWL + T.burst_cycles
    assert bank.earliest_pre >= done + T.tWR


def test_row_hit_counters(bank):
    bank.activate(0, 1, T)
    bank.read(T.tRCD, T)
    bank.read(T.tRCD + 1, T)
    assert bank.row_hits == 2
