"""The perf harness itself (tiny sizes; the real run is ``repro bench``)."""

from __future__ import annotations

import json

import pytest

from repro.dram.bench import bench_controller, format_bench, write_bench


def test_payload_shape_and_equivalence(tmp_path):
    payload = bench_controller(n_requests=400, patterns=("random",), seed=1)
    entry = payload["patterns"]["random"]
    assert entry["indexed"]["n_requests"] == 400
    assert entry["reference"]["n_requests"] == 400
    assert entry["speedup"] > 0
    # Same-length runs must agree bit-for-bit.
    assert entry["stats_identical"] is True

    path = tmp_path / "BENCH_controller.json"
    write_bench(payload, str(path))
    assert json.loads(path.read_text())["benchmark"] == "dram-controller-throughput"


def test_reference_cap_is_recorded():
    payload = bench_controller(
        n_requests=400, patterns=("streaming",), reference_requests=200, seed=1
    )
    entry = payload["patterns"]["streaming"]
    assert entry["reference"]["n_requests"] == 200
    assert "stats_identical" not in entry
    assert payload["reference_requests"] == 200


def test_no_reference():
    payload = bench_controller(
        n_requests=200, patterns=("moe-skewed",), include_reference=False
    )
    entry = payload["patterns"]["moe-skewed"]
    assert "reference" not in entry and "speedup" not in entry


def test_unknown_pattern():
    with pytest.raises(ValueError, match="unknown pattern"):
        bench_controller(n_requests=10, patterns=("nope",))


def test_open_loop_arrivals_threaded():
    payload = bench_controller(
        n_requests=400, patterns=("random",), arrival="poisson",
        arrival_gap=20.0, seed=1,
    )
    assert payload["arrival"] == "poisson"
    assert payload["arrival_gap_cycles"] == 20.0
    entry = payload["patterns"]["random"]
    # Both implementations ran the same open-loop trace bit-identically.
    assert entry["stats_identical"] is True
    assert entry["indexed"]["idle_cycles"] > 0
    assert entry["indexed"]["queue_delay_mean"] >= 0.0


def test_unknown_arrival_process():
    with pytest.raises(ValueError, match="unknown arrival"):
        bench_controller(n_requests=10, patterns=("random",), arrival="nope")


def test_format_bench_renders():
    payload = bench_controller(n_requests=200, patterns=("random",), seed=2)
    table = format_bench(payload)
    assert "random" in table and "speedup" in table


def test_cli_bench(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "BENCH_controller.json"
    rc = main(
        [
            "bench",
            "--requests", "300",
            "--reference-requests", "150",
            "--patterns", "random",
            "--output", str(out),
        ]
    )
    assert rc == 0
    assert out.exists()
    assert "random" in capsys.readouterr().out


def test_cli_bench_open_loop(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "BENCH_controller.json"
    rc = main(
        [
            "bench",
            "--requests", "300",
            "--reference-requests", "300",
            "--patterns", "streaming",
            "--arrival", "batched",
            "--arrival-gap", "4",
            "--output", str(out),
        ]
    )
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["arrival"] == "batched"
    assert payload["patterns"]["streaming"]["stats_identical"] is True
    assert "q-delay p99" in capsys.readouterr().out
