"""The perf harness itself (tiny sizes; the real run is ``repro bench``)."""

from __future__ import annotations

import json

import pytest

from repro.dram.bench import (
    all_identity_checks_pass,
    bench_controller,
    format_bench,
    write_bench,
)


def test_payload_shape_and_equivalence(tmp_path):
    payload = bench_controller(n_requests=400, patterns=("random",), seed=1)
    entry = payload["patterns"]["random"]
    assert entry["indexed"]["n_requests"] == 400
    assert entry["reference"]["n_requests"] == 400
    assert entry["speedup"] > 0
    # Same-length runs must agree bit-for-bit.
    assert entry["stats_identical"] is True
    # End-to-end paths: arrays (native columns) vs objects (Request
    # list construction included in the timed region).
    assert entry["arrays"]["n_requests"] == 400
    assert entry["objects"]["ingest_seconds"] > 0.0
    assert entry["objects"]["elapsed_seconds"] > entry["indexed"]["elapsed_seconds"]
    assert entry["object_layer_speedup"] > 0
    assert entry["array_path_identical"] is True

    path = tmp_path / "BENCH_controller.json"
    write_bench(payload, str(path))
    assert json.loads(path.read_text())["benchmark"] == "dram-controller-throughput"


def test_reference_cap_is_recorded():
    payload = bench_controller(
        n_requests=400, patterns=("streaming",), reference_requests=200, seed=1
    )
    entry = payload["patterns"]["streaming"]
    assert entry["reference"]["n_requests"] == 200
    assert "stats_identical" not in entry
    assert payload["reference_requests"] == 200


def test_no_reference():
    payload = bench_controller(
        n_requests=200, patterns=("moe-skewed",), include_reference=False
    )
    entry = payload["patterns"]["moe-skewed"]
    assert "reference" not in entry and "speedup" not in entry


def test_unknown_pattern():
    with pytest.raises(ValueError, match="unknown pattern"):
        bench_controller(n_requests=10, patterns=("nope",))


def test_open_loop_arrivals_threaded():
    payload = bench_controller(
        n_requests=400, patterns=("random",), arrival="poisson",
        arrival_gap=20.0, seed=1,
    )
    assert payload["arrival"] == "poisson"
    assert payload["arrival_gap_cycles"] == 20.0
    entry = payload["patterns"]["random"]
    # Both implementations ran the same open-loop trace bit-identically.
    assert entry["stats_identical"] is True
    assert entry["indexed"]["idle_cycles"] > 0
    assert entry["indexed"]["queue_delay_mean"] >= 0.0


def test_unknown_arrival_process():
    with pytest.raises(ValueError, match="unknown arrival"):
        bench_controller(n_requests=10, patterns=("random",), arrival="nope")


def test_format_bench_renders():
    payload = bench_controller(n_requests=200, patterns=("random",), seed=2)
    table = format_bench(payload)
    assert "random" in table and "arrays vs objects" in table
    for impl in ("arrays", "objects", "indexed", "reference"):
        assert impl in table


def test_cli_bench(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "BENCH_controller.json"
    rc = main(
        [
            "bench",
            "--requests", "300",
            "--reference-requests", "150",
            "--patterns", "random",
            "--output", str(out),
        ]
    )
    assert rc == 0
    assert out.exists()
    assert "random" in capsys.readouterr().out


def test_cli_bench_open_loop(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "BENCH_controller.json"
    rc = main(
        [
            "bench",
            "--requests", "300",
            "--reference-requests", "300",
            "--patterns", "streaming",
            "--arrival", "batched",
            "--arrival-gap", "4",
            "--output", str(out),
        ]
    )
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["arrival"] == "batched"
    assert payload["patterns"]["streaming"]["stats_identical"] is True
    assert "q-delay p99" in capsys.readouterr().out


def test_bench_trace_file_matches_in_memory(tmp_path):
    """`bench --trace-file` on an exported trace reproduces the
    in-memory generator path's stats bit-for-bit."""
    from repro.dram.bench import bench_trace_file
    from repro.workloads.trace_io import generate_trace_file

    path = tmp_path / "random.dramtrace"
    generate_trace_file(
        path, "random", 600, seed=1, arrival="poisson", arrival_gap=9.0
    )
    file_payload = bench_trace_file(str(path), include_reference=True)
    in_memory = bench_controller(
        n_requests=600, patterns=("random",), include_reference=False,
        seed=1, arrival="poisson", arrival_gap=9.0,
    )
    entry = file_payload["patterns"]["random"]
    assert entry["array_path_identical"] is True
    assert entry["stats_identical"] is True
    # File loading is inside the arrays path's timed region.
    assert entry["arrays"]["ingest_seconds"] > 0.0
    mem = in_memory["patterns"]["random"]["arrays"]
    for field in (
        "total_cycles", "row_hits", "row_misses", "row_conflicts",
        "activates", "precharges", "queue_delay_mean", "queue_delay_p99",
    ):
        assert entry["arrays"][field] == mem[field], field


def test_bench_trace_file_rejects_empty(tmp_path):
    from repro.dram.bench import bench_trace_file
    from repro.workloads.trace_io import write_trace

    path = tmp_path / "empty.dramtrace"
    write_trace(path, [])
    with pytest.raises(ValueError, match="empty trace"):
        bench_trace_file(str(path))


def test_cli_bench_trace_file(tmp_path, capsys):
    from repro.cli import main
    from repro.workloads.trace_io import generate_trace_file

    trace_path = tmp_path / "stream.dramtrace"
    generate_trace_file(trace_path, "streaming", 400, seed=3)
    out = tmp_path / "BENCH_controller.json"
    rc = main(
        [
            "bench",
            "--trace-file", str(trace_path),
            "--no-reference",
            "--output", str(out),
        ]
    )
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["trace_file"] == str(trace_path)
    assert payload["patterns"]["stream"]["array_path_identical"] is True
    assert "arrays" in capsys.readouterr().out


def test_cli_bench_trace_file_rejects_generation_flags(tmp_path, capsys):
    from repro.cli import main
    from repro.workloads.trace_io import generate_trace_file

    trace_path = tmp_path / "t.dramtrace"
    generate_trace_file(trace_path, "streaming", 100, seed=3)
    rc = main(
        [
            "bench",
            "--trace-file", str(trace_path),
            "--arrival", "poisson",
            "--output", str(tmp_path / "B.json"),
        ]
    )
    assert rc == 2
    assert "--arrival" in capsys.readouterr().err


def test_parallel_entry_recorded_and_identical():
    payload = bench_controller(
        n_requests=600, patterns=("random",), include_reference=False,
        seed=1, workers=2,
    )
    entry = payload["patterns"]["random"]
    assert entry["parallel"]["n_requests"] == 600
    assert entry["parallel_workers"] == 2
    assert entry["parallel_identical"] is True
    assert entry["parallel_speedup"] > 0
    assert payload["workers"] == 2
    assert all_identity_checks_pass(payload)
    assert "parallel(w=2)" in format_bench(payload)


def test_trace_file_streaming_entry(tmp_path):
    from repro.dram.bench import bench_trace_file
    from repro.workloads.trace_io import generate_trace_file

    path = tmp_path / "b.dramtrace"
    generate_trace_file(path, "random", 800, seed=1, arrival="poisson")
    payload = bench_trace_file(
        str(path), include_reference=False, workers=2, stream_window=150
    )
    entry = payload["patterns"]["b"]
    assert entry["streaming"]["n_requests"] == 800
    assert entry["streaming_window"] == 150
    assert entry["streaming_identical"] is True
    assert entry["parallel_identical"] is True
    assert all_identity_checks_pass(payload)
    assert "streaming(win=150)" in format_bench(payload)


def test_identity_gate_covers_new_checks():
    payload = {"patterns": {"p": {"parallel_identical": False}}}
    assert not all_identity_checks_pass(payload)
    payload = {"patterns": {"p": {"streaming_identical": False}}}
    assert not all_identity_checks_pass(payload)
