"""Array-native ingestion (`simulate_arrays`) equivalence.

The property under test: for any trace, ``simulate_arrays(addrs,
arrive_cycles, flags)`` produces ControllerStats bit-identical to
``simulate()`` on the equivalent Request list *and* to the reference
oracle's array path, across scheduler policies, lookahead windows, and
arrival corners.  Plus the mmap round trip: columns loaded back from a
``.dramtrace`` file schedule identically to the in-memory columns.
"""

from __future__ import annotations

from dataclasses import asdict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.config import LPDDR5X_8533
from repro.dram.controller import MemoryController, SchedulerPolicy
from repro.dram.reference import ReferenceMemoryController
from repro.dram.request import (
    FLAG_WRITE,
    Request,
    RequestKind,
    requests_from_arrays,
)
from repro.workloads.trace_io import load_trace, pack_flags, write_trace

_MAX_BLOCK = LPDDR5X_8533.organization.total_capacity_bytes // 64 - 1


def _columns(blocks, write_mask, arrivals):
    n = len(blocks)
    addrs = np.asarray(blocks, dtype=np.int64) * 64
    writes = np.array([(write_mask >> (i % 32)) & 1 == 1 for i in range(n)])
    if arrivals is None:
        arrive = np.zeros(n, dtype=np.int64)
    else:
        arrive = np.asarray((arrivals * ((n // len(arrivals)) + 1))[:n], dtype=np.int64)
    return addrs, arrive, pack_flags(writes)


def _stats_dict(controller, addrs, arrive, flags):
    return asdict(controller.simulate_arrays(addrs, arrive, flags))


@settings(max_examples=25, deadline=None)
@given(
    blocks=st.lists(st.integers(0, _MAX_BLOCK), min_size=1, max_size=100),
    write_mask=st.integers(0, 2**32 - 1),
    arrivals=st.one_of(
        st.none(),
        st.lists(st.integers(0, 500), min_size=1, max_size=100),
    ),
    policy=st.sampled_from(list(SchedulerPolicy)),
    window=st.sampled_from([1, 4, 64]),
)
def test_arrays_equal_objects_and_oracle(blocks, write_mask, arrivals, policy, window):
    """simulate_arrays == simulate(Request list) == reference oracle,
    bit for bit, for arbitrary traces (unsorted, duplicate, and
    batched arrivals included)."""
    addrs, arrive, flags = _columns(blocks, write_mask, arrivals)

    array_stats = _stats_dict(
        MemoryController(LPDDR5X_8533, policy=policy, window=window),
        addrs,
        arrive,
        flags,
    )
    object_ctrl = MemoryController(LPDDR5X_8533, policy=policy, window=window)
    object_stats = asdict(
        object_ctrl.simulate(requests_from_arrays(addrs, arrive, flags))
    )
    assert array_stats == object_stats
    oracle_stats = _stats_dict(
        ReferenceMemoryController(LPDDR5X_8533, policy=policy, window=window),
        addrs,
        arrive,
        flags,
    )
    assert array_stats == oracle_stats


@settings(max_examples=10, deadline=None)
@given(
    blocks=st.lists(st.integers(0, _MAX_BLOCK), min_size=1, max_size=60),
    write_mask=st.integers(0, 2**32 - 1),
    arrivals=st.lists(st.integers(0, 2000), min_size=1, max_size=60),
)
def test_mmap_roundtrip_schedules_identically(
    tmp_path_factory, blocks, write_mask, arrivals
):
    """Columns loaded back from a .dramtrace memmap drive the
    scheduler to the same stats as the in-memory columns."""
    addrs, arrive, flags = _columns(blocks, write_mask, arrivals)
    path = tmp_path_factory.mktemp("dramtrace") / "t.dramtrace"
    write_trace(path, addrs, arrive, flags)
    trace = load_trace(path)
    direct = _stats_dict(MemoryController(LPDDR5X_8533), addrs, arrive, flags)
    mapped = _stats_dict(
        MemoryController(LPDDR5X_8533),
        trace.addrs,
        trace.arrive_cycles,
        trace.flags,
    )
    assert direct == mapped


def test_arrival_corner_all_zero_matches_batch_semantics():
    """All-at-cycle-0 columns equal the legacy batch Request path."""
    addrs = np.arange(200, dtype=np.int64) * 64
    stats_arrays = MemoryController(LPDDR5X_8533).simulate_arrays(addrs)
    reqs = [Request(addr=int(a), kind=RequestKind.READ) for a in addrs]
    stats_objects = MemoryController(LPDDR5X_8533).simulate(reqs)
    assert asdict(stats_arrays) == asdict(stats_objects)
    assert sum(stats_arrays.idle_channel_cycles.values()) == 0


def test_arrival_corner_huge_gap_goes_idle():
    addrs = np.array([0, 64], dtype=np.int64)
    arrive = np.array([0, 1_000_000], dtype=np.int64)
    stats = MemoryController(LPDDR5X_8533).simulate_arrays(addrs, arrive)
    assert sum(stats.idle_channel_cycles.values()) > 0
    assert stats.queue_delay_max >= 0


def test_priority_bits_accepted_and_ignored():
    """Priority flag bits round through scheduling without effect."""
    addrs = np.arange(50, dtype=np.int64) * 64
    plain = MemoryController(LPDDR5X_8533).simulate_arrays(
        addrs, flags=pack_flags(np.zeros(50, dtype=bool))
    )
    prioritized = MemoryController(LPDDR5X_8533).simulate_arrays(
        addrs, flags=pack_flags(np.zeros(50, dtype=bool), priority=7)
    )
    assert asdict(plain) == asdict(prioritized)


def test_write_flag_decoded():
    addrs = np.arange(10, dtype=np.int64) * 64
    flags = np.zeros(10, dtype=np.uint8)
    flags[::2] = FLAG_WRITE
    stats = MemoryController(LPDDR5X_8533).simulate_arrays(addrs, flags=flags)
    assert stats.writes == 5 and stats.reads == 5


def test_empty_columns():
    stats = MemoryController(LPDDR5X_8533).simulate_arrays(np.array([], dtype=np.int64))
    assert stats.requests == 0 and stats.total_cycles == 0


def test_negative_arrival_rejected():
    with pytest.raises(ValueError, match="non-negative"):
        MemoryController(LPDDR5X_8533).simulate_arrays(
            np.array([64], dtype=np.int64), np.array([-1], dtype=np.int64)
        )


def test_length_mismatches_rejected():
    ctrl = MemoryController(LPDDR5X_8533)
    with pytest.raises(ValueError, match="arrive_cycles"):
        ctrl.simulate_arrays(np.array([64, 128], dtype=np.int64), np.array([0]))
    with pytest.raises(ValueError, match="flags"):
        ctrl.simulate_arrays(
            np.array([64, 128], dtype=np.int64),
            flags=np.array([0], dtype=np.uint8),
        )


def test_beyond_capacity_address_rejected():
    ctrl = MemoryController(LPDDR5X_8533)
    too_big = LPDDR5X_8533.organization.total_capacity_bytes
    with pytest.raises(ValueError, match="beyond device capacity"):
        ctrl.simulate_arrays(np.array([too_big], dtype=np.int64))


def test_detail_matches_object_path_per_request_fields():
    """detail=True exposes per-request first-command / completion /
    queue-delay arrays identical to what simulate() scatters onto
    Request objects -- the per-request form of the aggregate
    queue-delay stats."""
    rng = np.random.default_rng(5)
    addrs = rng.integers(0, _MAX_BLOCK, size=300, dtype=np.int64) * 64
    arrive = np.sort(rng.integers(0, 3000, size=300)).astype(np.int64)
    flags = pack_flags(rng.random(300) < 0.3)

    stats, timings = MemoryController(LPDDR5X_8533).simulate_arrays(
        addrs, arrive, flags, detail=True
    )
    assert len(timings) == 300
    requests = requests_from_arrays(addrs, arrive, flags)
    object_stats = MemoryController(LPDDR5X_8533).simulate(requests)
    assert asdict(stats) == asdict(object_stats)
    assert [r.first_command_cycle for r in requests] == (
        timings.first_command_cycles.tolist()
    )
    assert [r.complete_cycle for r in requests] == timings.complete_cycles.tolist()
    assert [r.queue_delay() for r in requests] == timings.queue_delays.tolist()
    assert [bool(r.row_hit) for r in requests] == timings.row_hits.tolist()
    # Aggregates derive from the per-request delays.
    assert stats.queue_delay_max == timings.queue_delays.max()
    assert stats.queue_delay_mean == pytest.approx(timings.queue_delays.mean())


def test_detail_empty_columns():
    stats, timings = MemoryController(LPDDR5X_8533).simulate_arrays(
        np.array([], dtype=np.int64), detail=True
    )
    assert stats.requests == 0
    assert len(timings) == 0
